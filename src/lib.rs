//! # tscache — time-predictable secure caches
//!
//! A full reproduction of *"Cache Side-Channel Attacks and
//! Time-Predictability in High-Performance Critical Real-Time Systems"*
//! (Trilla, Hernandez, Abella, Cazorla — DAC 2018) as a Rust workspace.
//!
//! This umbrella crate re-exports the subsystem crates:
//!
//! * [`core`] — cache models: randomized placement
//!   (HashRP, Random Modulo, RPCache, XOR-index), replacement policies,
//!   per-process seeds, the ARM920T-class hierarchy and the paper's
//!   four experimental setups.
//! * [`interference`] — multi-core contention: the shared
//!   memory bus (round-robin / fixed-priority / TDMA), MSHR files,
//!   and the contended multi-core execution engines.
//! * [`sim`] — the execution-driven timing simulator.
//! * [`aes`] — AES-128 (reference + T-tables + simulator-
//!   instrumented).
//! * [`mbpta`] — probabilistic WCET analysis: i.i.d.
//!   tests, EVT, pWCET curves.
//! * [`sca`] — Bernstein's attack, Prime+Probe,
//!   Evict+Time.
//! * [`rtos`] — AUTOSAR-style scheduling and the TSCache
//!   seed-management OS support.
//! * [`fleet`] — the crash-safe campaign runner: declarative
//!   sweep specs sharded into deterministic jobs, panic-isolated
//!   workers, checkpoint/resume with bit-identical merged output, and
//!   a fault-injection harness.
//!
//! ## The paper in one example
//!
//! ```
//! use tscache::core::setup::{SeedSharing, SetupKind};
//!
//! // MBPTACache and TSCache are the same hardware…
//! let mbpta = SetupKind::Mbpta.build(1);
//! let ts = SetupKind::TsCache.build(1);
//! assert_eq!(mbpta.l1d().placement_name(), ts.l1d().placement_name());
//! // …the security comes from the OS seed policy:
//! assert_eq!(SetupKind::Mbpta.seed_sharing(), SeedSharing::Shared);
//! assert_eq!(SetupKind::TsCache.seed_sharing(), SeedSharing::PerProcess);
//! ```

pub use tscache_aes as aes;
pub use tscache_core as core;
pub use tscache_fleet as fleet;
pub use tscache_interference as interference;
pub use tscache_mbpta as mbpta;
pub use tscache_rtos as rtos;
pub use tscache_sca as sca;
pub use tscache_sim as sim;
