//! A minimal, dependency-free, offline stand-in for the `proptest`
//! crate, covering the subset this workspace's property tests use:
//! range strategies, `any`, tuples, `prop::collection::vec`,
//! `prop::bool::ANY`, and the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros. Cases are generated deterministically (no shrinking): a
//! failing case panics with the assertion message, and the per-test
//! RNG stream is a pure function of the test name, so failures
//! reproduce exactly.

pub mod strategy {
    use crate::test_runner::Rng;

    /// A value generator. Unlike real proptest there is no value tree
    /// or shrinking; `generate` draws a fresh value per case.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut Rng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut Rng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Any<T> {
        pub const fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod test_runner {
    /// SplitMix64 generator: a deterministic stream per test name.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng { state: seed }
        }

        /// Seed derived from the test name, so each property test has
        /// a stable, independent stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Rng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Marker error distinguishing `prop_assume!` rejection from a
    /// genuine assertion failure.
    pub const ASSUME_REJECTED: &str = "\u{1}__proptest_shim_assume__";
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::Rng;

        /// `vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::Rng;

        pub struct AnyBool;

        /// `prop::bool::ANY`.
        pub const ANY: AnyBool = AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut Rng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
    };
}

/// Default number of cases generated per property test.
pub const CASES: u32 = 64;

/// Cases per property test: `PROPTEST_CASES` override or [`CASES`].
///
/// Mirrors real proptest's env knob so slow interpreters (miri in CI)
/// can dial the count down without patching test code. Test-only
/// configuration: case *generation* stays seeded by test name, so any
/// given (name, index) case is identical across runs and hosts.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(CASES)
}

#[macro_export]
macro_rules! proptest {
    ($($(#[doc = $doc:expr])* #[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let mut rng = $crate::test_runner::Rng::for_test(stringify!($name));
                let cases = $crate::cases();
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts < cases.saturating_mul(20),
                        "prop_assume! rejected too many cases"
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let case = (|| -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match case {
                        Ok(()) => accepted += 1,
                        Err(e) if e == $crate::test_runner::ASSUME_REJECTED => continue,
                        Err(e) => panic!("property test case failed: {e}"),
                    }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                lhs
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::ASSUME_REJECTED.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..128, prop::bool::ANY), n in 0u8..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
            prop_assert!(pair.0 < 128);
        }

        #[test]
        fn any_array_is_filled(key in any::<[u8; 16]>(), x in any::<u64>()) {
            prop_assert_eq!(key.len(), 16);
            let _ = x;
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::test_runner::Rng::for_test("t");
        let mut b = crate::test_runner::Rng::for_test("t");
        let mut c = crate::test_runner::Rng::for_test("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
