//! Cross-core Prime+Probe through a **shared last-level cache** — the
//! contention attack the §7 partitioning ablation is about.
//!
//! An enemy core shares the platform's LLC with a victim running AES.
//! Per sample the attacker *primes* the LLC sets covering the victim's
//! TE0 table (filling each monitored set with its own lines), lets the
//! victim encrypt one known plaintext, then *probes* its lines: a
//! missing prime line marks a set the victim refilled, i.e. a table
//! line the first AES round touched — and `TE0[pt[0] ^ k[0]]` ties
//! that line to the key byte. Votes accumulate over samples; on a
//! deterministic shared LLC the true key byte (with its seven
//! line-mates — a 32 B line holds 8 table entries) climbs to the top.
//!
//! Two defenses are modelled, matching the paper's argument:
//!
//! * **per-core way partitions** on the shared level
//!   ([`LlcPartition::PerCore`]): the victim's fills can no longer
//!   evict the attacker's lines, the probe goes blind, and the vote
//!   distribution flattens to chance;
//! * **randomized placement with per-process seeds** (the TSCache
//!   setups): the attacker can neither target the victim's sets nor
//!   interpret its own evictions, degrading the channel without any
//!   partition.
//!
//! The attacker drives the shared level directly (a streaming access
//! pattern whose private cache is bypassed — the strongest-attacker
//! model); the victim runs its full machine: private L1s, trace-batch
//! replay, shared-LLC resolution in op order. The victim's private
//! caches are flushed before each timed encryption (preemption between
//! jobs), so first-round table accesses genuinely reach the shared
//! level.

use tscache_aes::sim_cipher::{AesLayout, SimAes128};
use tscache_core::addr::LineAddr;
use tscache_core::defense::DefenseKind;
use tscache_core::error::ConfigError;
use tscache_core::hierarchy::SharedLlc;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SeedSharing, SetupKind};
use tscache_interference::SystemConfig;
use tscache_sim::layout::Layout;
use tscache_sim::machine::Machine;

/// Partitioning of the shared LLC between the victim's core and the
/// attacker's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcPartition {
    /// Unpartitioned: every core fills every way (the vulnerable
    /// configuration).
    None,
    /// Full per-core partition: the victim fills ways `0..2`, the
    /// attacker ways `2..4` — the §7 isolation configuration.
    PerCore,
}

/// Parameters of a cross-core Prime+Probe campaign.
#[derive(Debug, Clone, Copy)]
pub struct CrossCoreConfig {
    /// Cache setup of the shared platform (the LLC inherits its
    /// unified policy; `Deterministic` is the classic vulnerable
    /// target).
    pub setup: SetupKind,
    /// Samples (prime → encrypt → probe rounds).
    pub samples: u32,
    /// Master seed; plaintexts and placement seeds derive from it.
    pub master_seed: u64,
    /// The victim's secret key.
    pub victim_key: [u8; 16],
    /// Shared-level partitioning.
    pub partition: LlcPartition,
    /// Defense-zoo policy armed on the whole platform. The rotation
    /// defenses act here: the shared level re-keys a core's placement
    /// seed on a fill-count schedule and flushes its lines, so primes
    /// laid under the old seed stop predicting the victim's sets.
    pub defense: DefenseKind,
}

impl CrossCoreConfig {
    /// The standard campaign: 256 samples against `setup`.
    pub fn standard(setup: SetupKind, master_seed: u64) -> Self {
        CrossCoreConfig {
            setup,
            samples: 256,
            master_seed,
            victim_key: [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ],
            partition: LlcPartition::None,
            defense: DefenseKind::Off,
        }
    }
}

/// Outcome of a cross-core Prime+Probe campaign.
#[derive(Debug, Clone)]
pub struct CrossCoreOutcome {
    /// Samples run.
    pub samples: u32,
    /// Votes per candidate value of key byte 0.
    pub scores: Vec<u32>,
    /// Rank of the true key byte among the candidates (0 = strongest;
    /// ties share their average rank). 8 candidates sharing the true
    /// byte's table line are indistinguishable by construction, so a
    /// perfect attack ranks the true byte ≈ 3.5.
    pub correct_rank: f64,
    /// Prime-line evictions the probe observed over the campaign.
    pub evictions_observed: u64,
    /// Cross-core evictions the shared level recorded.
    pub cross_core_evictions: u64,
}

impl CrossCoreOutcome {
    /// Whether the true key byte ranks in the top quartile of the
    /// candidate list — the pinned "signal recovered" criterion.
    pub fn top_quartile(&self) -> bool {
        self.correct_rank < 64.0
    }
}

/// TE0 spans 32 cache lines of 8 entries each.
const TE0_LINES: usize = 32;
/// Attacker prime depth per monitored set (the LLC associativity).
const PRIME_WAYS: u64 = 4;

/// Runs the campaign; everything derives from `cfg.master_seed`, so
/// outcomes are bit-reproducible.
///
/// # Panics
///
/// Panics on an invalid configuration; campaign code that cannot
/// afford an abort uses [`try_run_cross_core_prime_probe`].
pub fn run_cross_core_prime_probe(cfg: &CrossCoreConfig) -> CrossCoreOutcome {
    match try_run_cross_core_prime_probe(cfg) {
        Ok(out) => out,
        // detlint: allow(R1, documented panicking wrapper; fallible callers use try_run_cross_core_prime_probe)
        Err(e) => panic!("invalid cross-core prime+probe config: {e}"),
    }
}

/// The shared level, or the [`ConfigError`] a campaign executor can
/// quarantine — in place of the `.expect("shared platform")` abort
/// this path used to ship (the PR 7/9 incident class).
fn shared_llc_mut(machine: &mut Machine) -> Result<&mut SharedLlc, ConfigError> {
    machine.shared_llc_mut().ok_or_else(|| {
        ConfigError::incompatible("cross-core prime+probe requires a shared-LLC platform")
    })
}

/// Immutable [`shared_llc_mut`].
fn shared_llc(machine: &Machine) -> Result<&SharedLlc, ConfigError> {
    machine.shared_llc().ok_or_else(|| {
        ConfigError::incompatible("cross-core prime+probe requires a shared-LLC platform")
    })
}

/// Fallible campaign runner: every configuration problem surfaces as
/// a [`ConfigError`] instead of an abort.
pub fn try_run_cross_core_prime_probe(
    cfg: &CrossCoreConfig,
) -> Result<CrossCoreOutcome, ConfigError> {
    let setup = cfg.defense.effective_setup(cfg.setup);
    let victim = ProcessId::new(1);
    let attacker = ProcessId::new(2);

    // The victim node: private hierarchy + shared LLC.
    let mut machine = Machine::from_setup_shared(
        setup,
        HierarchyDepth::TwoLevel,
        SystemConfig::default(),
        cfg.master_seed,
    );
    machine.apply_defense(cfg.defense);
    machine.set_process(victim);
    let mut seed_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x5eedcc));
    match setup.seed_sharing() {
        SeedSharing::Irrelevant => {
            machine.set_process_seed(victim, Seed::ZERO);
            machine.set_process_seed(attacker, Seed::ZERO);
        }
        SeedSharing::Shared => {
            let s = Seed::random(&mut seed_rng);
            machine.set_process_seed(victim, s);
            machine.set_process_seed(attacker, s);
        }
        SeedSharing::PerProcess => {
            machine.set_process_seed(victim, Seed::random(&mut seed_rng));
            machine.set_process_seed(attacker, Seed::random(&mut seed_rng));
        }
    }
    if cfg.partition == LlcPartition::PerCore {
        let llc = shared_llc_mut(&mut machine)?;
        llc.set_way_partition(victim, 0, 2);
        llc.set_way_partition(attacker, 2, 4);
    }

    let mut layout = Layout::new(0x10_0000);
    let aes_layout = AesLayout::install(&mut layout, "victim");
    let aes = SimAes128::new(&cfg.victim_key, aes_layout);
    let te0_base_line = aes_layout.table(0).base().as_u64() >> 5;
    let llc_sets = shared_llc(&machine)?.cache().geometry().sets() as u64;

    // The attacker's prime lines, per monitored TE0 line: PRIME_WAYS
    // own lines that alias the victim line's modulo set, from a
    // disjoint address region (line 0x200_0000 = byte 1 GiB, a
    // multiple of the set count — no accidental data sharing).
    let attacker_base = 0x200_0000u64;
    let prime_lines: Vec<[LineAddr; PRIME_WAYS as usize]> = (0..TE0_LINES as u64)
        .map(|l| {
            let set = (te0_base_line + l) % llc_sets;
            core::array::from_fn(|j| LineAddr::new(attacker_base + set + j as u64 * llc_sets))
        })
        .collect();

    let mut pt_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x971e57));
    let mut scores = vec![0u32; 256];
    let mut evictions_observed = 0u64;
    let mut ops = Vec::with_capacity(256);

    for _ in 0..cfg.samples {
        // Prime: fill every monitored set with attacker lines.
        {
            let llc = shared_llc_mut(&mut machine)?;
            for lines in &prime_lines {
                for &line in lines {
                    llc.access(attacker, line);
                }
            }
        }

        // Victim: preempted in, runs one encryption of a random (but
        // attacker-known) plaintext through its machine. Private
        // caches are cold after preemption; the shared level is where
        // the two cores meet.
        let mut pt = [0u8; 16];
        for b in pt.iter_mut() {
            *b = (pt_rng.next_u64() & 0xff) as u8;
        }
        machine.hierarchy_mut().flush_all();
        aes.encrypt_with(&mut machine, &mut ops, &pt);

        // Probe (non-destructive): a monitored set missing a prime
        // line was refilled by the victim.
        let llc = shared_llc_mut(&mut machine)?;
        let mut evicted = [false; TE0_LINES];
        for (l, lines) in prime_lines.iter().enumerate() {
            evicted[l] = lines.iter().any(|&line| !llc.cache_mut().probe(attacker, line));
            evictions_observed += evicted[l] as u64;
        }
        // Vote: candidate k predicts TE0 line (pt[0] ^ k) / 8.
        let [pt0, ..] = pt;
        for (k, score) in scores.iter_mut().enumerate() {
            let line = ((pt0 ^ k as u8) >> 3) as usize;
            *score += evicted[line] as u32;
        }
    }

    let [key0, ..] = cfg.victim_key;
    let true_score = scores[key0 as usize];
    let stronger = scores.iter().filter(|&&s| s > true_score).count();
    let ties = scores.iter().filter(|&&s| s == true_score).count();
    let correct_rank = stronger as f64 + (ties - 1) as f64 / 2.0;
    let cross_core_evictions = shared_llc(&machine)?.cache().stats().cross_process_evictions();
    Ok(CrossCoreOutcome {
        samples: cfg.samples,
        scores,
        correct_rank,
        evictions_observed,
        cross_core_evictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_shared_llc_leaks_the_key_byte() {
        let out =
            run_cross_core_prime_probe(&CrossCoreConfig::standard(SetupKind::Deterministic, 7));
        assert!(out.top_quartile(), "rank {} not top-quartile", out.correct_rank);
        assert!(out.correct_rank < 8.0, "line-mates aside, the true byte should lead");
        assert!(out.cross_core_evictions > 0);
    }

    #[test]
    fn per_core_partition_drops_the_attack_to_chance() {
        let mut cfg = CrossCoreConfig::standard(SetupKind::Deterministic, 7);
        cfg.partition = LlcPartition::PerCore;
        let out = run_cross_core_prime_probe(&cfg);
        assert!(!out.top_quartile(), "rank {} still top-quartile", out.correct_rank);
        assert_eq!(out.cross_core_evictions, 0, "partition violated");
    }

    #[test]
    fn campaign_reproduces_bit_for_bit() {
        let cfg = CrossCoreConfig::standard(SetupKind::Deterministic, 11);
        let a = run_cross_core_prime_probe(&cfg);
        let b = run_cross_core_prime_probe(&cfg);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.correct_rank, b.correct_rank);
    }
}
