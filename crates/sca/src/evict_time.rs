//! Evict+Time — the second contention attack primitive (paper §2.2).
//!
//! The attacker evicts one chosen cache set between two victim runs
//! and compares the victim's execution time: a slowdown reveals that
//! the victim uses the targeted set. Under deterministic placement the
//! attacker can walk all sets and map out the victim's footprint; with
//! per-process seeds the "targeted" set lands somewhere unrelated in
//! the victim's layout.

use crate::prime_probe::{assign_seeds, l1_policy};
use tscache_core::addr::LineAddr;
use tscache_core::cache::Cache;
use tscache_core::defense::DefenseKind;
use tscache_core::geometry::CacheGeometry;
use tscache_core::parallel::par_map_indexed;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::seed::ProcessId;
use tscache_core::setup::SetupKind;

/// Outcome of an Evict+Time campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictTimeOutcome {
    /// Trials run.
    pub trials: u32,
    /// Fraction of trials where the slowdown test correctly decided
    /// whether the victim used the targeted index (0.5 = coin flip).
    pub detection_rate: f64,
}

impl EvictTimeOutcome {
    /// Whether detection beats guessing by a clear margin.
    pub fn leaks(&self) -> bool {
        self.detection_rate > 0.7
    }
}

/// Runs `trials` Evict+Time rounds against the L1D policy of `setup`.
///
/// Per trial: the victim warms its secret line; the attacker evicts the
/// lines of one target index (four ways deep, at its own addresses);
/// the victim re-runs and the attacker observes whether the re-run
/// missed. Half the trials target the victim's true index, half a
/// different one; the detection rate counts correct decisions.
/// Trials are independent and fan out over worker threads
/// ([`tscache_core::parallel`]); every trial derives its randomness
/// purely from `(master_seed, trial)`, so the outcome is bit-identical
/// for any thread count.
pub fn run_evict_time(setup: SetupKind, trials: u32, master_seed: u64) -> EvictTimeOutcome {
    run_evict_time_defended(setup, DefenseKind::Off, trials, master_seed)
}

/// [`run_evict_time`] with a defense-zoo policy armed on the L1 under
/// attack. TTL expiries inject slowdowns uncorrelated with the
/// attacker's target choice; [`DefenseKind::RandomSafe`] swaps in the
/// Random-and-Safe platform; the rotation defenses are no-ops here
/// (single private L1, no shared level).
pub fn run_evict_time_defended(
    setup: SetupKind,
    defense: DefenseKind,
    trials: u32,
    master_seed: u64,
) -> EvictTimeOutcome {
    let setup = defense.effective_setup(setup);
    let geom = CacheGeometry::paper_l1();
    let (placement, replacement) = l1_policy(setup);
    let victim = ProcessId::new(1);
    let attacker = ProcessId::new(2);

    let decisions = par_map_indexed(trials as usize, |t| {
        let trial = t as u32;
        let mut trial_rng = SplitMix64::new(mix64(
            master_seed ^ 0xe71c7 ^ (trial as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
        ));
        let mut cache = Cache::new("L1D", geom, placement, replacement, master_seed ^ trial as u64);
        cache.set_ttl(defense.ttl());
        cache.set_normalize(defense.normalize());
        assign_seeds(&mut cache, setup, victim, attacker, master_seed, trial);

        let secret_index = trial_rng.below(128) as u64;
        let victim_line = LineAddr::new(0x10_000 + secret_index);
        // Victim warms its line.
        cache.access(victim, victim_line);

        // Attacker targets either the true index or a decoy.
        let target_truth = trial.is_multiple_of(2);
        let target_index = if target_truth {
            secret_index
        } else {
            (secret_index + 1 + trial_rng.below(126) as u64) % 128
        };
        // Evict: four attacker lines with those index bits (one per
        // page, so random modulo spreads them independently).
        for way in 0..4u64 {
            cache.access(attacker, LineAddr::new(0x20_000 + way * 128 + target_index));
        }

        // Victim re-runs; the attacker times it (miss = slowdown).
        let slowed = cache.access(victim, victim_line).is_miss();
        // Decision rule: slowdown ⇒ the target was the victim's index.
        slowed == target_truth
    });

    let correct = decisions.iter().filter(|&&c| c).count();
    EvictTimeOutcome { trials, detection_rate: correct as f64 / trials as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_cache_is_fully_observable() {
        let o = run_evict_time(SetupKind::Deterministic, 300, 3);
        assert!(o.detection_rate > 0.95, "rate {}", o.detection_rate);
        assert!(o.leaks());
    }

    #[test]
    fn tscache_reduces_detection_to_chance() {
        let o = run_evict_time(SetupKind::TsCache, 600, 3);
        assert!((o.detection_rate - 0.5).abs() < 0.1, "rate {} not chance-like", o.detection_rate);
        assert!(!o.leaks());
    }

    #[test]
    fn rpcache_disrupts_targeting() {
        let o = run_evict_time(SetupKind::RpCache, 600, 5);
        assert!(o.detection_rate < 0.8, "rate {}", o.detection_rate);
    }

    #[test]
    fn trials_counted() {
        let o = run_evict_time(SetupKind::Deterministic, 10, 1);
        assert_eq!(o.trials, 10);
    }
}
