//! Timing-sample collection for the Bernstein attack (paper §6.1.1).
//!
//! Two independent "processors" (machines) each run AES-128 plus the
//! surrounding application activity of a real ECU task. The attacker's
//! node uses a known key; the victim's key is secret. Per sample we
//! record `(plaintext, encryption cycles)`.
//!
//! The cache-relevant structure mirrors a real deployment:
//!
//! * the AES tables, key schedule, code and I/O buffers live at fixed
//!   addresses (same binary on both nodes);
//! * between encryptions the task touches its *application working
//!   set*, part of which conflicts with table cache sets — the
//!   self-interference that makes encryption time input-dependent
//!   (Bernstein needs no co-located attacker, §2.2);
//! * periodically the OS runs (its own process and seed), providing
//!   cross-process contention — the events RPCache randomizes;
//! * placement seeds are re-drawn every "hyperperiod" of jobs and
//!   caches flushed, per the paper's §5 seed-management protocol. The
//!   sharing policy (shared vs per-process) comes from the
//!   [`SetupKind`].

use tscache_aes::sim_cipher::{AesLayout, SimAes128};
use tscache_core::addr::Addr;
use tscache_core::defense::DefenseKind;
use tscache_core::error::ConfigError;
use tscache_core::parallel;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SeedSharing, SetupKind};
use tscache_interference::ContentionConfig;
use tscache_sim::layout::Layout;
use tscache_sim::machine::{Machine, TraceOp};

/// Which node a sample stream belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The profiled machine with the known key.
    Attacker,
    /// The target machine with the secret key.
    Victim,
}

impl Role {
    fn stream(self) -> u64 {
        match self {
            Role::Attacker => 0xa77a_c4e5,
            Role::Victim => 0x71c7_13b5,
        }
    }
}

/// One timing observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSample {
    /// The (random) plaintext block.
    pub plaintext: [u8; 16],
    /// Cycles the encryption took.
    pub cycles: u64,
}

/// Parameters of a sampling campaign.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Cache setup under attack.
    pub setup: SetupKind,
    /// Hierarchy depth the node runs on (two-level paper platform or
    /// the extended three-level variant with an L3).
    pub depth: HierarchyDepth,
    /// Number of encryptions to time per node.
    pub samples: u32,
    /// Master seed: everything (keys aside) derives from it.
    pub master_seed: u64,
    /// Jobs per seed epoch (hyperperiod); re-seed + flush at each
    /// boundary. 0 means a single epoch for the whole campaign.
    pub reseed_every: u32,
    /// OS activity period in jobs (0 = no OS noise).
    pub os_noise_every: u32,
    /// Untimed warm-up jobs run after every epoch flush, so the timed
    /// samples measure the steady state rather than the compulsory-
    /// miss transient (which is layout-independent and would mask the
    /// contention channel on *every* setup).
    pub warmup_jobs: u32,
    /// Table lines the application working set aliases under modulo
    /// (interference intensity; the ablation harness sweeps this).
    pub app_target_lines: u32,
    /// If non-zero, way-partition the L1s: the crypto task fills ways
    /// `0..k`, the OS ways `k..assoc` (the §7 partitioning
    /// alternative). 0 = no partitioning.
    pub partition_task_ways: u32,
    /// When set, each node runs with active co-runner cores (FIR enemy
    /// kernels on their own hierarchies) contending for the shared
    /// bus, so the timed encryptions carry multicore interference.
    pub contention: Option<ContentionConfig>,
    /// When set, the node's last cache level is *shared* with its
    /// co-runner cores (`Machine::from_setup_shared`): enemy traffic
    /// evicts the crypto task's shared-level lines — the cross-core
    /// contention channel — unless `partition_llc_ways` isolates it.
    pub shared_llc: bool,
    /// If non-zero (shared-LLC nodes only), way-partition the shared
    /// level per core: the measured core's processes (task + OS) fill
    /// ways `0..k`, enemy cores ways `k..assoc` — the §7 partitioning
    /// ablation applied at the shared level. 0 = unpartitioned.
    pub partition_llc_ways: u32,
    /// Defense-zoo policy armed on the node's platform. The rotation
    /// defenses need `shared_llc` (validated); the others apply to any
    /// node.
    pub defense: DefenseKind,
}

impl SamplingConfig {
    /// Associativity of the paper platform's L1s (what
    /// `partition_task_ways` partitions).
    const L1_WAYS: u32 = 4;

    /// Validates the configuration, so campaign executors can reject a
    /// bad spec up front — as a [`ConfigError`], distinct from a
    /// worker crash — instead of panicking (or silently clamping)
    /// inside a worker thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use tscache_core::setup::SetupKind;
    /// use tscache_sca::sampling::SamplingConfig;
    ///
    /// let mut cfg = SamplingConfig::standard(SetupKind::TsCache, 100, 1);
    /// assert!(cfg.validate().is_ok());
    /// cfg.partition_llc_ways = 2; // but no shared LLC to partition
    /// assert!(cfg.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.samples == 0 {
            return Err(ConfigError::incompatible("sampling campaign needs samples > 0"));
        }
        if self.partition_task_ways >= Self::L1_WAYS {
            return Err(ConfigError::incompatible(format!(
                "partition_task_ways {} leaves no way for the OS (L1 has {} ways)",
                self.partition_task_ways,
                Self::L1_WAYS
            )));
        }
        if self.partition_llc_ways > 0 && !self.shared_llc {
            return Err(ConfigError::incompatible(
                "partition_llc_ways needs shared_llc: there is no shared level to partition",
            ));
        }
        if self.defense.needs_shared_level() && !self.shared_llc {
            return Err(ConfigError::incompatible(
                "seed-rotation defenses need shared_llc: there is no shared level to rotate",
            ));
        }
        Ok(())
    }

    /// The defaults used by the figure harnesses: 32768-job seed epochs
    /// (a handful of epochs per campaign, so genuine shift-correlations
    /// accumulate across epochs while layout-pair coincidences wash
    /// out), OS ticks every 16 jobs, 8 warm-up jobs per epoch.
    pub fn standard(setup: SetupKind, samples: u32, master_seed: u64) -> Self {
        SamplingConfig {
            setup,
            depth: HierarchyDepth::TwoLevel,
            samples,
            master_seed,
            reseed_every: 32_768,
            os_noise_every: 16,
            warmup_jobs: 8,
            app_target_lines: 10,
            partition_task_ways: 0,
            contention: None,
            shared_llc: false,
            partition_llc_ways: 0,
            defense: DefenseKind::Off,
        }
    }
}

/// A simulated ECU node running the AES task.
#[derive(Debug)]
pub struct CryptoNode {
    machine: Machine,
    aes: SimAes128,
    /// Application lines that (under modulo) alias chosen table sets,
    /// four ways deep.
    app_lines: Vec<Addr>,
    /// The task's broader working set (two full pages): under modulo it
    /// adds a uniform, harmless two lines per set, but under randomized
    /// placement its lines clump (Poisson), creating the set congestion
    /// that makes timing layout-dependent on MBPTA-class caches.
    background_lines: Vec<Addr>,
    /// Lines the OS touches on its ticks.
    os_lines: Vec<Addr>,
    task: ProcessId,
    cfg: SamplingConfig,
    role: Role,
    pt_rng: SplitMix64,
    /// Reusable encryption-trace buffer (the batch API's scratch
    /// space), so the million-encryption campaigns do not allocate per
    /// job.
    ops: Vec<TraceOp>,
}

impl CryptoNode {
    /// Builds a node for `role` with the given AES `key`, validating
    /// the configuration first (the non-panicking constructor campaign
    /// executors use).
    pub fn try_new(cfg: SamplingConfig, role: Role, key: &[u8; 16]) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self::build(cfg, role, key))
    }

    /// Builds a node for `role` with the given AES `key`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`CryptoNode::try_new`]
    /// to get the [`ConfigError`] instead.
    pub fn new(cfg: SamplingConfig, role: Role, key: &[u8; 16]) -> Self {
        match CryptoNode::try_new(cfg, role, key) {
            Ok(node) => node,
            // detlint: allow(R1, documented panicking convenience constructor; campaign code uses try_new)
            Err(e) => panic!("invalid sampling config: {e}"),
        }
    }

    fn build(cfg: SamplingConfig, role: Role, key: &[u8; 16]) -> Self {
        // Random-and-Safe is a platform swap: resolve it up front so
        // the stored config (and its seed-sharing policy) reflect the
        // platform actually built.
        let cfg = SamplingConfig { setup: cfg.defense.effective_setup(cfg.setup), ..cfg };
        let mut layout = Layout::new(0x10_0000);
        let aes_layout = AesLayout::install(&mut layout, "aes");
        let app = layout.alloc("app", 4 * 4096, 4096);
        let background = layout.alloc("background", 2 * 4096, 4096);
        let os = layout.alloc("os", 2 * 4096, 4096);

        let mut machine = if cfg.shared_llc {
            Machine::from_setup_shared(
                cfg.setup,
                cfg.depth,
                cfg.contention.map(|c| c.system).unwrap_or_default(),
                cfg.master_seed ^ role.stream(),
            )
        } else {
            Machine::from_setup_depth(cfg.setup, cfg.depth, cfg.master_seed ^ role.stream())
        };
        machine.apply_defense(cfg.defense);
        // Multicore deployment: enemy co-runners on the shared bus
        // (and, on shared-LLC nodes, inside the shared cache).
        if let Some(con) = &cfg.contention {
            machine.attach_standard_enemies(
                cfg.setup,
                cfg.depth,
                con,
                mix64(cfg.master_seed ^ role.stream() ^ 0xb05_u64),
            );
        }
        // §7 at the shared level: per-core way partitions.
        if cfg.shared_llc && cfg.partition_llc_ways > 0 {
            let enemy_pids: Vec<ProcessId> =
                machine.co_runners().iter().map(|co| co.pid()).collect();
            // `validate()` guarantees a shared level when
            // `cfg.shared_llc` is set; stay panic-free regardless.
            if let Some(llc) = machine.shared_llc_mut() {
                let ways = llc.cache().geometry().ways();
                let k = cfg.partition_llc_ways.min(ways - 1);
                llc.set_way_partition(ProcessId::new(1), 0, k);
                llc.set_way_partition(ProcessId::OS, 0, k);
                for pid in enemy_pids {
                    llc.set_way_partition(pid, k, ways);
                }
            }
        }
        // RPCache protects the crypto tables (P-bit pages) — on the
        // shared level too, where enemy cores contend.
        for t in 0..5 {
            let region = aes_layout.table(t);
            machine.hierarchy_mut().add_protected_range(region.base(), region.size());
            if let Some(llc) = machine.shared_llc_mut() {
                llc.add_protected_range(region.base(), region.size());
            }
        }
        // Optional §7-style way partitioning: task vs OS.
        if cfg.partition_task_ways > 0 {
            let ways = 4;
            let k = cfg.partition_task_ways.min(ways - 1);
            machine.hierarchy_mut().set_l1_way_partition(ProcessId::new(1), 0, k);
            machine.hierarchy_mut().set_l1_way_partition(ProcessId::OS, k, ways);
        }

        // Application lines aliased (modulo) onto the sets of selected
        // TE0 and TE2 lines, 4 ways deep — enough to evict a 4-way set.
        let mut app_lines = Vec::new();
        let mut targets = Vec::new();
        for i in 0..(cfg.app_target_lines as u64).div_ceil(2).min(10) {
            targets.push(aes_layout.table(0).at(32 * (3 * i)));
            targets.push(aes_layout.table(2).at(32 * (3 * i + 1)));
        }
        targets.truncate(cfg.app_target_lines as usize);
        for target in &targets {
            let set = (target.as_u64() >> 5) & 127;
            for way in 0..4u64 {
                app_lines.push(Addr::new(app.base().as_u64() + way * 4096 + set * 32));
            }
        }

        // OS lines: eight sets aliasing TE1/TE3 lines, two ways deep.
        let mut os_lines = Vec::new();
        for i in 0..4u64 {
            for (t, l) in [(1u64, 5 * i), (3u64, 5 * i + 2)] {
                let set = (aes_layout.table(t as usize).at(32 * l).as_u64() >> 5) & 127;
                for way in 0..2u64 {
                    os_lines.push(Addr::new(os.base().as_u64() + way * 4096 + set * 32));
                }
            }
        }

        let background_lines: Vec<Addr> =
            (0..background.size() / 32).map(|i| background.at(i * 32)).collect();

        CryptoNode {
            machine,
            aes: SimAes128::new(key, aes_layout),
            app_lines,
            background_lines,
            os_lines,
            task: ProcessId::new(1),
            cfg,
            role,
            pt_rng: SplitMix64::new(mix64(cfg.master_seed ^ role.stream() ^ 0x9_1e57)),
            ops: Vec::with_capacity(256),
        }
    }

    /// The seed for `pid` in epoch `epoch`, following the setup's
    /// sharing policy.
    fn epoch_seed(&self, pid: ProcessId, epoch: u64) -> Seed {
        let base = mix64(self.cfg.master_seed ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match self.cfg.setup.seed_sharing() {
            SeedSharing::Irrelevant => Seed::ZERO,
            // One system-wide seed per epoch: both nodes, all processes.
            SeedSharing::Shared => Seed::new(base),
            // Unique per (node, process): the TSCache rule.
            SeedSharing::PerProcess => {
                Seed::new(mix64(base ^ self.role.stream() ^ (pid.as_u16() as u64) << 48))
            }
        }
    }

    fn start_epoch(&mut self, epoch: u64) {
        let task_seed = self.epoch_seed(self.task, epoch);
        let os_seed = self.epoch_seed(ProcessId::OS, epoch);
        self.machine.set_process_seed(self.task, task_seed);
        self.machine.set_process_seed(ProcessId::OS, os_seed);
        // §5: the hyperperiod boundary re-seeds and flushes.
        self.machine.flush_caches();
        // Untimed warm-up jobs repopulate the working set so that the
        // timed samples see the steady state.
        let mut warm_rng = SplitMix64::new(mix64(
            self.cfg.master_seed ^ self.role.stream() ^ epoch.wrapping_mul(0xd1ce),
        ));
        for _ in 0..self.cfg.warmup_jobs {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                *b = (warm_rng.next_u32() & 0xff) as u8;
            }
            self.aes.encrypt_with(&mut self.machine, &mut self.ops, &pt);
            self.app_activity();
        }
    }

    fn app_activity(&mut self) {
        for i in 0..self.background_lines.len() {
            self.machine.load(self.background_lines[i]);
        }
        for i in 0..self.app_lines.len() {
            self.machine.load(self.app_lines[i]);
        }
    }

    fn os_tick(&mut self) {
        self.machine.context_switch(ProcessId::OS, 20);
        for i in 0..self.os_lines.len() {
            self.machine.load(self.os_lines[i]);
        }
        self.machine.context_switch(self.task, 20);
    }

    fn random_plaintext(&mut self) -> [u8; 16] {
        let a = self.pt_rng.next_u64().to_le_bytes();
        let b = self.pt_rng.next_u64().to_le_bytes();
        let mut pt = [0u8; 16];
        pt[..8].copy_from_slice(&a);
        pt[8..].copy_from_slice(&b);
        pt
    }

    /// Runs the campaign and returns one [`TimingSample`] per job.
    pub fn collect(&mut self) -> Vec<TimingSample> {
        let mut out = Vec::with_capacity(self.cfg.samples as usize);
        self.machine.set_process(self.task);
        self.start_epoch(0);
        let mut job = 0u32;
        while out.len() < self.cfg.samples as usize {
            if self.cfg.reseed_every > 0 && job > 0 && job.is_multiple_of(self.cfg.reseed_every) {
                self.start_epoch((job / self.cfg.reseed_every) as u64);
            }
            let os_adjacent =
                self.cfg.os_noise_every > 0 && job.is_multiple_of(self.cfg.os_noise_every);
            if os_adjacent {
                self.os_tick();
            }
            let pt = self.random_plaintext();
            self.machine.reset_counters();
            self.aes.encrypt_with(&mut self.machine, &mut self.ops, &pt);
            let cycles = self.machine.cycles();
            // Jobs right after an OS tick carry OS-eviction noise that a
            // real attacker trivially filters as outliers; keep them out
            // of the timed stream (they still ran, disturbing the cache).
            if !os_adjacent {
                out.push(TimingSample { plaintext: pt, cycles });
            }
            self.app_activity();
            job += 1;
        }
        out
    }

    /// The node's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Borrows the underlying machine (statistics inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

/// Collects attacker and victim sample streams for a setup, as the
/// paper's experiment does (§6.1.1): the attacker's key is known, the
/// victim's is secret.
pub fn collect_pair(
    cfg: SamplingConfig,
    attacker_key: &[u8; 16],
    victim_key: &[u8; 16],
) -> (Vec<TimingSample>, Vec<TimingSample>) {
    // The two nodes are independent machines with independent RNG
    // streams: run them concurrently (deterministically — each stream
    // is a pure function of (master seed, role), so the result is
    // identical for every thread count).
    parallel::join(
        || CryptoNode::new(cfg, Role::Attacker, attacker_key).collect(),
        || CryptoNode::new(cfg, Role::Victim, victim_key).collect(),
    )
}

/// Non-panicking [`collect_pair`]: a bad configuration comes back as a
/// [`ConfigError`] before any node is built.
pub fn try_collect_pair(
    cfg: SamplingConfig,
    attacker_key: &[u8; 16],
    victim_key: &[u8; 16],
) -> Result<(Vec<TimingSample>, Vec<TimingSample>), ConfigError> {
    cfg.validate()?;
    Ok(collect_pair(cfg, attacker_key, victim_key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(setup: SetupKind, samples: u32) -> SamplingConfig {
        SamplingConfig::standard(setup, samples, 0xbeef)
    }

    #[test]
    fn collects_requested_samples() {
        let mut node = CryptoNode::new(cfg(SetupKind::Deterministic, 50), Role::Victim, &[1; 16]);
        let samples = node.collect();
        assert_eq!(samples.len(), 50);
        assert!(samples.iter().all(|s| s.cycles > 0));
    }

    #[test]
    fn deterministic_timing_varies_with_plaintext() {
        // The engineered app interference makes encryption time depend
        // on which table lines each plaintext touches.
        let mut node = CryptoNode::new(cfg(SetupKind::Deterministic, 300), Role::Victim, &[7; 16]);
        let samples = node.collect();
        let distinct: std::collections::BTreeSet<u64> =
            samples.iter().skip(10).map(|s| s.cycles).collect();
        assert!(distinct.len() > 3, "only {} distinct timings", distinct.len());
    }

    #[test]
    fn plaintexts_differ_between_roles_and_repeat_per_role() {
        let mut v1 = CryptoNode::new(cfg(SetupKind::Deterministic, 5), Role::Victim, &[1; 16]);
        let mut v2 = CryptoNode::new(cfg(SetupKind::Deterministic, 5), Role::Victim, &[2; 16]);
        let mut a = CryptoNode::new(cfg(SetupKind::Deterministic, 5), Role::Attacker, &[1; 16]);
        let s1 = v1.collect();
        let s2 = v2.collect();
        let s3 = a.collect();
        // Same role, same master seed → same plaintext stream.
        assert_eq!(s1[0].plaintext, s2[0].plaintext);
        // Different role → different stream.
        assert_ne!(s1[0].plaintext, s3[0].plaintext);
    }

    #[test]
    fn shared_seed_setups_agree_across_roles() {
        let a = CryptoNode::new(cfg(SetupKind::Mbpta, 1), Role::Attacker, &[0; 16]);
        let v = CryptoNode::new(cfg(SetupKind::Mbpta, 1), Role::Victim, &[1; 16]);
        let pid = ProcessId::new(1);
        assert_eq!(a.epoch_seed(pid, 3), v.epoch_seed(pid, 3));
        assert_ne!(a.epoch_seed(pid, 3), a.epoch_seed(pid, 4));
    }

    #[test]
    fn per_process_seed_setups_disagree_across_roles() {
        let a = CryptoNode::new(cfg(SetupKind::TsCache, 1), Role::Attacker, &[0; 16]);
        let v = CryptoNode::new(cfg(SetupKind::TsCache, 1), Role::Victim, &[1; 16]);
        let pid = ProcessId::new(1);
        assert_ne!(a.epoch_seed(pid, 3), v.epoch_seed(pid, 3));
        // And the OS seed differs from the task seed.
        assert_ne!(v.epoch_seed(pid, 3), v.epoch_seed(ProcessId::OS, 3));
    }

    #[test]
    fn three_level_campaign_runs_and_reproduces() {
        let mut c = cfg(SetupKind::TsCache, 30);
        c.depth = HierarchyDepth::ThreeLevel;
        let run = || CryptoNode::new(c, Role::Victim, &[3; 16]).collect();
        let a = run();
        assert_eq!(a.len(), 30);
        assert_eq!(a, run());
        // The node really runs on a 3-level hierarchy.
        let node = CryptoNode::new(c, Role::Victim, &[3; 16]);
        assert!(node.machine().hierarchy().l3().is_some());
    }

    #[test]
    fn contended_campaign_runs_and_reproduces() {
        let mut c = cfg(SetupKind::TsCache, 30);
        c.contention = Some(ContentionConfig { write_back: false, ..ContentionConfig::default() });
        // Tight epochs with no warm-up: timed encryptions run against
        // a cold cache, so they genuinely fetch over the shared bus.
        c.reseed_every = 4;
        c.warmup_jobs = 0;
        let run = || CryptoNode::new(c, Role::Victim, &[3; 16]).collect();
        let contended = run();
        assert_eq!(contended.len(), 30);
        assert_eq!(contended, run());
        // The enemy cores really contend: with cache behaviour pinned
        // (write-through everywhere), every timed encryption costs at
        // least its solo counterpart and some pay real bus waits.
        let mut solo_cfg = c;
        solo_cfg.contention = None;
        let solo = CryptoNode::new(solo_cfg, Role::Victim, &[3; 16]).collect();
        assert!(solo
            .iter()
            .zip(&contended)
            .all(|(s, c)| c.cycles >= s.cycles && c.plaintext == s.plaintext));
        assert!(solo.iter().zip(&contended).any(|(s, c)| c.cycles > s.cycles));
        let mut node = CryptoNode::new(c, Role::Victim, &[3; 16]);
        assert!(node.machine().is_contended());
        node.collect();
        assert!(node.machine().contention_cycles() > 0);
    }

    #[test]
    fn shared_llc_campaign_reproduces() {
        let mut c = cfg(SetupKind::TsCache, 30);
        c.shared_llc = true;
        c.contention = Some(ContentionConfig { write_back: false, ..ContentionConfig::default() });
        c.reseed_every = 4;
        c.warmup_jobs = 0;
        let run = |cfg: SamplingConfig| CryptoNode::new(cfg, Role::Victim, &[3; 16]).collect();
        let contended = run(c);
        assert_eq!(contended.len(), 30);
        assert_eq!(contended, run(c), "shared-LLC campaign must be reproducible");
        let node = CryptoNode::new(c, Role::Victim, &[3; 16]);
        assert!(node.machine().shared_llc().is_some());
        assert!(node.machine().is_contended());
    }

    #[test]
    fn shared_llc_campaign_sees_cross_core_evictions_unless_partitioned() {
        // A single-epoch campaign long enough for the enemy's stream
        // to pressure the 256 KiB shared level: the crypto task loses
        // lines to the enemy core — unless per-core way partitions
        // isolate it (§7 at the shared level).
        let mut c = cfg(SetupKind::TsCache, 1500);
        c.shared_llc = true;
        c.contention = Some(ContentionConfig { write_back: false, ..ContentionConfig::default() });
        let run = |cfg: SamplingConfig| {
            let mut node = CryptoNode::new(cfg, Role::Victim, &[3; 16]);
            node.collect();
            let stats = *node.machine().shared_llc().expect("shared platform").cache().stats();
            (stats.evictions(), stats.cross_process_evictions())
        };
        let (evictions, cross) = run(c);
        assert!(evictions > 0, "shared level never filled");
        assert!(cross > 0, "enemy never evicted a task line in the shared LLC");
        let mut part = c;
        part.partition_llc_ways = 2;
        let (_, cross_part) = run(part);
        assert_eq!(cross_part, 0, "partitioned shared LLC still saw cross-core evictions");
    }

    #[test]
    fn campaign_is_reproducible() {
        let run = || {
            let mut node = CryptoNode::new(cfg(SetupKind::TsCache, 40), Role::Victim, &[9; 16]);
            node.collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validate_rejects_bad_knob_combinations() {
        let ok = cfg(SetupKind::TsCache, 10);
        assert!(ok.validate().is_ok());
        assert!(CryptoNode::try_new(ok, Role::Victim, &[1; 16]).is_ok());

        let mut zero = ok;
        zero.samples = 0;
        assert!(zero.validate().is_err());

        let mut all_ways = ok;
        all_ways.partition_task_ways = 4;
        assert!(all_ways.validate().unwrap_err().to_string().contains("partition_task_ways"));

        let mut llc_no_shared = ok;
        llc_no_shared.partition_llc_ways = 2;
        let err = CryptoNode::try_new(llc_no_shared, Role::Victim, &[1; 16]).unwrap_err();
        assert!(err.to_string().contains("shared_llc"));
        assert!(try_collect_pair(llc_no_shared, &[0; 16], &[1; 16]).is_err());
    }

    #[test]
    fn collect_pair_returns_both_streams() {
        let (a, v) = collect_pair(cfg(SetupKind::Deterministic, 10), &[0; 16], &[1; 16]);
        assert_eq!(a.len(), 10);
        assert_eq!(v.len(), 10);
    }
}
