//! Online-detection campaigns: the repo's attacks run against the
//! sliding-window detector, scored with ROC curves.
//!
//! Each campaign runs the *same victim* twice — once beside a benign
//! co-task, once beside the attacker — while a [`PmuSampler`] cuts one
//! [`PmuDelta`] per `window_rounds` rounds. The two per-window score
//! traces (via [`SlidingWindowDetector::score`]) give:
//!
//! * a **ROC curve** over the full threshold sweep ([`RocCurve`],
//!   trapezoid AUC) — how separable attack windows are from benign
//!   ones under this detector configuration;
//! * a **zero-false-positive operating point**: the threshold is set
//!   to the benign maximum plus a margin, and the attack trace is
//!   replayed through the detector at that threshold, yielding typed
//!   [`DetectionEvent`]s and a **detection latency** in windows;
//! * the attacker's **key-recovery progress** per window, so latency
//!   can be read against how far the attack had gotten when caught.
//!
//! Three targets are wired ([`DetectTarget`]): Prime+Probe on a
//! time-shared L1 (cross-process eviction pressure — the harness
//! raises [`DetectorConfig::cross_weight`]), Flush+Reload through the
//! coherent shared LLC (invalidation storms), and a Bernstein-style
//! co-located thrasher amplifying AES table contention. An *evasion
//! axis* ([`EvasionMode`]) throttles or jitters the attacker to probe
//! how much stealth costs the detector.
//!
//! Everything derives from `master_seed`; traces for the benign and
//! attack scenarios are pure functions of the configuration, so
//! outcomes are bit-identical for any worker-thread count.

use crate::prime_probe::{assign_seeds, l1_policy};
use tscache_aes::sim_cipher::{AesLayout, SimAes128};
use tscache_core::addr::{Addr, LineAddr};
use tscache_core::cache::Cache;
use tscache_core::defense::DefenseKind;
use tscache_core::error::ConfigError;
use tscache_core::geometry::CacheGeometry;
use tscache_core::parallel;
use tscache_core::pmu::{PmuDelta, PmuSampler, PmuSnapshot};
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SeedSharing, SetupKind};
use tscache_interference::SystemConfig;
use tscache_rtos::detector::{DetectionEvent, DetectorConfig, SlidingWindowDetector};
use tscache_sim::layout::Layout;
use tscache_sim::machine::Machine;

/// Which attack the detector is scored against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectTarget {
    /// Prime+Probe on a time-shared L1 (§6.2.1's contention primitive).
    PrimeProbe,
    /// Flush+Reload through the coherent shared LLC.
    FlushReload,
    /// Bernstein-style co-located table thrashing (the active variant
    /// of §6.1.1's attack: the spy amplifies AES timing leakage by
    /// evicting table lines between encryptions).
    Bernstein,
}

impl DetectTarget {
    /// All targets, in canonical order.
    pub const ALL: [DetectTarget; 3] =
        [DetectTarget::PrimeProbe, DetectTarget::FlushReload, DetectTarget::Bernstein];

    /// Stable lower-case label (scenario keys, reports).
    pub fn label(self) -> &'static str {
        match self {
            DetectTarget::PrimeProbe => "prime-probe",
            DetectTarget::FlushReload => "flush-reload",
            DetectTarget::Bernstein => "bernstein",
        }
    }
}

/// Attacker stealth strategy — the evasion axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvasionMode {
    /// Full-rate attack, no evasion.
    None,
    /// The attacker acts only every fourth round, diluting each
    /// sampling window's counter signature.
    Throttle,
    /// The attacker touches a pseudo-random half of its lines per
    /// round, trading signal quality for a weaker counter footprint.
    Jitter,
}

impl EvasionMode {
    /// All modes, in canonical order.
    pub const ALL: [EvasionMode; 3] =
        [EvasionMode::None, EvasionMode::Throttle, EvasionMode::Jitter];

    /// Stable lower-case label (scenario keys, reports).
    pub fn label(self) -> &'static str {
        match self {
            EvasionMode::None => "none",
            EvasionMode::Throttle => "throttle",
            EvasionMode::Jitter => "jitter",
        }
    }

    /// Whether the attacker acts this round.
    fn active(self, round: u32) -> bool {
        !matches!(self, EvasionMode::Throttle) || round.is_multiple_of(4)
    }

    /// Whether per-line pseudo-random thinning applies.
    fn jittered(self) -> bool {
        matches!(self, EvasionMode::Jitter)
    }
}

/// Parameters of one detection campaign.
#[derive(Debug, Clone, Copy)]
pub struct DetectionCampaignConfig {
    /// Attack under test.
    pub target: DetectTarget,
    /// Cache setup of the platform.
    pub setup: SetupKind,
    /// Rounds per scenario (one attack iteration each).
    pub rounds: u32,
    /// Rounds per detector sampling window; a trailing partial window
    /// is dropped.
    pub window_rounds: u32,
    /// Master seed; every RNG stream derives from it.
    pub master_seed: u64,
    /// Attacker stealth strategy.
    pub evasion: EvasionMode,
    /// Detector weights. [`DetectorConfig::threshold`] is *not* used
    /// for event generation — the campaign computes its own
    /// zero-false-positive operating threshold from the benign trace —
    /// and [`DetectorConfig::window_ops`] is superseded by
    /// `window_rounds` (the campaign counts rounds, not retired ops).
    pub detector: DetectorConfig,
    /// When `false`, the benign run and all PMU sampling are skipped
    /// and only the attack loop executes — the unsampled baseline the
    /// bench suite compares against to price the sampling overhead.
    pub sample: bool,
    /// Defense-zoo policy armed on the platform under test
    /// ([`DefenseKind::Off`] = the undefended baseline).
    pub defense: DefenseKind,
    /// Run the Flush+Reload campaign on a private (per-core) platform
    /// with no shared LLC. That scenario has no coherent shared level
    /// for the attacker to flush or reload through, so the campaign
    /// reports a typed [`ConfigError`] instead of tracing.
    pub private_platform: bool,
}

/// Margin added to the benign maximum score to form the operating
/// threshold (zero false positives on the benign trace by
/// construction).
pub const OPERATING_MARGIN: f64 = 0.05;

/// FIPS-197 appendix key used as the victim secret where AES is
/// involved.
const VICTIM_KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// TE0 spans 32 cache lines of 8 entries each.
const TE0_LINES: usize = 32;

impl DetectionCampaignConfig {
    /// The standard campaign for a target: 192 rounds in 8-round
    /// windows, with per-target detector weights (shared-cache
    /// campaigns weight cross-process evictions in; the Flush+Reload
    /// campaign relies on the default coherence weight).
    pub fn standard(target: DetectTarget, setup: SetupKind, master_seed: u64) -> Self {
        let detector = match target {
            DetectTarget::PrimeProbe | DetectTarget::Bernstein => {
                DetectorConfig { cross_weight: 4.0, ..DetectorConfig::default() }
            }
            DetectTarget::FlushReload => DetectorConfig::default(),
        };
        DetectionCampaignConfig {
            target,
            setup,
            rounds: 192,
            window_rounds: 8,
            master_seed,
            evasion: EvasionMode::None,
            detector,
            sample: true,
            defense: DefenseKind::Off,
            private_platform: false,
        }
    }

    /// Validates the campaign parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rounds == 0 {
            return Err(ConfigError::incompatible("detection campaign needs rounds > 0"));
        }
        if self.window_rounds == 0 || self.window_rounds > self.rounds {
            return Err(ConfigError::incompatible(
                "detection campaign needs 0 < window_rounds <= rounds",
            ));
        }
        self.detector.validate()
    }
}

/// One point of a ROC sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold this point was evaluated at.
    pub threshold: f64,
    /// False-positive rate: benign windows scoring at or above it.
    pub fpr: f64,
    /// True-positive rate: attack windows scoring at or above it.
    pub tpr: f64,
}

/// A ROC curve over the full threshold sweep of two score sets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RocCurve {
    /// Points ordered from the strictest threshold (0, 0) to the most
    /// permissive (1, 1).
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Sweeps every distinct score as a threshold. Empty inputs give
    /// an empty curve (AUC reads as chance).
    pub fn from_scores(attack: &[f64], benign: &[f64]) -> RocCurve {
        if attack.is_empty() || benign.is_empty() {
            return RocCurve::default();
        }
        // Total order, descending: a NaN score (e.g. a degenerate
        // 0/0 window rate) must not abort the campaign — under
        // `total_cmp` NaNs sort to the strict end of the sweep and
        // the curve stays well-formed.
        let mut thresholds: Vec<f64> = attack.iter().chain(benign.iter()).copied().collect();
        thresholds.sort_by(|a, b| b.total_cmp(a));
        thresholds.dedup_by(|a, b| a == b || (a.is_nan() && b.is_nan()));
        let frac_at_least =
            |xs: &[f64], t: f64| xs.iter().filter(|&&x| x >= t).count() as f64 / xs.len() as f64;
        let mut points = vec![RocPoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 }];
        for t in thresholds {
            points.push(RocPoint {
                threshold: t,
                fpr: frac_at_least(benign, t),
                tpr: frac_at_least(attack, t),
            });
        }
        RocCurve { points }
    }

    /// Trapezoid area under the curve: 1.0 = perfectly separable,
    /// 0.5 = chance (also returned for an empty curve).
    pub fn auc(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.5;
        }
        self.points
            .windows(2)
            .map(|w| match w {
                [a, b] => (b.fpr - a.fpr) * (b.tpr + a.tpr) / 2.0,
                _ => 0.0,
            })
            .sum()
    }
}

/// Everything one detection campaign measured.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutcome {
    /// Attack under test.
    pub target: DetectTarget,
    /// Cache setup of the platform.
    pub setup: SetupKind,
    /// Defense-zoo policy that was armed on the platform.
    pub defense: DefenseKind,
    /// Attacker stealth strategy.
    pub evasion: EvasionMode,
    /// Rounds run per scenario.
    pub rounds: u32,
    /// Full sampling windows cut per scenario.
    pub windows: u64,
    /// Per-window suspicion scores of the attack trace.
    pub attack_scores: Vec<f64>,
    /// Per-window suspicion scores of the benign trace.
    pub benign_scores: Vec<f64>,
    /// Attacker key-recovery progress at each attack window, in
    /// `[0, 1]` (Prime+Probe: cumulative guess accuracy; Flush+Reload:
    /// rank-based; Bernstein: sample-collection fraction).
    pub attack_progress: Vec<f64>,
    /// The full threshold sweep.
    pub roc: RocCurve,
    /// The zero-false-positive operating threshold (benign maximum
    /// plus [`OPERATING_MARGIN`]; infinite when sampling was off).
    pub operating_threshold: f64,
    /// Typed events from replaying the attack trace at the operating
    /// threshold.
    pub events: Vec<DetectionEvent>,
    /// Windows until the first event at the operating threshold
    /// (`None` = the attack was never caught).
    pub detection_latency: Option<u64>,
}

impl DetectionOutcome {
    /// Whether the attack was caught at the operating threshold.
    pub fn detected(&self) -> bool {
        !self.events.is_empty()
    }

    /// Trapezoid AUC of the campaign's ROC sweep.
    pub fn auc(&self) -> f64 {
        self.roc.auc()
    }

    /// Highest attack-window score.
    pub fn max_attack_score(&self) -> f64 {
        self.attack_scores.iter().copied().fold(0.0, f64::max)
    }

    /// Highest benign-window score.
    pub fn max_benign_score(&self) -> f64 {
        self.benign_scores.iter().copied().fold(0.0, f64::max)
    }

    /// The attacker's key-recovery progress at the moment of
    /// detection (`None` = never detected).
    pub fn progress_at_detection(&self) -> Option<f64> {
        self.detection_latency
            .map(|w| self.attack_progress.get(w as usize - 1).copied().unwrap_or(1.0))
    }
}

/// Per-window instrumentation of one scenario run.
#[derive(Default)]
struct WindowTrace {
    deltas: Vec<PmuDelta>,
    progress: Vec<f64>,
}

/// Round-counting wrapper around [`PmuSampler`]: one "op" per attack
/// round, snapshots taken lazily only when a window is due (so the
/// unsampled baseline pays nothing).
struct Recorder {
    sampler: Option<PmuSampler>,
    trace: WindowTrace,
}

impl Recorder {
    fn new(sample: bool, window_rounds: u32, initial: impl FnOnce() -> PmuSnapshot) -> Self {
        Recorder {
            sampler: sample.then(|| PmuSampler::new(window_rounds as u64, initial())),
            trace: WindowTrace::default(),
        }
    }

    fn tick(&mut self, progress: f64, snap: impl FnOnce() -> PmuSnapshot) {
        if let Some(s) = &mut self.sampler {
            if s.note_ops(1) {
                self.trace.deltas.push(s.cut(snap()));
                self.trace.progress.push(progress.clamp(0.0, 1.0));
            }
        }
    }

    fn finish(self) -> WindowTrace {
        self.trace
    }
}

/// A single-level snapshot of a standalone cache.
fn cache_snapshot(cache: &Cache) -> PmuSnapshot {
    PmuSnapshot::from_level_stats(&[*cache.stats()])
}

/// Hierarchy + shared-LLC snapshot of a machine.
fn machine_snapshot(machine: &Machine) -> PmuSnapshot {
    let mut snap = PmuSnapshot::capture(machine.hierarchy());
    if let Some(llc) = machine.shared_llc() {
        snap = snap.with_level(llc.cache().stats());
    }
    snap.with_cycles(machine.cycles())
}

/// Seeds a two-process machine per the setup's sharing policy.
fn seed_machine(machine: &mut Machine, setup: SetupKind, a: ProcessId, b: ProcessId, stream: u64) {
    let mut seed_rng = SplitMix64::new(mix64(stream));
    match setup.seed_sharing() {
        SeedSharing::Irrelevant => {
            machine.set_process_seed(a, Seed::ZERO);
            machine.set_process_seed(b, Seed::ZERO);
        }
        SeedSharing::Shared => {
            let s = Seed::random(&mut seed_rng);
            machine.set_process_seed(a, s);
            machine.set_process_seed(b, s);
        }
        SeedSharing::PerProcess => {
            machine.set_process_seed(a, Seed::random(&mut seed_rng));
            machine.set_process_seed(b, Seed::random(&mut seed_rng));
        }
    }
}

/// Prime+Probe on a persistent time-shared L1. The victim's job is
/// identical in both scenarios: one secret-indexed line (the leak
/// target) plus a 96-line working set. The attacker primes the full
/// cache before the secret access and probes after it; the benign
/// co-task touches a modest 48-line working set instead.
fn prime_probe_trace(cfg: &DetectionCampaignConfig, attack: bool) -> WindowTrace {
    let setup = cfg.defense.effective_setup(cfg.setup);
    let geom = CacheGeometry::paper_l1();
    let (placement, replacement) = l1_policy(setup);
    let victim = ProcessId::new(1);
    let other = ProcessId::new(2);
    let mut cache = Cache::new("L1D", geom, placement, replacement, cfg.master_seed);
    cache.set_ttl(cfg.defense.ttl());
    cache.set_normalize(cfg.defense.normalize());
    assign_seeds(&mut cache, setup, victim, other, cfg.master_seed, 0);

    let prime_lines: Vec<LineAddr> = (0..512u64).map(LineAddr::new).collect();
    let co_lines: Vec<LineAddr> = (0..48u64).map(|i| LineAddr::new(0x20_000 + i)).collect();
    let victim_ws: Vec<LineAddr> = (0..96u64).map(|i| LineAddr::new(0x30_000 + i)).collect();

    let mut victim_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x5ec2e7));
    let mut co_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0xa77ac8));

    let mut rec = Recorder::new(cfg.sample, cfg.window_rounds, || cache_snapshot(&cache));
    let mut probes = 0u64;
    let mut correct = 0u64;
    for round in 0..cfg.rounds {
        let active = attack && cfg.evasion.active(round);
        if active {
            let primed: Vec<LineAddr> = if cfg.evasion.jittered() {
                prime_lines.iter().copied().filter(|_| co_rng.next_u64() & 1 == 0).collect()
            } else {
                prime_lines.clone()
            };
            cache.access_batch(other, &primed);
            // The secret-dependent access the attacker targets.
            let secret = victim_rng.below(128) as u64;
            cache.access(victim, LineAddr::new(0x10_000 + secret));
            probes += 1;
            let evicted = primed.iter().copied().find(|&l| !cache.probe(other, l));
            if evicted.is_some_and(|l| l.index_bits(7) == secret) {
                correct += 1;
            }
            cache.access_batch(victim, &victim_ws);
        } else {
            if !attack {
                cache.access_batch(other, &co_lines);
            }
            let secret = victim_rng.below(128) as u64;
            cache.access(victim, LineAddr::new(0x10_000 + secret));
            cache.access_batch(victim, &victim_ws);
        }
        let progress = if probes == 0 { 0.0 } else { correct as f64 / probes as f64 };
        rec.tick(progress, || cache_snapshot(&cache));
    }
    rec.finish()
}

/// Rank-based Flush+Reload progress: 1 at rank 0 (key byte leads the
/// candidate list), 0 at chance (all 256 candidates tied).
fn rank_progress(votes: &[u32], true_byte: u8) -> f64 {
    let true_score = votes[true_byte as usize];
    let stronger = votes.iter().filter(|&&s| s > true_score).count();
    let ties = votes.iter().filter(|&&s| s == true_score).count();
    let rank = stronger as f64 + (ties - 1) as f64 / 2.0;
    (1.0 - rank / 127.5).max(0.0)
}

/// Flush+Reload through the coherent shared LLC, as in
/// [`crate::flush_reload`], but with per-window PMU instrumentation.
/// The benign co-runner warms its own disjoint LLC working set and
/// never flushes.
///
/// On a `private_platform` campaign the machine has no shared LLC, so
/// both the benign co-runner's warm loop and the attacker's reload
/// probe have no level to act on: each borrows the shared level
/// fallibly and surfaces a typed [`ConfigError`] (these sites used to
/// panic via `expect("shared platform")`).
fn flush_reload_trace(
    cfg: &DetectionCampaignConfig,
    attack: bool,
) -> Result<WindowTrace, ConfigError> {
    let setup = cfg.defense.effective_setup(cfg.setup);
    let victim = ProcessId::new(1);
    let attacker = ProcessId::new(2);
    let mut machine = if cfg.private_platform {
        Machine::from_setup_depth(setup, HierarchyDepth::TwoLevel, cfg.master_seed)
    } else {
        Machine::from_setup_shared(
            setup,
            HierarchyDepth::TwoLevel,
            SystemConfig::default(),
            cfg.master_seed,
        )
    };
    machine.apply_defense(cfg.defense);
    machine.set_process(victim);
    seed_machine(&mut machine, setup, victim, attacker, cfg.master_seed ^ 0x000f_1a54);
    let no_shared_level = || {
        ConfigError::incompatible(
            "flush+reload detection campaign needs a shared-LLC platform (private_platform set)",
        )
    };

    let mut layout = Layout::new(0x10_0000);
    let aes_layout = AesLayout::install(&mut layout, "victim");
    let aes = SimAes128::new(&VICTIM_KEY, aes_layout);
    machine.add_coherent_range(aes_layout.table(0).base(), aes_layout.table_bytes());
    let offset_bits = 5u32;
    let monitored: Vec<(Addr, LineAddr)> = (0..TE0_LINES as u64)
        .map(|l| {
            let addr = Addr::new(aes_layout.table(0).base().as_u64() + l * 32);
            (addr, addr.line(offset_bits))
        })
        .collect();
    let co_region = layout.alloc("co-runner", 4096, 4096);
    let co_lines: Vec<LineAddr> =
        (0..TE0_LINES as u64).map(|l| co_region.at(l * 32).line(offset_bits)).collect();

    let mut pt_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x4e10ad));
    let mut co_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x0f1e57));
    let mut votes = vec![0u32; 256];
    let mut ops = Vec::with_capacity(256);
    let mut rec = Recorder::new(cfg.sample, cfg.window_rounds, || machine_snapshot(&machine));
    for round in 0..cfg.rounds {
        let active = attack && cfg.evasion.active(round);
        let mut flushed = [false; TE0_LINES];
        if active {
            for (l, &(addr, _)) in monitored.iter().enumerate() {
                if !cfg.evasion.jittered() || co_rng.next_u64() & 1 == 0 {
                    machine.flush_line(addr);
                    flushed[l] = true;
                }
            }
        } else if !attack {
            let llc = machine.shared_llc_mut().ok_or_else(no_shared_level)?;
            for &line in &co_lines {
                llc.cache_mut().access(attacker, line);
            }
        }

        let mut pt = [0u8; 16];
        for b in pt.iter_mut() {
            *b = (pt_rng.next_u64() & 0xff) as u8;
        }
        aes.encrypt_with(&mut machine, &mut ops, &pt);

        if active {
            let llc = machine.shared_llc_mut().ok_or_else(no_shared_level)?;
            let mut reloaded = [false; TE0_LINES];
            for (l, &(_, line)) in monitored.iter().enumerate() {
                if flushed[l] {
                    reloaded[l] = llc.cache_mut().probe(attacker, line);
                }
            }
            let [pt0, ..] = pt;
            for (k, vote) in votes.iter_mut().enumerate() {
                let line = ((pt0 ^ k as u8) >> 3) as usize;
                if flushed[line] {
                    *vote += reloaded[line] as u32;
                }
            }
        }
        let [victim_key0, ..] = VICTIM_KEY;
        let progress = rank_progress(&votes, victim_key0);
        rec.tick(progress, || machine_snapshot(&machine));
    }
    Ok(rec.finish())
}

/// Bernstein-style co-located thrashing: between the victim's AES
/// jobs, the spy evicts selected T-table sets four ways deep to
/// amplify the timing signal its (passive) sample collection feeds
/// on. The benign co-task touches eight private lines instead.
/// Progress is sample-linear: profile quality grows with samples.
fn bernstein_trace(cfg: &DetectionCampaignConfig, attack: bool) -> WindowTrace {
    let setup = cfg.defense.effective_setup(cfg.setup);
    let task = ProcessId::new(1);
    let spy = ProcessId::new(2);
    let mut machine = Machine::from_setup_depth(setup, HierarchyDepth::TwoLevel, cfg.master_seed);
    machine.apply_defense(cfg.defense);
    machine.set_process(task);
    seed_machine(&mut machine, setup, task, spy, cfg.master_seed ^ 0xbe57e1);

    let mut layout = Layout::new(0x10_0000);
    let aes_layout = AesLayout::install(&mut layout, "victim");
    let aes = SimAes128::new(&VICTIM_KEY, aes_layout);
    // Spy lines aliasing (modulo) ten TE0/TE2 line sets, four ways
    // deep — enough to evict a 4-way set per visit.
    let spy_region = layout.alloc("spy", 4 * 4096, 4096);
    let mut thrash_lines = Vec::new();
    for i in 0..5u64 {
        for (t, l) in [(0usize, 3 * i), (2usize, 3 * i + 1)] {
            let set = (aes_layout.table(t).at(32 * l).as_u64() >> 5) & 127;
            for way in 0..4u64 {
                thrash_lines.push(Addr::new(spy_region.base().as_u64() + way * 4096 + set * 32));
            }
        }
    }
    let co_region = layout.alloc("co-task", 4096, 4096);
    let co_lines: Vec<Addr> = (0..8u64).map(|l| co_region.at(l * 32)).collect();

    let mut pt_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x6be7));
    let mut co_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x51e17e));
    let mut ops = Vec::with_capacity(256);
    let mut rec = Recorder::new(cfg.sample, cfg.window_rounds, || machine_snapshot(&machine));
    for round in 0..cfg.rounds {
        let active = attack && cfg.evasion.active(round);
        machine.context_switch(spy, 20);
        if active {
            for &addr in &thrash_lines {
                if !cfg.evasion.jittered() || co_rng.next_u64() & 1 == 0 {
                    machine.load(addr);
                }
            }
        } else if !attack {
            for &addr in &co_lines {
                machine.load(addr);
            }
        }
        machine.context_switch(task, 20);

        let mut pt = [0u8; 16];
        for b in pt.iter_mut() {
            *b = (pt_rng.next_u64() & 0xff) as u8;
        }
        aes.encrypt_with(&mut machine, &mut ops, &pt);

        let progress = (round + 1) as f64 / cfg.rounds as f64;
        rec.tick(progress, || machine_snapshot(&machine));
    }
    rec.finish()
}

/// Runs one detection campaign; see the module docs for the protocol.
/// Returns a typed error on an invalid configuration.
pub fn try_run_detection_campaign(
    cfg: &DetectionCampaignConfig,
) -> Result<DetectionOutcome, ConfigError> {
    cfg.validate()?;
    let trace = |attack: bool| -> Result<WindowTrace, ConfigError> {
        match cfg.target {
            DetectTarget::PrimeProbe => Ok(prime_probe_trace(cfg, attack)),
            DetectTarget::FlushReload => flush_reload_trace(cfg, attack),
            DetectTarget::Bernstein => Ok(bernstein_trace(cfg, attack)),
        }
    };
    // The two scenarios are independent pure functions of the config:
    // run them concurrently, deterministically for any thread count.
    let (benign, attack) = if cfg.sample {
        let (benign, attack) = parallel::join(|| trace(false), || trace(true));
        (benign?, attack?)
    } else {
        (WindowTrace::default(), trace(true)?)
    };

    let score = |d: &PmuDelta| SlidingWindowDetector::score(&cfg.detector, d);
    let benign_scores: Vec<f64> = benign.deltas.iter().map(score).collect();
    let attack_scores: Vec<f64> = attack.deltas.iter().map(score).collect();
    let roc = RocCurve::from_scores(&attack_scores, &benign_scores);

    let operating_threshold = if cfg.sample {
        benign_scores.iter().copied().fold(0.0, f64::max) + OPERATING_MARGIN
    } else {
        f64::INFINITY
    };
    let mut detector = SlidingWindowDetector::new(DetectorConfig {
        threshold: operating_threshold,
        ..cfg.detector
    });
    for delta in &attack.deltas {
        detector.ingest(delta);
    }
    let report = detector.into_report();
    let detection_latency = report.first_detection().map(|w| w + 1);

    Ok(DetectionOutcome {
        target: cfg.target,
        setup: cfg.setup,
        defense: cfg.defense,
        evasion: cfg.evasion,
        rounds: cfg.rounds,
        windows: attack.deltas.len() as u64,
        attack_scores,
        benign_scores,
        attack_progress: attack.progress,
        roc,
        operating_threshold,
        events: report.events,
        detection_latency,
    })
}

/// Panicking [`try_run_detection_campaign`].
///
/// # Panics
///
/// Panics on an invalid configuration.
pub fn run_detection_campaign(cfg: &DetectionCampaignConfig) -> DetectionOutcome {
    match try_run_detection_campaign(cfg) {
        Ok(outcome) => outcome,
        // detlint: allow(R1, documented panicking wrapper; fleet shards call try_run_detection_campaign)
        Err(e) => panic!("invalid detection campaign config: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscache_rtos::detector::DetectionKind;

    #[test]
    fn roc_of_separable_scores_is_one() {
        let roc = RocCurve::from_scores(&[2.0, 3.0, 2.5], &[0.1, 0.2, 0.3]);
        assert!((roc.auc() - 1.0).abs() < 1e-12, "auc {}", roc.auc());
        assert_eq!(roc.points.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(roc.points.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
    }

    #[test]
    fn roc_of_identical_scores_is_chance() {
        let xs = [0.5, 0.5, 0.5, 0.5];
        let roc = RocCurve::from_scores(&xs, &xs);
        assert!((roc.auc() - 0.5).abs() < 1e-12, "auc {}", roc.auc());
        assert!((RocCurve::default().auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prime_probe_campaign_is_detected_with_high_auc() {
        let cfg = DetectionCampaignConfig::standard(
            DetectTarget::PrimeProbe,
            SetupKind::Deterministic,
            7,
        );
        let out = run_detection_campaign(&cfg);
        assert!(out.windows > 0);
        assert!(out.auc() > 0.9, "auc {}", out.auc());
        assert!(out.detected(), "max attack score {}", out.max_attack_score());
        let latency = out.detection_latency.expect("detected");
        assert!(latency <= out.windows, "latency {latency} of {} windows", out.windows);
        let progress = out.progress_at_detection().expect("detected");
        assert!((0.0..=1.0).contains(&progress));
    }

    #[test]
    fn flush_reload_campaign_raises_coherence_events() {
        let cfg = DetectionCampaignConfig::standard(
            DetectTarget::FlushReload,
            SetupKind::Deterministic,
            7,
        );
        let out = run_detection_campaign(&cfg);
        assert!(out.auc() > 0.9, "auc {}", out.auc());
        assert!(out.detected());
        assert_eq!(
            out.events[0].kind,
            DetectionKind::Coherence,
            "flush storms are coherence noise"
        );
        // The attack works on this platform, so progress climbs.
        assert!(out.progress_at_detection().is_some());
        assert!(*out.attack_progress.last().expect("windows") > 0.5);
    }

    #[test]
    fn flush_reload_detection_survives_tscache_blinding() {
        // Per-process randomization blinds the *reload*, but the flush
        // storm still drains coherent copies — the detector sees the
        // attack even where the attack itself fails.
        let cfg =
            DetectionCampaignConfig::standard(DetectTarget::FlushReload, SetupKind::TsCache, 7);
        let out = run_detection_campaign(&cfg);
        assert!(out.detected(), "max attack score {}", out.max_attack_score());
        assert!(
            *out.attack_progress.last().expect("windows") < 0.05,
            "TSCache should leave the attack at chance"
        );
    }

    #[test]
    fn bernstein_thrashing_is_detected() {
        let cfg =
            DetectionCampaignConfig::standard(DetectTarget::Bernstein, SetupKind::Deterministic, 7);
        let out = run_detection_campaign(&cfg);
        assert!(out.auc() > 0.9, "auc {}", out.auc());
        assert!(out.detected());
    }

    #[test]
    fn benign_trace_never_crosses_the_operating_threshold() {
        for target in DetectTarget::ALL {
            let cfg = DetectionCampaignConfig::standard(target, SetupKind::Deterministic, 11);
            let out = run_detection_campaign(&cfg);
            assert!(
                out.max_benign_score() < out.operating_threshold,
                "{target:?}: benign {} vs threshold {}",
                out.max_benign_score(),
                out.operating_threshold
            );
        }
    }

    #[test]
    fn throttling_weakens_the_counter_signature() {
        let base = DetectionCampaignConfig::standard(
            DetectTarget::PrimeProbe,
            SetupKind::Deterministic,
            7,
        );
        let throttled = DetectionCampaignConfig { evasion: EvasionMode::Throttle, ..base };
        let full = run_detection_campaign(&base);
        let slow = run_detection_campaign(&throttled);
        assert!(
            slow.max_attack_score() < full.max_attack_score(),
            "throttle {} vs full {}",
            slow.max_attack_score(),
            full.max_attack_score()
        );
    }

    #[test]
    fn campaign_reproduces_bit_for_bit() {
        for target in DetectTarget::ALL {
            let cfg = DetectionCampaignConfig::standard(target, SetupKind::Mbpta, 13);
            let a = run_detection_campaign(&cfg);
            let b = run_detection_campaign(&cfg);
            assert_eq!(a, b, "{target:?} campaign must reproduce");
        }
    }

    #[test]
    fn unsampled_baseline_skips_all_instrumentation() {
        let cfg = DetectionCampaignConfig {
            sample: false,
            ..DetectionCampaignConfig::standard(
                DetectTarget::PrimeProbe,
                SetupKind::Deterministic,
                7,
            )
        };
        let out = run_detection_campaign(&cfg);
        assert_eq!(out.windows, 0);
        assert!(out.attack_scores.is_empty() && out.benign_scores.is_empty());
        assert!(out.events.is_empty());
        assert!(out.operating_threshold.is_infinite());
        assert!((out.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_campaign_configs_are_typed_errors() {
        let good =
            DetectionCampaignConfig::standard(DetectTarget::Bernstein, SetupKind::TsCache, 1);
        assert!(good.validate().is_ok());
        assert!(DetectionCampaignConfig { rounds: 0, ..good }.validate().is_err());
        assert!(DetectionCampaignConfig { window_rounds: 0, ..good }.validate().is_err());
        assert!(DetectionCampaignConfig { window_rounds: good.rounds + 1, ..good }
            .validate()
            .is_err());
        let bad_detector = DetectorConfig { inval_weight: f64::NAN, ..DetectorConfig::default() };
        assert!(DetectionCampaignConfig { detector: bad_detector, ..good }.validate().is_err());
        assert!(try_run_detection_campaign(&DetectionCampaignConfig { rounds: 0, ..good }).is_err());
    }

    #[test]
    fn roc_sweep_tolerates_nan_scores() {
        // A degenerate window (0/0 rate) can score NaN. The old
        // descending sort used `partial_cmp(..).expect(..)` and
        // panicked on the first NaN comparison; under `total_cmp` the
        // sweep completes: NaN scores compare above every finite
        // threshold yet never satisfy `score >= t`, so they read as
        // windows the detector never fires on and the finite part of
        // the curve stays well-formed.
        let roc = RocCurve::from_scores(&[f64::NAN, 1.0, 0.8], &[0.2, f64::NAN]);
        assert!(roc.points.len() >= 3);
        let auc = roc.auc();
        assert!(auc.is_finite() && (0.0..=1.0).contains(&auc), "auc {auc}");
        // The same scores without the NaNs separate fully — the NaN
        // windows only dilute, they cannot reorder the sweep.
        let clean = RocCurve::from_scores(&[1.0, 0.8], &[0.2]);
        assert!((clean.auc() - 1.0).abs() < 1e-12);
        assert!(auc < clean.auc());
        // All-NaN inputs also survive and read as an uninformative curve.
        let degenerate = RocCurve::from_scores(&[f64::NAN], &[f64::NAN]);
        assert!(degenerate.auc().is_finite());
    }

    #[test]
    fn private_platform_flush_reload_is_a_typed_error_not_a_panic() {
        // Both former `expect("shared platform")` sites: the sampled
        // campaign dies first in the benign co-runner warm loop, the
        // unsampled baseline only ever reaches the attacker's reload
        // branch. Each must surface as a ConfigError.
        let base = DetectionCampaignConfig::standard(
            DetectTarget::FlushReload,
            SetupKind::Deterministic,
            7,
        );
        let private = DetectionCampaignConfig { private_platform: true, ..base };
        let err = try_run_detection_campaign(&private).expect_err("no shared level to reload from");
        assert!(err.to_string().contains("shared-LLC"), "{err}");
        let unsampled = DetectionCampaignConfig { sample: false, ..private };
        assert!(try_run_detection_campaign(&unsampled).is_err());
    }

    #[test]
    fn private_platform_leaves_other_targets_untouched() {
        // The knob only constrains Flush+Reload — the L1 and private
        // hierarchy campaigns never had a shared level to lose.
        for target in [DetectTarget::PrimeProbe, DetectTarget::Bernstein] {
            let base = DetectionCampaignConfig::standard(target, SetupKind::Deterministic, 7);
            let private = DetectionCampaignConfig { private_platform: true, ..base };
            let out = try_run_detection_campaign(&private).expect("private platforms are fine");
            assert_eq!(out, run_detection_campaign(&base), "{target:?}");
        }
    }

    #[test]
    fn defended_campaigns_reproduce_and_blunt_the_attack() {
        let base = DetectionCampaignConfig::standard(
            DetectTarget::PrimeProbe,
            SetupKind::Deterministic,
            7,
        );
        let undefended = run_detection_campaign(&base);
        let baseline = *undefended.attack_progress.last().expect("windows");
        for defense in [DefenseKind::Ttl, DefenseKind::Normalize, DefenseKind::RandomSafe] {
            let cfg = DetectionCampaignConfig { defense, ..base };
            let a = run_detection_campaign(&cfg);
            assert_eq!(a, run_detection_campaign(&cfg), "{defense} must reproduce");
            assert_eq!(a.defense, defense);
            let progress = *a.attack_progress.last().expect("windows");
            // TTL scrambles the probe (random expiries masquerade as
            // victim evictions) and Random-and-Safe randomizes the
            // set mapping outright; normalization is orthogonal to
            // presence probing (it levels *reuse timing*, and this
            // attacker never touches victim-owned lines), so it
            // leaves the guess accuracy exactly where it was.
            match defense {
                DefenseKind::Normalize => {
                    assert_eq!(progress, baseline, "{defense} is orthogonal here")
                }
                _ => assert!(
                    progress < baseline,
                    "{defense}: progress {progress} not blunted vs {baseline}"
                ),
            }
        }
    }
}
