//! # tscache-sca — cache timing side-channel attacks
//!
//! The attack half of the reproduction: Bernstein's correlation attack
//! on AES (the paper's §6 case study) plus the Prime+Probe and
//! Evict+Time contention primitives used in the generalization
//! argument (§6.2.1).
//!
//! * [`sampling`] — two emulated ECU nodes (attacker with known key,
//!   victim with secret key) timing AES encryptions amid application
//!   and OS cache activity, with seed management per cache setup.
//! * [`profile`] — Bernstein's per-(byte, value) timing profiles
//!   (Fig. 4's data).
//! * [`bernstein`] — shift-correlation analysis, stringent-threshold
//!   candidate reduction, and Fig. 5's effectiveness matrix/metrics.
//! * [`prime_probe`], [`evict_time`] — contention attack primitives.
//! * [`cross_core`] — Prime+Probe mounted from an *enemy core*
//!   through a shared last-level cache, and the §7 per-core
//!   way-partitioning ablation that shuts it down.
//! * [`flush_reload`] — Flush+Reload against a *shared, coherent*
//!   table segment via the MSI invalidation model: the shared-line
//!   channel way partitions alone cannot close (the partitioned
//!   configuration must also un-share the tables), while per-process
//!   randomized placement blinds the reload outright.
//! * [`detect`] — the attacks above run against the RTOS crate's
//!   sliding-window PMU detector: ROC-scored benign-vs-attack
//!   campaigns with a zero-false-positive operating point, detection
//!   latency vs key-recovery progress, and an attacker evasion axis.
//!
//! ```no_run
//! use tscache_core::setup::SetupKind;
//! use tscache_sca::bernstein::run_attack;
//! use tscache_sca::sampling::SamplingConfig;
//!
//! let cfg = SamplingConfig::standard(SetupKind::Deterministic, 100_000, 42);
//! let result = run_attack(cfg);
//! println!("residual keyspace: 2^{:.0}", result.residual_keyspace_log2());
//! ```

pub mod bernstein;
pub mod cross_core;
pub mod detect;
pub mod evict_time;
pub mod flush_reload;
pub mod prime_probe;
pub mod profile;
pub mod sampling;

pub use bernstein::{analyze, run_attack, AttackResult, ByteAttackResult};
pub use detect::{
    run_detection_campaign, try_run_detection_campaign, DetectTarget, DetectionCampaignConfig,
    DetectionOutcome, EvasionMode, RocCurve, RocPoint,
};
pub use evict_time::{run_evict_time, EvictTimeOutcome};
pub use flush_reload::{run_flush_reload, FlushReloadConfig, FlushReloadOutcome};
pub use prime_probe::{run_prime_probe, PrimeProbeOutcome};
pub use profile::TimingProfile;
pub use sampling::{collect_pair, CryptoNode, Role, SamplingConfig, TimingSample};
