//! Prime+Probe — the canonical contention attack primitive (paper
//! §2.2, generalization argument in §6.2.1).
//!
//! The attacker fills the cache with its own lines (*prime*), lets the
//! victim run, then re-touches its lines (*probe*): a missing line
//! reveals a set the victim used. Under deterministic placement the
//! evicted line's index bits identify the victim's accessed address;
//! under per-process random placement the relationship is destroyed.

use tscache_core::addr::LineAddr;
use tscache_core::cache::Cache;
use tscache_core::geometry::CacheGeometry;
use tscache_core::placement::PlacementKind;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{SeedSharing, SetupKind};

/// Outcome of a Prime+Probe campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimeProbeOutcome {
    /// Trials run.
    pub trials: u32,
    /// Fraction of trials where the attacker's set guess matched the
    /// victim's true index (1/128 ≈ 0.008 is chance level).
    pub accuracy: f64,
    /// Mean number of attacker lines evicted per trial.
    pub mean_evictions: f64,
}

impl PrimeProbeOutcome {
    /// Whether the attacker does meaningfully better than guessing.
    pub fn leaks(&self) -> bool {
        self.accuracy > 8.0 / 128.0
    }
}

/// Runs `trials` Prime+Probe rounds against the L1D policy of `setup`.
///
/// Per trial the victim accesses one secret line (index drawn from the
/// trial RNG); the attacker primes the full cache, lets the victim run,
/// probes, and guesses the victim's index from the first evicted prime
/// line.
pub fn run_prime_probe(setup: SetupKind, trials: u32, master_seed: u64) -> PrimeProbeOutcome {
    let geom = CacheGeometry::paper_l1();
    let (placement, replacement) = l1_policy(setup);
    let victim = ProcessId::new(1);
    let attacker = ProcessId::new(2);
    let mut rng = SplitMix64::new(master_seed ^ 0x9199e);

    let mut hits = 0u32;
    let mut total_evictions = 0u64;
    for trial in 0..trials {
        let mut cache = Cache::new("L1D", geom, placement, replacement, master_seed ^ trial as u64);
        assign_seeds(&mut cache, setup, victim, attacker, master_seed, trial);

        // Prime: 4 pages of attacker lines fill every set 4-ways under
        // both modulo and (bijective-per-page) random modulo.
        let prime_lines: Vec<LineAddr> = (0..512u64).map(LineAddr::new).collect();
        for &l in &prime_lines {
            cache.access(attacker, l);
        }

        // Victim accesses one secret line.
        let secret_index = rng.below(128) as u64;
        let victim_line = LineAddr::new(0x10_000 + secret_index);
        cache.access(victim, victim_line);

        // Probe: find evicted prime lines without disturbing state.
        let evicted: Vec<LineAddr> =
            prime_lines.iter().copied().filter(|&l| !cache.probe(attacker, l)).collect();
        total_evictions += evicted.len() as u64;
        if let Some(first) = evicted.first() {
            // The attacker's guess: the index bits of its evicted line.
            if first.index_bits(7) == secret_index {
                hits += 1;
            }
        }
    }
    PrimeProbeOutcome {
        trials,
        accuracy: hits as f64 / trials as f64,
        mean_evictions: total_evictions as f64 / trials as f64,
    }
}

/// The L1 policy pair of each setup (mirrors `SetupKind::build`).
pub(crate) fn l1_policy(setup: SetupKind) -> (PlacementKind, ReplacementKind) {
    match setup {
        SetupKind::Deterministic => (PlacementKind::Modulo, ReplacementKind::Lru),
        SetupKind::RpCache => (PlacementKind::RpCache, ReplacementKind::Lru),
        SetupKind::Mbpta | SetupKind::TsCache => {
            (PlacementKind::RandomModulo, ReplacementKind::Random)
        }
    }
}

/// Seeds a two-process cache per the setup's sharing policy.
pub(crate) fn assign_seeds(
    cache: &mut Cache,
    setup: SetupKind,
    victim: ProcessId,
    attacker: ProcessId,
    master_seed: u64,
    trial: u32,
) {
    let base = mix64(master_seed ^ (trial as u64) << 20);
    match setup.seed_sharing() {
        SeedSharing::Irrelevant => {
            cache.set_seed(victim, Seed::ZERO);
            cache.set_seed(attacker, Seed::ZERO);
        }
        SeedSharing::Shared => {
            cache.set_seed(victim, Seed::new(base));
            cache.set_seed(attacker, Seed::new(base));
        }
        SeedSharing::PerProcess => {
            cache.set_seed(victim, Seed::new(mix64(base ^ 1)));
            cache.set_seed(attacker, Seed::new(mix64(base ^ 2)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_cache_leaks_reliably() {
        let o = run_prime_probe(SetupKind::Deterministic, 200, 7);
        assert!(o.accuracy > 0.9, "accuracy {}", o.accuracy);
        assert!(o.leaks());
    }

    #[test]
    fn tscache_defeats_prime_probe() {
        let o = run_prime_probe(SetupKind::TsCache, 400, 7);
        assert!(o.accuracy < 0.06, "accuracy {}", o.accuracy);
        assert!(!o.leaks());
    }

    #[test]
    fn rpcache_randomizes_the_observed_set() {
        let o = run_prime_probe(SetupKind::RpCache, 400, 9);
        assert!(o.accuracy < 0.1, "accuracy {}", o.accuracy);
    }

    #[test]
    fn evictions_happen_in_all_setups() {
        for setup in SetupKind::ALL {
            let o = run_prime_probe(setup, 50, 3);
            assert!(o.mean_evictions > 0.4, "{setup}: {}", o.mean_evictions);
        }
    }
}
