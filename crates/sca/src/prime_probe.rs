//! Prime+Probe — the canonical contention attack primitive (paper
//! §2.2, generalization argument in §6.2.1).
//!
//! The attacker fills the cache with its own lines (*prime*), lets the
//! victim run, then re-touches its lines (*probe*): a missing line
//! reveals a set the victim used. Under deterministic placement the
//! evicted line's index bits identify the victim's accessed address;
//! under per-process random placement the relationship is destroyed.

use tscache_core::addr::LineAddr;
use tscache_core::cache::Cache;
use tscache_core::defense::DefenseKind;
use tscache_core::geometry::CacheGeometry;
use tscache_core::parallel::par_map_indexed;
use tscache_core::placement::PlacementKind;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{SeedSharing, SetupKind};

/// Outcome of a Prime+Probe campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimeProbeOutcome {
    /// Trials run.
    pub trials: u32,
    /// Fraction of trials where the attacker's set guess matched the
    /// victim's true index (1/128 ≈ 0.008 is chance level).
    pub accuracy: f64,
    /// Mean number of attacker lines evicted per trial.
    pub mean_evictions: f64,
}

impl PrimeProbeOutcome {
    /// Whether the attacker does meaningfully better than guessing.
    pub fn leaks(&self) -> bool {
        self.accuracy > 8.0 / 128.0
    }
}

/// Runs `trials` Prime+Probe rounds against the L1D policy of `setup`.
///
/// Per trial the victim accesses one secret line (index drawn from the
/// trial's own RNG stream); the attacker primes the full cache, lets
/// the victim run, probes, and guesses the victim's index from the
/// first evicted prime line.
///
/// Trials are independent and fan out over worker threads
/// ([`tscache_core::parallel`]); every trial derives its randomness
/// purely from `(master_seed, trial)`, so the outcome is bit-identical
/// for any thread count (including `RAYON_NUM_THREADS=1`).
pub fn run_prime_probe(setup: SetupKind, trials: u32, master_seed: u64) -> PrimeProbeOutcome {
    run_prime_probe_defended(setup, DefenseKind::Off, trials, master_seed)
}

/// [`run_prime_probe`] with a [`DefenseKind`] from the zoo layered on
/// top of `setup`: [`DefenseKind::RandomSafe`] swaps the platform for
/// the Random-and-Safe configuration, TTL/normalization arm the cache
/// knobs, and the rotation defenses are no-ops here (this primitive
/// attacks a single private L1 — no shared level to rotate).
pub fn run_prime_probe_defended(
    setup: SetupKind,
    defense: DefenseKind,
    trials: u32,
    master_seed: u64,
) -> PrimeProbeOutcome {
    let setup = defense.effective_setup(setup);
    let geom = CacheGeometry::paper_l1();
    let (placement, replacement) = l1_policy(setup);
    let victim = ProcessId::new(1);
    let attacker = ProcessId::new(2);
    // Prime working set: 4 pages of attacker lines fill every set
    // 4-ways under both modulo and (bijective-per-page) random modulo.
    // Invariant across trials, so built once and shared.
    let prime_lines: Vec<LineAddr> = (0..512u64).map(LineAddr::new).collect();

    let results = par_map_indexed(trials as usize, |t| {
        let trial = t as u32;
        let mut trial_rng = SplitMix64::new(mix64(
            master_seed ^ 0x9199e ^ (trial as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
        ));
        let mut cache = Cache::new("L1D", geom, placement, replacement, master_seed ^ trial as u64);
        cache.set_ttl(defense.ttl());
        cache.set_normalize(defense.normalize());
        assign_seeds(&mut cache, setup, victim, attacker, master_seed, trial);

        cache.access_batch(attacker, &prime_lines);

        // Victim accesses one secret line.
        let secret_index = trial_rng.below(128) as u64;
        let victim_line = LineAddr::new(0x10_000 + secret_index);
        cache.access(victim, victim_line);

        // Probe: find evicted prime lines without disturbing state.
        let evicted: Vec<LineAddr> =
            prime_lines.iter().copied().filter(|&l| !cache.probe(attacker, l)).collect();
        let guessed_right = evicted
            .first()
            // The attacker's guess: the index bits of its evicted line.
            .is_some_and(|first| first.index_bits(7) == secret_index);
        (guessed_right, evicted.len() as u64)
    });

    let hits = results.iter().filter(|&&(hit, _)| hit).count();
    let total_evictions: u64 = results.iter().map(|&(_, e)| e).sum();
    PrimeProbeOutcome {
        trials,
        accuracy: hits as f64 / trials as f64,
        mean_evictions: total_evictions as f64 / trials as f64,
    }
}

/// The L1 policy pair of each setup (mirrors `SetupKind::build`).
pub(crate) fn l1_policy(setup: SetupKind) -> (PlacementKind, ReplacementKind) {
    match setup {
        SetupKind::Deterministic => (PlacementKind::Modulo, ReplacementKind::Lru),
        SetupKind::RpCache => (PlacementKind::RpCache, ReplacementKind::Lru),
        SetupKind::Mbpta | SetupKind::TsCache => {
            (PlacementKind::RandomModulo, ReplacementKind::Random)
        }
        SetupKind::RandomSafe => (PlacementKind::HashRp, ReplacementKind::Random),
    }
}

/// Seeds a two-process cache per the setup's sharing policy.
pub(crate) fn assign_seeds(
    cache: &mut Cache,
    setup: SetupKind,
    victim: ProcessId,
    attacker: ProcessId,
    master_seed: u64,
    trial: u32,
) {
    let base = mix64(master_seed ^ (trial as u64) << 20);
    match setup.seed_sharing() {
        SeedSharing::Irrelevant => {
            cache.set_seed(victim, Seed::ZERO);
            cache.set_seed(attacker, Seed::ZERO);
        }
        SeedSharing::Shared => {
            cache.set_seed(victim, Seed::new(base));
            cache.set_seed(attacker, Seed::new(base));
        }
        SeedSharing::PerProcess => {
            cache.set_seed(victim, Seed::new(mix64(base ^ 1)));
            cache.set_seed(attacker, Seed::new(mix64(base ^ 2)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_cache_leaks_reliably() {
        let o = run_prime_probe(SetupKind::Deterministic, 200, 7);
        assert!(o.accuracy > 0.9, "accuracy {}", o.accuracy);
        assert!(o.leaks());
    }

    #[test]
    fn tscache_defeats_prime_probe() {
        let o = run_prime_probe(SetupKind::TsCache, 400, 7);
        assert!(o.accuracy < 0.06, "accuracy {}", o.accuracy);
        assert!(!o.leaks());
    }

    #[test]
    fn rpcache_randomizes_the_observed_set() {
        let o = run_prime_probe(SetupKind::RpCache, 400, 9);
        assert!(o.accuracy < 0.1, "accuracy {}", o.accuracy);
    }

    #[test]
    fn evictions_happen_in_all_setups() {
        for setup in SetupKind::ALL {
            let o = run_prime_probe(setup, 50, 3);
            assert!(o.mean_evictions > 0.4, "{setup}: {}", o.mean_evictions);
        }
    }
}
