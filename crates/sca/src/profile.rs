//! Per-(byte, value) timing profiles — Bernstein's `study` tables.
//!
//! For each of the 16 plaintext byte positions and each of the 256 byte
//! values, the profile accumulates the average encryption time over all
//! samples where that position held that value. Deviations from the
//! global mean are the attack's signatures (paper Fig. 4 plots exactly
//! these for byte 4).

use crate::sampling::TimingSample;

/// Aggregated timing statistics per byte position and value.
#[derive(Debug, Clone)]
pub struct TimingProfile {
    sums: Vec<f64>,
    counts: Vec<u64>,
    total_sum: f64,
    total_count: u64,
}

impl Default for TimingProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        TimingProfile {
            sums: vec![0.0; 16 * 256],
            counts: vec![0; 16 * 256],
            total_sum: 0.0,
            total_count: 0,
        }
    }

    /// Builds a profile from a sample stream.
    pub fn from_samples(samples: &[TimingSample]) -> Self {
        let mut p = TimingProfile::new();
        for s in samples {
            p.add(&s.plaintext, s.cycles);
        }
        p
    }

    /// Adds one observation.
    pub fn add(&mut self, plaintext: &[u8; 16], cycles: u64) {
        let t = cycles as f64;
        for (i, &b) in plaintext.iter().enumerate() {
            let idx = i * 256 + b as usize;
            self.sums[idx] += t;
            self.counts[idx] = self.counts[idx].saturating_add(1);
        }
        self.total_sum += t;
        self.total_count = self.total_count.saturating_add(1);
    }

    /// Number of samples aggregated.
    pub fn samples(&self) -> u64 {
        self.total_count
    }

    /// Global mean encryption time.
    pub fn global_mean(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            self.total_sum / self.total_count as f64
        }
    }

    /// Mean time over samples with `value` at `byte`, or the global
    /// mean when that cell is empty.
    ///
    /// # Panics
    ///
    /// Panics if `byte >= 16`.
    pub fn mean(&self, byte: usize, value: u8) -> f64 {
        assert!(byte < 16, "byte position out of range");
        let idx = byte * 256 + value as usize;
        if self.counts[idx] == 0 {
            self.global_mean()
        } else {
            self.sums[idx] / self.counts[idx] as f64
        }
    }

    /// Deviation of a cell mean from the global mean (the paper's
    /// Fig. 4 y-axis).
    pub fn deviation(&self, byte: usize, value: u8) -> f64 {
        self.mean(byte, value) - self.global_mean()
    }

    /// The 256-point deviation signature of one byte position.
    pub fn signature(&self, byte: usize) -> [f64; 256] {
        core::array::from_fn(|v| self.deviation(byte, v as u8))
    }

    /// Observation count of one cell.
    pub fn count(&self, byte: usize, value: u8) -> u64 {
        assert!(byte < 16, "byte position out of range");
        self.counts[byte * 256 + value as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pt0: u8, cycles: u64) -> TimingSample {
        let mut plaintext = [0u8; 16];
        plaintext[0] = pt0;
        TimingSample { plaintext, cycles }
    }

    #[test]
    fn empty_profile_is_neutral() {
        let p = TimingProfile::new();
        assert_eq!(p.samples(), 0);
        assert_eq!(p.global_mean(), 0.0);
        assert_eq!(p.deviation(3, 7), 0.0);
    }

    #[test]
    fn means_split_by_value() {
        let mut p = TimingProfile::new();
        p.add(&sample(1, 100).plaintext, 100);
        p.add(&sample(1, 200).plaintext, 200);
        p.add(&sample(2, 400).plaintext, 400);
        assert!((p.mean(0, 1) - 150.0).abs() < 1e-9);
        assert!((p.mean(0, 2) - 400.0).abs() < 1e-9);
        assert!((p.global_mean() - 233.333).abs() < 0.01);
        // Byte 5 was always 0 → its value-0 mean is the global mean.
        assert!((p.mean(5, 0) - p.global_mean()).abs() < 1e-9);
    }

    #[test]
    fn deviations_sum_to_zero_over_observed_values() {
        let mut p = TimingProfile::new();
        for v in 0..=255u8 {
            p.add(&sample(v, 100 + v as u64).plaintext, 100 + v as u64);
        }
        let total: f64 = (0..=255u8).map(|v| p.deviation(0, v)).sum();
        assert!(total.abs() < 1e-6);
    }

    #[test]
    fn signature_has_256_points() {
        let mut p = TimingProfile::new();
        p.add(&sample(9, 50).plaintext, 50);
        let sig = p.signature(0);
        assert_eq!(sig.len(), 256);
        assert!(sig[9] >= 0.0);
    }

    #[test]
    fn from_samples_equals_incremental() {
        let samples: Vec<TimingSample> = (0..100).map(|i| sample(i as u8, 100 + i)).collect();
        let a = TimingProfile::from_samples(&samples);
        let mut b = TimingProfile::new();
        for s in &samples {
            b.add(&s.plaintext, s.cycles);
        }
        assert_eq!(a.samples(), b.samples());
        assert!((a.mean(0, 50) - b.mean(0, 50)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn byte_bounds_checked() {
        TimingProfile::new().mean(16, 0);
    }
}
