//! Bernstein's correlation attack on AES (paper §6.1.1, Fig. 5).
//!
//! The attacker profiles encryption time on a machine with a *known*
//! key, the victim's timings are profiled with the *secret* key, and
//! the per-byte timing signatures are correlated across all 256 key-
//! byte hypotheses. The paper's evaluation keeps, per byte, every value
//! whose correlation is at least the true value's — "the most stringent
//! correlation factor so that the correct value remains feasible" —
//! i.e. the attacker's best case.

use crate::profile::TimingProfile;
use crate::sampling::{collect_pair, SamplingConfig, TimingSample};
use core::fmt;
use tscache_core::parallel;
use tscache_core::prng::{Prng, SplitMix64};

/// Pearson correlation of two 256-point signatures.
fn correlation(a: &[f64; 256], b: &[f64; 256]) -> f64 {
    let ma = a.iter().sum::<f64>() / 256.0;
    let mb = b.iter().sum::<f64>() / 256.0;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for i in 0..256 {
        let da = a[i] - ma;
        let db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if saa == 0.0 || sbb == 0.0 {
        0.0
    } else {
        sab / (saa * sbb).sqrt()
    }
}

/// Attack outcome for one key byte.
#[derive(Debug, Clone)]
pub struct ByteAttackResult {
    /// Byte position (0..16).
    pub byte: usize,
    /// The true key byte (known to the evaluation, not the attacker).
    pub true_value: u8,
    /// Correlation score per key-byte hypothesis.
    pub scores: Vec<f64>,
    /// Whether the score landscape is distinguishable from noise (see
    /// [`SIGNIFICANCE_SIGMA`]). Non-significant bytes discard nothing:
    /// a random-looking score vector carries no brute-force guidance,
    /// which is how the paper's TSCache row stays at 2¹²⁸ even though
    /// some values score "higher" by chance.
    pub significant: bool,
    /// Hypotheses the stringent threshold could not discard (always
    /// contains `true_value`).
    pub feasible: Vec<u8>,
}

/// Significance gate for per-byte correlation landscapes, in units of
/// the null standard deviation `1/√(n−3)` of a Pearson correlation
/// over 256 points. The best-aligned hypothesis of pure noise reaches
/// ≈ 2.7σ (max of 256 draws); 4σ keeps the family-wise false-positive
/// rate below 1%.
pub const SIGNIFICANCE_SIGMA: f64 = 4.0;

impl ByteAttackResult {
    /// Number of feasible values left (1 = byte fully recovered,
    /// 256 = nothing learned).
    pub fn feasible_count(&self) -> usize {
        self.feasible.len()
    }

    /// Bits of the byte determined by the attack:
    /// `8 − log2(feasible)`.
    pub fn bits_determined(&self) -> f64 {
        8.0 - (self.feasible_count() as f64).log2()
    }

    /// Whether the attack discarded anything for this byte.
    pub fn is_vulnerable(&self) -> bool {
        self.feasible_count() < 256
    }

    /// Whether hypothesis `v` remains feasible.
    pub fn is_feasible(&self, v: u8) -> bool {
        self.feasible.contains(&v)
    }
}

/// Attack outcome over all 16 key bytes.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Per-byte outcomes, index = byte position.
    pub bytes: Vec<ByteAttackResult>,
}

impl AttackResult {
    /// Total key bits determined (the paper reports 33 of 128 on the
    /// deterministic setup).
    pub fn bits_determined(&self) -> f64 {
        self.bytes.iter().map(|b| b.bits_determined()).sum()
    }

    /// log₂ of the residual keyspace (the paper's 2⁸⁰ / 2¹⁰⁸ / 2¹⁰⁴ /
    /// 2¹²⁸ numbers).
    pub fn residual_keyspace_log2(&self) -> f64 {
        128.0 - self.bits_determined()
    }

    /// Number of bytes where anything was discarded.
    pub fn vulnerable_bytes(&self) -> usize {
        self.bytes.iter().filter(|b| b.is_vulnerable()).count()
    }

    /// Renders the Fig. 5 cell matrix: one row per key byte, one
    /// character per value — `.` discarded (white), `+` feasible
    /// (grey), `#` the true key value (black).
    pub fn matrix(&self) -> String {
        let mut out = String::with_capacity(16 * 257);
        for b in &self.bytes {
            for v in 0..=255u8 {
                out.push(if v == b.true_value {
                    '#'
                } else if b.is_feasible(v) {
                    '+'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }

    /// A terminal-friendly 64-column condensation of
    /// [`matrix`](Self::matrix): each character covers four adjacent
    /// values (`#` if the true value is among them, `+` if any is
    /// feasible, `.` otherwise).
    pub fn matrix_condensed(&self) -> String {
        let mut out = String::with_capacity(16 * 65);
        for b in &self.bytes {
            for group in 0..64u16 {
                let vals = (4 * group)..(4 * group + 4);
                let has_true = vals.clone().any(|v| v as u8 == b.true_value);
                let any_feasible = vals.clone().any(|v| b.is_feasible(v as u8));
                out.push(if has_true {
                    '#'
                } else if any_feasible {
                    '+'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for AttackResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bits determined: {:.1} / 128, residual keyspace: 2^{:.1}, vulnerable bytes: {}/16",
            self.bits_determined(),
            self.residual_keyspace_log2(),
            self.vulnerable_bytes()
        )?;
        write!(f, "{}", self.matrix_condensed())
    }
}

/// Runs the correlation analysis given both nodes' samples and keys.
///
/// For each byte `j` and hypothesis `g`, the victim's signature at
/// plaintext value `v` is matched against the attacker's signature at
/// `v ⊕ g ⊕ k'_j` (aligning both to the table-input domain); the score
/// is the Pearson correlation over the 256 values. The stringent
/// threshold keeps hypotheses scoring at least the true value's score.
pub fn analyze(
    attacker_samples: &[TimingSample],
    attacker_key: &[u8; 16],
    victim_samples: &[TimingSample],
    victim_key: &[u8; 16],
) -> AttackResult {
    // The two profiles aggregate independent streams: build them
    // concurrently, then sweep the 16 key bytes in parallel (each
    // byte's 256-hypothesis correlation sweep is pure, so the result
    // is identical for every thread count).
    let (attacker, victim) = parallel::join(
        || TimingProfile::from_samples(attacker_samples),
        || TimingProfile::from_samples(victim_samples),
    );
    let bytes = parallel::par_map_indexed(16, |j| {
        let sig_v = victim.signature(j);
        let sig_a = attacker.signature(j);
        let mut scores = Vec::with_capacity(256);
        for g in 0..=255u8 {
            // Align: victim plaintext v ↦ table input v ⊕ g; the
            // attacker observed that input at plaintext (v⊕g) ⊕ k'_j.
            let shifted: [f64; 256] =
                core::array::from_fn(|v| sig_a[(v as u8 ^ g ^ attacker_key[j]) as usize]);
            scores.push(correlation(&sig_v, &shifted));
        }
        let true_value = victim_key[j];
        // Null std of a 256-point Pearson correlation.
        let sigma = 1.0 / (253.0f64).sqrt();
        let max_score = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let significant = max_score > SIGNIFICANCE_SIGMA * sigma;
        let feasible: Vec<u8> = if significant {
            let threshold = scores[true_value as usize];
            (0..=255u8).filter(|&g| scores[g as usize] >= threshold).collect()
        } else {
            (0..=255u8).collect()
        };
        ByteAttackResult { byte: j, true_value, scores, significant, feasible }
    });
    AttackResult { bytes }
}

/// End-to-end Bernstein experiment on one cache setup: random victim
/// key, fixed attacker key, sample collection on both nodes, then the
/// correlation analysis.
pub fn run_attack(cfg: SamplingConfig) -> AttackResult {
    let mut rng = SplitMix64::new(cfg.master_seed ^ 0x006b_6579);
    let attacker_key = [0u8; 16];
    let mut victim_key = [0u8; 16];
    for b in victim_key.iter_mut() {
        *b = (rng.next_u32() & 0xff) as u8;
    }
    let (attacker_samples, victim_samples) = collect_pair(cfg, &attacker_key, &victim_key);
    analyze(&attacker_samples, &attacker_key, &victim_samples, &victim_key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_of_identical_signatures_is_one() {
        let sig: [f64; 256] = core::array::from_fn(|i| (i % 7) as f64);
        assert!((correlation(&sig, &sig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_flat_signature_is_zero() {
        let flat = [0.0; 256];
        let sig: [f64; 256] = core::array::from_fn(|i| i as f64);
        assert_eq!(correlation(&flat, &sig), 0.0);
    }

    /// A synthetic oracle: time = base + bump when the table input's
    /// line is "slow". The attack must recover the key byte exactly up
    /// to the 8-value line ambiguity.
    fn synthetic_samples(key: &[u8; 16], n: u32, seed: u64) -> Vec<TimingSample> {
        let slow_line = |x: u8| matches!(x >> 3, 0 | 5 | 11 | 19 | 26);
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let mut pt = [0u8; 16];
                for b in pt.iter_mut() {
                    *b = (rng.next_u32() & 0xff) as u8;
                }
                let mut cycles = 10_000u64;
                for j in 0..16 {
                    if slow_line(pt[j] ^ key[j]) {
                        cycles += 90;
                    }
                }
                TimingSample { plaintext: pt, cycles }
            })
            .collect()
    }

    #[test]
    fn recovers_synthetic_keys_to_line_granularity() {
        let attacker_key = [0u8; 16];
        let victim_key: [u8; 16] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
        let a = synthetic_samples(&attacker_key, 30_000, 1);
        let v = synthetic_samples(&victim_key, 30_000, 2);
        let result = analyze(&a, &attacker_key, &v, &victim_key);
        // Every byte leaks: the 8-value line ambiguity leaves exactly
        // 8 feasible candidates (5 bits determined per byte).
        for b in &result.bytes {
            assert!(b.is_feasible(victim_key[b.byte]));
            assert!(b.feasible_count() <= 16, "byte {}: {} candidates", b.byte, b.feasible_count());
        }
        assert!(result.bits_determined() > 60.0, "{result}");
    }

    #[test]
    fn uncorrelated_nodes_learn_nothing_much() {
        // Signatures built from unrelated random noise: the stringent
        // threshold keeps many candidates on average.
        let mut rng = SplitMix64::new(5);
        let noise = |rng: &mut SplitMix64, n: u32| {
            (0..n)
                .map(|_| {
                    let mut pt = [0u8; 16];
                    for b in pt.iter_mut() {
                        *b = (rng.next_u32() & 0xff) as u8;
                    }
                    TimingSample { plaintext: pt, cycles: 10_000 + (rng.next_u32() % 50) as u64 }
                })
                .collect::<Vec<_>>()
        };
        let a = noise(&mut rng, 20_000);
        let v = noise(&mut rng, 20_000);
        let keys = [0u8; 16];
        let result = analyze(&a, &keys, &v, &keys);
        // With pure noise the expected feasible count is ~128 per byte.
        assert!(result.residual_keyspace_log2() > 90.0, "noise leaked too much: {result}");
    }

    #[test]
    fn true_value_always_feasible() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let a = synthetic_samples(&[0u8; 16], 2000, 3);
        let v = synthetic_samples(&key, 2000, 4);
        let result = analyze(&a, &[0u8; 16], &v, &key);
        for b in &result.bytes {
            assert!(b.is_feasible(b.true_value), "byte {} lost the key", b.byte);
        }
    }

    #[test]
    fn matrix_dimensions_and_symbols() {
        let key = [3u8; 16];
        let a = synthetic_samples(&[0u8; 16], 500, 5);
        let v = synthetic_samples(&key, 500, 6);
        let result = analyze(&a, &[0u8; 16], &v, &key);
        let m = result.matrix();
        let rows: Vec<&str> = m.lines().collect();
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| r.len() == 256));
        // Exactly one '#' per row.
        assert!(rows.iter().all(|r| r.chars().filter(|&c| c == '#').count() == 1));
        let condensed = result.matrix_condensed();
        assert!(condensed.lines().all(|r| r.len() == 64));
    }

    #[test]
    fn bits_metrics_are_consistent() {
        let key = [9u8; 16];
        let a = synthetic_samples(&[0u8; 16], 5000, 7);
        let v = synthetic_samples(&key, 5000, 8);
        let r = analyze(&a, &[0u8; 16], &v, &key);
        assert!((r.bits_determined() + r.residual_keyspace_log2() - 128.0).abs() < 1e-9);
    }
}
