//! Cross-core **Flush+Reload** through the coherent shared last-level
//! cache — the shared-line channel that cross-core Prime+Probe's
//! partitioning defense cannot close, opened by the MSI-style
//! invalidation model.
//!
//! The victim's AES T-tables live in a *shared read-only segment*
//! (one crypto library mapped by every core), declared as a coherent
//! region of the platform. Per sample the attacker **flushes** the
//! TE0 lines (the clflush primitive: the coherence protocol drains
//! every tracked copy — the victim's private-level copies, the
//! shared-level copies, and the directory entry), lets the victim
//! encrypt one known plaintext, then **reloads**: probing a monitored
//! line in the shared level. A present line was refilled by the
//! victim after the flush — i.e. the first AES round touched it — and
//! `TE0[pt[0] ^ k[0]]` ties the line to the key byte. Votes
//! accumulate over samples; on a deterministic shared platform the
//! true key byte (with its seven line-mates — a 32 B line holds 8
//! table entries) climbs to the top.
//!
//! Two defenses are modelled, matching the paper's §7 argument:
//!
//! * **per-core way partitions with per-core table replicas**
//!   ([`FlushReloadIsolation::PartitionedReplicated`]): way partitions
//!   alone cannot close a shared-line channel (a flush drains and a
//!   reload finds the line regardless of which way holds it), so the
//!   partitioned configuration also *un-shares* the memory — each
//!   core gets its own table copy, as strict partitioning schemes
//!   require. The attacker can only flush and probe its own replica,
//!   which the victim never touches: the votes flatten to chance.
//! * **per-process randomized placement** (the TSCache setups): the
//!   flush still drains every copy (the directory resolves each
//!   holder's copy under the holder's own seed — coherence works by
//!   physical address), but the attacker's *reload* probes the line
//!   under its own seed, which indexes a different set than the
//!   victim's refill: the probe goes blind and the channel closes
//!   without any partition.

use tscache_aes::sim_cipher::{AesLayout, SimAes128};
use tscache_core::addr::{Addr, LineAddr};
use tscache_core::defense::DefenseKind;
use tscache_core::error::ConfigError;
use tscache_core::hierarchy::SharedLlc;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SeedSharing, SetupKind};
use tscache_interference::SystemConfig;
use tscache_sim::layout::Layout;
use tscache_sim::machine::Machine;

/// Isolation configuration of the shared platform under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReloadIsolation {
    /// One table segment shared (and kept coherent) across cores —
    /// the vulnerable configuration Flush+Reload needs.
    SharedOpen,
    /// Full per-core way partitions on the shared level *plus*
    /// per-core table replicas: the victim fills ways `0..2`, the
    /// attacker ways `2..4`, and no line is shared — the §7
    /// partitioning configuration taken to its logical conclusion
    /// (partition isolation is only provable over disjoint data).
    PartitionedReplicated,
}

/// Parameters of a Flush+Reload campaign.
#[derive(Debug, Clone, Copy)]
pub struct FlushReloadConfig {
    /// Cache setup of the shared platform (the LLC inherits its
    /// unified policy; `Deterministic` is the classic vulnerable
    /// target, the TSCache setups blind the reload).
    pub setup: SetupKind,
    /// Samples (flush → encrypt → reload rounds).
    pub samples: u32,
    /// Master seed; plaintexts and placement seeds derive from it.
    pub master_seed: u64,
    /// The victim's secret key.
    pub victim_key: [u8; 16],
    /// Sharing/partitioning configuration.
    pub isolation: FlushReloadIsolation,
    /// Defense-zoo policy armed on the whole platform (private levels
    /// and the shared LLC). Normalization closes this channel directly
    /// — the attacker's reload probe reports victim-refilled lines as
    /// absent; the rotation defenses re-key the LLC mid-campaign.
    pub defense: DefenseKind,
}

impl FlushReloadConfig {
    /// Validates the campaign parameters (the "bad spec" check
    /// executors run before dispatching a worker).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.samples == 0 {
            return Err(ConfigError::incompatible("flush+reload campaign needs samples > 0"));
        }
        Ok(())
    }

    /// The standard campaign: 256 samples against `setup`.
    pub fn standard(setup: SetupKind, master_seed: u64) -> Self {
        FlushReloadConfig {
            setup,
            samples: 256,
            master_seed,
            victim_key: [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ],
            isolation: FlushReloadIsolation::SharedOpen,
            defense: DefenseKind::Off,
        }
    }
}

/// Outcome of a Flush+Reload campaign.
#[derive(Debug, Clone)]
pub struct FlushReloadOutcome {
    /// Samples run.
    pub samples: u32,
    /// Votes per candidate value of key byte 0.
    pub scores: Vec<u32>,
    /// Rank of the true key byte among the candidates (0 = strongest;
    /// ties share their average rank). 8 candidates sharing the true
    /// byte's table line are indistinguishable by construction, so a
    /// perfect attack ranks the true byte ≈ 3.5; a dead channel ties
    /// all 256 candidates at 127.5.
    pub correct_rank: f64,
    /// Reload probes that found a monitored line resident in the
    /// shared level over the whole campaign.
    pub reload_hits: u64,
    /// Line copies the flush broadcasts drained from the victim
    /// core's private levels (proof the coherence protocol reached
    /// into the victim's hierarchy).
    pub victim_invalidations: u64,
}

impl FlushReloadOutcome {
    /// Whether the true key byte ranks in the top quartile of the
    /// candidate list — the pinned "signal recovered" criterion.
    pub fn top_quartile(&self) -> bool {
        self.correct_rank < 64.0
    }
}

/// TE0 spans 32 cache lines of 8 entries each.
const TE0_LINES: usize = 32;

/// Runs the campaign; everything derives from `cfg.master_seed`, so
/// outcomes are bit-reproducible.
///
/// # Panics
///
/// Panics on an invalid configuration; campaign code that cannot
/// afford an abort uses [`try_run_flush_reload`].
pub fn run_flush_reload(cfg: &FlushReloadConfig) -> FlushReloadOutcome {
    match try_run_flush_reload(cfg) {
        Ok(out) => out,
        // detlint: allow(R1, documented panicking wrapper; fleet shards call try_run_flush_reload)
        Err(e) => panic!("invalid flush+reload config: {e}"),
    }
}

/// The shared level, or the [`ConfigError`] a campaign executor can
/// quarantine — in place of the `.expect("shared platform")` abort
/// this path used to ship (the PR 7/9 incident class).
fn shared_llc_mut(machine: &mut Machine) -> Result<&mut SharedLlc, ConfigError> {
    machine
        .shared_llc_mut()
        .ok_or_else(|| ConfigError::incompatible("flush+reload requires a shared-LLC platform"))
}

/// Fallible campaign runner: every configuration problem surfaces as
/// a [`ConfigError`] instead of an abort.
pub fn try_run_flush_reload(cfg: &FlushReloadConfig) -> Result<FlushReloadOutcome, ConfigError> {
    let setup = cfg.defense.effective_setup(cfg.setup);
    let victim = ProcessId::new(1);
    let attacker = ProcessId::new(2);

    // The victim node: private hierarchy + shared LLC, coherence to be
    // armed below.
    let mut machine = Machine::from_setup_shared(
        setup,
        HierarchyDepth::TwoLevel,
        SystemConfig::default(),
        cfg.master_seed,
    );
    machine.apply_defense(cfg.defense);
    machine.set_process(victim);
    let mut seed_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x000f_1a54));
    match setup.seed_sharing() {
        SeedSharing::Irrelevant => {
            machine.set_process_seed(victim, Seed::ZERO);
            machine.set_process_seed(attacker, Seed::ZERO);
        }
        SeedSharing::Shared => {
            let s = Seed::random(&mut seed_rng);
            machine.set_process_seed(victim, s);
            machine.set_process_seed(attacker, s);
        }
        SeedSharing::PerProcess => {
            machine.set_process_seed(victim, Seed::random(&mut seed_rng));
            machine.set_process_seed(attacker, Seed::random(&mut seed_rng));
        }
    }

    let mut layout = Layout::new(0x10_0000);
    let aes_layout = AesLayout::install(&mut layout, "victim");
    let aes = SimAes128::new(&cfg.victim_key, aes_layout);
    let offset_bits = 5u32; // 32-byte lines on every preset

    // The monitored lines: the shared segment's TE0 in the open
    // configuration, the attacker's private replica when partitioning
    // un-shares the tables.
    let monitored_base = match cfg.isolation {
        FlushReloadIsolation::SharedOpen => {
            // The whole table block (TE0..TE4) is one shared coherent
            // segment — a crypto library every core maps.
            machine.add_coherent_range(aes_layout.table(0).base(), aes_layout.table_bytes());
            aes_layout.table(0).base()
        }
        FlushReloadIsolation::PartitionedReplicated => {
            let replica = AesLayout::install(&mut layout, "attacker-replica");
            machine.add_coherent_range(replica.table(0).base(), replica.table_bytes());
            let llc = shared_llc_mut(&mut machine)?;
            llc.set_way_partition(victim, 0, 2);
            llc.set_way_partition(attacker, 2, 4);
            replica.table(0).base()
        }
    };
    let monitored: Vec<(Addr, LineAddr)> = (0..TE0_LINES as u64)
        .map(|l| {
            let addr = Addr::new(monitored_base.as_u64() + l * 32);
            (addr, addr.line(offset_bits))
        })
        .collect();

    let mut pt_rng = SplitMix64::new(mix64(cfg.master_seed ^ 0x4e10ad));
    let mut scores = vec![0u32; 256];
    let mut reload_hits = 0u64;
    let mut ops = Vec::with_capacity(256);

    for _ in 0..cfg.samples {
        // Flush: the attacker drains every monitored line platform-
        // wide through the coherence protocol (victim private copies,
        // shared-level copies, directory entries).
        for &(addr, _) in &monitored {
            machine.flush_line(addr);
        }

        // Victim: runs one encryption of a random (but attacker-known)
        // plaintext through its machine. Unflushed lines stay warm in
        // its private levels — only the flushed lines generate
        // shared-level refills, which is exactly the Flush+Reload
        // signal.
        let mut pt = [0u8; 16];
        for b in pt.iter_mut() {
            *b = (pt_rng.next_u64() & 0xff) as u8;
        }
        aes.encrypt_with(&mut machine, &mut ops, &pt);

        // Reload (non-destructive): a monitored line present in the
        // shared level was refetched by the victim after the flush.
        let llc = shared_llc_mut(&mut machine)?;
        let mut reloaded = [false; TE0_LINES];
        for (l, &(_, line)) in monitored.iter().enumerate() {
            reloaded[l] = llc.cache_mut().probe(attacker, line);
            reload_hits = reload_hits.saturating_add(reloaded[l] as u64);
        }
        // Vote: candidate k predicts TE0 line (pt[0] ^ k) / 8.
        let [pt0, ..] = pt;
        for (k, score) in scores.iter_mut().enumerate() {
            let line = ((pt0 ^ k as u8) >> 3) as usize;
            *score += reloaded[line] as u32;
        }
    }

    let [key0, ..] = cfg.victim_key;
    let true_score = scores[key0 as usize];
    let stronger = scores.iter().filter(|&&s| s > true_score).count();
    let ties = scores.iter().filter(|&&s| s == true_score).count();
    let correct_rank = stronger as f64 + (ties - 1) as f64 / 2.0;
    let victim_invalidations = machine.hierarchy().total_stats().coh_invalidations();
    Ok(FlushReloadOutcome {
        samples: cfg.samples,
        scores,
        correct_rank,
        reload_hits,
        victim_invalidations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_shared_platform_leaks_the_key_byte() {
        let out = run_flush_reload(&FlushReloadConfig::standard(SetupKind::Deterministic, 7));
        assert!(out.top_quartile(), "rank {} not top-quartile", out.correct_rank);
        assert!(out.correct_rank < 8.0, "line-mates aside, the true byte should lead");
        assert!(out.victim_invalidations > 0, "flush never reached the victim's private levels");
        assert!(out.reload_hits > 0, "the reload never fired");
    }

    #[test]
    fn partitioned_replicated_platform_is_chance() {
        let mut cfg = FlushReloadConfig::standard(SetupKind::Deterministic, 7);
        cfg.isolation = FlushReloadIsolation::PartitionedReplicated;
        let out = run_flush_reload(&cfg);
        assert_eq!(out.reload_hits, 0, "the victim never touches the attacker's replica");
        assert_eq!(out.correct_rank, 127.5, "dead channel must tie all candidates");
    }

    #[test]
    fn per_process_randomization_blinds_the_reload() {
        let out = run_flush_reload(&FlushReloadConfig::standard(SetupKind::TsCache, 7));
        assert!(!out.top_quartile(), "TSCache leaked: rank {}", out.correct_rank);
        assert!(out.victim_invalidations > 0, "coherence must still drain the victim's copies");
        assert_eq!(out.reload_hits, 0, "the attacker's probe must be blind");
    }

    #[test]
    fn campaign_reproduces_bit_for_bit() {
        let cfg = FlushReloadConfig::standard(SetupKind::Deterministic, 11);
        let a = run_flush_reload(&cfg);
        let b = run_flush_reload(&cfg);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.correct_rank, b.correct_rank);
        assert_eq!(a.reload_hits, b.reload_hits);
    }
}
