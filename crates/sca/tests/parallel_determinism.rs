//! The parallel attack/sampling harness must be bit-reproducible
//! regardless of worker-thread count: every trial derives its
//! randomness purely from `(master_seed, trial index)` and results are
//! collected in index order.
//!
//! Kept in its own binary (tests run sequentially here) because it
//! mutates process-global environment variables. CI runs this matrix
//! explicitly as the `determinism` job, alongside the
//! `determinism_probe` binary diffed under `RAYON_NUM_THREADS=1` vs
//! `=8`.

use tscache_core::parallel::thread_count;
use tscache_core::setup::{HierarchyDepth, SetupKind};
use tscache_sca::bernstein::analyze;
use tscache_sca::detect::{
    run_detection_campaign, DetectTarget, DetectionCampaignConfig, EvasionMode,
};
use tscache_sca::evict_time::run_evict_time;
use tscache_sca::prime_probe::run_prime_probe;
use tscache_sca::sampling::{collect_pair, SamplingConfig, TimingSample};
use tscache_sim::layout::Layout;
use tscache_sim::synthetic::ArraySweep;
use tscache_sim::workload::{collect_execution_times_par, MeasurementProtocol};

/// The thread counts of the CI determinism matrix.
const MATRIX: [&str; 3] = ["1", "3", "8"];

fn with_threads<T>(n: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("RAYON_NUM_THREADS", n);
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// Runs `f` under every thread count in the matrix and asserts all
/// results are bit-identical to the single-threaded reference.
fn assert_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> T) {
    let reference = with_threads(MATRIX[0], &f);
    for n in &MATRIX[1..] {
        let got = with_threads(n, &f);
        assert!(
            got == reference,
            "{what}: result under {n} threads diverges from single-threaded reference"
        );
    }
}

#[test]
fn attack_and_mbpta_results_are_bit_identical_across_thread_counts() {
    assert_eq!(with_threads("1", thread_count), 1);
    assert_eq!(with_threads("8", thread_count), 8);

    // Prime+Probe / Evict+Time: trial fan-out.
    assert_invariant("prime+probe", || run_prime_probe(SetupKind::TsCache, 64, 7));
    assert_invariant("evict+time", || run_evict_time(SetupKind::Deterministic, 64, 3));

    // Detection campaigns: the benign/attack scenario pair fans out
    // over `parallel::join`, and the ROC/latency/event outcome must be
    // bit-identical for every worker count.
    for target in DetectTarget::ALL {
        let cfg = DetectionCampaignConfig::standard(target, SetupKind::Deterministic, 7);
        assert_invariant(&format!("detect/{}", target.label()), || run_detection_campaign(&cfg));
    }
    let evading = DetectionCampaignConfig {
        evasion: EvasionMode::Jitter,
        ..DetectionCampaignConfig::standard(DetectTarget::PrimeProbe, SetupKind::TsCache, 21)
    };
    assert_invariant("detect/jitter", || run_detection_campaign(&evading));

    // Bernstein sampling pair, on both hierarchy depths.
    let (ka, kv) = ([0u8; 16], [9u8; 16]);
    for depth in HierarchyDepth::ALL {
        let mut cfg = SamplingConfig::standard(SetupKind::Mbpta, 200, 0xbeef);
        cfg.depth = depth;
        assert_invariant(&format!("collect_pair/{depth}"), || collect_pair(cfg, &ka, &kv));
    }

    // Per-byte correlation sweep.
    let noise: Vec<TimingSample> = (0..500)
        .map(|i| TimingSample {
            plaintext: core::array::from_fn(|j| (i * 31 + j as u64 * 7) as u8),
            cycles: 10_000 + (i * i) % 97,
        })
        .collect();
    let r1 = with_threads("1", || analyze(&noise, &ka, &noise, &kv));
    let r8 = with_threads("8", || analyze(&noise, &ka, &noise, &kv));
    for (b1, b8) in r1.bytes.iter().zip(&r8.bytes) {
        assert_eq!(b1.scores, b8.scores, "byte {} scores diverge", b1.byte);
        assert_eq!(b1.feasible, b8.feasible);
    }

    // MBPTA measurement collection (the parallel independent-runs
    // protocol), driven through the batched-replay workloads.
    let protocol = MeasurementProtocol { runs: 24, ..Default::default() };
    assert_invariant("mbpta collection", || {
        collect_execution_times_par(SetupKind::Mbpta, &protocol, || {
            ArraySweep::standard(&mut Layout::new(0x10_0000))
        })
    });

    // Contended campaigns: co-runner cores, shared-bus arbitration and
    // MSHR stalls must not break thread-count invariance anywhere.
    let mut contended = SamplingConfig::standard(SetupKind::TsCache, 150, 0xd00d);
    contended.contention = Some(tscache_interference::ContentionConfig::default());
    contended.reseed_every = 32;
    contended.warmup_jobs = 2;
    assert_invariant("contended collect_pair", || collect_pair(contended, &ka, &kv));
    let contended_protocol = MeasurementProtocol {
        runs: 16,
        contention: Some(tscache_interference::ContentionConfig::default()),
        ..Default::default()
    };
    assert_invariant("contended mbpta collection", || {
        collect_execution_times_par(SetupKind::TsCache, &contended_protocol, || {
            ArraySweep::standard(&mut Layout::new(0x10_0000))
        })
    });

    // Shared-LLC contended campaigns: enemy cores now perturb the
    // measured core's shared-level *contents* — the per-(seed, role)
    // derivations must still make every worker count agree bit for
    // bit.
    let mut shared = SamplingConfig::standard(SetupKind::TsCache, 150, 0x11c);
    shared.shared_llc = true;
    shared.contention = Some(tscache_interference::ContentionConfig::default());
    shared.reseed_every = 32;
    shared.warmup_jobs = 2;
    assert_invariant("shared-LLC collect_pair", || collect_pair(shared, &ka, &kv));
    let mut shared_part = shared;
    shared_part.partition_llc_ways = 2;
    assert_invariant("partitioned shared-LLC collect_pair", || collect_pair(shared_part, &ka, &kv));
    let shared_protocol = MeasurementProtocol {
        runs: 16,
        shared_llc: true,
        contention: Some(tscache_interference::ContentionConfig::default()),
        ..Default::default()
    };
    assert_invariant("shared-LLC mbpta collection", || {
        collect_execution_times_par(SetupKind::TsCache, &shared_protocol, || {
            ArraySweep::standard(&mut Layout::new(0x10_0000))
        })
    });
}
