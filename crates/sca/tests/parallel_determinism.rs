//! The parallel attack/sampling harness must be bit-reproducible
//! regardless of worker-thread count: every trial derives its
//! randomness purely from `(master_seed, trial index)` and results are
//! collected in index order.
//!
//! Kept as a single test in its own binary because it mutates
//! process-global environment variables.

use tscache_core::parallel::thread_count;
use tscache_core::setup::SetupKind;
use tscache_sca::bernstein::analyze;
use tscache_sca::evict_time::run_evict_time;
use tscache_sca::prime_probe::run_prime_probe;
use tscache_sca::sampling::{collect_pair, SamplingConfig, TimingSample};

fn with_threads<T>(n: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("RAYON_NUM_THREADS", n);
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

#[test]
fn attack_results_are_bit_identical_across_thread_counts() {
    assert_eq!(with_threads("1", thread_count), 1);
    assert_eq!(with_threads("4", thread_count), 4);

    // Prime+Probe / Evict+Time: trial fan-out.
    let pp1 = with_threads("1", || run_prime_probe(SetupKind::TsCache, 64, 7));
    let pp4 = with_threads("4", || run_prime_probe(SetupKind::TsCache, 64, 7));
    assert_eq!(pp1, pp4);
    let et1 = with_threads("1", || run_evict_time(SetupKind::Deterministic, 64, 3));
    let et4 = with_threads("4", || run_evict_time(SetupKind::Deterministic, 64, 3));
    assert_eq!(et1, et4);

    // Bernstein sampling pair + per-byte correlation sweep.
    let cfg = SamplingConfig::standard(SetupKind::Mbpta, 200, 0xbeef);
    let (ka, kv) = ([0u8; 16], [9u8; 16]);
    let (a1, v1) = with_threads("1", || collect_pair(cfg, &ka, &kv));
    let (a4, v4) = with_threads("4", || collect_pair(cfg, &ka, &kv));
    assert_eq!(a1, a4, "attacker sample stream depends on thread count");
    assert_eq!(v1, v4, "victim sample stream depends on thread count");

    let noise: Vec<TimingSample> = (0..500)
        .map(|i| TimingSample {
            plaintext: core::array::from_fn(|j| (i * 31 + j as u64 * 7) as u8),
            cycles: 10_000 + (i * i) % 97,
        })
        .collect();
    let r1 = with_threads("1", || analyze(&noise, &ka, &noise, &kv));
    let r4 = with_threads("4", || analyze(&noise, &ka, &noise, &kv));
    for (b1, b4) in r1.bytes.iter().zip(&r4.bytes) {
        assert_eq!(b1.scores, b4.scores, "byte {} scores diverge", b1.byte);
        assert_eq!(b1.feasible, b4.feasible);
    }
}
