//! Golden fixtures for the detection campaigns: the fixed-seed
//! Prime+Probe and Flush+Reload ROC outcomes are pinned by digest, so
//! any drift in the sampler, the detector scoring, or the attack
//! harnesses shows up as a one-line diff here instead of silently
//! shifting the README's table.

use tscache_core::setup::SetupKind;
use tscache_sca::detect::{
    run_detection_campaign, DetectTarget, DetectionCampaignConfig, DetectionOutcome,
};

/// FNV-1a over the outcome's observable surface (scores, ROC points,
/// events, latency) — the same digest style `determinism_probe` uses.
fn digest(out: &DetectionOutcome) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut u64s = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    u64s(out.windows);
    for s in out.attack_scores.iter().chain(&out.benign_scores) {
        u64s(s.to_bits());
    }
    for p in out.attack_progress.iter() {
        u64s(p.to_bits());
    }
    for p in &out.roc.points {
        u64s(p.threshold.to_bits());
        u64s(p.fpr.to_bits());
        u64s(p.tpr.to_bits());
    }
    u64s(out.operating_threshold.to_bits());
    for e in &out.events {
        u64s(e.window);
        u64s(e.score.to_bits());
    }
    u64s(out.detection_latency.unwrap_or(u64::MAX));
    h
}

#[test]
fn prime_probe_golden_roc_fixture() {
    let cfg =
        DetectionCampaignConfig::standard(DetectTarget::PrimeProbe, SetupKind::Deterministic, 7);
    let out = run_detection_campaign(&cfg);
    assert!(out.auc() > 0.9, "auc {}", out.auc());
    assert_eq!(out.windows, 24);
    assert_eq!(out.detection_latency, Some(1), "full-rate P+P should be caught in window one");
    assert_eq!(digest(&out), GOLDEN_PRIME_PROBE, "got 0x{:016x}", digest(&out));
}

#[test]
fn flush_reload_golden_roc_fixture() {
    let cfg =
        DetectionCampaignConfig::standard(DetectTarget::FlushReload, SetupKind::Deterministic, 7);
    let out = run_detection_campaign(&cfg);
    assert!(out.auc() > 0.9, "auc {}", out.auc());
    assert_eq!(out.windows, 24);
    assert_eq!(out.detection_latency, Some(1), "full-rate F+R should be caught in window one");
    assert_eq!(digest(&out), GOLDEN_FLUSH_RELOAD, "got 0x{:016x}", digest(&out));
}

/// Pinned digests; recompute (the assert message prints the new value)
/// only for an *intentional* change to the sampler, detector, or
/// harnesses, and say why in the commit.
const GOLDEN_PRIME_PROBE: u64 = 0x4263_cad9_7756_d349;
const GOLDEN_FLUSH_RELOAD: u64 = 0xacb7_55f3_9fff_df70;
