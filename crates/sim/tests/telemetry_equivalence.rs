//! Property tests for the telemetry recorder's observer-only
//! contract: attaching a [`TraceRecorder`] to any measurement
//! configuration — placement policy × hierarchy depth × contention ×
//! platform sharing — changes no simulation outcome, and the recorded
//! stream itself is deterministic. Plus a golden fixture pinning the
//! Chrome trace JSON and curve digests for one fixed seed, so exporter
//! format drift is a deliberate, reviewed change.

use proptest::prelude::*;
use tscache_core::setup::{HierarchyDepth, SetupKind};
use tscache_interference::ContentionConfig;
use tscache_sim::layout::Layout;
use tscache_sim::synthetic::{ArraySweep, PointerChase};
use tscache_sim::workload::{collect_execution_times_with, MeasurementProtocol, Workload};
use tscache_telemetry::digest::fnv64;
use tscache_telemetry::{chrome_trace, exceedance_csv, handle, hist_csv};

fn setup(idx: u8) -> SetupKind {
    match idx % 4 {
        0 => SetupKind::Deterministic,
        1 => SetupKind::RpCache,
        2 => SetupKind::Mbpta,
        _ => SetupKind::TsCache,
    }
}

fn protocol(seed: u64, three_level: bool, contended: bool, shared: bool) -> MeasurementProtocol {
    MeasurementProtocol {
        runs: 5,
        rng_seed: seed,
        depth: if three_level { HierarchyDepth::ThreeLevel } else { HierarchyDepth::TwoLevel },
        contention: contended.then(ContentionConfig::default),
        shared_llc: shared,
        ..Default::default()
    }
}

fn workload(idx: u8) -> Box<dyn Workload> {
    let mut layout = Layout::new(0x10_000);
    if idx.is_multiple_of(2) {
        Box::new(ArraySweep::standard(&mut layout))
    } else {
        Box::new(PointerChase::standard(&mut layout))
    }
}

proptest! {
    /// Recorder-on and recorder-off runs of the same protocol agree on
    /// every execution time, across all four placement setups, both
    /// depths, solo/contended, and private/shared-LLC platforms — and
    /// the recorder's own digest reproduces run over run.
    #[test]
    fn recorder_is_observer_only_across_the_lattice(
        setup_idx in 0u8..4,
        wl_idx in 0u8..2,
        three_level in prop::bool::ANY,
        contended in prop::bool::ANY,
        shared in prop::bool::ANY,
        seed in 1u64..1_000_000,
    ) {
        let kind = setup(setup_idx);
        let proto = protocol(seed, three_level, contended, shared);

        let off = collect_execution_times_with(kind, &mut *workload(wl_idx), &proto, None);

        let rec = handle(4096);
        let on = collect_execution_times_with(kind, &mut *workload(wl_idx), &proto, Some(&rec));
        prop_assert_eq!(&off, &on, "recorder changed the measured times");
        let first = rec.borrow().clone();
        prop_assert!(first.recorded() > 0, "instrumented run recorded no events");

        // A second recorded run replays the identical event stream:
        // digest, drop count, and per-core histograms all reproduce.
        let rec2 = handle(4096);
        let again = collect_execution_times_with(kind, &mut *workload(wl_idx), &proto, Some(&rec2));
        prop_assert_eq!(&on, &again);
        let second = rec2.borrow().clone();
        prop_assert_eq!(first.digest(), second.digest(), "trace digest not reproducible");
        prop_assert_eq!(first.recorded(), second.recorded());
        prop_assert_eq!(first.dropped(), second.dropped());
        prop_assert_eq!(
            first.merged_histogram().to_sparse(),
            second.merged_histogram().to_sparse()
        );
    }

    /// The trace digest is ring-capacity invariant: a recorder too
    /// small to retain the stream still fingerprints all of it.
    #[test]
    fn digest_is_ring_capacity_invariant(
        setup_idx in 0u8..4,
        seed in 1u64..1_000_000,
    ) {
        let kind = setup(setup_idx);
        let proto = protocol(seed, false, false, false);
        let big = handle(1 << 16);
        let tiny = handle(8);
        collect_execution_times_with(kind, &mut *workload(0), &proto, Some(&big));
        collect_execution_times_with(kind, &mut *workload(0), &proto, Some(&tiny));
        let (big, tiny) = (big.borrow(), tiny.borrow());
        prop_assert_eq!(big.digest(), tiny.digest(), "digest depends on ring capacity");
        prop_assert_eq!(big.recorded(), tiny.recorded());
        prop_assert!(tiny.dropped() > 0, "tiny ring never overflowed — the case is vacuous");
    }
}

/// Golden fixture: one fixed seed, pinned export fingerprints. If an
/// exporter's byte format or the instrumented event stream changes,
/// these constants must be re-derived *deliberately* (print the new
/// values from the assertion message) — campaign `digests.txt` files
/// on disk are only comparable across code that agrees on them.
#[test]
fn golden_trace_and_curve_digests_for_the_fixed_seed() {
    const GOLDEN_TRACE_DIGEST: u64 = 0xcd2e_848f_4ee2_dcf6;
    const GOLDEN_CHROME_FNV: u64 = 0x339f_b3c3_9136_ecb3;
    const GOLDEN_EXCEEDANCE_FNV: u64 = 0xefd8_152f_e7ec_038d;
    const GOLDEN_HIST_FNV: u64 = 0x4124_3c85_12a8_5706;

    let rec = handle(1 << 14);
    let mut layout = Layout::new(0x10_000);
    let mut sweep = ArraySweep::standard(&mut layout);
    let proto = MeasurementProtocol { runs: 8, rng_seed: 0x5eed, ..Default::default() };
    let times = collect_execution_times_with(SetupKind::TsCache, &mut sweep, &proto, Some(&rec));
    let rec = rec.borrow();

    let chrome = chrome_trace(&rec.records());
    assert!(chrome.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(chrome.ends_with("]}\n"));

    let exceedance = exceedance_csv(&times);
    let hist = hist_csv(&rec.merged_histogram());
    assert_eq!(
        (
            rec.digest(),
            fnv64(chrome.as_bytes()),
            fnv64(exceedance.as_bytes()),
            fnv64(hist.as_bytes())
        ),
        (GOLDEN_TRACE_DIGEST, GOLDEN_CHROME_FNV, GOLDEN_EXCEEDANCE_FNV, GOLDEN_HIST_FNV),
        "telemetry export fingerprints drifted — re-pin them only for a deliberate format change"
    );
}
