//! The execution-driven machine: a cache hierarchy plus a pipeline
//! cost model and a cycle counter.
//!
//! Workloads (the instrumented AES cipher, the synthetic kernels) issue
//! loads, stores, instruction fetches and ALU batches; the machine
//! accumulates their cycle cost. This reproduces the timing channel of
//! the paper's cycle-accurate simulator: *all* input-dependent timing
//! variability flows through the cache hierarchy.

use crate::pipeline::PipelineModel;
use tscache_core::addr::{Addr, LineAddr};
use tscache_core::cache::{WritePolicy, Writeback};
use tscache_core::defense::DefenseKind;
use tscache_core::hierarchy::{AccessKind, Hierarchy, LlcRequests, OpTiming, SharedLlc};
use tscache_core::prng::mix64;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};
use tscache_interference::{
    run_contended_segment_shared_with, run_contended_segment_with, CoRunner, ContentionConfig,
    SystemConfig,
};
use tscache_telemetry::{Event, RecorderHandle};

/// One memory operation of a pre-built trace, consumed by
/// [`Machine::run_trace`] (defined in `tscache_core::hierarchy`, where
/// the batch path executes it).
pub use tscache_core::hierarchy::TraceOp;

/// One recorded memory event (when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which port the access used.
    pub kind: AccessKind,
    /// The byte address accessed.
    pub addr: Addr,
    /// Cycle cost charged for the access.
    pub cost: u32,
}

/// An execution-driven machine.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::Addr;
/// use tscache_core::seed::{ProcessId, Seed};
/// use tscache_core::setup::SetupKind;
/// use tscache_sim::machine::Machine;
///
/// let mut m = Machine::from_setup(SetupKind::TsCache, 42);
/// let pid = ProcessId::new(1);
/// m.set_process_seed(pid, Seed::new(7));
/// m.set_process(pid);
/// m.load(Addr::new(0x8000));
/// m.execute(10);
/// assert!(m.cycles() > 10);
/// ```
#[derive(Debug)]
pub struct Machine {
    hierarchy: Hierarchy,
    pipeline: PipelineModel,
    pid: ProcessId,
    cycles: u64,
    trace: Option<Vec<TraceEvent>>,
    instret: u64,
    /// Enemy cores contending for the shared bus (empty = solo).
    co_runners: Vec<CoRunner>,
    /// Bus/MSHR model; armed by [`set_interference`](Self::set_interference).
    interference: Option<SystemConfig>,
    /// Lifetime cycles lost to bus queuing + MSHR stalls (survives
    /// `reset_counters`; see [`contention_cycles`](Self::contention_cycles)).
    contention_cycles: u64,
    /// Reused per-segment timing scratch of the contended batch path.
    timing_scratch: Vec<OpTiming>,
    /// The platform's shared last-level cache, when this machine runs
    /// on a shared-LLC multicore (the per-core `hierarchy` then holds
    /// only the private levels).
    shared_llc: Option<SharedLlc>,
    /// Declared coherent regions `(start, size)`, kept so co-runner
    /// cores attached later inherit them.
    coherent_regions: Vec<(Addr, u64)>,
    /// Reused per-segment scratch of the shared-LLC batch path.
    llc_scratch: LlcRequests,
    /// Reused writeback scratch of the shared-LLC scalar ops.
    wb_scratch: Vec<Writeback>,
    /// Optional telemetry recorder; observer-only — outcomes are
    /// bit-identical with and without it (see
    /// [`set_recorder`](Self::set_recorder)).
    recorder: Option<RecorderHandle>,
}

impl Machine {
    /// Creates a machine over an explicit hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Machine {
            hierarchy,
            pipeline: PipelineModel::default(),
            pid: ProcessId::new(1),
            cycles: 0,
            trace: None,
            instret: 0,
            co_runners: Vec::new(),
            interference: None,
            contention_cycles: 0,
            timing_scratch: Vec::new(),
            shared_llc: None,
            coherent_regions: Vec::new(),
            llc_scratch: LlcRequests::default(),
            wb_scratch: Vec::new(),
            recorder: None,
        }
    }

    /// Attaches a telemetry recorder: [`run_trace`](Self::run_trace)
    /// then emits per-level hit/miss walks, writebacks, bus grants,
    /// MSHR events and per-op spans into it. The recorder is strictly
    /// an observer — cache state, cycle totals and statistics are
    /// bit-identical with and without one attached (the contended and
    /// shared engines thread it through as a side channel; the solo
    /// batch path switches to its timed twin, which the differential
    /// suites pin to the untimed walk).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = Some(recorder);
    }

    /// Detaches the telemetry recorder, returning the machine to the
    /// bookkeeping-free hot path.
    pub fn clear_recorder(&mut self) {
        self.recorder = None;
    }

    /// The attached telemetry recorder, if any.
    pub fn recorder(&self) -> Option<&RecorderHandle> {
        self.recorder.as_ref()
    }

    /// Creates a machine on a shared-LLC multicore platform: the
    /// per-core private hierarchy ([`SetupKind::build_private`]) in
    /// front of the platform's shared last level
    /// ([`SetupKind::build_shared_llc`]), with the bus/MSHR model
    /// armed. Co-runner cores attach via
    /// [`attach_standard_enemies`](Self::attach_standard_enemies) or
    /// [`add_co_runner`](Self::add_co_runner) and then contend for the
    /// shared cache *state*, not just the bus.
    pub fn from_setup_shared(
        setup: SetupKind,
        depth: HierarchyDepth,
        system: SystemConfig,
        rng_seed: u64,
    ) -> Self {
        let mut machine = Machine::new(setup.build_private(depth, rng_seed));
        machine.shared_llc = Some(setup.build_shared_llc(depth, rng_seed));
        machine.set_interference(system);
        machine
    }

    /// Creates a machine for one of the paper's four setups (the
    /// classic two-level hierarchy).
    pub fn from_setup(setup: SetupKind, rng_seed: u64) -> Self {
        Machine::new(setup.build(rng_seed))
    }

    /// Creates a machine for a setup at an explicit hierarchy depth
    /// (e.g. the three-level presets with an L3).
    pub fn from_setup_depth(setup: SetupKind, depth: HierarchyDepth, rng_seed: u64) -> Self {
        Machine::new(setup.build_depth(depth, rng_seed))
    }

    /// Replaces the pipeline cost model.
    pub fn set_pipeline(&mut self, pipeline: PipelineModel) {
        self.pipeline = pipeline;
    }

    /// The pipeline cost model.
    pub fn pipeline(&self) -> PipelineModel {
        self.pipeline
    }

    /// Switches the executing process (does not drain the pipeline; use
    /// [`context_switch`](Machine::context_switch) for the full cost).
    pub fn set_process(&mut self, pid: ProcessId) {
        self.pid = pid;
    }

    /// The currently executing process.
    pub fn process(&self) -> ProcessId {
        self.pid
    }

    /// Performs an OS context switch to `pid`: drains the pipeline
    /// (the seed-swap cost of §5) and charges `extra_cycles` of OS
    /// bookkeeping.
    pub fn context_switch(&mut self, pid: ProcessId, extra_cycles: u32) {
        self.cycles += self.pipeline.drain_cycles() as u64 + extra_cycles as u64;
        self.pid = pid;
    }

    /// Sets the placement seed of `pid` across the hierarchy (and the
    /// shared last level, when this machine runs on one).
    pub fn set_process_seed(&mut self, pid: ProcessId, seed: Seed) {
        self.hierarchy.set_process_seed(pid, seed);
        if let Some(llc) = self.shared_llc.as_mut() {
            llc.set_process_seed(pid, seed);
        }
    }

    /// Arms a defense-zoo policy across this machine: TTL/normalize
    /// knobs on every private level and — when the machine runs on a
    /// shared LLC — the seed-rotation schedule there. Attached enemy
    /// co-runners keep their undefended private hierarchies (the
    /// defense protects the platform under test, not the adversary's
    /// core), matching how the paper evaluates per-core mitigations.
    pub fn apply_defense(&mut self, defense: DefenseKind) {
        self.hierarchy.apply_defense(defense);
        if let Some(llc) = self.shared_llc.as_mut() {
            llc.apply_defense(defense);
        }
    }

    /// Installs a shared last-level cache behind the (private)
    /// hierarchy; from then on every access resolves its last level
    /// against it. Prefer [`from_setup_shared`](Self::from_setup_shared)
    /// unless you need a custom LLC.
    pub fn set_shared_llc(&mut self, llc: SharedLlc) {
        self.shared_llc = Some(llc);
    }

    /// The shared last level, when this machine runs on one.
    pub fn shared_llc(&self) -> Option<&SharedLlc> {
        self.shared_llc.as_ref()
    }

    /// Mutably borrows the shared last level (partition and seed
    /// management, attacker probes).
    pub fn shared_llc_mut(&mut self) -> Option<&mut SharedLlc> {
        self.shared_llc.as_mut()
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Retired instruction count (ALU batches + fetched instructions).
    pub fn instructions(&self) -> u64 {
        self.instret
    }

    /// Resets the cycle and instruction counters (cache state remains).
    pub fn reset_counters(&mut self) {
        self.cycles = 0;
        self.instret = 0;
    }

    /// Flushes all caches — the private hierarchy, every co-runner
    /// enemy's private hierarchy, and, on a shared-LLC platform, the
    /// shared level (hyperperiod boundary in the TSCache OS; the OS
    /// owns the whole *node*, enemy cores and shared level included —
    /// leaving enemy caches warm would carry state, and stale copies
    /// of invalidated shared lines, across the flush boundary).
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush_all();
        for co in &mut self.co_runners {
            co.flush();
        }
        if let Some(llc) = self.shared_llc.as_mut() {
            llc.flush();
        }
    }

    /// Declares `size` bytes at `start` as a *coherent region*: a
    /// shared read-mostly segment (e.g. an AES T-table every core
    /// maps) kept coherent by the platform's MSI-style invalidation
    /// protocol. Wired into the private hierarchy, every attached
    /// co-runner (current and future), and the shared level, which
    /// arms its directory. Only meaningful on shared-LLC machines;
    /// on a private-hierarchy machine the region only tags line state.
    ///
    /// Declare coherent regions *before* issuing traffic to them:
    /// copies cached before the declaration are not directory-tracked
    /// (they drain only on flush/eviction, like any untracked line).
    /// Already-attached co-runners are re-classified — their buffered
    /// lookahead is discarded so the next segment re-evaluates whether
    /// their traces are still pre-batchable under the new ranges.
    pub fn add_coherent_range(&mut self, start: Addr, size: u64) {
        self.coherent_regions.push((start, size));
        self.hierarchy.add_coherent_range(start, size);
        for co in &mut self.co_runners {
            co.hierarchy_mut().add_coherent_range(start, size);
            co.reclassify();
        }
        if let Some(llc) = self.shared_llc.as_mut() {
            llc.add_coherent_range(start, size);
        }
    }

    /// Borrows the hierarchy (for statistics inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Mutably borrows the hierarchy (for seed management and flushes).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// Arms the multi-core interference model: once at least one
    /// co-runner is attached, every [`run_trace`](Self::run_trace)
    /// segment contends with the enemies for the shared bus (and pays
    /// MSHR structural stalls). The scalar convenience ops
    /// ([`load`](Self::load), [`store`](Self::store),
    /// [`run_block`](Self::run_block)) stay uncontended — they model
    /// background activity, not the measured trace replay.
    pub fn set_interference(&mut self, cfg: SystemConfig) {
        self.interference = Some(cfg);
    }

    /// Attaches an enemy core. Its cache state and trace position
    /// persist across segments (steady-state interference). The
    /// machine's declared coherent regions are mirrored into the
    /// enemy's hierarchy so its fills carry line state too.
    pub fn add_co_runner(&mut self, mut co: CoRunner) {
        for &(start, size) in &self.coherent_regions {
            co.hierarchy_mut().add_coherent_range(start, size);
        }
        self.co_runners.push(co);
    }

    /// Attaches `con.co_runners` enemy cores, each a fresh hierarchy
    /// of `setup` at `depth` cyclically replaying the FIR enemy kernel
    /// (`crate::synthetic::FirFilter`), arms the bus/MSHR model, and —
    /// when `con.write_back` is set — switches every core (including
    /// this machine) to write-back caches so dirty evictions join the
    /// bus traffic. Everything derives from `seed`, so campaigns stay
    /// reproducible.
    pub fn attach_standard_enemies(
        &mut self,
        setup: SetupKind,
        depth: HierarchyDepth,
        con: &ContentionConfig,
        seed: u64,
    ) {
        let shared = self.shared_llc.is_some();
        if con.write_back {
            self.hierarchy.set_write_policy(WritePolicy::WriteBack);
            if let Some(llc) = self.shared_llc.as_mut() {
                llc.set_write_policy(WritePolicy::WriteBack);
            }
        }
        self.set_interference(con.system);
        let mut layout = crate::layout::Layout::new(0x10_0000);
        let mut fir = crate::synthetic::FirFilter::standard(&mut layout);
        let fir_ops = fir.trace_ops(self);
        // Interleave a 512 KiB cyclic read stream (one read per eight
        // compute ops) through the FIR kernel: the buffer exceeds
        // every cache level, so the enemy sustains real memory traffic
        // even once the FIR working set is L2-resident — the DMA-like
        // bus pressure a compute-only kernel lacks.
        let mut ops = Vec::with_capacity(fir_ops.len() + fir_ops.len() / 8 + 1);
        let mut stream = 0u64;
        for (i, op) in fir_ops.iter().enumerate() {
            ops.push(*op);
            if i % 8 == 7 {
                ops.push(TraceOp::read(Addr::new(0x80_0000 + (stream % 16384) * 32)));
                stream += 1;
            }
        }
        for k in 0..con.co_runners {
            let mut enemy = if shared {
                setup.build_private(depth, mix64(seed ^ 0xc0de ^ k as u64))
            } else {
                setup.build_depth(depth, mix64(seed ^ 0xc0de ^ k as u64))
            };
            if con.write_back {
                enemy.set_write_policy(WritePolicy::WriteBack);
            }
            let pid = ProcessId::new(200 + k as u16);
            let enemy_seed = Seed::new(mix64(seed ^ 0xe11e0 ^ (k as u64) << 32));
            enemy.set_process_seed(pid, enemy_seed);
            // On a shared platform the enemies touch per-core disjoint
            // address spaces (the measured node's objects live below
            // 16 MiB): co-runner interference flows through shared-LLC
            // *contention*, not accidental data sharing, and the shared
            // level sees the enemy under its own pid and seed.
            let ops = if shared {
                if let Some(llc) = self.shared_llc.as_mut() {
                    llc.set_process_seed(pid, enemy_seed);
                }
                let base = (1 + k as u64) << 24;
                ops.iter()
                    .map(|op| TraceOp { kind: op.kind, addr: Addr::new(op.addr.as_u64() + base) })
                    .collect()
            } else {
                ops.clone()
            };
            self.add_co_runner(CoRunner::new(enemy, pid, ops));
        }
    }

    /// The attached enemy cores.
    pub fn co_runners(&self) -> &[CoRunner] {
        &self.co_runners
    }

    /// Mutably borrows the enemy cores (seed management at epoch
    /// boundaries).
    pub fn co_runners_mut(&mut self) -> &mut [CoRunner] {
        &mut self.co_runners
    }

    /// Whether trace replay currently contends with enemy cores.
    pub fn is_contended(&self) -> bool {
        self.interference.is_some() && !self.co_runners.is_empty()
    }

    /// Cycles this machine has lost to shared-bus queuing and MSHR
    /// structural stalls over its whole lifetime. Unlike
    /// [`cycles`](Self::cycles) this counter is *not* cleared by
    /// [`reset_counters`](Self::reset_counters), so campaign layers
    /// that reset per job can still difference it across epochs (the
    /// RTOS report does exactly that).
    pub fn contention_cycles(&self) -> u64 {
        self.contention_cycles
    }

    /// Starts recording memory events.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the events captured so far.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    #[inline]
    fn record(&mut self, kind: AccessKind, addr: Addr, cost: u32) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent { kind, addr, cost });
        }
    }

    /// One scalar access through the full platform: the private
    /// hierarchy, then — on a shared-LLC machine — the shared level
    /// (writebacks delivered first, fill resolved in place). Like the
    /// other scalar convenience ops this models solo background
    /// activity and never arbitrates for the bus.
    #[inline]
    fn hier_access(&mut self, kind: AccessKind, addr: Addr) -> u32 {
        if kind == AccessKind::Flush {
            return self.flush_op(addr);
        }
        let Some(llc) = self.shared_llc.as_mut() else {
            return self.hierarchy.access(self.pid, kind, addr);
        };
        self.wb_scratch.clear();
        let up =
            self.hierarchy.access_upper_detailed(self.pid, kind, addr, 0, &mut self.wb_scratch);
        let (r, evicted) = llc.resolve_evict(self.pid, up.fill, &self.wb_scratch);
        let cycles = up.cycles + r.cycles;
        if up.fill.is_some_and(|l| llc.is_coherent_line(l)) {
            // This machine is core 0 of its platform: a tracked fill
            // records it in the directory, exactly as trace replay
            // through the segment engine would.
            llc.note_sharer(up.fill.expect("checked above"), 0);
        }
        if let Some(victim) = evicted {
            // Inclusive back-invalidation, exactly as the engines
            // apply it: a tracked line leaving the shared level takes
            // every private copy with it.
            self.scalar_back_invalidate(victim);
        }
        if kind == AccessKind::Write {
            self.coherence_upgrade(addr);
        }
        cycles
    }

    /// The scalar form of the engines' inclusive back-invalidation:
    /// `victim` was displaced from the shared level, so — when it is
    /// coherence-tracked — every directory-listed private copy is
    /// drained (core 0 = this machine's hierarchy under the current
    /// process, core `j` = co-runner `j-1` under its own pid).
    fn scalar_back_invalidate(&mut self, victim: LineAddr) {
        let Some(llc) = self.shared_llc.as_mut() else { return };
        if !llc.is_coherent_line(victim) {
            return;
        }
        let mut bits = llc.clear_sharers(victim);
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if j == 0 {
                self.hierarchy.invalidate_line(self.pid, victim);
            } else if j - 1 < self.co_runners.len() {
                self.co_runners[j - 1].invalidate_line(victim);
            }
        }
    }

    /// The scalar upgrade: a write to a coherence-tracked line drains
    /// every other holder's private copies and leaves this machine
    /// (core 0) as the sole directory entry. Mirrors the segment
    /// engine's upgrade step, minus the bus transaction (scalar
    /// convenience ops never arbitrate).
    fn coherence_upgrade(&mut self, addr: Addr) {
        let line = addr.line(self.hierarchy.l1i().geometry().offset_bits());
        let Some(llc) = self.shared_llc.as_mut() else { return };
        if !llc.is_coherent_line(line) {
            return;
        }
        let others = llc.retain_sharer(line, 0);
        let mut bits = others;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if j >= 1 && j - 1 < self.co_runners.len() {
                self.co_runners[j - 1].invalidate_line(line);
            }
        }
    }

    /// The scalar line-flush op (`TraceOp::flush` issued outside trace
    /// replay): drains the current process's copies from the private
    /// hierarchy, and — when the line is coherence-tracked on the
    /// shared level — every coherent copy platform-wide: the co-runner
    /// cores' private copies (via the directory), the shared-level
    /// copies under every core's placement view, and the directory
    /// entry itself. Untracked lines never reach the shared level:
    /// outside the coherence protocol a flush is core-local, exactly
    /// like trace replay through the engines. Returns the flush's
    /// issue cost (one L1 slot).
    fn flush_op(&mut self, addr: Addr) -> u32 {
        let line = addr.line(self.hierarchy.l1i().geometry().offset_bits());
        self.hierarchy.invalidate_line(self.pid, line);
        if let Some(llc) = self.shared_llc.as_mut() {
            if llc.is_coherent_line(line) {
                let mut bits = llc.clear_sharers(line) & !1u32;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if j - 1 < self.co_runners.len() {
                        self.co_runners[j - 1].invalidate_line(line);
                    }
                }
                llc.invalidate_copy(self.pid, line);
                for co in &mut self.co_runners {
                    llc.invalidate_copy(co.pid(), line);
                }
            }
        }
        self.hierarchy.l1_hit_cycles()
    }

    /// Issues a line flush (the Flush+Reload attacker primitive, the
    /// scalar form of [`TraceOp::flush`]); returns its cycle cost. See
    /// [`AccessKind::Flush`] for the semantics.
    pub fn flush_line(&mut self, addr: Addr) -> u32 {
        let cost = self.hier_access(AccessKind::Flush, addr);
        self.cycles += cost as u64;
        self.record(AccessKind::Flush, addr, cost);
        cost
    }

    /// Issues a data load; returns its cycle cost.
    #[inline]
    pub fn load(&mut self, addr: Addr) -> u32 {
        let cost = self.hier_access(AccessKind::Read, addr);
        self.cycles += cost as u64;
        self.record(AccessKind::Read, addr, cost);
        cost
    }

    /// Issues a data load whose value feeds the next instruction,
    /// adding the load-use stall.
    #[inline]
    pub fn load_use(&mut self, addr: Addr) -> u32 {
        let cost = self.load(addr) + self.pipeline.load_use_stall;
        self.cycles += self.pipeline.load_use_stall as u64;
        cost
    }

    /// Issues a data store; returns its cycle cost.
    #[inline]
    pub fn store(&mut self, addr: Addr) -> u32 {
        let cost = self.hier_access(AccessKind::Write, addr);
        self.cycles += cost as u64;
        self.record(AccessKind::Write, addr, cost);
        cost
    }

    /// Retires `n` ALU instructions (no memory traffic).
    #[inline]
    pub fn execute(&mut self, n: u32) {
        self.cycles += (n * self.pipeline.cpi) as u64;
        self.instret += n as u64;
    }

    /// Takes a branch (refill penalty).
    #[inline]
    pub fn branch(&mut self) {
        self.cycles += self.pipeline.branch_penalty as u64;
    }

    /// Charges `cycles` of raw stall time (no instructions retired, no
    /// memory traffic) — the batch-port equivalent of the load-use
    /// stall that [`load_use`](Machine::load_use) folds in.
    #[inline]
    pub fn charge_stall(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Executes a pre-built memory trace through the hierarchy's batch
    /// path ([`Hierarchy::access_batch`]) and returns the cycles it
    /// cost.
    ///
    /// This is the batch interface of the simulator hot path: workloads
    /// that can precompute their access stream (the simulated AES
    /// cipher, the synthetic kernels, the RTOS runnables) assemble a
    /// `Vec<TraceOp>` once and replay it. Whole segments run through
    /// each cache level at a time — L2/L3 fills amortize across the
    /// segment — while producing exactly the same cache state and
    /// cycle total as issuing the same operations through
    /// [`load`](Machine::load) / [`store`](Machine::store) / per-line
    /// fetches.
    ///
    /// On a shared-LLC machine the trace runs through the multicore
    /// segment engine instead: cache state still matches the scalar
    /// ops exactly, but trace replay additionally arbitrates for the
    /// memory bus (the scalar convenience ops never do). With no
    /// co-runners and at most one bus transaction per op
    /// (write-through) the bus never queues and the cycle totals agree
    /// too; a write-back op emitting a read *and* writebacks pays the
    /// bus occupancy between its own back-to-back transactions, so
    /// solo write-back replay can exceed the scalar-op total by those
    /// service cycles (booked in
    /// [`contention_cycles`](Self::contention_cycles)).
    ///
    /// When event tracing is enabled the trace runs through the scalar
    /// path instead, so per-op costs can be recorded; outcomes are
    /// identical either way. With tracing disabled no per-op
    /// bookkeeping (or allocation) happens at all.
    ///
    /// # Examples
    ///
    /// ```
    /// use tscache_core::addr::Addr;
    /// use tscache_core::setup::SetupKind;
    /// use tscache_sim::machine::{Machine, TraceOp};
    ///
    /// let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
    /// let ops = [TraceOp::read(Addr::new(0x1000)), TraceOp::read(Addr::new(0x1000))];
    /// let cycles = m.run_trace(&ops);
    /// assert_eq!(cycles, 91 + 1); // cold miss then warm hit
    /// ```
    pub fn run_trace(&mut self, ops: &[TraceOp]) -> u64 {
        if self.trace.is_some() {
            // Scalar fallback: per-op costs are observable only here.
            // Event tracing is a debugging view, so it runs solo even
            // on a contended machine.
            let before = self.cycles;
            for op in ops {
                let cost = self.hier_access(op.kind, op.addr);
                self.cycles += cost as u64;
                self.record(op.kind, op.addr, cost);
            }
            return self.cycles - before;
        }
        let cfg = self.interference.unwrap_or_default();
        if let Some(llc) = self.shared_llc.as_mut() {
            // Shared-LLC platform: the segment engine resolves every
            // shared-level fill/writeback in merge order against the
            // one shared cache. With no co-runners it degenerates to
            // the solo shared walk — identical cache state; the only
            // residual cost is bus occupancy between one op's own
            // back-to-back transactions (write-back only, see the doc
            // above).
            let seg = run_contended_segment_shared_with(
                &mut self.hierarchy,
                self.pid,
                ops,
                &mut self.co_runners,
                llc,
                &cfg,
                &mut self.timing_scratch,
                &mut self.llc_scratch,
                self.recorder.as_ref(),
            );
            self.cycles += seg.primary.cycles;
            self.contention_cycles += seg.primary.bus_wait + seg.primary.mshr_stall_cycles;
            return seg.primary.cycles;
        }
        if let Some(cfg) = self.interference.filter(|_| !self.co_runners.is_empty()) {
            let seg = run_contended_segment_with(
                &mut self.hierarchy,
                self.pid,
                ops,
                &mut self.co_runners,
                &cfg,
                &mut self.timing_scratch,
                self.recorder.as_ref(),
            );
            self.cycles += seg.primary.cycles;
            self.contention_cycles += seg.primary.bus_wait + seg.primary.mshr_stall_cycles;
            return seg.primary.cycles;
        }
        if let Some(rec) = self.recorder.clone() {
            // Solo private walk, recorded: the timed batch twin yields
            // per-op timings from the very same engine, so totals and
            // cache state cannot diverge from the untimed path.
            let depth = self.hierarchy.depth();
            let out = self.hierarchy.access_batch_timed(self.pid, ops, &mut self.timing_scratch);
            let mut ts = self.cycles;
            let mut r = rec.borrow_mut();
            for t in &self.timing_scratch {
                for level in 0..depth {
                    let miss = t.miss_mask >> level & 1 == 1;
                    r.record(ts, Event::LevelAccess { core: 0, level: level as u8, hit: !miss });
                    if !miss {
                        break;
                    }
                }
                if t.mem_writebacks > 0 {
                    r.record(ts, Event::Writeback { core: 0, count: t.mem_writebacks });
                }
                r.record(ts, Event::Op { core: 0, cycles: t.cycles, miss_mask: t.miss_mask });
                ts += t.cycles as u64;
            }
            drop(r);
            self.cycles += out.cycles;
            return out.cycles;
        }
        let cycles = self.hierarchy.access_batch_cycles(self.pid, ops);
        self.cycles += cycles;
        cycles
    }

    /// Appends the fetch operations [`run_block`](Machine::run_block)
    /// would issue for `instrs` instructions at `code` (one access per
    /// covered instruction-cache line) to `ops`. The caller charges
    /// the retired instructions separately via
    /// [`execute`](Machine::execute).
    pub fn push_block_fetches(&self, ops: &mut Vec<TraceOp>, code: Addr, instrs: u32) {
        let line_bytes = self.hierarchy.l1i().geometry().line_bytes() as u64;
        let start = code.as_u64();
        let end = start + 4 * instrs as u64;
        let mut line_base = start - (start % line_bytes);
        while line_base < end {
            ops.push(TraceOp::fetch(Addr::new(line_base)));
            line_base += line_bytes;
        }
    }

    /// Fetches and retires a straight-line block of `instrs`
    /// 4-byte instructions starting at `code`.
    ///
    /// The fetch unit touches each covered instruction-cache line once
    /// (sequential fetch within a line does not re-access the cache),
    /// then the instructions retire at the base CPI.
    pub fn run_block(&mut self, code: Addr, instrs: u32) {
        let line_bytes = self.hierarchy.l1i().geometry().line_bytes() as u64;
        let start = code.as_u64();
        let end = start + 4 * instrs as u64;
        let mut line_base = start - (start % line_bytes);
        while line_base < end {
            let cost = self.hier_access(AccessKind::Fetch, Addr::new(line_base));
            self.cycles += cost as u64;
            self.record(AccessKind::Fetch, Addr::new(line_base), cost);
            line_base += line_bytes;
        }
        self.execute(instrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::from_setup(SetupKind::Deterministic, 5)
    }

    #[test]
    fn execute_charges_cpi() {
        let mut m = machine();
        m.execute(10);
        assert_eq!(m.cycles(), 10);
        assert_eq!(m.instructions(), 10);
    }

    #[test]
    fn load_cold_then_warm() {
        let mut m = machine();
        let a = Addr::new(0x9000);
        let cold = m.load(a);
        let warm = m.load(a);
        assert_eq!(cold, 91);
        assert_eq!(warm, 1);
        assert_eq!(m.cycles(), 92);
    }

    #[test]
    fn load_use_adds_stall() {
        let mut m = machine();
        let a = Addr::new(0x9000);
        m.load(a); // warm the line
        let c = m.load_use(a);
        assert_eq!(c, 1 + 1);
    }

    #[test]
    fn run_block_touches_each_line_once() {
        let mut m = machine();
        // 16 instructions = 64 bytes = 2 lines.
        m.run_block(Addr::new(0x1000), 16);
        assert_eq!(m.hierarchy().l1i().stats().accesses(), 2);
        assert_eq!(m.instructions(), 16);
        // Second run: both lines warm → 2 hits + 16 cycles.
        let before = m.cycles();
        m.run_block(Addr::new(0x1000), 16);
        assert_eq!(m.cycles() - before, 2 + 16);
    }

    #[test]
    fn run_block_unaligned_start() {
        let mut m = machine();
        // Start mid-line: 4 instructions from 0x101c cross into 0x1020.
        m.run_block(Addr::new(0x101c), 4);
        assert_eq!(m.hierarchy().l1i().stats().accesses(), 2);
    }

    #[test]
    fn context_switch_drains_pipeline() {
        let mut m = machine();
        m.context_switch(ProcessId::new(2), 10);
        assert_eq!(m.cycles(), 5 + 10);
        assert_eq!(m.process(), ProcessId::new(2));
    }

    #[test]
    fn branch_penalty_applies() {
        let mut m = machine();
        m.branch();
        assert_eq!(m.cycles(), 2);
    }

    #[test]
    fn trace_records_events() {
        let mut m = machine();
        m.enable_trace();
        m.load(Addr::new(0x100));
        m.store(Addr::new(0x200));
        let t = m.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, AccessKind::Read);
        assert_eq!(t[1].kind, AccessKind::Write);
        assert!(t[0].cost >= 1);
        // Tracing stopped after take_trace.
        m.load(Addr::new(0x300));
        assert!(m.take_trace().is_empty());
    }

    #[test]
    fn run_trace_matches_scalar_issue_exactly() {
        let ops: Vec<TraceOp> = (0..400u64)
            .map(|i| {
                let addr = Addr::new(0x2000 + (i * 7 % 96) * 32);
                match i % 3 {
                    0 => TraceOp::read(addr),
                    1 => TraceOp::write(addr),
                    _ => TraceOp::fetch(addr),
                }
            })
            .collect();
        let mut scalar = Machine::from_setup(SetupKind::TsCache, 5);
        let mut batched = Machine::from_setup(SetupKind::TsCache, 5);
        for op in &ops {
            match op.kind {
                AccessKind::Read => {
                    scalar.load(op.addr);
                }
                AccessKind::Write => {
                    scalar.store(op.addr);
                }
                AccessKind::Fetch | AccessKind::Flush => {
                    let cost = scalar.hierarchy.access(scalar.pid, op.kind, op.addr);
                    scalar.cycles += cost as u64;
                }
            }
        }
        let cycles = batched.run_trace(&ops);
        assert_eq!(cycles, scalar.cycles());
        assert_eq!(batched.cycles(), scalar.cycles());
        assert_eq!(batched.hierarchy().total_stats(), scalar.hierarchy().total_stats());
    }

    #[test]
    fn run_trace_matches_scalar_on_three_level_hierarchy() {
        let ops: Vec<TraceOp> = (0..600u64)
            .map(|i| {
                let addr = Addr::new((i * 2099) % (1 << 19));
                match i % 4 {
                    0 => TraceOp::fetch(addr),
                    1 | 2 => TraceOp::read(addr),
                    _ => TraceOp::write(addr),
                }
            })
            .collect();
        let mk = || {
            Machine::from_setup_depth(
                SetupKind::TsCache,
                tscache_core::setup::HierarchyDepth::ThreeLevel,
                5,
            )
        };
        let mut scalar = mk();
        let mut batched = mk();
        for op in &ops {
            let cost = scalar.hierarchy.access(scalar.pid, op.kind, op.addr);
            scalar.cycles += cost as u64;
        }
        assert_eq!(batched.run_trace(&ops), scalar.cycles());
        assert_eq!(batched.hierarchy().total_stats(), scalar.hierarchy().total_stats());
        assert!(batched.hierarchy().l3().is_some());
    }

    #[test]
    fn run_trace_records_nothing_when_tracing_disabled() {
        let mut m = machine();
        m.run_trace(&[TraceOp::read(Addr::new(0x100)), TraceOp::write(Addr::new(0x200))]);
        assert!(m.take_trace().is_empty(), "events recorded with tracing off");
        // And the traced path charges the same cycles as the batch path.
        let ops: Vec<TraceOp> = (0..200u64).map(|i| TraceOp::read(Addr::new(i * 96))).collect();
        let mut fast = machine();
        let mut traced = machine();
        traced.enable_trace();
        let a = fast.run_trace(&ops);
        let b = traced.run_trace(&ops);
        assert_eq!(a, b);
        assert_eq!(traced.take_trace().len(), ops.len());
    }

    #[test]
    fn run_trace_records_events_when_tracing() {
        let mut m = machine();
        m.enable_trace();
        m.run_trace(&[TraceOp::read(Addr::new(0x100)), TraceOp::write(Addr::new(0x200))]);
        let t = m.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, AccessKind::Read);
        assert_eq!(t[1].kind, AccessKind::Write);
    }

    #[test]
    fn push_block_fetches_matches_run_block() {
        let mut scalar = machine();
        let mut batched = machine();
        // Unaligned start crossing a line boundary.
        scalar.run_block(Addr::new(0x101c), 4);
        let mut ops = Vec::new();
        batched.push_block_fetches(&mut ops, Addr::new(0x101c), 4);
        batched.run_trace(&ops);
        batched.execute(4);
        assert_eq!(batched.cycles(), scalar.cycles());
        assert_eq!(batched.instructions(), scalar.instructions());
        assert_eq!(batched.hierarchy().l1i().stats(), scalar.hierarchy().l1i().stats());
    }

    #[test]
    fn charge_stall_adds_raw_cycles() {
        let mut m = machine();
        m.charge_stall(17);
        assert_eq!(m.cycles(), 17);
        assert_eq!(m.instructions(), 0);
    }

    #[test]
    fn contended_run_trace_is_deterministic_and_dominates_solo() {
        // Mixed hit/miss costs: a perfectly periodic all-miss loop can
        // phase-lock with an equally periodic enemy into zero bus
        // overlap (op-granular request times are lattice-quantized);
        // the interleaved hot-line reads shift the phase op by op, as
        // any real workload's cost mix does.
        let ops: Vec<TraceOp> = (0..700u64)
            .map(|i| {
                if i % 5 == 0 {
                    TraceOp::read(Addr::new(0x540))
                } else {
                    TraceOp::read(Addr::new((i * 4099) % (1 << 18)))
                }
            })
            .collect();
        let run = |contended: bool| {
            let mut m = Machine::from_setup(SetupKind::TsCache, 5);
            m.set_process_seed(ProcessId::new(1), Seed::new(3));
            if contended {
                m.attach_standard_enemies(
                    SetupKind::TsCache,
                    HierarchyDepth::TwoLevel,
                    &ContentionConfig { write_back: false, ..ContentionConfig::default() },
                    99,
                );
                assert!(m.is_contended());
            }
            let mut cycles = Vec::new();
            for _ in 0..4 {
                cycles.push(m.run_trace(&ops));
            }
            (cycles, m.contention_cycles())
        };
        let (solo, solo_wait) = run(false);
        let (contended, wait) = run(true);
        assert_eq!(solo, run(false).0, "solo runs must be reproducible");
        assert_eq!(contended, run(true).0, "contended runs must be reproducible");
        assert_eq!(solo_wait, 0);
        assert!(wait > 0, "enemy core never delayed the trace");
        for (s, c) in solo.iter().zip(&contended) {
            assert!(c >= s, "contended segment cheaper than solo ({c} < {s})");
        }
        // write_back=false leaves cache behaviour untouched, so the
        // contended cycle count is exactly solo + contention.
        assert_eq!(contended.iter().sum::<u64>(), solo.iter().sum::<u64>() + wait);
    }

    #[test]
    fn enemy_cores_do_not_perturb_primary_cache_state() {
        let ops: Vec<TraceOp> =
            (0..500u64).map(|i| TraceOp::read(Addr::new((i * 1031) % (1 << 16)))).collect();
        let mut solo = Machine::from_setup(SetupKind::TsCache, 5);
        let mut contended = Machine::from_setup(SetupKind::TsCache, 5);
        contended.attach_standard_enemies(
            SetupKind::TsCache,
            HierarchyDepth::TwoLevel,
            &ContentionConfig { write_back: false, ..ContentionConfig::default() },
            7,
        );
        solo.run_trace(&ops);
        contended.run_trace(&ops);
        assert_eq!(solo.hierarchy().total_stats(), contended.hierarchy().total_stats());
        // The enemy really executed something meanwhile.
        assert!(contended.co_runners()[0].hierarchy().total_stats().accesses() > 0);
    }

    #[test]
    fn shared_machine_run_trace_matches_scalar_ops() {
        // Write-through platform: at most one bus transaction per op,
        // so a solo core never self-queues and the segment engine must
        // agree with the (bus-free) scalar ops cycle for cycle.
        let ops: Vec<TraceOp> =
            (0..600u64).map(|i| TraceOp::read(Addr::new((i * 3091) % (1 << 18)))).collect();
        let mk = || {
            let mut m = Machine::from_setup_shared(
                SetupKind::TsCache,
                HierarchyDepth::TwoLevel,
                SystemConfig::default(),
                5,
            );
            m.set_process_seed(ProcessId::new(1), Seed::new(3));
            m
        };
        let mut scalar = mk();
        let mut batched = mk();
        for op in &ops {
            scalar.load(op.addr);
        }
        let cycles = batched.run_trace(&ops);
        assert_eq!(cycles, scalar.cycles());
        assert_eq!(batched.hierarchy().total_stats(), scalar.hierarchy().total_stats());
        assert_eq!(
            batched.shared_llc().unwrap().cache().stats(),
            scalar.shared_llc().unwrap().cache().stats()
        );
        assert_eq!(batched.contention_cycles(), 0, "solo write-through core self-queued");
        assert!(batched.shared_llc().unwrap().cache().stats().misses() > 0);
        // Both depths build: three-level keeps a private L2 in front.
        let m3 = Machine::from_setup_shared(
            SetupKind::TsCache,
            HierarchyDepth::ThreeLevel,
            SystemConfig::default(),
            5,
        );
        assert_eq!(m3.hierarchy().depth(), 2);
        assert!(m3.shared_llc().is_some());
    }

    #[test]
    fn shared_contended_machine_reproduces_and_enemies_reach_the_llc() {
        let ops: Vec<TraceOp> =
            (0..800u64).map(|i| TraceOp::read(Addr::new((i * 4099) % (1 << 18)))).collect();
        let run = || {
            let mut m = Machine::from_setup_shared(
                SetupKind::TsCache,
                HierarchyDepth::TwoLevel,
                SystemConfig::default(),
                5,
            );
            m.set_process_seed(ProcessId::new(1), Seed::new(3));
            m.attach_standard_enemies(
                SetupKind::TsCache,
                HierarchyDepth::TwoLevel,
                &ContentionConfig { write_back: false, ..ContentionConfig::default() },
                99,
            );
            let cycles: Vec<u64> = (0..3).map(|_| m.run_trace(&ops)).collect();
            let llc = *m.shared_llc().unwrap().cache().stats();
            (cycles, m.contention_cycles(), llc)
        };
        let (cycles, wait, llc) = run();
        assert_eq!(run(), (cycles, wait, llc), "shared contended campaign must reproduce");
        assert!(wait > 0, "enemy never delayed the measured core");
        // The enemy's traffic really flows through the shared level
        // (accesses beyond what the measured core issues alone).
        let mut solo = Machine::from_setup_shared(
            SetupKind::TsCache,
            HierarchyDepth::TwoLevel,
            SystemConfig::default(),
            5,
        );
        solo.set_process_seed(ProcessId::new(1), Seed::new(3));
        for _ in 0..3 {
            solo.run_trace(&ops);
        }
        assert!(llc.accesses() > solo.shared_llc().unwrap().cache().stats().accesses());
    }

    #[test]
    fn reset_counters_keeps_cache_state() {
        let mut m = machine();
        let a = Addr::new(0x5000);
        m.load(a);
        m.reset_counters();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.load(a), 1, "cache must still be warm");
    }

    #[test]
    fn flush_caches_cools() {
        let mut m = machine();
        let a = Addr::new(0x5000);
        m.load(a);
        m.flush_caches();
        assert_eq!(m.load(a), 91);
    }

    #[test]
    fn flush_caches_cools_co_runner_enemies_too() {
        // The PR-5 hyperperiod-flush fix: the OS owns the whole node,
        // so a flush may not leave enemy cores' private caches warm.
        let ops: Vec<TraceOp> =
            (0..600u64).map(|i| TraceOp::read(Addr::new((i * 4099) % (1 << 18)))).collect();
        let mut m = Machine::from_setup(SetupKind::TsCache, 5);
        m.attach_standard_enemies(
            SetupKind::TsCache,
            HierarchyDepth::TwoLevel,
            &ContentionConfig::default(),
            7,
        );
        m.run_trace(&ops);
        let warm: usize = m
            .co_runners()
            .iter()
            .map(|co| co.hierarchy().l1d().occupancy() + co.hierarchy().l2().occupancy())
            .sum();
        assert!(warm > 0, "enemies never warmed up — the pin is vacuous");
        m.flush_caches();
        for (k, co) in m.co_runners().iter().enumerate() {
            let h = co.hierarchy();
            let left: usize = h.l1i().occupancy()
                + h.l1d().occupancy()
                + h.unified_levels().map(|c| c.occupancy()).sum::<usize>();
            assert_eq!(left, 0, "enemy {k} kept {left} warm lines across flush_caches");
        }
        // The enemy's trace *position* deliberately survives the flush
        // (only its cache state cools), so replay within one machine
        // phases differently; whole-lifecycle reproducibility is what
        // must hold: two identical machines running the identical
        // run→flush→run sequence agree cycle for cycle.
        let lifecycle = || {
            let mut m = Machine::from_setup(SetupKind::TsCache, 5);
            m.attach_standard_enemies(
                SetupKind::TsCache,
                HierarchyDepth::TwoLevel,
                &ContentionConfig::default(),
                7,
            );
            let a = m.run_trace(&ops);
            m.flush_caches();
            let b = m.run_trace(&ops);
            (a, b, m.contention_cycles())
        };
        assert_eq!(lifecycle(), lifecycle(), "contended flush lifecycle not reproducible");
    }

    #[test]
    fn scalar_ops_back_invalidate_on_tracked_llc_eviction() {
        // Inclusive back-invalidation must also fire on the scalar
        // convenience path: displacing a tracked line from the shared
        // level through plain loads takes the private copies with it.
        let mut m = Machine::from_setup_shared(
            SetupKind::Deterministic,
            HierarchyDepth::TwoLevel,
            SystemConfig::default(),
            5,
        );
        let tracked = Addr::new(0x8000);
        m.add_coherent_range(tracked, 32);
        m.load(tracked); // private + shared fill, sharer recorded
        assert_eq!(m.load(tracked), 1, "tracked line must be L1-resident");
        // Evict it from the 2048-set 4-way shared L2 with conflicting
        // (untracked) lines 64 KiB apart, re-touching the tracked line
        // between conflicts so its *L1* copy stays MRU-protected: only
        // the back-invalidation can remove it from the private level
        // (L1 hits never refresh the shared level's LRU, so the LLC
        // still picks the tracked line as its victim).
        for k in 1..=4u64 {
            m.load(Addr::new(0x8000 + k * 2048 * 32));
            if k < 4 {
                assert_eq!(m.load(tracked), 1, "L1 copy lost before the LLC eviction");
            }
        }
        assert!(
            m.hierarchy().total_stats().coh_invalidations() > 0,
            "LLC eviction of the tracked line never reached the private levels"
        );
        // The private copy is gone: the reload misses end to end.
        assert_eq!(m.load(tracked), 91, "private copy survived the back-invalidation");
    }

    #[test]
    fn flush_line_drains_the_coherent_platform_and_matches_trace_replay() {
        // A shared segment on a coherent shared-LLC machine: the
        // scalar flush primitive and trace-replay flush ops must agree
        // cycle for cycle and state for state. Flushes are spaced
        // behind expensive misses so the solo bus never queues (the
        // same condition the existing write-through equality pin uses).
        let base = Addr::new(0x8000);
        let mk = || {
            let mut m = Machine::from_setup_shared(
                SetupKind::Deterministic,
                HierarchyDepth::TwoLevel,
                SystemConfig::default(),
                5,
            );
            m.add_coherent_range(base, 512);
            m
        };
        let mut ops = Vec::new();
        for i in 0..200u64 {
            ops.push(TraceOp::read(Addr::new(0x8000 + (i % 16) * 32)));
            ops.push(TraceOp::read(Addr::new(0x40_0000 + i * 4096)));
            if i % 4 == 3 {
                ops.push(TraceOp::flush(Addr::new(0x8000 + (i % 16) * 32)));
                ops.push(TraceOp::read(Addr::new(0x50_0000 + i * 4096)));
            }
        }
        let mut scalar = mk();
        let mut batched = mk();
        for op in &ops {
            match op.kind {
                AccessKind::Read => {
                    scalar.load(op.addr);
                }
                AccessKind::Flush => {
                    scalar.flush_line(op.addr);
                }
                _ => unreachable!(),
            }
        }
        let cycles = batched.run_trace(&ops);
        // Trace replay arbitrates the bus (a flush broadcast one cycle
        // behind a miss queues for the tail of its service window);
        // the scalar convenience ops never do. The queuing is exactly
        // the contention_cycles book entry — net of it, the two paths
        // must agree cycle for cycle, and state must match outright.
        assert_eq!(
            cycles,
            scalar.cycles() + batched.contention_cycles(),
            "flush trace replay diverged from scalar ops beyond bus occupancy"
        );
        assert_eq!(batched.hierarchy().total_stats(), scalar.hierarchy().total_stats());
        assert_eq!(
            batched.shared_llc().unwrap().cache().stats(),
            scalar.shared_llc().unwrap().cache().stats()
        );
        // The flushes really drained private copies along the way.
        assert!(
            scalar.hierarchy().l1d().stats().coh_invalidations() > 0,
            "no flush ever found a private copy"
        );
    }
}
