//! Memory layout management.
//!
//! The paper's time-composability argument (`mbpta-p1`) revolves around
//! *memory layouts changing across software integrations*: a function's
//! code, globals and stack move, producing arbitrarily different cache
//! conflicts under deterministic placement. [`Layout`] models a linker
//! view of memory — named regions allocated at (optionally page-
//! aligned) addresses — and supports re-linking at a different offset
//! to emulate an integration change.

use core::fmt;
use std::collections::BTreeMap;
use tscache_core::addr::Addr;

/// A named, contiguous memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    size: u64,
}

impl Region {
    /// First byte address of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Address `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= size` (the access would leave the region).
    #[inline]
    pub fn at(&self, offset: u64) -> Addr {
        assert!(offset < self.size, "offset {offset} outside region of {} bytes", self.size);
        self.base.offset(offset)
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.base.offset(self.size)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.base, self.end())
    }
}

/// A linker-style memory map: named regions allocated sequentially.
///
/// # Examples
///
/// ```
/// use tscache_sim::layout::Layout;
///
/// let mut l = Layout::new(0x1_0000);
/// let code = l.alloc("code", 4096, 4096);
/// let tables = l.alloc("tables", 4096, 4096);
/// assert_eq!(code.base().as_u64(), 0x1_0000);
/// assert_eq!(tables.base().as_u64(), 0x1_1000);
/// assert_eq!(l.region("code"), Some(code));
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    cursor: u64,
    regions: BTreeMap<String, Region>,
}

impl Layout {
    /// Creates an empty layout starting at `base`.
    pub fn new(base: u64) -> Self {
        Layout { cursor: base, regions: BTreeMap::new() }
    }

    /// Allocates `size` bytes aligned to `align` (power of two) under
    /// `name`, returning the region.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two, `size` is zero, or the
    /// name is already taken.
    pub fn alloc(&mut self, name: &str, size: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "zero-sized region");
        assert!(!self.regions.contains_key(name), "region {name:?} already allocated");
        let base = (self.cursor + align - 1) & !(align - 1);
        self.cursor = base + size;
        let region = Region { base: Addr::new(base), size };
        self.regions.insert(name.to_string(), region);
        region
    }

    /// Looks a region up by name.
    pub fn region(&self, name: &str) -> Option<Region> {
        self.regions.get(name).copied()
    }

    /// Iterates regions in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Region)> + '_ {
        self.regions.iter().map(|(n, r)| (n.as_str(), *r))
    }

    /// First free address after all allocations.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Re-creates this layout shifted by `delta` bytes — the paper's
    /// "different software integration" scenario where every object
    /// moves (page alignment is preserved if `delta` is page-sized).
    pub fn relinked(&self, delta: u64) -> Layout {
        let mut out = Layout::new(self.cursor + delta);
        out.regions = self
            .regions
            .iter()
            .map(|(n, r)| {
                (n.clone(), Region { base: Addr::new(r.base.as_u64() + delta), size: r.size })
            })
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut l = Layout::new(0x10);
        let a = l.alloc("a", 100, 1);
        let b = l.alloc("b", 64, 4096);
        assert_eq!(a.base().as_u64(), 0x10);
        assert_eq!(b.base().as_u64(), 0x1000);
    }

    #[test]
    fn at_is_bounds_checked() {
        let mut l = Layout::new(0);
        let r = l.alloc("r", 32, 1);
        assert_eq!(r.at(31).as_u64(), 31);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn at_panics_out_of_bounds() {
        let mut l = Layout::new(0);
        let r = l.alloc("r", 32, 1);
        r.at(32);
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn duplicate_names_rejected() {
        let mut l = Layout::new(0);
        l.alloc("x", 8, 1);
        l.alloc("x", 8, 1);
    }

    #[test]
    fn relink_shifts_every_region() {
        let mut l = Layout::new(0x1000);
        l.alloc("code", 4096, 4096);
        l.alloc("data", 4096, 4096);
        let moved = l.relinked(0x1_0000);
        assert_eq!(
            moved.region("code").unwrap().base().as_u64(),
            l.region("code").unwrap().base().as_u64() + 0x1_0000
        );
        assert_eq!(moved.region("data").unwrap().size(), 4096);
    }

    #[test]
    fn iter_in_name_order() {
        let mut l = Layout::new(0);
        l.alloc("b", 8, 1);
        l.alloc("a", 8, 1);
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
