//! # tscache-sim — execution-driven timing simulator
//!
//! A lightweight substitute for the paper's SoCLib-based cycle-accurate
//! ARM920T model: workloads drive a [`machine::Machine`] that charges
//! per-instruction pipeline costs plus exact cache hit/miss latencies
//! through a [`tscache_core::hierarchy::Hierarchy`]. All input-dependent
//! timing flows through the caches, which is the channel both MBPTA and
//! the side-channel attacks observe.
//!
//! * [`machine`] — the machine: loads/stores/fetches/ALU batches,
//!   cycle accounting, per-process seeds, context switches.
//! * [`pipeline`] — the 5-stage in-order cost model.
//! * [`layout`] — linker-style memory maps (and re-linking, for the
//!   time-composability experiments).
//! * [`workload`] — the workload trait and the MBPTA measurement
//!   protocol.
//! * [`synthetic`] — array sweep, pointer chase, matrix multiply and a
//!   multipath control task.
//!
//! ## Example
//!
//! ```
//! use tscache_core::setup::SetupKind;
//! use tscache_sim::layout::Layout;
//! use tscache_sim::machine::Machine;
//! use tscache_sim::synthetic::MultipathTask;
//! use tscache_sim::workload::Workload;
//!
//! let mut layout = Layout::new(0x10_0000);
//! let mut task = MultipathTask::standard(&mut layout);
//! let mut machine = Machine::from_setup(SetupKind::TsCache, 7);
//! task.run(&mut machine);
//! assert!(machine.cycles() > 0);
//! ```

pub mod layout;
pub mod machine;
pub mod pipeline;
pub mod synthetic;
pub mod workload;

pub use layout::{Layout, Region};
pub use machine::{Machine, TraceEvent, TraceOp};
pub use pipeline::PipelineModel;
pub use workload::{
    collect_execution_times, collect_execution_times_par, MeasurementProtocol, Workload,
};
