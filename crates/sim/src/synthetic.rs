//! Synthetic workloads for the pWCET and miss-rate experiments.
//!
//! These are the kind of kernels MBPTA case studies measure: array
//! sweeps (spatial locality), pointer chases (none), a blocked matrix
//! multiply (mixed), and a multipath control task whose paths touch
//! different data (execution-time variability under random layouts).

use crate::layout::{Layout, Region};
use crate::machine::{Machine, TraceOp};
use crate::workload::Workload;
use tscache_core::addr::Addr;
use tscache_core::prng::{Prng, SplitMix64};

/// A workload's pre-assembled memory trace, keyed by the I-cache line
/// size it was built for: the fetch stream from
/// [`Machine::push_block_fetches`] depends on that geometry, so
/// replaying the same workload on a machine with a different line size
/// must rebuild instead of silently reusing a stale trace.
#[derive(Debug, Clone, Default)]
struct CachedTrace {
    ops: Vec<TraceOp>,
    /// Line size the ops were built for; 0 = not built yet.
    line_bytes: u32,
}

impl CachedTrace {
    /// Returns the cached ops, rebuilding through `build` when unbuilt
    /// or built for a different I-cache line size.
    fn for_machine(
        &mut self,
        machine: &Machine,
        build: impl FnOnce(&Machine, &mut Vec<TraceOp>),
    ) -> &[TraceOp] {
        let line_bytes = machine.hierarchy().l1i().geometry().line_bytes();
        if self.line_bytes != line_bytes {
            self.ops.clear();
            build(machine, &mut self.ops);
            self.line_bytes = line_bytes;
        }
        &self.ops
    }
}

/// Sequential array sweep: `iters` passes over a region with `stride`.
#[derive(Debug, Clone)]
pub struct ArraySweep {
    code: Region,
    data: Region,
    stride: u64,
    iters: u32,
    /// One pass's memory operations, replayed through the batch API.
    trace: CachedTrace,
}

impl ArraySweep {
    /// Creates a sweep over `data`, fetching loop code from `code`.
    pub fn new(code: Region, data: Region, stride: u64, iters: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        ArraySweep { code, data, stride, iters, trace: CachedTrace::default() }
    }

    /// The standard instance used by the benches: 24 KiB of data (1.5×
    /// the L1 way count), word stride, 4 passes.
    pub fn standard(layout: &mut Layout) -> Self {
        let code = layout.alloc("sweep.code", 256, 32);
        let data = layout.alloc("sweep.data", 24 * 1024, 4096);
        ArraySweep::new(code, data, 32, 4)
    }
}

impl Workload for ArraySweep {
    fn name(&self) -> &str {
        "array-sweep"
    }

    fn run(&mut self, machine: &mut Machine) {
        // Assemble one pass's trace once: the loop body's fetches and
        // the strided loads, in the exact order the scalar path issued
        // them; the instruction retire cost is order-independent and
        // charged per pass.
        let (code, data, stride) = (self.code, self.data, self.stride);
        let ops = self.trace.for_machine(machine, |machine, ops| {
            let mut off = 0;
            while off < data.size() {
                machine.push_block_fetches(ops, code.base(), 4);
                ops.push(TraceOp::read(data.at(off)));
                off += stride;
            }
        });
        let elems = self.data.size().div_ceil(self.stride) as u32;
        for _ in 0..self.iters {
            machine.run_trace(ops);
            machine.execute(4 * elems);
            machine.branch();
        }
    }
}

/// Pointer chase through a pseudo-random permutation of nodes.
#[derive(Debug, Clone)]
pub struct PointerChase {
    code: Region,
    data: Region,
    order: Vec<u64>,
    steps: u32,
    /// The full chase's memory operations, replayed batched.
    trace: CachedTrace,
}

impl PointerChase {
    /// Creates a chase of `steps` hops over `nodes` nodes laid out in
    /// `data` (one node per 32-byte line), visiting them in a
    /// `perm_seed`-shuffled order.
    pub fn new(code: Region, data: Region, nodes: u32, steps: u32, perm_seed: u64) -> Self {
        assert!((nodes as u64) * 32 <= data.size(), "region too small for {nodes} nodes");
        let mut order: Vec<u64> = (0..nodes as u64).collect();
        let mut rng = SplitMix64::new(perm_seed);
        rng.shuffle(&mut order);
        PointerChase { code, data, order, steps, trace: CachedTrace::default() }
    }

    /// The standard instance: 768 nodes (24 KiB — 1.5× the L1 capacity,
    /// so layout decides which nodes conflict), 2048 hops.
    pub fn standard(layout: &mut Layout) -> Self {
        let code = layout.alloc("chase.code", 128, 32);
        let data = layout.alloc("chase.data", 24 * 1024, 4096);
        PointerChase::new(code, data, 768, 2048, 0xc4a5e)
    }
}

impl Workload for PointerChase {
    fn name(&self) -> &str {
        "pointer-chase"
    }

    fn run(&mut self, machine: &mut Machine) {
        let n = self.order.len() as u32;
        let (code, data, steps, order) = (self.code, self.data, self.steps, &self.order);
        let ops = self.trace.for_machine(machine, |machine, ops| {
            for step in 0..steps {
                let node = order[(step % n) as usize];
                machine.push_block_fetches(ops, code.base(), 3);
                ops.push(TraceOp::read(data.at(node * 32)));
            }
        });
        machine.run_trace(ops);
        machine.execute(3 * self.steps);
        // The load-use stall of every dependent load.
        machine.charge_stall(self.steps as u64 * machine.pipeline().load_use_stall as u64);
    }
}

/// Naive `n × n` matrix multiply over three word matrices.
#[derive(Debug, Clone)]
pub struct MatrixMult {
    code: Region,
    a: Region,
    b: Region,
    c: Region,
    n: u64,
    /// The full multiply's memory operations, replayed batched.
    trace: CachedTrace,
}

impl MatrixMult {
    /// Creates an `n × n` multiply; each matrix needs `4n²` bytes.
    pub fn new(code: Region, a: Region, b: Region, c: Region, n: u64) -> Self {
        for (name, r) in [("a", &a), ("b", &b), ("c", &c)] {
            assert!(4 * n * n <= r.size(), "matrix {name} does not fit");
        }
        MatrixMult { code, a, b, c, n, trace: CachedTrace::default() }
    }

    /// The standard instance: 40×40 words per matrix (6.4 KiB each, so
    /// the three matrices overcommit the 16 KiB L1 and the conflict set
    /// depends on the layout).
    pub fn standard(layout: &mut Layout) -> Self {
        let code = layout.alloc("mm.code", 512, 32);
        let a = layout.alloc("mm.a", 4 * 40 * 40, 4096);
        let b = layout.alloc("mm.b", 4 * 40 * 40, 4096);
        let c = layout.alloc("mm.c", 4 * 40 * 40, 4096);
        MatrixMult::new(code, a, b, c, 40)
    }
}

impl Workload for MatrixMult {
    fn name(&self) -> &str {
        "matrix-mult"
    }

    fn run(&mut self, machine: &mut Machine) {
        let n = self.n;
        // Assemble the whole multiply's memory stream once, in the
        // exact order the scalar path issued it: per (i, j) the loop
        // body's fetches, the alternating a/b loads of the k loop,
        // then the c store. Instruction retire, load-use stalls and
        // branch penalties are order-independent constants charged in
        // bulk below.
        let (code, a, b, c) = (self.code, self.a, self.b, self.c);
        let ops = self.trace.for_machine(machine, |machine, ops| {
            for i in 0..n {
                for j in 0..n {
                    machine.push_block_fetches(ops, code.base(), 6);
                    for k in 0..n {
                        ops.push(TraceOp::read(a.at(4 * (i * n + k))));
                        ops.push(TraceOp::read(b.at(4 * (k * n + j))));
                    }
                    ops.push(TraceOp::write(c.at(4 * (i * n + j))));
                }
            }
        });
        machine.run_trace(ops);
        // 6 block instructions per cell plus 2 per multiply-accumulate;
        // totals exceed u32 for large n, so retire in bounded chunks.
        let mut instrs = 6 * n * n + 2 * n * n * n;
        while instrs > 0 {
            let chunk = instrs.min(1 << 20) as u32;
            machine.execute(chunk);
            instrs -= chunk as u64;
        }
        let pipeline = machine.pipeline();
        machine.charge_stall((n * n * n) * pipeline.load_use_stall as u64);
        machine.charge_stall((n * n) * pipeline.branch_penalty as u64);
    }
}

/// A multipath control task: per job, a fixed input vector selects one
/// of several data-touching paths per step. Its execution-time
/// variability under random placement is what the pWCET experiment
/// (Fig. 1) analyses.
#[derive(Debug, Clone)]
pub struct MultipathTask {
    code: Region,
    data: Region,
    inputs: Vec<u8>,
    paths: u32,
    /// The job's memory operations (fixed, since the input vector is
    /// fixed), replayed batched.
    trace: CachedTrace,
}

impl MultipathTask {
    /// Creates a task with `steps` decisions over `paths` alternative
    /// paths; the decision vector is drawn once from `input_seed`
    /// (inputs stay fixed across runs — only the cache layout varies).
    pub fn new(code: Region, data: Region, steps: u32, paths: u32, input_seed: u64) -> Self {
        assert!((1..=16).contains(&paths), "1..=16 paths supported");
        assert!(data.size() >= paths as u64 * 4096, "need one page per path");
        let mut rng = SplitMix64::new(input_seed);
        let inputs = (0..steps).map(|_| (rng.below(paths)) as u8).collect();
        MultipathTask { code, data, inputs, paths, trace: CachedTrace::default() }
    }

    /// The standard instance: 256 steps over 6 paths (one 4 KiB page
    /// each — a 24 KiB working set exceeding one L1 way).
    pub fn standard(layout: &mut Layout) -> Self {
        let code = layout.alloc("mp.code", 1024, 32);
        let data = layout.alloc("mp.data", 6 * 4096, 4096);
        MultipathTask::new(code, data, 256, 6, 0x17bc7)
    }
}

impl Workload for MultipathTask {
    fn name(&self) -> &str {
        "multipath"
    }

    fn run(&mut self, machine: &mut Machine) {
        // The decision vector is fixed, so the whole job's memory
        // stream is too: assemble it once (each path has its own code
        // block and data page; each step touches a path-and-step-
        // dependent slice of the page) and replay it batched.
        let (code, data, inputs) = (self.code, self.data, &self.inputs);
        let ops = self.trace.for_machine(machine, |machine, ops| {
            for (step, &path) in inputs.iter().enumerate() {
                machine.push_block_fetches(ops, code.at((path as u64) * 128), 8);
                let page = data.at((path as u64) * 4096);
                let base = ((step as u64 * 5) % 32) * 96;
                for w in 0..12u64 {
                    ops.push(TraceOp::read(Addr::new(page.as_u64() + base + w * 32)));
                }
            }
        });
        machine.run_trace(ops);
        let steps = self.inputs.len() as u32;
        machine.execute((8 + 16) * steps);
        machine.charge_stall(steps as u64 * machine.pipeline().branch_penalty as u64);
        let _ = self.paths;
    }
}

/// EEMBC-like FIR filter: convolves an `n`-sample signal with a
/// `taps`-coefficient kernel, writing one output word per sample. The
/// sliding signal window has strong spatial locality, the coefficient
/// array is hot, and the output stream is write-only — the classic
/// automotive-suite profile, and (via [`trace_ops`](FirFilter::trace_ops))
/// the standard *enemy workload* replayed by co-runner cores in
/// contended campaigns: its steady read+write mix keeps the shared bus
/// busy with both fills and dirty writebacks.
#[derive(Debug, Clone)]
pub struct FirFilter {
    code: Region,
    signal: Region,
    coeffs: Region,
    output: Region,
    samples: u32,
    taps: u32,
    /// The full convolution's memory operations, replayed batched.
    trace: CachedTrace,
}

impl FirFilter {
    /// Creates a FIR filter over `samples` input words and `taps`
    /// coefficients (the signal region needs `4·(samples + taps)`
    /// bytes so the final windows stay in bounds).
    pub fn new(
        code: Region,
        signal: Region,
        coeffs: Region,
        output: Region,
        samples: u32,
        taps: u32,
    ) -> Self {
        assert!(taps > 0, "FIR needs at least one tap");
        assert!(4 * (samples as u64 + taps as u64) <= signal.size(), "signal region too small");
        assert!(4 * taps as u64 <= coeffs.size(), "coefficient region too small");
        assert!(4 * samples as u64 <= output.size(), "output region too small");
        FirFilter { code, signal, coeffs, output, samples, taps, trace: CachedTrace::default() }
    }

    /// The standard instance: 4096 samples, 16 taps — a 16 KiB signal
    /// stream plus a 16 KiB output stream over the 16 KiB L1, so the
    /// convolution continuously evicts (dirty) lines: exactly the
    /// fill + writeback bus pressure an enemy core should generate.
    pub fn standard(layout: &mut Layout) -> Self {
        let code = layout.alloc("fir.code", 256, 32);
        let signal = layout.alloc("fir.signal", 4 * (4096 + 16), 4096);
        let coeffs = layout.alloc("fir.coeffs", 4 * 16, 32);
        let output = layout.alloc("fir.out", 4 * 4096, 4096);
        FirFilter::new(code, signal, coeffs, output, 4096, 16)
    }

    /// Appends the convolution's ops: per sample the loop body's
    /// fetches, the alternating signal/coefficient loads of the tap
    /// loop, then the output store.
    fn build(
        machine: &Machine,
        ops: &mut Vec<TraceOp>,
        (code, signal, coeffs, output): (Region, Region, Region, Region),
        samples: u32,
        taps: u32,
    ) {
        for i in 0..samples as u64 {
            machine.push_block_fetches(ops, code.base(), 6);
            for t in 0..taps as u64 {
                ops.push(TraceOp::read(signal.at(4 * (i + t))));
                ops.push(TraceOp::read(coeffs.at(4 * t)));
            }
            ops.push(TraceOp::write(output.at(4 * i)));
        }
    }

    /// The kernel's pre-assembled memory trace for `machine`'s
    /// geometry — the co-runner enemy-workload hook
    /// ([`CoRunner`](tscache_interference::CoRunner) replays it
    /// cyclically on its own hierarchy).
    pub fn trace_ops(&mut self, machine: &Machine) -> Vec<TraceOp> {
        let regions = (self.code, self.signal, self.coeffs, self.output);
        let (samples, taps) = (self.samples, self.taps);
        self.trace
            .for_machine(machine, |m, ops| Self::build(m, ops, regions, samples, taps))
            .to_vec()
    }
}

impl Workload for FirFilter {
    fn name(&self) -> &str {
        "fir-filter"
    }

    fn run(&mut self, machine: &mut Machine) {
        let regions = (self.code, self.signal, self.coeffs, self.output);
        let (samples, taps) = (self.samples, self.taps);
        let ops =
            self.trace.for_machine(machine, |m, ops| Self::build(m, ops, regions, samples, taps));
        machine.run_trace(ops);
        // 6 block instructions plus 2 per multiply-accumulate per
        // sample; each MAC's signal load feeds the multiplier.
        machine.execute((6 + 2 * self.taps) * self.samples);
        let pipeline = machine.pipeline();
        machine
            .charge_stall(self.samples as u64 * self.taps as u64 * pipeline.load_use_stall as u64);
        machine.charge_stall(self.samples as u64 * pipeline.branch_penalty as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{collect_execution_times, MeasurementProtocol};
    use tscache_core::setup::SetupKind;

    fn layout() -> Layout {
        Layout::new(0x10_0000)
    }

    #[test]
    fn sweep_runs_and_accounts_cycles() {
        let mut l = layout();
        let mut w = ArraySweep::standard(&mut l);
        let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
        w.run(&mut m);
        assert!(m.cycles() > 0);
        assert!(m.hierarchy().l1d().stats().accesses() > 0);
    }

    #[test]
    fn sweep_second_pass_is_warmer() {
        let mut l = layout();
        // One pass over 8 KiB fits L1 entirely.
        let code = l.alloc("c", 256, 32);
        let data = l.alloc("d", 8 * 1024, 4096);
        let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
        let mut first = ArraySweep::new(code, data, 32, 1);
        first.run(&mut m);
        let cold = m.cycles();
        m.reset_counters();
        first.run(&mut m);
        assert!(m.cycles() < cold, "warm {} !< cold {cold}", m.cycles());
    }

    #[test]
    fn chase_visits_every_node() {
        let mut l = layout();
        let code = l.alloc("c", 128, 32);
        let data = l.alloc("d", 4096, 4096);
        let mut w = PointerChase::new(code, data, 128, 128, 7);
        let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
        m.enable_trace();
        w.run(&mut m);
        let trace = m.take_trace();
        let reads: std::collections::BTreeSet<u64> = trace
            .iter()
            .filter(|e| e.kind == tscache_core::hierarchy::AccessKind::Read)
            .map(|e| e.addr.as_u64())
            .collect();
        assert_eq!(reads.len(), 128, "each node visited once per cycle of 128 steps");
    }

    #[test]
    fn matrix_mult_touches_three_matrices() {
        let mut l = layout();
        let mut w = MatrixMult::standard(&mut l);
        let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
        w.run(&mut m);
        let stats = m.hierarchy().l1d().stats();
        // n³ loads ×2 + n² stores.
        assert_eq!(stats.accesses(), 2 * 40 * 40 * 40 + 40 * 40);
    }

    #[test]
    fn multipath_time_varies_across_seeds_on_mbpta_cache() {
        let mut l = layout();
        let mut w = MultipathTask::standard(&mut l);
        let protocol = MeasurementProtocol { runs: 40, ..Default::default() };
        let times = collect_execution_times(SetupKind::Mbpta, &mut w, &protocol);
        let distinct: std::collections::BTreeSet<u64> = times.iter().copied().collect();
        assert!(distinct.len() > 10, "only {} distinct times", distinct.len());
    }

    #[test]
    fn multipath_time_constant_on_deterministic_cache() {
        let mut l = layout();
        let mut w = MultipathTask::standard(&mut l);
        let protocol = MeasurementProtocol { runs: 10, ..Default::default() };
        let times = collect_execution_times(SetupKind::Deterministic, &mut w, &protocol);
        assert!(times.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn cached_trace_rebuilds_on_different_line_size() {
        use tscache_core::cache::Cache;
        use tscache_core::geometry::CacheGeometry;
        use tscache_core::hierarchy::{Hierarchy, Latencies};
        use tscache_core::placement::PlacementKind;
        use tscache_core::replacement::ReplacementKind;

        let wide_lines = |label: &str, sets: u32| {
            Cache::new(
                label,
                CacheGeometry::new(sets, 4, 64).unwrap(),
                PlacementKind::Modulo,
                ReplacementKind::Lru,
                1,
            )
        };
        let mut l = layout();
        let mut w = ArraySweep::standard(&mut l);
        // First run on the standard 32 B-line machine, then on a
        // 64 B-line machine: the cached fetch stream must be rebuilt,
        // matching a fresh workload's accounting exactly.
        let mut narrow = Machine::from_setup(SetupKind::Deterministic, 1);
        w.run(&mut narrow);
        let mut wide = Machine::new(Hierarchy::new(
            wide_lines("L1I", 64),
            wide_lines("L1D", 64),
            wide_lines("L2", 1024),
            Latencies::default(),
        ));
        w.run(&mut wide);
        let mut l2 = layout();
        let mut fresh = ArraySweep::standard(&mut l2);
        let mut wide_fresh = Machine::new(Hierarchy::new(
            wide_lines("L1I", 64),
            wide_lines("L1D", 64),
            wide_lines("L2", 1024),
            Latencies::default(),
        ));
        fresh.run(&mut wide_fresh);
        assert_eq!(wide.cycles(), wide_fresh.cycles(), "stale trace replayed");
        assert_eq!(
            wide.hierarchy().l1i().stats(),
            wide_fresh.hierarchy().l1i().stats(),
            "fetch stream not rebuilt for 64 B lines"
        );
    }

    #[test]
    fn workload_names() {
        let mut l = layout();
        assert_eq!(ArraySweep::standard(&mut l).name(), "array-sweep");
        assert_eq!(PointerChase::standard(&mut l).name(), "pointer-chase");
        assert_eq!(MatrixMult::standard(&mut l).name(), "matrix-mult");
        assert_eq!(MultipathTask::standard(&mut l).name(), "multipath");
        assert_eq!(FirFilter::standard(&mut l).name(), "fir-filter");
    }

    #[test]
    fn fir_touches_signal_coeffs_and_output() {
        let mut l = layout();
        let mut w = FirFilter::standard(&mut l);
        let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
        w.run(&mut m);
        let stats = m.hierarchy().l1d().stats();
        // 2 loads per MAC + 1 store per sample.
        assert_eq!(stats.accesses(), 2 * 4096 * 16 + 4096);
        assert!(m.cycles() > 0);
    }

    #[test]
    fn fir_trace_ops_matches_workload_accounting() {
        let mut l = layout();
        let mut w = FirFilter::standard(&mut l);
        let m = Machine::from_setup(SetupKind::Deterministic, 1);
        let ops = w.trace_ops(&m);
        let mut replay = Machine::from_setup(SetupKind::Deterministic, 1);
        replay.run_trace(&ops);
        let mut l2 = layout();
        let mut fresh = FirFilter::standard(&mut l2);
        let mut direct = Machine::from_setup(SetupKind::Deterministic, 1);
        fresh.run(&mut direct);
        assert_eq!(
            replay.hierarchy().l1d().stats(),
            direct.hierarchy().l1d().stats(),
            "trace replay and workload run must issue identical memory traffic"
        );
    }

    #[test]
    fn fir_generates_writebacks_under_writeback_policy() {
        use tscache_core::cache::WritePolicy;
        let mut l = layout();
        let mut w = FirFilter::standard(&mut l);
        let mut m = Machine::from_setup(SetupKind::Deterministic, 1);
        m.hierarchy_mut().set_write_policy(WritePolicy::WriteBack);
        w.run(&mut m);
        w.run(&mut m);
        assert!(
            m.hierarchy().l1d().stats().writebacks() > 0,
            "output stream never wrote back a dirty line"
        );
    }
}
