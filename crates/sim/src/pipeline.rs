//! In-order pipeline cost model.
//!
//! The paper's platform is a 5-stage in-order core (ARM920T-class,
//! §6.1.2). For the experiments reproduced here only the *memory-
//! induced* execution-time variability matters, so the pipeline is
//! modelled as per-instruction base costs plus stall cycles; cache
//! latencies come from the hierarchy.

use core::fmt;

/// Cost parameters of an in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineModel {
    /// Pipeline depth in stages (drained on context switches; the
    /// TSCache OS empties the pipeline when swapping seeds, §5).
    pub depth: u32,
    /// Base cycles per ALU instruction.
    pub cpi: u32,
    /// Extra cycles on a taken branch (refill bubble).
    pub branch_penalty: u32,
    /// Extra cycles between a load and a dependent use.
    pub load_use_stall: u32,
}

impl PipelineModel {
    /// The ARM920T-class 5-stage configuration used by the paper's
    /// simulator.
    pub const fn arm920t() -> Self {
        PipelineModel { depth: 5, cpi: 1, branch_penalty: 2, load_use_stall: 1 }
    }

    /// Cycles to drain the pipeline (seed swap on SWC context switch).
    pub const fn drain_cycles(&self) -> u32 {
        self.depth
    }
}

impl Default for PipelineModel {
    fn default() -> Self {
        Self::arm920t()
    }
}

impl fmt::Display for PipelineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-stage in-order, CPI {}, branch +{}, load-use +{}",
            self.depth, self.cpi, self.branch_penalty, self.load_use_stall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm920t_is_five_stages() {
        let p = PipelineModel::arm920t();
        assert_eq!(p.depth, 5);
        assert_eq!(p.drain_cycles(), 5);
        assert_eq!(p.cpi, 1);
    }

    #[test]
    fn default_is_arm920t() {
        assert_eq!(PipelineModel::default(), PipelineModel::arm920t());
    }

    #[test]
    fn display_mentions_stages() {
        assert!(PipelineModel::default().to_string().contains("5-stage"));
    }
}
