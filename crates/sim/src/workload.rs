//! Workload abstraction and the measurement protocol used by MBPTA.

use crate::machine::Machine;
use tscache_core::defense::DefenseKind;
use tscache_core::error::ConfigError;
use tscache_core::parallel::par_map_indexed;
use tscache_core::prng::{mix64, SplitMix64};
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};
use tscache_interference::ContentionConfig;
use tscache_telemetry::{Event, FlushScope, RecorderHandle};

/// A program the machine can execute.
pub trait Workload {
    /// Human-readable workload name.
    fn name(&self) -> &str;

    /// Executes one job of the workload on `machine`, issuing fetches,
    /// loads, stores and ALU batches.
    fn run(&mut self, machine: &mut Machine);
}

/// Options for [`collect_execution_times`].
#[derive(Debug, Clone, Copy)]
pub struct MeasurementProtocol {
    /// Number of runs (jobs) to measure.
    pub runs: u32,
    /// Base seed for the per-run placement-seed stream.
    pub rng_seed: u64,
    /// Whether to flush caches before every run (the paper flushes at
    /// seed-change boundaries for consistency, §5).
    pub flush_between_runs: bool,
    /// Whether to draw a fresh placement seed per run (MBPTA's
    /// "new random cache layout on every program run", §2.1).
    pub reseed_between_runs: bool,
    /// Hierarchy depth of the measured platform.
    pub depth: HierarchyDepth,
    /// When set, the machine runs with enemy co-runner cores on a
    /// shared bus (`Machine::attach_standard_enemies`), so the
    /// collected times carry contention — the solo-vs-contended pWCET
    /// experiment's knob.
    pub contention: Option<ContentionConfig>,
    /// When set, the platform's last cache level is *shared* between
    /// the measured core and any co-runners
    /// (`Machine::from_setup_shared`): co-runner traffic then perturbs
    /// the measured core's shared-level contents, not just its bus
    /// timing — the shared-vs-private pWCET experiment's knob.
    pub shared_llc: bool,
    /// Defense-zoo policy armed on the measured platform — the knob
    /// behind the MBPTA-compliance half of each defense's dual verdict
    /// (does the defense keep execution times i.i.d.-analyzable?).
    /// Rotation defenses need `shared_llc` (validated).
    pub defense: DefenseKind,
}

impl MeasurementProtocol {
    /// Validates the protocol, so campaign executors can reject a bad
    /// spec as a [`ConfigError`] (never retried) instead of a worker
    /// thread panicking mid-campaign.
    ///
    /// # Examples
    ///
    /// ```
    /// use tscache_sim::workload::MeasurementProtocol;
    ///
    /// assert!(MeasurementProtocol::default().validate().is_ok());
    /// let bad = MeasurementProtocol { runs: 0, ..Default::default() };
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.runs == 0 {
            return Err(ConfigError::incompatible("measurement protocol needs runs > 0"));
        }
        if self.reseed_between_runs && !self.flush_between_runs {
            return Err(ConfigError::incompatible(
                "reseed_between_runs without flush_between_runs mixes layouts within one \
                 cache image (the paper's §5 protocol flushes at every seed change)",
            ));
        }
        if self.defense.needs_shared_level() && !self.shared_llc {
            return Err(ConfigError::incompatible(
                "seed-rotation defenses need shared_llc: there is no shared level to rotate",
            ));
        }
        Ok(())
    }
}

impl Default for MeasurementProtocol {
    fn default() -> Self {
        MeasurementProtocol {
            runs: 1000,
            rng_seed: 0x4d42_5054,
            flush_between_runs: true,
            reseed_between_runs: true,
            depth: HierarchyDepth::TwoLevel,
            contention: None,
            shared_llc: false,
            defense: DefenseKind::Off,
        }
    }
}

/// Builds the per-run machine of the measurement protocol: setup at
/// the protocol's depth, with enemy cores attached when the protocol
/// is contended. `machine_seed` drives the hierarchy RNG; the enemy
/// derivation mixes it further, so solo and contended runs share per-
/// run placement seeds (contention can only *add* cycles run by run).
fn protocol_machine(
    setup: SetupKind,
    protocol: &MeasurementProtocol,
    machine_seed: u64,
) -> Machine {
    let setup = protocol.defense.effective_setup(setup);
    let mut machine = if protocol.shared_llc {
        Machine::from_setup_shared(
            setup,
            protocol.depth,
            protocol.contention.map(|c| c.system).unwrap_or_default(),
            machine_seed,
        )
    } else {
        Machine::from_setup_depth(setup, protocol.depth, machine_seed)
    };
    machine.apply_defense(protocol.defense);
    if let Some(con) = &protocol.contention {
        machine.attach_standard_enemies(setup, protocol.depth, con, mix64(machine_seed ^ 0xe8e));
    }
    machine
}

/// Collects one execution time per run of `workload` on a machine built
/// for `setup`, following the MBPTA measurement protocol (paper Fig. 1
/// left: run on the target platform, record end-to-end times).
///
/// Returns cycle counts, one per run.
///
/// # Examples
///
/// ```
/// use tscache_core::setup::SetupKind;
/// use tscache_sim::layout::Layout;
/// use tscache_sim::synthetic::ArraySweep;
/// use tscache_sim::workload::{collect_execution_times, MeasurementProtocol};
///
/// let mut layout = Layout::new(0x10_000);
/// let mut sweep = ArraySweep::standard(&mut layout);
/// let protocol = MeasurementProtocol { runs: 10, ..Default::default() };
/// let times = collect_execution_times(SetupKind::Mbpta, &mut sweep, &protocol);
/// assert_eq!(times.len(), 10);
/// ```
pub fn collect_execution_times(
    setup: SetupKind,
    workload: &mut dyn Workload,
    protocol: &MeasurementProtocol,
) -> Vec<u64> {
    collect_execution_times_with(setup, workload, protocol, None)
}

/// [`collect_execution_times`] with an optional telemetry recorder
/// attached to the per-run machine. The recorder is observer-only —
/// the returned times are bit-identical with and without one — and
/// additionally receives a [`FlushScope::Measurement`] cache-flush
/// marker at each run's flush boundary, stamped with the cumulative
/// cycle total so the runs tile the trace timeline end to end.
pub fn collect_execution_times_with(
    setup: SetupKind,
    workload: &mut dyn Workload,
    protocol: &MeasurementProtocol,
    recorder: Option<&RecorderHandle>,
) -> Vec<u64> {
    let mut machine = protocol_machine(setup, protocol, protocol.rng_seed);
    if let Some(rec) = recorder {
        machine.set_recorder(rec.clone());
    }
    let pid = ProcessId::new(1);
    machine.set_process(pid);
    let mut rng = SplitMix64::new(protocol.rng_seed ^ 0x6d65_6173);
    let mut times = Vec::with_capacity(protocol.runs as usize);
    let mut elapsed = 0u64;
    for _ in 0..protocol.runs {
        if protocol.reseed_between_runs {
            machine.set_process_seed(pid, Seed::random(&mut rng));
        }
        if protocol.flush_between_runs {
            machine.flush_caches();
            if let Some(rec) = recorder {
                rec.borrow_mut()
                    .record(elapsed, Event::CacheFlush { scope: FlushScope::Measurement });
            }
        }
        machine.reset_counters();
        workload.run(&mut machine);
        times.push(machine.cycles());
        elapsed += machine.cycles();
    }
    times
}

/// Parallel variant of [`collect_execution_times`] for the independent-
/// runs protocol (flush + reseed between runs, the MBPTA default).
///
/// Runs fan out over worker threads via
/// [`tscache_core::parallel::par_map_indexed`]; each run builds its own
/// machine and workload (`make_workload` is called once per run) and
/// derives its placement seed purely from `(protocol.rng_seed, run)`,
/// so the returned times are **bit-identical for every thread count**
/// — `RAYON_NUM_THREADS=1` and the machine default agree exactly.
///
/// Note the per-run seed derivation differs from the sequential
/// function's single RNG stream, so the two functions return different
/// (equally valid) samples of the same distribution.
///
/// # Panics
///
/// Panics unless `protocol.flush_between_runs` and
/// `protocol.reseed_between_runs` are both set: without them runs are
/// state-dependent and cannot be reordered across threads.
pub fn collect_execution_times_par<W, F>(
    setup: SetupKind,
    protocol: &MeasurementProtocol,
    make_workload: F,
) -> Vec<u64>
where
    W: Workload,
    F: Fn() -> W + Sync,
{
    assert!(
        protocol.flush_between_runs && protocol.reseed_between_runs,
        "parallel collection requires independent runs (flush + reseed between runs)"
    );
    let pid = ProcessId::new(1);
    par_map_indexed(protocol.runs as usize, |run| {
        // Derive the machine RNG (random replacement, RPCache remaps)
        // per run as well: a shared stream would correlate the runs'
        // victim selections and understate sample variance.
        let mut machine =
            protocol_machine(setup, protocol, mix64(protocol.rng_seed ^ 0x6d61_6368 ^ run as u64));
        machine.set_process(pid);
        machine.set_process_seed(
            pid,
            Seed::new(mix64(
                protocol.rng_seed ^ 0x6d65_6173 ^ (run as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )),
        );
        let mut workload = make_workload();
        machine.flush_caches();
        machine.reset_counters();
        workload.run(&mut machine);
        machine.cycles()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscache_core::addr::Addr;

    /// A trivial workload touching a fixed set of lines.
    struct Touch {
        addrs: Vec<u64>,
    }

    impl Workload for Touch {
        fn name(&self) -> &str {
            "touch"
        }

        fn run(&mut self, machine: &mut Machine) {
            // Two passes: the second pass's hits depend on which lines
            // survived the first, i.e. on the (random) conflict layout.
            for _ in 0..2 {
                for &a in &self.addrs {
                    machine.load(Addr::new(a));
                }
            }
            machine.execute(self.addrs.len() as u32);
        }
    }

    #[test]
    fn deterministic_setup_gives_constant_times() {
        let mut w = Touch { addrs: (0..64).map(|i| 0x1000 + i * 32).collect() };
        let protocol = MeasurementProtocol { runs: 20, ..Default::default() };
        let times = collect_execution_times(SetupKind::Deterministic, &mut w, &protocol);
        assert!(times.windows(2).all(|w| w[0] == w[1]), "deterministic times vary: {times:?}");
    }

    #[test]
    fn randomized_setup_gives_varying_times() {
        // Working set larger than one way with cross-page strides so
        // random layouts produce different conflict counts.
        let mut w = Touch { addrs: (0..256).map(|i| 0x1000 + i * 4096 / 8 * 3).collect() };
        let protocol = MeasurementProtocol { runs: 30, ..Default::default() };
        let times = collect_execution_times(SetupKind::Mbpta, &mut w, &protocol);
        let distinct: std::collections::BTreeSet<u64> = times.iter().copied().collect();
        assert!(distinct.len() > 1, "randomized times constant: {times:?}");
    }

    #[test]
    fn parallel_collection_is_thread_count_invariant() {
        // The contract is per-run purity: forcing one thread via the
        // env override must give the same vector as whatever the
        // machine default is. (On a single-core container both paths
        // may be sequential — the derivation is what's under test.)
        let make = || Touch { addrs: (0..64).map(|i| 0x1000 + i * 4096 / 8 * 3).collect() };
        let protocol = MeasurementProtocol { runs: 16, ..Default::default() };
        let a = collect_execution_times_par(SetupKind::Mbpta, &protocol, make);
        let b = collect_execution_times_par(SetupKind::Mbpta, &protocol, make);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let distinct: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert!(distinct.len() > 1, "randomized times constant: {a:?}");
    }

    #[test]
    #[should_panic(expected = "independent runs")]
    fn parallel_collection_rejects_stateful_protocols() {
        let protocol =
            MeasurementProtocol { runs: 2, flush_between_runs: false, ..Default::default() };
        collect_execution_times_par(SetupKind::Mbpta, &protocol, || Touch { addrs: vec![0] });
    }

    #[test]
    fn contended_times_dominate_solo_run_by_run() {
        use crate::layout::Layout;
        use crate::synthetic::ArraySweep;
        // write_back=false keeps cache outcomes identical, so every
        // contended run is the matching solo run plus bus waits.
        let solo = MeasurementProtocol { runs: 12, ..Default::default() };
        let contended = MeasurementProtocol {
            runs: 12,
            contention: Some(ContentionConfig { write_back: false, ..ContentionConfig::default() }),
            ..Default::default()
        };
        let mut a = ArraySweep::standard(&mut Layout::new(0x10_0000));
        let t_solo = collect_execution_times(SetupKind::Mbpta, &mut a, &solo);
        let mut b = ArraySweep::standard(&mut Layout::new(0x10_0000));
        let t_cont = collect_execution_times(SetupKind::Mbpta, &mut b, &contended);
        assert!(t_solo.iter().zip(&t_cont).all(|(s, c)| c >= s), "contention removed cycles");
        assert!(t_solo.iter().zip(&t_cont).any(|(s, c)| c > s), "contention never added cycles");
    }

    #[test]
    fn contended_parallel_collection_is_reproducible() {
        use crate::layout::Layout;
        use crate::synthetic::FirFilter;
        let protocol = MeasurementProtocol {
            runs: 8,
            contention: Some(ContentionConfig::default()),
            ..Default::default()
        };
        let make = || FirFilter::standard(&mut Layout::new(0x10_0000));
        let a = collect_execution_times_par(SetupKind::TsCache, &protocol, make);
        let b = collect_execution_times_par(SetupKind::TsCache, &protocol, make);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_llc_protocol_reproduces_and_engages_the_shared_level() {
        use crate::layout::Layout;
        use crate::synthetic::ArraySweep;
        let protocol = MeasurementProtocol {
            runs: 8,
            shared_llc: true,
            contention: Some(ContentionConfig { write_back: false, ..ContentionConfig::default() }),
            ..Default::default()
        };
        let make = || ArraySweep::standard(&mut Layout::new(0x10_0000));
        let a = collect_execution_times_par(SetupKind::Mbpta, &protocol, make);
        let b = collect_execution_times_par(SetupKind::Mbpta, &protocol, make);
        assert_eq!(a, b, "shared-LLC collection must be thread-count invariant");
        // Contention on a shared level may shift cache outcomes either
        // way per run; the distributional claim lives in the pWCET
        // harness. Here: the platform really is shared.
        let m = protocol_machine(SetupKind::Mbpta, &protocol, 7);
        assert!(m.shared_llc().is_some());
        assert_eq!(m.hierarchy().depth(), 1, "two-level shared platform keeps L1-only cores");
    }

    #[test]
    fn no_reseed_no_flush_converges_to_warm() {
        let mut w = Touch { addrs: (0..8).map(|i| 0x1000 + i * 32).collect() };
        let protocol = MeasurementProtocol {
            runs: 3,
            flush_between_runs: false,
            reseed_between_runs: false,
            ..Default::default()
        };
        let times = collect_execution_times(SetupKind::Deterministic, &mut w, &protocol);
        assert!(times[1] < times[0], "second run should be warm");
        assert_eq!(times[1], times[2]);
    }
}
