//! The AES S-box, generated from first principles at compile time.
//!
//! The S-box is the multiplicative inverse in GF(2⁸) (modulo the AES
//! polynomial x⁸+x⁴+x³+x+1) followed by the FIPS-197 affine transform.
//! Generating it (rather than embedding a literal table) doubles as a
//! correctness argument: the unit tests pin a handful of published
//! values and the cipher tests pin full FIPS-197 vectors.

/// GF(2⁸) multiplication modulo the AES polynomial 0x11b.
pub const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Doubling in GF(2⁸) (`xtime` in FIPS-197).
#[inline]
pub const fn xtime(x: u8) -> u8 {
    gf_mul(x, 2)
}

const fn gf_inv(x: u8) -> u8 {
    if x == 0 {
        return 0;
    }
    // x^254 = x^-1 in GF(2^8)*: square-and-multiply with exponent 254.
    let mut result = 1u8;
    let mut base = x;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn affine(x: u8) -> u8 {
    // b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i,
    // c = 0x63.
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

const fn generate_sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    table
}

const fn invert(table: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[table[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// The AES forward S-box.
pub const SBOX: [u8; 256] = generate_sbox();

/// The AES inverse S-box.
pub const INV_SBOX: [u8; 256] = invert(&SBOX);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_corner_values() {
        // FIPS-197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x10], 0xca);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(SBOX[0xc9], 0xdd);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn inverse_round_trips() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
        // FIPS-197 Figure 14 spot value.
        assert_eq!(INV_SBOX[0x00], 0x52);
    }

    #[test]
    fn gf_mul_matches_known_products() {
        // FIPS-197 §4.2: {57} · {83} = {c1}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        // {57} · {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0x7f), 0);
    }

    #[test]
    fn xtime_doubles() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x47), 0x8e);
        assert_eq!(xtime(0x8e), 0x07);
    }

    #[test]
    fn gf_inverse_is_inverse() {
        for x in 1..=255u8 {
            assert_eq!(gf_mul(x, gf_inv(x)), 1, "x = {x}");
        }
    }
}
