//! The AES encryption T-tables.
//!
//! T-table implementations fuse SubBytes, ShiftRows and MixColumns into
//! four 256-entry u32 lookup tables indexed by state bytes. These
//! *input-dependent* lookups are precisely the side channel Bernstein's
//! attack exploits (paper §2.2): which table lines are touched depends
//! on `plaintext ⊕ key`.

use crate::sbox::{gf_mul, SBOX};

const fn generate_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i];
        let s2 = gf_mul(s, 2);
        let s3 = gf_mul(s, 3);
        // Column (2·s, s, s, 3·s) packed big-endian.
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | s3 as u32;
        i += 1;
    }
    t
}

const fn rotate_table(src: &[u32; 256], by: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = src[i].rotate_right(8 * by);
        i += 1;
    }
    t
}

const fn generate_te4() -> [u32; 256] {
    // Final round: S-box replicated across all four bytes (no
    // MixColumns in the last round).
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i] as u32;
        t[i] = (s << 24) | (s << 16) | (s << 8) | s;
        i += 1;
    }
    t
}

/// Main-round table 0: `(2s, s, s, 3s)`.
pub const TE0: [u32; 256] = generate_te0();
/// Main-round table 1: `TE0` rotated right by one byte.
pub const TE1: [u32; 256] = rotate_table(&TE0, 1);
/// Main-round table 2: `TE0` rotated right by two bytes.
pub const TE2: [u32; 256] = rotate_table(&TE0, 2);
/// Main-round table 3: `TE0` rotated right by three bytes.
pub const TE3: [u32; 256] = rotate_table(&TE0, 3);
/// Final-round table: the S-box replicated into all four byte lanes.
pub const TE4: [u32; 256] = generate_te4();

/// All five tables in lookup order, for address-space installation.
pub const ALL_TABLES: [&[u32; 256]; 5] = [&TE0, &TE1, &TE2, &TE3, &TE4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn te0_spot_values() {
        // Derived from SBOX[0x00] = 0x63: 2·63=c6, 3·63=a5.
        assert_eq!(TE0[0x00], 0xc663_63a5);
        // SBOX[0x01] = 0x7c: 2·7c=f8, 3·7c=84.
        assert_eq!(TE0[0x01], 0xf87c_7c84);
    }

    #[test]
    fn rotations_are_consistent() {
        for i in 0..256 {
            assert_eq!(TE1[i], TE0[i].rotate_right(8));
            assert_eq!(TE2[i], TE0[i].rotate_right(16));
            assert_eq!(TE3[i], TE0[i].rotate_right(24));
        }
    }

    #[test]
    fn te4_replicates_sbox() {
        for (i, &te4) in TE4.iter().enumerate() {
            let s = crate::sbox::SBOX[i] as u32;
            assert_eq!(te4, s * 0x0101_0101);
        }
    }

    #[test]
    fn te0_byte_lanes_relate_by_gf_arithmetic() {
        for &v in TE0.iter() {
            let (a, b, c, d) = ((v >> 24) as u8, (v >> 16) as u8, (v >> 8) as u8, v as u8);
            assert_eq!(b, c, "middle lanes are s");
            assert_eq!(a, gf_mul(b, 2));
            assert_eq!(d, a ^ b, "3s = 2s ^ s");
        }
    }
}
