//! # tscache-aes — AES-128 with T-tables, native and simulated
//!
//! The paper's victim/attacker workload: 128-bit AES encryption with
//! the classic four-T-table software formulation, whose input-dependent
//! table lookups are the cache side channel (§2.2, §6.1.1).
//!
//! * [`sbox`] — S-box generated from GF(2⁸) first principles.
//! * [`tables`] — the TE0..TE4 lookup tables.
//! * [`key`] — FIPS-197 key expansion.
//! * [`cipher`] — byte-level reference and T-table encryption
//!   (cross-checked against FIPS-197 vectors).
//! * [`sim_cipher`] — the same cipher issuing every memory access
//!   through the timing simulator.
//!
//! ```
//! use tscache_aes::cipher::Aes128;
//!
//! let cipher = Aes128::new(b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c");
//! let ct = cipher.encrypt_block(b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34");
//! assert_eq!(ct[0], 0x39);
//! ```

pub mod cipher;
pub mod key;
pub mod sbox;
pub mod sim_cipher;
pub mod tables;

pub use cipher::Aes128;
pub use key::ExpandedKey;
pub use sim_cipher::{AesLayout, SimAes128};
