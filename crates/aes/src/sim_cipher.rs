//! AES-128 running *on the simulated machine*: every T-table lookup,
//! round-key load and instruction fetch is issued through
//! [`Machine`], so the encryption's cycle count carries the cache
//! timing channel the paper's experiments measure.

use crate::cipher::Aes128;
use crate::tables::ALL_TABLES;
use tscache_sim::layout::{Layout, Region};
use tscache_sim::machine::{Machine, TraceOp};

/// Address-space placement of the cipher's objects (the victim binary's
/// linker view).
#[derive(Debug, Clone, Copy)]
pub struct AesLayout {
    /// The five 1 KiB lookup tables (TE0..TE3 + final-round TE4).
    tables: [Region; 5],
    /// The 176-byte expanded key.
    round_keys: Region,
    /// Cipher code (fetched per round).
    code: Region,
    /// Plaintext/ciphertext buffer.
    io: Region,
}

impl AesLayout {
    /// Allocates the cipher's objects in `layout` under `prefix`
    /// (tables page-aligned, as crypto libraries align them).
    pub fn install(layout: &mut Layout, prefix: &str) -> Self {
        let mut tables = [None; 5];
        for (i, slot) in tables.iter_mut().enumerate() {
            *slot = Some(layout.alloc(&format!("{prefix}.te{i}"), 1024, 1024));
        }
        AesLayout {
            tables: tables.map(|t| t.expect("allocated just above")),
            round_keys: layout.alloc(&format!("{prefix}.rk"), 176, 32),
            code: layout.alloc(&format!("{prefix}.code"), 1024, 32),
            io: layout.alloc(&format!("{prefix}.io"), 64, 32),
        }
    }

    /// Region of table `t` (0..=4).
    pub fn table(&self, t: usize) -> Region {
        self.tables[t]
    }

    /// Region of the expanded key.
    pub fn round_keys(&self) -> Region {
        self.round_keys
    }

    /// Region of the cipher code.
    pub fn code(&self) -> Region {
        self.code
    }

    /// Region of the I/O buffer.
    pub fn io(&self) -> Region {
        self.io
    }

    /// Total bytes of table data (should be 5 KiB).
    pub fn table_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.size()).sum()
    }
}

/// An AES-128 instance bound to a machine address space.
///
/// # Examples
///
/// ```
/// use tscache_aes::sim_cipher::{AesLayout, SimAes128};
/// use tscache_core::setup::SetupKind;
/// use tscache_sim::layout::Layout;
/// use tscache_sim::machine::Machine;
///
/// let mut layout = Layout::new(0x40_0000);
/// let aes_layout = AesLayout::install(&mut layout, "victim");
/// let sim = SimAes128::new(&[0u8; 16], aes_layout);
/// let mut machine = Machine::from_setup(SetupKind::Deterministic, 1);
/// let before = machine.cycles();
/// let ct = sim.encrypt(&mut machine, &[0u8; 16]);
/// assert!(machine.cycles() > before);
/// // The simulated cipher computes the real ciphertext:
/// use tscache_aes::cipher::Aes128;
/// assert_eq!(ct, Aes128::new(&[0u8; 16]).encrypt_block(&[0u8; 16]));
/// ```
#[derive(Debug, Clone)]
pub struct SimAes128 {
    cipher: Aes128,
    layout: AesLayout,
}

/// Instructions charged per main-round code block (rough ARM count for
/// 4 T-table column computations).
const ROUND_INSTRS: u32 = 40;

impl SimAes128 {
    /// Creates a simulated cipher with `key` at the given layout.
    pub fn new(key: &[u8; 16], layout: AesLayout) -> Self {
        SimAes128 { cipher: Aes128::new(key), layout }
    }

    /// The address-space layout.
    pub fn layout(&self) -> &AesLayout {
        &self.layout
    }

    /// The underlying (non-simulated) cipher.
    pub fn cipher(&self) -> &Aes128 {
        &self.cipher
    }

    /// Records a T-table lookup in the trace and returns the value.
    #[inline]
    fn lookup(&self, ops: &mut Vec<TraceOp>, table: usize, index: u32) -> u32 {
        ops.push(TraceOp::read(self.layout.tables[table].at(4 * index as u64)));
        ALL_TABLES[table][index as usize]
    }

    /// Records a round-key load in the trace and returns the word.
    #[inline]
    fn load_rk(&self, ops: &mut Vec<TraceOp>, word: usize) -> u32 {
        ops.push(TraceOp::read(self.layout.round_keys.at(4 * word as u64)));
        self.cipher.expanded_key().words()[word]
    }

    /// Total instructions retired per encryption (prologue + 9 main
    /// rounds + final round).
    const TOTAL_INSTRS: u32 = 12 + 10 * ROUND_INSTRS;

    /// Computes one encryption, appending every memory operation the
    /// cipher would issue — in exact program order — to `ops`, and
    /// returns the true ciphertext. Combine with
    /// [`Machine::run_trace`] to charge the trace;
    /// [`encrypt`](SimAes128::encrypt) does exactly that.
    pub fn build_trace(
        &self,
        m: &Machine,
        ops: &mut Vec<TraceOp>,
        plaintext: &[u8; 16],
    ) -> [u8; 16] {
        // Prologue: code fetch plus the plaintext loads from the I/O
        // buffer (2 lines at most).
        m.push_block_fetches(ops, self.layout.code.at(0), 12);
        ops.push(TraceOp::read(self.layout.io.at(0)));
        ops.push(TraceOp::read(self.layout.io.at(12)));

        let mut s = [0u32; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let p = u32::from_be_bytes([
                plaintext[4 * i],
                plaintext[4 * i + 1],
                plaintext[4 * i + 2],
                plaintext[4 * i + 3],
            ]);
            *word = p ^ self.load_rk(ops, i);
        }

        // Rounds 1..9: the same loop body code, fresh table lookups.
        for round in 1..10 {
            m.push_block_fetches(ops, self.layout.code.at(64), ROUND_INSTRS);
            let mut t = [0u32; 4];
            for (col, slot) in t.iter_mut().enumerate() {
                *slot = self.lookup(ops, 0, s[col] >> 24)
                    ^ self.lookup(ops, 1, (s[(col + 1) % 4] >> 16) & 0xff)
                    ^ self.lookup(ops, 2, (s[(col + 2) % 4] >> 8) & 0xff)
                    ^ self.lookup(ops, 3, s[(col + 3) % 4] & 0xff)
                    ^ self.load_rk(ops, 4 * round + col);
            }
            s = t;
        }

        // Final round: TE4 with byte-lane masks.
        m.push_block_fetches(ops, self.layout.code.at(64 + 256), ROUND_INSTRS);
        let mut out_words = [0u32; 4];
        for (col, slot) in out_words.iter_mut().enumerate() {
            *slot = (self.lookup(ops, 4, s[col] >> 24) & 0xff00_0000)
                ^ (self.lookup(ops, 4, (s[(col + 1) % 4] >> 16) & 0xff) & 0x00ff_0000)
                ^ (self.lookup(ops, 4, (s[(col + 2) % 4] >> 8) & 0xff) & 0x0000_ff00)
                ^ (self.lookup(ops, 4, s[(col + 3) % 4] & 0xff) & 0x0000_00ff)
                ^ self.load_rk(ops, 40 + col);
        }

        // Store the ciphertext.
        ops.push(TraceOp::write(self.layout.io.at(32)));
        ops.push(TraceOp::write(self.layout.io.at(44)));

        let mut out = [0u8; 16];
        for (i, w) in out_words.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Encrypts one block on the machine reusing `ops` as the trace
    /// buffer (cleared on entry), charging every memory access and
    /// instruction, and returns the true ciphertext.
    ///
    /// Cycle totals, retired instructions and cache state are
    /// identical to issuing each access scalar-fashion: the memory
    /// operations replay in program order through the batch API, and
    /// the order-independent instruction/branch costs are charged once.
    pub fn encrypt_with(
        &self,
        m: &mut Machine,
        ops: &mut Vec<TraceOp>,
        plaintext: &[u8; 16],
    ) -> [u8; 16] {
        ops.clear();
        let ct = self.build_trace(m, ops, plaintext);
        m.run_trace(ops);
        m.execute(Self::TOTAL_INSTRS);
        for _ in 0..9 {
            m.branch();
        }
        ct
    }

    /// Encrypts one block on the machine, charging every memory access
    /// and instruction, and returns the true ciphertext.
    pub fn encrypt(&self, m: &mut Machine, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut ops = Vec::with_capacity(256);
        self.encrypt_with(m, &mut ops, plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscache_core::setup::SetupKind;

    fn setup() -> (SimAes128, Machine) {
        let mut layout = Layout::new(0x40_0000);
        let aes_layout = AesLayout::install(&mut layout, "t");
        let sim = SimAes128::new(&[7u8; 16], aes_layout);
        let machine = Machine::from_setup(SetupKind::Deterministic, 1);
        (sim, machine)
    }

    #[test]
    fn ciphertext_matches_native_cipher() {
        let (sim, mut m) = setup();
        let native = Aes128::new(&[7u8; 16]);
        for i in 0..20u8 {
            let pt: [u8; 16] = core::array::from_fn(|j| i.wrapping_mul(13).wrapping_add(j as u8));
            assert_eq!(sim.encrypt(&mut m, &pt), native.encrypt_block(&pt));
        }
    }

    #[test]
    fn encryption_issues_expected_data_accesses() {
        let (sim, mut m) = setup();
        sim.encrypt(&mut m, &[0u8; 16]);
        let stats = m.hierarchy().l1d().stats();
        // 2 io loads + 4 rk + 9×(16 tables + 4 rk) + 16 TE4 + 4 rk
        // + 2 stores = 208.
        assert_eq!(stats.accesses(), 208);
    }

    #[test]
    fn second_encryption_is_much_faster() {
        let (sim, mut m) = setup();
        sim.encrypt(&mut m, &[0u8; 16]);
        let cold = m.cycles();
        m.reset_counters();
        sim.encrypt(&mut m, &[0u8; 16]);
        let warm = m.cycles();
        assert!(warm < cold / 2, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn timing_depends_on_plaintext_when_partially_evicted() {
        // Two plaintexts touching different table lines take different
        // times when parts of the tables have been evicted.
        let (sim, mut m) = setup();
        // Warm everything.
        sim.encrypt(&mut m, &[0u8; 16]);
        // Evict lines conflicting with part of TE0 by touching 4 lines
        // in the same sets from elsewhere.
        let te0 = sim.layout().table(0);
        for way in 1..=4u64 {
            for line in 0..8u64 {
                m.load(tscache_core::addr::Addr::new(
                    te0.base().as_u64() + way * 128 * 32 + line * 32,
                ));
            }
        }
        // Plaintext A hits evicted lines (first bytes index low table
        // entries); plaintext B stays elsewhere.
        m.reset_counters();
        sim.encrypt(&mut m, &[0u8; 16]);
        let t_a = m.cycles();
        m.reset_counters();
        sim.encrypt(&mut m, &[0u8; 16]);
        let t_b = m.cycles();
        // Second run re-warmed: must be ≤ first.
        assert!(t_b <= t_a);
    }

    #[test]
    fn layout_reports_table_bytes() {
        let mut layout = Layout::new(0);
        let l = AesLayout::install(&mut layout, "x");
        assert_eq!(l.table_bytes(), 5 * 1024);
        assert_eq!(l.round_keys().size(), 176);
    }

    #[test]
    fn distinct_prefixes_do_not_collide() {
        let mut layout = Layout::new(0);
        let a = AesLayout::install(&mut layout, "a");
        let b = AesLayout::install(&mut layout, "b");
        assert!(a.table(0).base() != b.table(0).base());
    }
}
