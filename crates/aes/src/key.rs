//! AES-128 key schedule (FIPS-197 §5.2).

use crate::sbox::SBOX;
use core::fmt;

/// Round constants for AES-128 key expansion.
const RCON: [u32; 10] = [
    0x0100_0000,
    0x0200_0000,
    0x0400_0000,
    0x0800_0000,
    0x1000_0000,
    0x2000_0000,
    0x4000_0000,
    0x8000_0000,
    0x1b00_0000,
    0x3600_0000,
];

fn sub_word(w: u32) -> u32 {
    ((SBOX[(w >> 24) as usize] as u32) << 24)
        | ((SBOX[((w >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w >> 8) & 0xff) as usize] as u32) << 8)
        | SBOX[(w & 0xff) as usize] as u32
}

/// An expanded AES-128 key: 11 round keys of four big-endian words.
///
/// # Examples
///
/// ```
/// use tscache_aes::key::ExpandedKey;
///
/// let key = ExpandedKey::expand(&[0u8; 16]);
/// assert_eq!(key.round_key(0), [0, 0, 0, 0]);
/// assert_ne!(key.round_key(1), [0, 0, 0, 0]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct ExpandedKey {
    words: [u32; 44],
}

impl ExpandedKey {
    /// Expands a 16-byte key.
    pub fn expand(key: &[u8; 16]) -> Self {
        let mut w = [0u32; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ RCON[i / 4 - 1];
            }
            w[i] = w[i - 4] ^ temp;
        }
        ExpandedKey { words: w }
    }

    /// The four words of round key `round` (0..=10).
    ///
    /// # Panics
    ///
    /// Panics if `round > 10`.
    #[inline]
    pub fn round_key(&self, round: usize) -> [u32; 4] {
        assert!(round <= 10, "AES-128 has 11 round keys");
        let base = 4 * round;
        [self.words[base], self.words[base + 1], self.words[base + 2], self.words[base + 3]]
    }

    /// All 44 expanded words.
    pub fn words(&self) -> &[u32; 44] {
        &self.words
    }
}

impl fmt::Debug for ExpandedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately terse: never print key material in full.
        write!(f, "ExpandedKey(w0={:08x}, ..)", self.words[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix A.1 key expansion vector.
    #[test]
    fn fips_appendix_a1() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let ek = ExpandedKey::expand(&key);
        let w = ek.words();
        assert_eq!(w[0], 0x2b7e1516);
        assert_eq!(w[3], 0x09cf4f3c);
        assert_eq!(w[4], 0xa0fafe17);
        assert_eq!(w[9], 0x7a96b943);
        assert_eq!(w[10], 0x5935807a);
        assert_eq!(w[43], 0xb6630ca6);
    }

    #[test]
    fn round_keys_partition_words() {
        let ek = ExpandedKey::expand(&[7u8; 16]);
        for r in 0..=10 {
            let rk = ek.round_key(r);
            assert_eq!(rk[0], ek.words()[4 * r]);
            assert_eq!(rk[3], ek.words()[4 * r + 3]);
        }
    }

    #[test]
    #[should_panic(expected = "11 round keys")]
    fn round_key_bounds() {
        ExpandedKey::expand(&[0u8; 16]).round_key(11);
    }

    #[test]
    fn debug_does_not_leak_whole_key() {
        let ek = ExpandedKey::expand(&[0xaa; 16]);
        let s = format!("{ek:?}");
        assert!(s.len() < 40, "debug output suspiciously long: {s}");
    }
}
