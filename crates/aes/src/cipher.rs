//! AES-128 encryption: byte-level reference and T-table fast path.

use crate::key::ExpandedKey;
use crate::sbox::{gf_mul, SBOX};
use crate::tables::{TE0, TE1, TE2, TE3, TE4};
use core::fmt;

/// An AES-128 cipher instance (encryption only — the paper's workload
/// is encryption timing).
///
/// # Examples
///
/// ```
/// use tscache_aes::cipher::Aes128;
///
/// let key = [0u8; 16];
/// let cipher = Aes128::new(&key);
/// let pt = [0u8; 16];
/// // Reference and T-table paths agree.
/// assert_eq!(cipher.encrypt_block(&pt), cipher.encrypt_block_ref(&pt));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Aes128 {
    key: ExpandedKey,
}

impl fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Aes128({:?})", self.key)
    }
}

impl Aes128 {
    /// Creates a cipher from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        Aes128 { key: ExpandedKey::expand(key) }
    }

    /// The expanded key (used by the simulator-instrumented cipher).
    pub fn expanded_key(&self) -> &ExpandedKey {
        &self.key
    }

    /// Encrypts one block using the four-table T-table formulation —
    /// the classic fast software AES whose lookups leak through the
    /// cache.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let rk = self.key.words();
        let mut s0 = get_u32(plaintext, 0) ^ rk[0];
        let mut s1 = get_u32(plaintext, 4) ^ rk[1];
        let mut s2 = get_u32(plaintext, 8) ^ rk[2];
        let mut s3 = get_u32(plaintext, 12) ^ rk[3];

        for round in 1..10 {
            let base = 4 * round;
            let t0 = TE0[(s0 >> 24) as usize]
                ^ TE1[((s1 >> 16) & 0xff) as usize]
                ^ TE2[((s2 >> 8) & 0xff) as usize]
                ^ TE3[(s3 & 0xff) as usize]
                ^ rk[base];
            let t1 = TE0[(s1 >> 24) as usize]
                ^ TE1[((s2 >> 16) & 0xff) as usize]
                ^ TE2[((s3 >> 8) & 0xff) as usize]
                ^ TE3[(s0 & 0xff) as usize]
                ^ rk[base + 1];
            let t2 = TE0[(s2 >> 24) as usize]
                ^ TE1[((s3 >> 16) & 0xff) as usize]
                ^ TE2[((s0 >> 8) & 0xff) as usize]
                ^ TE3[(s1 & 0xff) as usize]
                ^ rk[base + 2];
            let t3 = TE0[(s3 >> 24) as usize]
                ^ TE1[((s0 >> 16) & 0xff) as usize]
                ^ TE2[((s1 >> 8) & 0xff) as usize]
                ^ TE3[(s2 & 0xff) as usize]
                ^ rk[base + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }

        // Final round: TE4 byte lanes masked (no MixColumns).
        let t0 = (TE4[(s0 >> 24) as usize] & 0xff00_0000)
            ^ (TE4[((s1 >> 16) & 0xff) as usize] & 0x00ff_0000)
            ^ (TE4[((s2 >> 8) & 0xff) as usize] & 0x0000_ff00)
            ^ (TE4[(s3 & 0xff) as usize] & 0x0000_00ff)
            ^ rk[40];
        let t1 = (TE4[(s1 >> 24) as usize] & 0xff00_0000)
            ^ (TE4[((s2 >> 16) & 0xff) as usize] & 0x00ff_0000)
            ^ (TE4[((s3 >> 8) & 0xff) as usize] & 0x0000_ff00)
            ^ (TE4[(s0 & 0xff) as usize] & 0x0000_00ff)
            ^ rk[41];
        let t2 = (TE4[(s2 >> 24) as usize] & 0xff00_0000)
            ^ (TE4[((s3 >> 16) & 0xff) as usize] & 0x00ff_0000)
            ^ (TE4[((s0 >> 8) & 0xff) as usize] & 0x0000_ff00)
            ^ (TE4[(s1 & 0xff) as usize] & 0x0000_00ff)
            ^ rk[42];
        let t3 = (TE4[(s3 >> 24) as usize] & 0xff00_0000)
            ^ (TE4[((s0 >> 16) & 0xff) as usize] & 0x00ff_0000)
            ^ (TE4[((s1 >> 8) & 0xff) as usize] & 0x0000_ff00)
            ^ (TE4[(s2 & 0xff) as usize] & 0x0000_00ff)
            ^ rk[43];

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&t0.to_be_bytes());
        out[4..8].copy_from_slice(&t1.to_be_bytes());
        out[8..12].copy_from_slice(&t2.to_be_bytes());
        out[12..16].copy_from_slice(&t3.to_be_bytes());
        out
    }

    /// Encrypts one block with the byte-level FIPS-197 reference
    /// transformations (SubBytes / ShiftRows / MixColumns).
    pub fn encrypt_block_ref(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut state = *plaintext;
        add_round_key(&mut state, &self.key, 0);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.key, round);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.key, 10);
        state
    }
}

#[inline]
fn get_u32(bytes: &[u8; 16], at: usize) -> u32 {
    u32::from_be_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn add_round_key(state: &mut [u8; 16], key: &ExpandedKey, round: usize) {
    let rk = key.round_key(round);
    for col in 0..4 {
        let word = rk[col].to_be_bytes();
        for row in 0..4 {
            state[4 * col + row] ^= word[row];
        }
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // State is column-major: state[4*col + row]. Row r rotates left by r.
    let copy = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * col + row] = copy[4 * ((col + row) % 4) + row];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a: [u8; 4] =
            [state[4 * col], state[4 * col + 1], state[4 * col + 2], state[4 * col + 3]];
        state[4 * col] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3];
        state[4 * col + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3];
        state[4 * col + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3);
        state[4 * col + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    /// FIPS-197 Appendix B.
    #[test]
    fn fips_appendix_b() {
        let cipher = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = cipher.encrypt_block(&hex16("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    /// FIPS-197 Appendix C.1.
    #[test]
    fn fips_appendix_c1() {
        let cipher = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
        let ct = cipher.encrypt_block(&hex16("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn reference_matches_fips_vectors_too() {
        let cipher = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
        let ct = cipher.encrypt_block_ref(&hex16("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn ttable_and_reference_agree_on_many_inputs() {
        let cipher = Aes128::new(&hex16("8899aabbccddeeff0011223344556677"));
        let mut pt = [0u8; 16];
        for trial in 0..200u32 {
            for (i, b) in pt.iter_mut().enumerate() {
                *b = (trial.wrapping_mul(31).wrapping_add(i as u32 * 17) & 0xff) as u8;
            }
            pt[0] = trial as u8;
            assert_eq!(cipher.encrypt_block(&pt), cipher.encrypt_block_ref(&pt));
        }
    }

    #[test]
    fn different_keys_differ() {
        let pt = [42u8; 16];
        let a = Aes128::new(&[0u8; 16]).encrypt_block(&pt);
        let b = Aes128::new(&[1u8; 16]).encrypt_block(&pt);
        assert_ne!(a, b);
    }

    #[test]
    fn shift_rows_reference_pattern() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        shift_rows(&mut s);
        // Row 0 (bytes 0,4,8,12) unchanged.
        assert_eq!([s[0], s[4], s[8], s[12]], [0, 4, 8, 12]);
        // Row 1 rotated by one column.
        assert_eq!([s[1], s[5], s[9], s[13]], [5, 9, 13, 1]);
        // Row 3 rotated by three.
        assert_eq!([s[3], s[7], s[11], s[15]], [15, 3, 7, 11]);
    }

    #[test]
    fn mix_columns_fips_example() {
        // FIPS-197 §5.1.3 example column: db 13 53 45 → 8e 4d a1 bc.
        let mut s = [0u8; 16];
        s[0..4].copy_from_slice(&[0xdb, 0x13, 0x53, 0x45]);
        mix_columns(&mut s);
        assert_eq!(&s[0..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }
}
