//! Property tests for the AES implementations.

use proptest::prelude::*;
use tscache_aes::cipher::Aes128;
use tscache_aes::key::ExpandedKey;

proptest! {
    /// The T-table fast path and the byte-level reference agree on
    /// arbitrary keys and plaintexts.
    #[test]
    fn ttable_equals_reference(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        prop_assert_eq!(cipher.encrypt_block(&pt), cipher.encrypt_block_ref(&pt));
    }

    /// Encryption is injective per key: distinct plaintexts give
    /// distinct ciphertexts.
    #[test]
    fn injective_per_key(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), flip in 0usize..128) {
        let cipher = Aes128::new(&key);
        let mut pt2 = pt;
        pt2[flip / 8] ^= 1 << (flip % 8);
        prop_assert_ne!(cipher.encrypt_block(&pt), cipher.encrypt_block(&pt2));
    }

    /// Avalanche: flipping one plaintext bit flips a substantial number
    /// of ciphertext bits.
    #[test]
    fn plaintext_avalanche(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), flip in 0usize..128) {
        let cipher = Aes128::new(&key);
        let mut pt2 = pt;
        pt2[flip / 8] ^= 1 << (flip % 8);
        let a = cipher.encrypt_block(&pt);
        let b = cipher.encrypt_block(&pt2);
        let flipped: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        prop_assert!(flipped >= 30, "only {flipped} bits flipped");
    }

    /// Key avalanche: flipping one key bit changes the ciphertext
    /// substantially.
    #[test]
    fn key_avalanche(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), flip in 0usize..128) {
        let mut key2 = key;
        key2[flip / 8] ^= 1 << (flip % 8);
        let a = Aes128::new(&key).encrypt_block(&pt);
        let b = Aes128::new(&key2).encrypt_block(&pt);
        let flipped: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        prop_assert!(flipped >= 30, "only {flipped} bits flipped");
    }

    /// The key schedule's first round key is the key itself, and all 44
    /// words are reproducible.
    #[test]
    fn key_schedule_shape(key in any::<[u8; 16]>()) {
        let ek = ExpandedKey::expand(&key);
        let rk0 = ek.round_key(0);
        for (i, w) in rk0.iter().enumerate() {
            let expected = u32::from_be_bytes([
                key[4 * i],
                key[4 * i + 1],
                key[4 * i + 2],
                key[4 * i + 3],
            ]);
            prop_assert_eq!(*w, expected);
        }
        let again = ExpandedKey::expand(&key);
        prop_assert_eq!(ek.words(), again.words());
    }
}
