//! Log-bucketed (HDR-style) latency histograms.
//!
//! Buckets are exact below 8 and log₂ with four sub-buckets per octave
//! above, so the whole `u64` range fits in 252 buckets at ≤ 25%
//! relative width. Storage is a sparse `BTreeMap`, which makes merge
//! and digest order-canonical for free — two histograms built from the
//! same samples in any order digest identically, and shard histograms
//! merge associatively into scenario histograms.

use crate::digest::Fnv64;
use std::collections::BTreeMap;

/// The bucket a value lands in: identity below 8, then
/// `8 + 4·(log₂(v) − 3) + next-two-bits` above.
pub fn bucket_index(v: u64) -> u32 {
    if v < 8 {
        v as u32
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - 2)) & 3) as u32;
        8 + (exp - 3) * 4 + sub
    }
}

/// The inclusive lower and exclusive upper value bound of a bucket.
pub fn bucket_bounds(index: u32) -> (u64, u64) {
    if index < 8 {
        (index as u64, index as u64 + 1)
    } else {
        let exp = (index - 8) / 4 + 3;
        let sub = ((index - 8) % 4) as u64;
        let step = 1u64 << (exp - 2);
        let lo = (1u64 << exp) + sub * step;
        (lo, lo.saturating_add(step))
    }
}

/// A sparse log-bucketed histogram of `u64` samples (cycle latencies).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(bucket_index(v)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds every bucket of `other` into `self` (shard → scenario
    /// aggregation). Associative and commutative, so merge order never
    /// shows in the digest.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (&idx, &count) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Canonical digest: FNV-1a over the sorted `(bucket, count)`
    /// pairs.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for (&idx, &count) in &self.counts {
            h.write_u64(idx as u64).write_u64(count);
        }
        h.finish()
    }

    /// The sorted sparse `(bucket, count)` pairs — the JSONL wire
    /// form.
    pub fn to_sparse(&self) -> Vec<(u32, u64)> {
        self.counts.iter().map(|(&i, &c)| (i, c)).collect()
    }

    /// Rebuilds a histogram from its sparse pairs. Returns `None` on
    /// unsorted/duplicate buckets (a corrupt record, not a panic).
    pub fn from_sparse(pairs: &[(u32, u64)]) -> Option<Self> {
        let mut counts = BTreeMap::new();
        let mut total = 0u64;
        let mut last: Option<u32> = None;
        for &(idx, count) in pairs {
            if last.is_some_and(|l| idx <= l) {
                return None;
            }
            last = Some(idx);
            counts.insert(idx, count);
            total = total.checked_add(count)?;
        }
        Some(LatencyHistogram { counts, total })
    }

    /// Iterates the populated buckets as `(lo, hi, count)` rows — the
    /// curve-file view.
    pub fn rows(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().map(|(&idx, &count)| {
            let (lo, hi) = bucket_bounds(idx);
            (lo, hi, count)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_cover_their_values() {
        for v in (0..4096u64).chain([1 << 20, u64::MAX - 3, u64::MAX]) {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            // The top bucket's upper bound saturates at u64::MAX and
            // is inclusive there.
            assert!(lo <= v && (v < hi || hi == u64::MAX), "v={v} idx={idx} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "v={v}");
            prev = idx;
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let samples = [0u64, 1, 7, 8, 9, 100, 100, 5000, 1 << 40];
        let mut whole = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                a.record(s)
            } else {
                b.record(s)
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.digest(), whole.digest());
        assert_eq!(merged.total(), samples.len() as u64);
    }

    #[test]
    fn sparse_roundtrip_is_exact_and_rejects_corruption() {
        let mut h = LatencyHistogram::new();
        for s in [3u64, 900, 900, 12] {
            h.record(s);
        }
        let pairs = h.to_sparse();
        assert_eq!(LatencyHistogram::from_sparse(&pairs), Some(h));
        let unsorted = vec![(5u32, 1u64), (2, 1)];
        assert_eq!(LatencyHistogram::from_sparse(&unsorted), None);
    }

    #[test]
    fn digest_ignores_sample_order() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for s in [10u64, 999, 3] {
            a.record(s);
        }
        for s in [3u64, 10, 999] {
            b.record(s);
        }
        assert_eq!(a.digest(), b.digest());
    }
}
