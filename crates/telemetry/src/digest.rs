//! FNV-1a digests — the trace layer's bit-identity fingerprints.
//!
//! Same algorithm (and same test vectors) as `tscache_fleet::digest`,
//! duplicated here so the telemetry crate stays a dependency-free leaf
//! every layer can use: the fleet depends on telemetry, not the other
//! way around.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs an `f64` via its IEEE-754 bit pattern (exact, so two
    /// runs agree iff the floats are bit-identical).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot digest of a byte string.
///
/// # Examples
///
/// ```
/// use tscache_telemetry::digest::fnv64;
///
/// assert_eq!(fnv64(b"trace"), fnv64(b"trace"));
/// assert_ne!(fnv64(b"trace"), fnv64(b"trace!"));
/// ```
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
