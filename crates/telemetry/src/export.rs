//! Exporters: Chrome trace-event JSON and per-scenario curve files.
//!
//! Both are byte-deterministic functions of their inputs (hand-rolled
//! serialization, `Display`-formatted floats, no timestamps from the
//! wall clock), so campaign report files can be digest-pinned across
//! worker counts and resumes.
//!
//! The Chrome JSON follows the trace-event format's JSON-array flavor:
//! open `trace.json` in Perfetto or `chrome://tracing`. Cores render
//! as tids 0..N, the shared bus as tid 64, the scheduler as tid 65 and
//! the detector as tid 66.

use crate::event::{Event, TraceRecord};
use crate::histogram::LatencyHistogram;
use std::fmt::Write as _;

/// Synthetic Chrome tid for bus-grant spans.
const TID_BUS: u32 = 64;
/// Synthetic Chrome tid for scheduler slices.
const TID_SCHED: u32 = 65;
/// Synthetic Chrome tid for detector windows and flush markers.
const TID_MONITOR: u32 = 66;

fn push_complete(out: &mut String, name: &str, tid: u32, ts: u64, dur: u64, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}"
    );
}

fn push_instant(out: &mut String, name: &str, tid: u32, ts: u64, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}"
    );
}

/// Serializes a recorded stream as Chrome trace-event JSON. Cycle
/// timestamps are reported as microseconds 1:1 (Perfetto's timeline
/// unit) — relative structure, not wall time, is the point.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = rec.ts;
        match rec.event {
            Event::LevelAccess { core, level, hit } => push_instant(
                &mut out,
                if hit { "hit" } else { "miss" },
                core as u32,
                ts,
                &format!("\"level\":{level}"),
            ),
            Event::Writeback { core, count } => {
                push_instant(&mut out, "writeback", core as u32, ts, &format!("\"count\":{count}"))
            }
            Event::Op { core, cycles, miss_mask } => push_complete(
                &mut out,
                "op",
                core as u32,
                ts,
                cycles as u64,
                &format!("\"miss_mask\":{miss_mask}"),
            ),
            Event::BusGrant { core, wait, service } => push_complete(
                &mut out,
                "bus",
                TID_BUS,
                ts,
                service as u64,
                &format!("\"core\":{core},\"wait\":{wait}"),
            ),
            Event::MshrCoalesce { core, level } => push_instant(
                &mut out,
                "mshr-coalesce",
                core as u32,
                ts,
                &format!("\"level\":{level}"),
            ),
            Event::MshrStall { core, level, cycles } => push_complete(
                &mut out,
                "mshr-stall",
                core as u32,
                ts,
                cycles as u64,
                &format!("\"level\":{level}"),
            ),
            Event::CohUpgrade { core, invalidated } => push_instant(
                &mut out,
                "coh-upgrade",
                core as u32,
                ts,
                &format!("\"invalidated\":{invalidated}"),
            ),
            Event::CohFlush { core, invalidated } => push_instant(
                &mut out,
                "coh-flush",
                core as u32,
                ts,
                &format!("\"invalidated\":{invalidated}"),
            ),
            Event::CohBackInvalidate { core } => {
                push_instant(&mut out, "coh-back-invalidate", core as u32, ts, "")
            }
            Event::CacheFlush { scope } => {
                push_instant(&mut out, scope.label(), TID_MONITOR, ts, "")
            }
            Event::ScheduleSlice { runnable, swc, cycles } => push_complete(
                &mut out,
                &format!("swc{swc}"),
                TID_SCHED,
                ts,
                cycles,
                &format!("\"runnable\":{runnable}"),
            ),
            Event::DetectorWindow { window, score, fired } => push_instant(
                &mut out,
                if fired { "detector-fired" } else { "detector-window" },
                TID_MONITOR,
                ts,
                &format!("\"window\":{window},\"score\":{score}"),
            ),
            Event::ShardAttempt { shard, attempt } => push_instant(
                &mut out,
                "shard-attempt",
                TID_MONITOR,
                ts,
                &format!("\"shard\":{shard},\"attempt\":{attempt}"),
            ),
            Event::ShardRetry { shard, attempt } => push_instant(
                &mut out,
                "shard-retry",
                TID_MONITOR,
                ts,
                &format!("\"shard\":{shard},\"attempt\":{attempt}"),
            ),
            Event::ShardQuarantine { shard } => push_instant(
                &mut out,
                "shard-quarantine",
                TID_MONITOR,
                ts,
                &format!("\"shard\":{shard}"),
            ),
            Event::Checkpoint { records } => push_instant(
                &mut out,
                "checkpoint",
                TID_MONITOR,
                ts,
                &format!("\"records\":{records}"),
            ),
        }
    }
    out.push_str("]}\n");
    out
}

/// Builds the pWCET-style exceedance curve `P(X ≥ t)` for a sample of
/// execution times, as `time,exceedance` CSV rows over the distinct
/// observed times.
pub fn exceedance_csv(times: &[u64]) -> String {
    let mut sorted: Vec<u64> = times.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut out = String::from("time,exceedance\n");
    let mut i = 0;
    while i < n {
        let t = sorted[i];
        // Everything at index >= i is >= t.
        let exceed = (n - i) as f64 / n as f64;
        let _ = writeln!(out, "{t},{exceed}");
        while i < n && sorted[i] == t {
            i += 1;
        }
    }
    out
}

/// Serializes a latency histogram as `bucket_lo,bucket_hi,count` CSV
/// rows.
pub fn hist_csv(hist: &LatencyHistogram) -> String {
    let mut out = String::from("bucket_lo,bucket_hi,count\n");
    for (lo, hi, count) in hist.rows() {
        let _ = writeln!(out, "{lo},{hi},{count}");
    }
    out
}

/// Serializes per-shard ROC operating points as
/// `shard,threshold,fpr,tpr` CSV rows.
pub fn roc_csv(rows: &[(u64, f64, f64, f64)]) -> String {
    let mut out = String::from("shard,threshold,fpr,tpr\n");
    for &(shard, threshold, fpr, tpr) in rows {
        let _ = writeln!(out, "{shard},{threshold},{fpr},{tpr}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlushScope;

    #[test]
    fn chrome_trace_is_balanced_json_with_every_record() {
        let records = vec![
            TraceRecord { ts: 0, event: Event::Op { core: 0, cycles: 5, miss_mask: 1 } },
            TraceRecord { ts: 5, event: Event::BusGrant { core: 1, wait: 3, service: 8 } },
            TraceRecord { ts: 13, event: Event::CacheFlush { scope: FlushScope::Hyperperiod } },
            TraceRecord {
                ts: 14,
                event: Event::DetectorWindow { window: 0, score: 0.25, fired: false },
            },
            TraceRecord { ts: 20, event: Event::ScheduleSlice { runnable: 1, swc: 3, cycles: 40 } },
        ];
        let json = chrome_trace(&records);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"name\"").count(), records.len());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("flush/hyperperiod"));
        assert!(json.contains("\"score\":0.25"));
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn exceedance_curve_is_monotone_and_starts_at_one() {
        let times = [40u64, 10, 20, 20, 30];
        let csv = exceedance_csv(&times);
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 4, "distinct times only");
        assert_eq!(rows[0], "10,1");
        assert_eq!(rows[3], "40,0.2");
        let probs: Vec<f64> =
            rows.iter().map(|r| r.split(',').nth(1).unwrap().parse().unwrap()).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn curve_files_have_headers() {
        let mut h = LatencyHistogram::new();
        h.record(12);
        assert!(hist_csv(&h).starts_with("bucket_lo,bucket_hi,count\n"));
        assert!(roc_csv(&[(0, 1.5, 0.0, 1.0)]).contains("0,1.5,0,1"));
    }
}
