//! Deterministic, zero-cost-when-off observability for the tscache
//! stack.
//!
//! Three layers, all dependency-free and allocation-free on the hot
//! path:
//!
//! * [`recorder`] — a ring-buffered [`TraceRecorder`] of enum-tagged
//!   [`Event`]s. Emitters hold an `Option<RecorderHandle>`; when it is
//!   `None` the instrumentation is one predicted branch per site, and
//!   the simulation outcome is **bit-identical** whether the recorder
//!   is attached or not (observer-effect zero — the recorder only
//!   observes, it never feeds back into timing or placement).
//! * [`histogram`] — HDR-style log-bucketed latency histograms fed
//!   from the same event stream at record time (so ring-buffer
//!   eviction never loses a sample), mergeable across shards with a
//!   deterministic digest.
//! * [`export`] — Chrome trace-event JSON (load `trace.json` in
//!   Perfetto / `chrome://tracing`) and per-scenario curve files
//!   (pWCET exceedance, ROC points, latency histograms) as plain CSV.
//!
//! Everything digestible is a pure function of the recorded stream:
//! the recorder folds every event into a running FNV-1a digest at
//! [`TraceRecorder::record`] time, so the digest is invariant to ring
//! capacity, and campaign-level digests are invariant to worker
//! counts, shard scrambles, and kill+resume (the same pinning style as
//! the fleet layer).

pub mod digest;
pub mod event;
pub mod export;
pub mod histogram;
pub mod recorder;

pub use event::{Event, FlushScope, TraceRecord};
pub use export::{chrome_trace, exceedance_csv, hist_csv, roc_csv};
pub use histogram::LatencyHistogram;
pub use recorder::{handle, RecorderHandle, TraceRecorder};
