//! The ring-buffered trace recorder.
//!
//! Hot-path contract: [`TraceRecorder::record`] performs no heap
//! allocation (the ring is pre-allocated at construction) and every
//! event is folded into the running digest *at record time*, so the
//! digest covers the **entire** stream regardless of ring capacity —
//! eviction only limits what the exporters can still see, never what
//! the digest attests. Emitters hold an `Option<RecorderHandle>`; the
//! absent case is one predicted branch.

use crate::digest::Fnv64;
use crate::event::{Event, TraceRecord};
use crate::histogram::LatencyHistogram;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle emitters clone into their instrumentation points.
/// `Rc<RefCell<..>>` keeps attachment single-threaded by construction:
/// each fleet shard (and each bench iteration) builds its own recorder
/// on its own thread, which is exactly the determinism contract — a
/// recorder never outlives or crosses its shard.
pub type RecorderHandle = Rc<RefCell<TraceRecorder>>;

/// Creates a ready-to-attach recorder handle with the given ring
/// capacity (clamped to ≥ 1).
pub fn handle(capacity: usize) -> RecorderHandle {
    Rc::new(RefCell::new(TraceRecorder::new(capacity)))
}

/// Maximum per-core histograms a recorder keeps (cores beyond this
/// fold into the last slot; the platform models ≤ 8 cores).
const MAX_CORES: usize = 8;

/// Ring-buffered event recorder with a running digest and per-core
/// latency histograms.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    cap: usize,
    buf: Vec<TraceRecord>,
    /// Next write slot once the ring is full.
    head: usize,
    recorded: u64,
    dropped: u64,
    digest: Fnv64,
    hists: Vec<LatencyHistogram>,
}

impl TraceRecorder {
    /// A recorder retaining at most `capacity` events (clamped ≥ 1),
    /// pre-allocated so recording never allocates.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceRecorder {
            cap,
            buf: Vec::with_capacity(cap),
            head: 0,
            recorded: 0,
            dropped: 0,
            digest: Fnv64::new(),
            hists: Vec::new(),
        }
    }

    /// Records one event at cycle timestamp `ts`.
    #[inline]
    pub fn record(&mut self, ts: u64, event: Event) {
        self.digest.write_u64(ts);
        event.fold(&mut self.digest);
        if let Some((core, cycles)) = event.latency() {
            let slot = (core as usize).min(MAX_CORES - 1);
            if self.hists.len() <= slot {
                self.hists.resize(slot + 1, LatencyHistogram::new());
            }
            self.hists[slot].record(cycles);
        }
        self.recorded += 1;
        let rec = TraceRecord { ts, event };
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Digest of the full recorded stream (timestamps + events, in
    /// order) — independent of ring capacity.
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Total events recorded (including any evicted from the ring).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring (stream length minus retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained tail of the stream, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Per-core latency histograms (op / schedule-slice cycles), in
    /// core order. Fed at record time, so eviction never loses
    /// samples.
    pub fn histograms(&self) -> &[LatencyHistogram] {
        &self.hists
    }

    /// All cores' latency samples merged into one histogram.
    pub fn merged_histogram(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for h in &self.hists {
            merged.merge(h);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(core: u8, cycles: u32) -> Event {
        Event::Op { core, cycles, miss_mask: 0 }
    }

    #[test]
    fn ring_retains_the_tail_in_order() {
        let mut r = TraceRecorder::new(3);
        for i in 0..5u32 {
            r.record(i as u64, op(0, i));
        }
        let recs: Vec<u64> = r.records().iter().map(|t| t.ts).collect();
        assert_eq!(recs, vec![2, 3, 4]);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn digest_is_capacity_invariant() {
        let mut small = TraceRecorder::new(2);
        let mut big = TraceRecorder::new(1024);
        for i in 0..100u32 {
            small.record(i as u64, op(1, i * 3));
            big.record(i as u64, op(1, i * 3));
        }
        assert_eq!(small.digest(), big.digest());
        assert_ne!(small.records().len(), big.records().len());
    }

    #[test]
    fn digest_covers_timestamps_and_order() {
        let mut a = TraceRecorder::new(8);
        let mut b = TraceRecorder::new(8);
        a.record(1, op(0, 5));
        a.record(2, op(0, 6));
        b.record(1, op(0, 6));
        b.record(2, op(0, 5));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn histograms_survive_ring_eviction() {
        let mut r = TraceRecorder::new(1);
        for i in 0..50u32 {
            r.record(i as u64, op(2, 100));
        }
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.merged_histogram().total(), 50);
        assert_eq!(r.histograms().len(), 3, "cores 0..=2 allocated");
        assert_eq!(r.histograms()[2].total(), 50);
    }

    #[test]
    fn handle_is_shareable_and_clamps_capacity() {
        let h = handle(0);
        h.borrow_mut().record(0, op(0, 1));
        let h2 = h.clone();
        h2.borrow_mut().record(1, op(0, 2));
        assert_eq!(h.borrow().recorded(), 2);
        assert_eq!(h.borrow().records().len(), 1, "capacity clamped to 1");
    }
}
