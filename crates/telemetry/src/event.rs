//! The trace vocabulary: one `Copy` enum covering every instrumented
//! layer, from per-level cache walks up to fleet shard lifecycle.
//!
//! Events are deliberately small plain-data variants — no strings, no
//! heap — so emitting one is a couple of register moves plus the
//! recorder's digest fold. Each variant carries exactly the fields its
//! exporter view needs; anything derivable (e.g. queue wait = grant −
//! request) is stored pre-computed by the emitter so the exporters
//! never re-model timing.

use crate::digest::Fnv64;

/// What triggered a whole-cache flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushScope {
    /// OS-owned hyperperiod boundary flush (the TSCache defense).
    Hyperperiod,
    /// Per-job / per-process seed-change flush.
    ProcessSwitch,
    /// Measurement-protocol flush between MBPTA runs.
    Measurement,
}

impl FlushScope {
    fn code(self) -> u64 {
        match self {
            FlushScope::Hyperperiod => 0,
            FlushScope::ProcessSwitch => 1,
            FlushScope::Measurement => 2,
        }
    }

    /// Short label used by the Chrome exporter.
    pub fn label(self) -> &'static str {
        match self {
            FlushScope::Hyperperiod => "flush/hyperperiod",
            FlushScope::ProcessSwitch => "flush/process",
            FlushScope::Measurement => "flush/measurement",
        }
    }
}

/// One traced occurrence. Variants group by emitting layer:
/// hierarchy walks, interference engine, RTOS, fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// One cache level consulted during an access walk.
    LevelAccess {
        /// Issuing core.
        core: u8,
        /// Hierarchy level (0 = L1).
        level: u8,
        /// Whether the level hit (a miss fills from below).
        hit: bool,
    },
    /// Dirty-victim writebacks reaching memory for one op.
    Writeback {
        /// Issuing core.
        core: u8,
        /// Number of memory writebacks the op triggered.
        count: u8,
    },
    /// One memory operation retired, end to end.
    Op {
        /// Issuing core.
        core: u8,
        /// Cycles the op cost (feeds the latency histograms).
        cycles: u32,
        /// Per-level miss bits (bit `l` set = missed at level `l`).
        miss_mask: u8,
    },
    /// One shared-bus transaction granted.
    BusGrant {
        /// Requesting core.
        core: u8,
        /// Cycles queued before the grant.
        wait: u32,
        /// Service cycles occupied on the bus.
        service: u32,
    },
    /// A miss merged into an in-flight MSHR entry.
    MshrCoalesce {
        /// Issuing core.
        core: u8,
        /// Level whose MSHR file coalesced the miss.
        level: u8,
    },
    /// A miss stalled on a full MSHR file.
    MshrStall {
        /// Issuing core.
        core: u8,
        /// Level whose MSHR file was full.
        level: u8,
        /// Structural stall cycles charged.
        cycles: u32,
    },
    /// A write hit on a shared coherent line upgraded to Modified,
    /// invalidating other sharers.
    CohUpgrade {
        /// Upgrading core.
        core: u8,
        /// Sharer copies invalidated.
        invalidated: u8,
    },
    /// A `clflush`-style broadcast on a coherent line.
    CohFlush {
        /// Flushing core.
        core: u8,
        /// Copies invalidated across the platform.
        invalidated: u8,
    },
    /// An inclusive back-invalidation after a shared-LLC eviction.
    CohBackInvalidate {
        /// Core whose fill evicted the tracked victim.
        core: u8,
    },
    /// A whole-cache flush boundary.
    CacheFlush {
        /// What owned the flush.
        scope: FlushScope,
    },
    /// One RTOS job slice executed by the scheduler.
    ScheduleSlice {
        /// Runnable index within the schedule table.
        runnable: u16,
        /// Software component the runnable belongs to.
        swc: u16,
        /// Cycles the slice took (feeds the latency histograms).
        cycles: u64,
    },
    /// One detector sampling window scored.
    DetectorWindow {
        /// Scored window ordinal.
        window: u64,
        /// Suspicion score.
        score: f64,
        /// Whether the window crossed the detection threshold.
        fired: bool,
    },
    /// Fleet: a shard attempt started.
    ShardAttempt {
        /// Shard index.
        shard: u32,
        /// Attempt ordinal (0 = first).
        attempt: u32,
    },
    /// Fleet: a crashed shard was re-queued.
    ShardRetry {
        /// Shard index.
        shard: u32,
        /// Attempt that crashed.
        attempt: u32,
    },
    /// Fleet: a shard was quarantined.
    ShardQuarantine {
        /// Shard index.
        shard: u32,
    },
    /// Fleet: a manifest checkpoint committed.
    Checkpoint {
        /// Durable records at the checkpoint.
        records: u64,
    },
}

impl Event {
    /// Folds the event (tag + every field) into `h`. This is the
    /// canonical digest encoding: two streams agree iff they recorded
    /// the same events in the same order.
    pub fn fold(&self, h: &mut Fnv64) {
        match *self {
            Event::LevelAccess { core, level, hit } => {
                h.write_u64(1).write_u64(core as u64).write_u64(level as u64);
                h.write_u64(hit as u64);
            }
            Event::Writeback { core, count } => {
                h.write_u64(2).write_u64(core as u64).write_u64(count as u64);
            }
            Event::Op { core, cycles, miss_mask } => {
                h.write_u64(3).write_u64(core as u64).write_u64(cycles as u64);
                h.write_u64(miss_mask as u64);
            }
            Event::BusGrant { core, wait, service } => {
                h.write_u64(4).write_u64(core as u64).write_u64(wait as u64);
                h.write_u64(service as u64);
            }
            Event::MshrCoalesce { core, level } => {
                h.write_u64(5).write_u64(core as u64).write_u64(level as u64);
            }
            Event::MshrStall { core, level, cycles } => {
                h.write_u64(6).write_u64(core as u64).write_u64(level as u64);
                h.write_u64(cycles as u64);
            }
            Event::CohUpgrade { core, invalidated } => {
                h.write_u64(7).write_u64(core as u64).write_u64(invalidated as u64);
            }
            Event::CohFlush { core, invalidated } => {
                h.write_u64(8).write_u64(core as u64).write_u64(invalidated as u64);
            }
            Event::CohBackInvalidate { core } => {
                h.write_u64(9).write_u64(core as u64);
            }
            Event::CacheFlush { scope } => {
                h.write_u64(10).write_u64(scope.code());
            }
            Event::ScheduleSlice { runnable, swc, cycles } => {
                h.write_u64(11).write_u64(runnable as u64).write_u64(swc as u64);
                h.write_u64(cycles);
            }
            Event::DetectorWindow { window, score, fired } => {
                h.write_u64(12).write_u64(window).write_f64(score).write_u64(fired as u64);
            }
            Event::ShardAttempt { shard, attempt } => {
                h.write_u64(13).write_u64(shard as u64).write_u64(attempt as u64);
            }
            Event::ShardRetry { shard, attempt } => {
                h.write_u64(14).write_u64(shard as u64).write_u64(attempt as u64);
            }
            Event::ShardQuarantine { shard } => {
                h.write_u64(15).write_u64(shard as u64);
            }
            Event::Checkpoint { records } => {
                h.write_u64(16).write_u64(records);
            }
        }
    }

    /// The latency payload, if the event carries one (what the
    /// histograms aggregate): op cycles and schedule-slice cycles.
    pub fn latency(&self) -> Option<(u8, u64)> {
        match *self {
            Event::Op { core, cycles, .. } => Some((core, cycles as u64)),
            Event::ScheduleSlice { cycles, .. } => Some((0, cycles)),
            _ => None,
        }
    }
}

/// One timestamped event in a recorded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Emitter-local cycle timestamp (start of the span for duration
    /// events).
    pub ts: u64,
    /// What happened.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_distinguishes_variants_and_fields() {
        let digest = |e: Event| {
            let mut h = Fnv64::new();
            e.fold(&mut h);
            h.finish()
        };
        let a = digest(Event::LevelAccess { core: 0, level: 1, hit: true });
        let b = digest(Event::LevelAccess { core: 0, level: 1, hit: false });
        let c = digest(Event::MshrCoalesce { core: 0, level: 1 });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn latency_payloads_come_from_op_and_slice_events() {
        assert_eq!(Event::Op { core: 2, cycles: 7, miss_mask: 1 }.latency(), Some((2, 7)));
        assert_eq!(
            Event::ScheduleSlice { runnable: 0, swc: 0, cycles: 99 }.latency(),
            Some((0, 99))
        );
        assert_eq!(Event::CohBackInvalidate { core: 1 }.latency(), None);
    }
}
