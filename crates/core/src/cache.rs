//! Set-associative cache model with pluggable placement and
//! replacement, per-process seeds, and RPCache-style interference
//! randomization.
//!
//! # Hot-path layout
//!
//! Every experiment in the reproduction funnels through
//! [`Cache::access`], so the model is organized for throughput:
//!
//! * placement and replacement run through enum-dispatch engines
//!   ([`PlacementEngine`]/[`ReplacementEngine`]) — direct, inlinable
//!   match arms instead of `Box<dyn …>` virtual calls;
//! * per-line metadata is packed: one contiguous `tags` array using a
//!   sentinel value ([`INVALID_TAG`]) for invalid lines, plus one
//!   `LineMeta` byte-pair array (owner + flag byte), so a set's ways
//!   are scanned from a single cache-resident region;
//! * protected ranges are kept sorted and merged (binary search per
//!   fill instead of a linear scan over possibly overlapping entries);
//! * way partitions are kept sorted by pid, and a one-entry hot-pid
//!   context cache memoizes the `(seed, way range)` pair of the
//!   currently accessing process;
//! * [`Cache::access_batch`] amortizes context lookup and statistics
//!   updates across a whole trace.
//!
//! The original boxed-dispatch implementation survives as
//! [`BoxedCache`](crate::boxed_ref::BoxedCache) for differential tests
//! and dispatch-overhead baselining; both draw identical randomness
//! streams and produce identical access outcomes.

use crate::addr::LineAddr;
use crate::defense::TtlConfig;
use crate::geometry::CacheGeometry;
use crate::placement::{PlacementEngine, PlacementKind};
use crate::prng::{mix64, Prng, SplitMix64};
use crate::replacement::{ReplacementEngine, ReplacementKind};
use crate::seed::{ProcessId, Seed, SeedTable};
use crate::stats::CacheStats;
use core::fmt;

/// Sentinel tag marking an invalid line. Line addresses are byte
/// addresses shifted right by the line-offset bits, so no reachable
/// line address collides with it.
pub const INVALID_TAG: u64 = u64::MAX;

/// How the cache propagates stores (the policy knob of the
/// interference model: write-back caches turn dirty evictions into
/// bus traffic, write-through caches drain stores through a write
/// buffer that this model treats as free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Stores propagate immediately; lines are never dirty and
    /// evictions never write back (the seed model's behaviour).
    #[default]
    WriteThrough,
    /// Stores mark the line dirty; evicting a dirty line emits a
    /// writeback toward the next level.
    WriteBack,
}

/// Packed per-line metadata: the owner process, a flag byte, and the
/// remaining TTL (ClepsydraCache-style lifetime; 0 = never expires).
/// Validity is encoded in the tags array via [`INVALID_TAG`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineMeta {
    owner: u16,
    flags: u8,
    /// Remaining lifetime in set-accesses. 0 means infinite: lines
    /// filled while the TTL defense is off never expire, even if the
    /// defense is armed later.
    ttl: u8,
}

impl LineMeta {
    const PROTECTED: u8 = 1;
    /// The line holds data newer than the next level (write-back
    /// caches only; never set under [`WritePolicy::WriteThrough`]).
    const DIRTY: u8 = 2;
    /// The line falls in a registered coherent range and is tracked by
    /// the platform's invalidation protocol: a valid coherent line is
    /// in MSI state S (clean) or M (`DIRTY` also set); invalidation
    /// moves it to I by dropping the tag.
    const COHERENT: u8 = 4;

    const EMPTY: LineMeta = LineMeta { owner: 0, flags: 0, ttl: 0 };

    #[inline]
    fn protected(self) -> bool {
        self.flags & Self::PROTECTED != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.flags & Self::DIRTY != 0
    }

    #[inline]
    fn coherent(self) -> bool {
        self.flags & Self::COHERENT != 0
    }
}

/// MSI coherence state of a valid line in a coherence-tracked range
/// (see [`Cache::coherence_state`]). Invalid lines have no state — the
/// I of MSI is the absence of the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohState {
    /// Present and clean: other caches may hold copies.
    Shared,
    /// Present and dirty: this copy is newer than the level below.
    Modified,
}

/// Result of [`Cache::invalidate_line`]: whether a copy was present,
/// and whether it was dirty (its data must be written back — under
/// flush/invalidate semantics, forced to memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvalidatedCopy {
    /// A valid copy existed and was dropped.
    pub present: bool,
    /// The dropped copy was dirty.
    pub dirty: bool,
}

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The displaced line address.
    pub line: LineAddr,
    /// The process that owned the displaced line.
    pub owner: ProcessId,
    /// Whether the displaced line was dirty (its eviction emitted a
    /// writeback; always `false` on write-through caches).
    pub dirty: bool,
}

/// One dirty-eviction writeback emitted while draining a batch, in
/// access order: the victim line, its owner, and the index of the
/// originating access in the batch's input (or the caller-provided
/// op index, see [`BatchIo::idx`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// The dirty line written back.
    pub line: LineAddr,
    /// The process that owned (and dirtied) the line.
    pub owner: ProcessId,
    /// Originating op index.
    pub op_idx: u32,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled.
    Miss {
        /// The valid line displaced by the fill, if any.
        evicted: Option<EvictedLine>,
        /// Whether an RPCache contention remap redirected the fill to a
        /// random set.
        redirected: bool,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether the access missed.
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

/// Aggregate outcome of [`Cache::access_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
    /// Misses that displaced a valid line.
    pub evictions: u64,
    /// Fills redirected by an RPCache contention remap.
    pub redirected: u64,
    /// Evictions of dirty lines that emitted a writeback.
    pub writebacks: u64,
}

impl BatchOutcome {
    /// Total accesses in the batch.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

impl core::ops::AddAssign for BatchOutcome {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.redirected += rhs.redirected;
        self.writebacks += rhs.writebacks;
    }
}

impl core::ops::Add for BatchOutcome {
    type Output = BatchOutcome;
    fn add(mut self, rhs: Self) -> BatchOutcome {
        self += rhs;
        self
    }
}

/// Optional inputs and sinks of [`Cache::access_batch_io`], the batch
/// engine behind every hierarchy-level pass. All fields default to
/// `None`, collapsing to the plain read-only batch walk.
#[derive(Default)]
pub struct BatchIo<'a, 'b> {
    /// Per-line write flags (`None` = every access is a read). Must
    /// match `lines` in length.
    pub writes: Option<&'a [bool]>,
    /// Original op index per line (`None` = positions `0..len`). Must
    /// match `lines` in length. Lets a hierarchy level report misses
    /// and writebacks in terms of the *originating trace op* even
    /// though its input stream is already a filtered miss stream.
    pub idx: Option<&'a [u32]>,
    /// Sink for missing lines, in access order.
    pub misses: Option<&'b mut Vec<LineAddr>>,
    /// Sink for the missing lines' op indices, parallel to `misses`.
    pub miss_idx: Option<&'b mut Vec<u32>>,
    /// Sink for dirty-eviction writebacks, in access order.
    pub writebacks: Option<&'b mut Vec<Writeback>>,
}

/// One-entry context cache for the hot process: seed and way range.
#[derive(Debug, Clone, Copy)]
struct HotContext {
    /// `u32::MAX` marks the cache empty; pids are 16-bit.
    pid: u32,
    seed: Seed,
    lo: u32,
    hi: u32,
}

impl HotContext {
    const EMPTY: HotContext = HotContext { pid: u32::MAX, seed: Seed::ZERO, lo: 0, hi: 0 };
}

/// Bounds on the direct-mapped placement memo (always a power of two).
/// The memo is sized to the cache's own line count: 1024 entries cover
/// the L1 working sets, while L2/L3-sized caches get proportionally
/// larger memos so the *batched miss stream* — whose footprint scales
/// with the lower level, not the L1 — still hits the memo instead of
/// re-running the Benes network / Feistel hash per miss.
const PLACE_MEMO_MIN_ENTRIES: usize = 1024;
const PLACE_MEMO_MAX_ENTRIES: usize = 8192;

/// One placement-memo slot: the memoized `place(line, seed) = set`.
/// `line == INVALID_TAG` marks an empty slot.
#[derive(Debug, Clone, Copy)]
struct PlaceMemoEntry {
    line: u64,
    seed: u64,
    set: u32,
}

impl PlaceMemoEntry {
    const EMPTY: PlaceMemoEntry = PlaceMemoEntry { line: INVALID_TAG, seed: 0, set: 0 };
}

/// A set-associative cache with seed-parameterized placement.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
/// use tscache_core::cache::Cache;
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::PlacementKind;
/// use tscache_core::replacement::ReplacementKind;
/// use tscache_core::seed::{ProcessId, Seed};
///
/// let mut cache = Cache::new(
///     "L1D",
///     CacheGeometry::paper_l1(),
///     PlacementKind::RandomModulo,
///     ReplacementKind::Random,
///     0xc0ffee,
/// );
/// let pid = ProcessId::new(1);
/// cache.set_seed(pid, Seed::new(42));
/// let line = LineAddr::new(0x100);
/// assert!(cache.access(pid, line).is_miss()); // cold
/// assert!(cache.access(pid, line).is_hit());  // warm
/// ```
pub struct Cache {
    label: String,
    geom: CacheGeometry,
    ways: u32,
    placement: PlacementEngine,
    replacement: ReplacementEngine,
    /// Flat `sets × ways` tag array; [`INVALID_TAG`] encodes invalid.
    tags: Vec<u64>,
    /// Flat `sets × ways` owner/flag array, parallel to `tags`.
    meta: Vec<LineMeta>,
    /// Protected line-address ranges (RPCache's P-bit pages holding
    /// crypto tables): sorted by start, merged, pairwise disjoint.
    protected_ranges: Vec<(u64, u64)>,
    /// Coherence-tracked line-address ranges (shared read-mostly
    /// segments, e.g. an AES T-table shared across cores): sorted by
    /// start, merged, pairwise disjoint. Fills inside a range carry
    /// the [`LineMeta::COHERENT`] flag.
    coherent_ranges: Vec<(u64, u64)>,
    /// Way partitions `(pid, lo, hi)`, sorted by pid (cache
    /// partitioning, the §7 alternative). Processes without an entry
    /// may fill any way.
    partitions: Vec<(u16, u32, u32)>,
    seeds: SeedTable,
    write_policy: WritePolicy,
    hot: HotContext,
    /// Direct-mapped memo for expensive pure placements (the Benes
    /// network of Random Modulo, the HashRP rotate/XOR/Feistel hash):
    /// `place(line, seed)` is deterministic for these policies, so the
    /// per-access network evaluation collapses to a table hit for warm
    /// working sets. Empty (and bypassed) for policies where
    /// memoization can't apply or wouldn't pay (RPCache mutates its
    /// mapping on contention; modulo/XOR are already single-op).
    place_memo: Vec<PlaceMemoEntry>,
    rng: SplitMix64,
    /// The raw constructor seed, kept to derive per-process partition
    /// streams lazily.
    rng_seed: u64,
    /// Per-process replacement-RNG streams `(pid, stream)`, sorted by
    /// pid, used for victim selection *inside* a way partition.
    /// Partitioned replacement metadata is per-partition hardware
    /// state: drawing partitioned victims from the shared [`rng`]
    /// stream would let any co-resident process's (random-replacement)
    /// fills perturb a fully partitioned process's victim choices —
    /// breaking the exact isolation the §7 partition guarantee (and
    /// the shared-LLC isolation proptests) require.
    ///
    /// [`rng`]: Cache::rng
    part_rngs: Vec<(u16, SplitMix64)>,
    /// Armed ClepsydraCache-style TTL defense; `None` (or an infinite
    /// config, filtered out by [`set_ttl`](Cache::set_ttl)) leaves the
    /// access path bit-identical to an undefended cache.
    ttl: Option<TtlConfig>,
    /// Dedicated stream for per-fill TTL jitter, derived from the
    /// constructor seed so arming the defense perturbs no other
    /// randomness stream. Reset to its derivation point on flush,
    /// mirroring [`part_rngs`](Cache::part_rngs).
    ttl_rng: SplitMix64,
    /// TimeCache-style timed-access normalization: a process's first
    /// access to a line another process loaded is levelled to miss
    /// latency (ownership transfers; the line itself stays resident).
    normalize: bool,
    stats: CacheStats,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("label", &self.label)
            .field("geometry", &self.geom)
            .field("placement", &self.placement.name())
            .field("replacement", &self.replacement.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Creates a cache. `rng_seed` drives random replacement and
    /// RPCache remaps; it is independent of placement seeds.
    pub fn new(
        label: impl Into<String>,
        geom: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        rng_seed: u64,
    ) -> Self {
        let n = geom.total_lines() as usize;
        let placement = placement.engine(&geom);
        let place_memo = if placement.memoizable() {
            let entries =
                n.next_power_of_two().clamp(PLACE_MEMO_MIN_ENTRIES, PLACE_MEMO_MAX_ENTRIES);
            vec![PlaceMemoEntry::EMPTY; entries]
        } else {
            Vec::new()
        };
        Cache {
            label: label.into(),
            geom,
            ways: geom.ways(),
            placement,
            replacement: replacement.engine(&geom),
            tags: vec![INVALID_TAG; n],
            meta: vec![LineMeta::EMPTY; n],
            protected_ranges: Vec::new(),
            coherent_ranges: Vec::new(),
            partitions: Vec::new(),
            seeds: SeedTable::new(),
            write_policy: WritePolicy::WriteThrough,
            hot: HotContext::EMPTY,
            place_memo,
            rng: SplitMix64::new(rng_seed ^ 0x6361_6368_6521),
            rng_seed,
            part_rngs: Vec::new(),
            ttl: None,
            ttl_rng: SplitMix64::new(mix64(rng_seed ^ 0x0074_746c)),
            normalize: false,
            stats: CacheStats::new(),
        }
    }

    /// Index of `pid`'s partition-replacement stream, creating it on
    /// first use (derived purely from the constructor seed and the
    /// pid, so it is reproducible and independent of access history).
    #[inline]
    fn part_rng_index(&mut self, pid: ProcessId) -> usize {
        match self.part_rngs.binary_search_by_key(&pid.as_u16(), |&(p, _)| p) {
            Ok(i) => i,
            Err(i) => {
                let stream = SplitMix64::new(mix64(
                    self.rng_seed ^ 0x7061_7274 ^ ((pid.as_u16() as u64) << 40),
                ));
                self.part_rngs.insert(i, (pid.as_u16(), stream));
                i
            }
        }
    }

    /// The cache's report label (e.g. `"L1D"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Name of the placement policy.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Name of the replacement policy.
    pub fn replacement_name(&self) -> &'static str {
        self.replacement.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics counters (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Sets the placement seed of `pid`. Contents cached under the old
    /// seed are *not* flushed: the paper's OS support flushes
    /// explicitly when consistency requires it (§5).
    pub fn set_seed(&mut self, pid: ProcessId, seed: Seed) {
        self.seeds.set(pid, seed);
        self.hot = HotContext::EMPTY;
    }

    /// Arms (or disarms) ClepsydraCache-style TTL evictions: every
    /// fill draws a lifetime of `base + uniform(0..=jitter)` accesses
    /// to its set; each set access decrements resident lifetimes and
    /// drains expired lines before lookup. Dirty expiries count a
    /// writeback (drained straight to memory, like
    /// [`invalidate_line`](Self::invalidate_line)); every expiry
    /// counts [`ttl_expiries`](CacheStats::ttl_expiries).
    ///
    /// An *infinite* config (`base == 0`) is normalized to `None`, so
    /// a TTL=∞ cache is bit-identical to an undefended one — the
    /// jitter stream is never drawn from. Lines already resident keep
    /// the lifetime they were filled with (0 = never expires).
    pub fn set_ttl(&mut self, ttl: Option<TtlConfig>) {
        self.ttl = ttl.filter(TtlConfig::is_finite);
    }

    /// The armed TTL defense, if any.
    pub fn ttl(&self) -> Option<TtlConfig> {
        self.ttl
    }

    /// Arms (or disarms) TimeCache-style timed-access normalization:
    /// the first access a process makes to a line another process
    /// loaded reports a *miss* (full latency) while transferring the
    /// line's ownership — so reload/probe timing cannot distinguish a
    /// victim-touched line from a cold one. [`probe`](Self::probe)
    /// likewise only reports lines the probing process owns.
    pub fn set_normalize(&mut self, on: bool) {
        self.normalize = on;
    }

    /// Whether timed-access normalization is armed.
    pub fn normalize_enabled(&self) -> bool {
        self.normalize
    }

    /// Sets the write policy. Switching an already-populated cache to
    /// write-through does not clean existing dirty lines; switch before
    /// issuing traffic (or flush first).
    pub fn set_write_policy(&mut self, policy: WritePolicy) {
        self.write_policy = policy;
    }

    /// The cache's write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Number of currently dirty lines.
    pub fn dirty_lines(&self) -> usize {
        self.tags.iter().zip(&self.meta).filter(|(&t, m)| t != INVALID_TAG && m.dirty()).count()
    }

    /// Delivers a writeback of `line` (owned and dirtied by `owner` in
    /// the level above) to this cache. If the line is present and this
    /// cache is write-back, its copy is marked dirty and the writeback
    /// is absorbed (returns `true`); otherwise it must continue toward
    /// the next level (returns `false`). The delivery is *silent*: no
    /// fill, no replacement update, no hit/miss accounting — dirty
    /// state is the only side effect, so batch and scalar executions
    /// stay bit-identical as long as deliveries happen in the same
    /// order.
    pub fn receive_writeback(&mut self, owner: ProcessId, line: LineAddr) -> bool {
        let (seed, _, _) = self.context(owner);
        let set = self.place(line, seed);
        match self.find_way(set, line) {
            Some(way) if self.write_policy == WritePolicy::WriteBack => {
                let slot = (set * self.ways + way) as usize;
                self.meta[slot].flags |= LineMeta::DIRTY;
                true
            }
            _ => false,
        }
    }

    /// Marks the line-address range `start..end` as *protected*
    /// (RPCache's per-page P bit over crypto tables): interference-
    /// randomizing policies redirect any fill that would evict a
    /// protected line to a random set.
    ///
    /// Ranges are kept sorted and merged, so overlapping or adjacent
    /// registrations collapse into one entry and per-fill lookups are
    /// a binary search.
    pub fn add_protected_range(&mut self, start: LineAddr, end: LineAddr) {
        Self::insert_range(&mut self.protected_ranges, start, end);
    }

    /// Inserts `start..end` into a sorted-merged-disjoint range set.
    fn insert_range(ranges: &mut Vec<(u64, u64)>, start: LineAddr, end: LineAddr) {
        let (start, end) = (start.as_u64(), end.as_u64());
        if start >= end {
            return;
        }
        ranges.push((start, end));
        ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for &(s, e) in ranges.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        *ranges = merged;
    }

    /// Binary search over a sorted, disjoint range set.
    #[inline]
    fn in_ranges(ranges: &[(u64, u64)], line: u64) -> bool {
        let idx = ranges.partition_point(|&(s, _)| s <= line);
        idx > 0 && line < ranges[idx - 1].1
    }

    /// The registered protected ranges (sorted, merged, disjoint).
    pub fn protected_ranges(&self) -> &[(u64, u64)] {
        &self.protected_ranges
    }

    /// Whether `line` falls in a protected range. Binary search over
    /// the sorted, disjoint ranges.
    #[inline]
    pub fn is_protected_addr(&self, line: u64) -> bool {
        Self::in_ranges(&self.protected_ranges, line)
    }

    /// Marks the line-address range `start..end` as *coherence-tracked*
    /// (a shared segment kept coherent by the platform's invalidation
    /// protocol). Fills in the range carry per-line MSI state readable
    /// via [`coherence_state`](Self::coherence_state); untracked lines
    /// stay non-coherent (the pre-coherence per-core-private world).
    pub fn add_coherent_range(&mut self, start: LineAddr, end: LineAddr) {
        Self::insert_range(&mut self.coherent_ranges, start, end);
    }

    /// The registered coherent ranges (sorted, merged, disjoint).
    pub fn coherent_ranges(&self) -> &[(u64, u64)] {
        &self.coherent_ranges
    }

    /// Whether this cache tracks any coherent range.
    #[inline]
    pub fn has_coherent_ranges(&self) -> bool {
        !self.coherent_ranges.is_empty()
    }

    /// Whether `line` falls in a coherent range.
    #[inline]
    pub fn is_coherent_addr(&self, line: u64) -> bool {
        Self::in_ranges(&self.coherent_ranges, line)
    }

    /// MSI state of `pid`'s view of `line`: `None` when the line is
    /// absent (state I) or not coherence-tracked, otherwise
    /// [`CohState::Modified`] for a dirty copy and [`CohState::Shared`]
    /// for a clean one.
    pub fn coherence_state(&mut self, pid: ProcessId, line: LineAddr) -> Option<CohState> {
        let (seed, _, _) = self.context(pid);
        let set = self.place(line, seed);
        let way = self.find_way(set, line)?;
        let meta = self.meta[(set * self.ways + way) as usize];
        if !meta.coherent() {
            return None;
        }
        Some(if meta.dirty() { CohState::Modified } else { CohState::Shared })
    }

    /// Invalidates `pid`'s copy of `line` (a coherence action: an
    /// upgrade by a remote writer, a flush broadcast, or an inclusive-
    /// LLC back-invalidation). Placement resolves under `pid`'s seed —
    /// the holder's own view, which is what physically indexes its
    /// copy. Reports whether a copy existed and whether it was dirty;
    /// a present copy records one coherence invalidation in the stats.
    pub fn invalidate_line(&mut self, pid: ProcessId, line: LineAddr) -> InvalidatedCopy {
        let (seed, _, _) = self.context(pid);
        let set = self.place(line, seed);
        match self.find_way(set, line) {
            Some(way) => {
                let slot = (set * self.ways + way) as usize;
                let dirty = self.meta[slot].dirty();
                self.tags[slot] = INVALID_TAG;
                self.meta[slot] = LineMeta::EMPTY;
                self.stats.record_coh_invalidation();
                if dirty {
                    // The drained data is forced out (to memory under
                    // flush/back-invalidate semantics) — counted like
                    // any other dirty eviction.
                    self.stats.record_writeback();
                }
                InvalidatedCopy { present: true, dirty }
            }
            None => InvalidatedCopy::default(),
        }
    }

    /// Restricts `pid` to fill ways `lo..hi` in every set (strict way
    /// partitioning, the cache-partitioning alternative of §7). Hits on
    /// lines outside the partition are still served — partitioning
    /// constrains placement of *new* data, not lookup.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn set_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        assert!(lo < hi && hi <= self.ways, "invalid way range {lo}..{hi}");
        let raw = pid.as_u16();
        match self.partitions.binary_search_by_key(&raw, |&(p, _, _)| p) {
            Ok(i) => self.partitions[i] = (raw, lo, hi),
            Err(i) => self.partitions.insert(i, (raw, lo, hi)),
        }
        self.hot = HotContext::EMPTY;
    }

    /// Removes `pid`'s way partition.
    pub fn clear_way_partition(&mut self, pid: ProcessId) {
        if let Ok(i) = self.partitions.binary_search_by_key(&pid.as_u16(), |&(p, _, _)| p) {
            self.partitions.remove(i);
        }
        self.hot = HotContext::EMPTY;
    }

    /// Resolves the `(seed, way range)` context of `pid`, memoized for
    /// the hot process.
    #[inline]
    fn context(&mut self, pid: ProcessId) -> (Seed, u32, u32) {
        if self.hot.pid == pid.as_u16() as u32 {
            return (self.hot.seed, self.hot.lo, self.hot.hi);
        }
        let seed = self.seeds.get(pid);
        let (lo, hi) = match self.partitions.binary_search_by_key(&pid.as_u16(), |&(p, _, _)| p) {
            Ok(i) => (self.partitions[i].1, self.partitions[i].2),
            Err(_) => (0, self.ways),
        };
        self.hot = HotContext { pid: pid.as_u16() as u32, seed, lo, hi };
        (seed, lo, hi)
    }

    /// Returns the placement seed of `pid` ([`Seed::ZERO`] if unset).
    pub fn seed(&self, pid: ProcessId) -> Seed {
        self.seeds.get(pid)
    }

    /// Invalidates every line and resets replacement bookkeeping.
    ///
    /// Dirty lines are *drained*: their data is written to memory (one
    /// counted writeback each) before invalidation — a flush may not
    /// silently discard modified data. Per-process partition-
    /// replacement streams reset to their derivation points, so a
    /// flush followed by an identical replay is bit-reproducible for
    /// partitioned victim selection (the shared hardware RNG stream is
    /// *not* rewound: it models free-running LFSR state that survives
    /// a flush). Returns the number of dirty lines drained.
    pub fn flush(&mut self) -> u64 {
        let drained = self.drain_dirty_all();
        self.tags.fill(INVALID_TAG);
        self.meta.fill(LineMeta::EMPTY);
        self.replacement.reset();
        self.part_rngs.clear();
        self.ttl_rng = SplitMix64::new(mix64(self.rng_seed ^ 0x0074_746c));
        self.stats.record_flush();
        drained
    }

    /// Invalidates every line owned by `pid`, draining its dirty lines
    /// to memory (counted) and dropping its partition-replacement
    /// stream (it re-derives from the constructor seed on next use, so
    /// the process restarts from a reproducible victim-selection
    /// state). Returns the number of dirty lines drained.
    pub fn flush_process(&mut self, pid: ProcessId) -> u64 {
        let raw = pid.as_u16();
        let mut drained = 0u64;
        for (tag, meta) in self.tags.iter_mut().zip(self.meta.iter_mut()) {
            if meta.owner == raw && *tag != INVALID_TAG {
                drained += meta.dirty() as u64;
                *tag = INVALID_TAG;
                *meta = LineMeta::EMPTY;
            }
        }
        self.stats.record_writebacks(drained);
        if let Ok(i) = self.part_rngs.binary_search_by_key(&raw, |&(p, _)| p) {
            self.part_rngs.remove(i);
        }
        self.stats.record_flush();
        drained
    }

    /// Counts and accounts the dirty lines a whole-cache flush drains.
    fn drain_dirty_all(&mut self) -> u64 {
        let drained = self
            .tags
            .iter()
            .zip(&self.meta)
            .filter(|(&t, m)| t != INVALID_TAG && m.dirty())
            .count() as u64;
        self.stats.record_writebacks(drained);
        drained
    }

    /// Looks a line up without changing replacement state or filling.
    ///
    /// Needs `&mut self` because table-based placement builds its
    /// per-seed state lazily.
    ///
    /// # Panics
    ///
    /// Panics if `line` is `u64::MAX` (the [`INVALID_TAG`] sentinel),
    /// which would falsely match invalid ways.
    pub fn probe(&mut self, pid: ProcessId, line: LineAddr) -> bool {
        assert_ne!(line.as_u64(), INVALID_TAG, "line address collides with sentinel");
        let (seed, _, _) = self.context(pid);
        let set = self.place(line, seed);
        match self.find_way(set, line) {
            // Under timed-access normalization another process's line
            // is indistinguishable from an absent one — a real access
            // would be levelled to miss latency, so a probe must not
            // see it either.
            Some(way) if self.normalize => {
                self.meta[(set * self.ways + way) as usize].owner == pid.as_u16()
            }
            Some(_) => true,
            None => false,
        }
    }

    /// Resolves `place(line, seed)` through the direct-mapped memo for
    /// memoizable policies; falls through to the engine otherwise.
    /// Exact: the memo is only active for policies whose placement is
    /// a pure function of `(line, seed)`, and every entry stores the
    /// full key.
    #[inline]
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        if self.place_memo.is_empty() {
            return self.placement.place(line, seed);
        }
        let idx = ((line.as_u64() ^ seed.as_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize)
            & (self.place_memo.len() - 1);
        let entry = self.place_memo[idx];
        if entry.line == line.as_u64() && entry.seed == seed.as_u64() {
            return entry.set;
        }
        let set = self.placement.place(line, seed);
        self.place_memo[idx] = PlaceMemoEntry { line: line.as_u64(), seed: seed.as_u64(), set };
        set
    }

    /// Scans one set's contiguous tag block for `line`. Invalid ways
    /// hold [`INVALID_TAG`] and can never match a real line address.
    #[inline]
    fn find_way(&self, set: u32, line: LineAddr) -> Option<u32> {
        let base = (set * self.ways) as usize;
        let raw = line.as_u64();
        self.tags[base..base + self.ways as usize].iter().position(|&t| t == raw).map(|w| w as u32)
    }

    #[inline]
    fn find_invalid_way(&self, set: u32, lo: u32, hi: u32) -> Option<u32> {
        let base = (set * self.ways) as usize;
        self.tags[base + lo as usize..base + hi as usize]
            .iter()
            .position(|&t| t == INVALID_TAG)
            .map(|w| lo + w as u32)
    }

    /// Accesses `line` on behalf of `pid` as a *read*, filling on a
    /// miss.
    ///
    /// # Panics
    ///
    /// Panics if `line` is `u64::MAX` (the [`INVALID_TAG`] sentinel) —
    /// such a fill would silently read back as an invalid slot.
    pub fn access(&mut self, pid: ProcessId, line: LineAddr) -> AccessOutcome {
        self.access_rw(pid, line, false)
    }

    /// Accesses `line` on behalf of `pid` as a *write* (write-allocate:
    /// a miss fills the line first). Under [`WritePolicy::WriteBack`]
    /// the line is marked dirty; under write-through the access is
    /// indistinguishable from a read (the store drains through a write
    /// buffer this model treats as free).
    ///
    /// # Panics
    ///
    /// As [`access`](Self::access).
    pub fn access_write(&mut self, pid: ProcessId, line: LineAddr) -> AccessOutcome {
        self.access_rw(pid, line, true)
    }

    /// The read/write access entry point; see [`access`](Self::access)
    /// and [`access_write`](Self::access_write).
    pub fn access_rw(&mut self, pid: ProcessId, line: LineAddr, write: bool) -> AccessOutcome {
        assert_ne!(line.as_u64(), INVALID_TAG, "line address collides with sentinel");
        let (seed, lo, hi) = self.context(pid);
        match self.access_inner(pid, line, seed, lo, hi, write) {
            InnerOutcome::Hit => {
                self.stats.record_hit();
                AccessOutcome::Hit
            }
            InnerOutcome::Miss { evicted, redirected, cross_process } => {
                if cross_process {
                    self.stats.record_cross_process_eviction();
                }
                if evicted.is_some_and(|ev| ev.dirty) {
                    self.stats.record_writeback();
                }
                self.stats.record_miss(evicted.is_some());
                AccessOutcome::Miss { evicted, redirected }
            }
        }
    }

    /// Accesses a whole trace of lines on behalf of `pid`, amortizing
    /// the context lookup and statistics updates across the batch.
    ///
    /// Outcomes (including RNG draws and replacement state) are
    /// identical to issuing each line through [`access`](Self::access)
    /// in order; only the bookkeeping is batched.
    ///
    /// # Panics
    ///
    /// Panics if any line is `u64::MAX` (the [`INVALID_TAG`]
    /// sentinel), as [`access`](Self::access) does.
    ///
    /// # Examples
    ///
    /// ```
    /// use tscache_core::addr::LineAddr;
    /// use tscache_core::cache::Cache;
    /// use tscache_core::geometry::CacheGeometry;
    /// use tscache_core::placement::PlacementKind;
    /// use tscache_core::replacement::ReplacementKind;
    /// use tscache_core::seed::ProcessId;
    ///
    /// let mut cache = Cache::new(
    ///     "L1D",
    ///     CacheGeometry::paper_l1(),
    ///     PlacementKind::Modulo,
    ///     ReplacementKind::Lru,
    ///     1,
    /// );
    /// let trace: Vec<LineAddr> = (0..64).map(LineAddr::new).collect();
    /// let cold = cache.access_batch(ProcessId::new(1), &trace);
    /// assert_eq!(cold.misses, 64);
    /// let warm = cache.access_batch(ProcessId::new(1), &trace);
    /// assert_eq!(warm.hits, 64);
    /// ```
    pub fn access_batch(&mut self, pid: ProcessId, lines: &[LineAddr]) -> BatchOutcome {
        self.batch_inner(pid, lines, BatchIo::default())
    }

    /// Like [`access_batch`](Self::access_batch), but additionally
    /// appends every *missing* line to `misses`, in access order.
    ///
    /// This is the level-to-level conduit of
    /// [`Hierarchy::access_batch`](crate::hierarchy::Hierarchy::access_batch):
    /// the miss stream of one level is exactly the access stream of the
    /// next level down, so batching the whole hierarchy is a chain of
    /// these calls.
    ///
    /// # Panics
    ///
    /// Panics if any line is `u64::MAX` (the [`INVALID_TAG`] sentinel),
    /// as [`access`](Self::access) does.
    pub fn access_batch_collect(
        &mut self,
        pid: ProcessId,
        lines: &[LineAddr],
        misses: &mut Vec<LineAddr>,
    ) -> BatchOutcome {
        self.batch_inner(pid, lines, BatchIo { misses: Some(misses), ..BatchIo::default() })
    }

    /// The fully-featured batch entry point: reads and writes mixed
    /// (per-line write flags), caller-supplied op indices, and sinks
    /// for the miss stream, the misses' op indices and the dirty-
    /// eviction writebacks. [`Hierarchy::access_batch`] drives every
    /// level through this method; the simpler batch calls are wrappers
    /// passing an empty [`BatchIo`].
    ///
    /// # Panics
    ///
    /// Panics if any line is `u64::MAX` (the [`INVALID_TAG`] sentinel)
    /// or if a provided `writes`/`idx` slice disagrees with `lines` in
    /// length.
    pub fn access_batch_io(
        &mut self,
        pid: ProcessId,
        lines: &[LineAddr],
        io: BatchIo<'_, '_>,
    ) -> BatchOutcome {
        self.batch_inner(pid, lines, io)
    }

    fn batch_inner(
        &mut self,
        pid: ProcessId,
        lines: &[LineAddr],
        io: BatchIo<'_, '_>,
    ) -> BatchOutcome {
        // The read-only miss-collect shape (the write-through hot path)
        // skips all per-op event plumbing.
        if io.writes.is_none()
            && io.idx.is_none()
            && io.miss_idx.is_none()
            && io.writebacks.is_none()
        {
            return self.batch_reads(pid, lines, io.misses);
        }
        if let Some(writes) = io.writes {
            assert_eq!(writes.len(), lines.len(), "write flags length mismatch");
        }
        if let Some(idx) = io.idx {
            assert_eq!(idx.len(), lines.len(), "op index length mismatch");
        }
        let BatchIo { writes, idx, mut misses, mut miss_idx, mut writebacks } = io;
        let (seed, lo, hi) = self.context(pid);
        let mut out = BatchOutcome::default();
        let mut cross = 0u64;
        for (i, &line) in lines.iter().enumerate() {
            assert_ne!(line.as_u64(), INVALID_TAG, "line address collides with sentinel");
            let write = writes.is_some_and(|w| w[i]);
            match self.access_inner(pid, line, seed, lo, hi, write) {
                InnerOutcome::Hit => out.hits += 1,
                InnerOutcome::Miss { evicted, redirected, cross_process } => {
                    let op_idx = idx.map_or(i as u32, |v| v[i]);
                    out.misses += 1;
                    out.evictions += evicted.is_some() as u64;
                    out.redirected += redirected as u64;
                    cross += cross_process as u64;
                    if let Some(ev) = evicted.filter(|ev| ev.dirty) {
                        out.writebacks += 1;
                        if let Some(sink) = writebacks.as_deref_mut() {
                            sink.push(Writeback { line: ev.line, owner: ev.owner, op_idx });
                        }
                    }
                    if let Some(sink) = misses.as_deref_mut() {
                        sink.push(line);
                    }
                    if let Some(sink) = miss_idx.as_deref_mut() {
                        sink.push(op_idx);
                    }
                }
            }
        }
        self.stats.record_batch(out.hits, out.misses, out.evictions, cross);
        self.stats.record_writebacks(out.writebacks);
        out
    }

    /// The lean all-reads batch loop (`access`'s batched twin): no
    /// write flags, no op-index bookkeeping, no writeback sink. Dirty
    /// evictions are still *counted* (a read can displace a line some
    /// earlier write dirtied), they just aren't materialized.
    fn batch_reads(
        &mut self,
        pid: ProcessId,
        lines: &[LineAddr],
        mut misses: Option<&mut Vec<LineAddr>>,
    ) -> BatchOutcome {
        let (seed, lo, hi) = self.context(pid);
        let mut out = BatchOutcome::default();
        let mut cross = 0u64;
        for &line in lines {
            assert_ne!(line.as_u64(), INVALID_TAG, "line address collides with sentinel");
            match self.access_inner(pid, line, seed, lo, hi, false) {
                InnerOutcome::Hit => out.hits += 1,
                InnerOutcome::Miss { evicted, redirected, cross_process } => {
                    out.misses += 1;
                    out.evictions += evicted.is_some() as u64;
                    out.redirected += redirected as u64;
                    out.writebacks += evicted.is_some_and(|ev| ev.dirty) as u64;
                    cross += cross_process as u64;
                    if let Some(sink) = misses.as_deref_mut() {
                        sink.push(line);
                    }
                }
            }
        }
        self.stats.record_batch(out.hits, out.misses, out.evictions, cross);
        self.stats.record_writebacks(out.writebacks);
        out
    }

    /// The shared access path: everything except hit/miss statistics.
    /// (TTL expiry drains account their writebacks and expiries
    /// directly — the drains happen here so scalar and batch walks
    /// stay bit-identical, and they are not per-access outcomes the
    /// callers could aggregate.)
    #[inline]
    fn access_inner(
        &mut self,
        pid: ProcessId,
        line: LineAddr,
        seed: Seed,
        lo: u32,
        hi: u32,
        write: bool,
    ) -> InnerOutcome {
        let mut set = self.place(line, seed);
        if self.ttl.is_some() {
            self.ttl_tick(set);
        }
        let dirty_fill = write && self.write_policy == WritePolicy::WriteBack;

        if let Some(way) = self.find_way(set, line) {
            let slot = (set * self.ways + way) as usize;
            if self.normalize && self.meta[slot].owner != pid.as_u16() {
                // TimeCache levelling: the line stays resident (no
                // refill, no eviction) but ownership transfers and the
                // access reports a miss, so its timing is
                // indistinguishable from a cold one.
                self.meta[slot].owner = pid.as_u16();
                if dirty_fill {
                    self.meta[slot].flags |= LineMeta::DIRTY;
                }
                self.replacement.on_hit(set, way);
                return InnerOutcome::Miss {
                    evicted: None,
                    redirected: false,
                    cross_process: false,
                };
            }
            self.replacement.on_hit(set, way);
            if dirty_fill {
                self.meta[slot].flags |= LineMeta::DIRTY;
            }
            return InnerOutcome::Hit;
        }

        // Miss: pick the fill way within the process's way partition;
        // invalid ways first.
        let full_width = hi - lo == self.ways;
        let mut redirected = false;
        let mut way = match self.find_invalid_way(set, lo, hi) {
            Some(w) => w,
            None if full_width => self.replacement.victim(set, &mut self.rng),
            None => {
                let i = self.part_rng_index(pid);
                self.replacement.victim_in(set, lo, hi, &mut self.part_rngs[i].1)
            }
        };

        // RPCache interference randomization: if the fill would evict
        // another process's line or a protected (crypto-table) line,
        // remap this line's index to a random set and fill there
        // instead (paper §3; Wang & Lee's "contention event that might
        // leak information").
        let slot = (set * self.ways + way) as usize;
        if self.tags[slot] != INVALID_TAG
            && (self.meta[slot].owner != pid.as_u16() || self.meta[slot].protected())
            && self.placement.randomizes_interference()
        {
            if let Some(new_set) = self.placement.remap_on_contention(line, seed, &mut self.rng) {
                // Drop now-unreachable lines of the remapped index from
                // the old set (the hardware moves or invalidates them).
                self.invalidate_line_aliases(set, line, pid);
                set = new_set;
                redirected = true;
                way = match self.find_invalid_way(set, lo, hi) {
                    Some(w) => w,
                    None if full_width => self.replacement.victim(set, &mut self.rng),
                    None => {
                        let i = self.part_rng_index(pid);
                        self.replacement.victim_in(set, lo, hi, &mut self.part_rngs[i].1)
                    }
                };
            }
        }

        let slot = (set * self.ways + way) as usize;
        let mut cross_process = false;
        let evicted = if self.tags[slot] != INVALID_TAG {
            let ev = EvictedLine {
                line: LineAddr::new(self.tags[slot]),
                owner: ProcessId::new(self.meta[slot].owner),
                dirty: self.meta[slot].dirty(),
            };
            cross_process = ev.owner != pid;
            Some(ev)
        } else {
            None
        };

        self.tags[slot] = line.as_u64();
        let mut flags = if self.is_protected_addr(line.as_u64()) { LineMeta::PROTECTED } else { 0 };
        if self.is_coherent_addr(line.as_u64()) {
            flags |= LineMeta::COHERENT;
        }
        if dirty_fill {
            flags |= LineMeta::DIRTY;
        }
        self.meta[slot] = LineMeta { owner: pid.as_u16(), flags, ttl: self.fill_ttl() };
        self.replacement.on_fill(set, way);
        InnerOutcome::Miss { evicted, redirected, cross_process }
    }

    /// The lifetime a fill arms: `base + uniform(0..=jitter)` when the
    /// TTL defense is on, 0 (infinite) otherwise. The jitter stream is
    /// only drawn from when `jitter > 0`, so a jitter-free config
    /// leaves [`ttl_rng`](Cache::ttl_rng) untouched.
    #[inline]
    fn fill_ttl(&mut self) -> u8 {
        match self.ttl {
            Some(cfg) => {
                let jitter = if cfg.jitter == 0 {
                    0
                } else {
                    self.ttl_rng.below(cfg.jitter as u32 + 1) as u8
                };
                cfg.base.saturating_add(jitter)
            }
            None => 0,
        }
    }

    /// Decrements resident lifetimes in `set` and drains expired lines
    /// (dirty drains count a writeback; all drains count a TTL
    /// expiry). Runs before lookup, so a line expiring on the access
    /// that would have hit it misses instead — the ClepsydraCache
    /// decay an attacker's primed lines suffer.
    fn ttl_tick(&mut self, set: u32) {
        let base = (set * self.ways) as usize;
        for slot in base..base + self.ways as usize {
            if self.tags[slot] == INVALID_TAG {
                continue;
            }
            match self.meta[slot].ttl {
                0 => {} // infinite: filled while the defense was off
                1 => {
                    if self.meta[slot].dirty() {
                        self.stats.record_writeback();
                    }
                    self.stats.record_ttl_expiry();
                    self.tags[slot] = INVALID_TAG;
                    self.meta[slot] = LineMeta::EMPTY;
                }
                t => self.meta[slot].ttl = t - 1,
            }
        }
    }

    /// After an RPCache remap of `line`'s index, lines of `pid` with the
    /// same placement-relevant index sitting in the old set would become
    /// unreachable; invalidate them.
    fn invalidate_line_aliases(&mut self, old_set: u32, line: LineAddr, pid: ProcessId) {
        let index_bits = self.geom.index_bits();
        let base = (old_set * self.ways) as usize;
        for w in 0..self.ways as usize {
            let slot = base + w;
            if self.tags[slot] != INVALID_TAG
                && self.meta[slot].owner == pid.as_u16()
                && LineAddr::new(self.tags[slot]).index_bits(index_bits)
                    == line.index_bits(index_bits)
            {
                self.tags[slot] = INVALID_TAG;
            }
        }
    }

    /// Iterates over currently valid lines as `(set, way, line, owner)`.
    pub fn contents(&self) -> impl Iterator<Item = (u32, u32, LineAddr, ProcessId)> + '_ {
        let ways = self.ways;
        (0..self.geom.sets()).flat_map(move |set| {
            (0..ways).filter_map(move |way| {
                let slot = (set * ways + way) as usize;
                if self.tags[slot] != INVALID_TAG {
                    Some((
                        set,
                        way,
                        LineAddr::new(self.tags[slot]),
                        ProcessId::new(self.meta[slot].owner),
                    ))
                } else {
                    None
                }
            })
        })
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

/// Outcome of the statistics-free inner access path.
enum InnerOutcome {
    Hit,
    Miss { evicted: Option<EvictedLine>, redirected: bool, cross_process: bool },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(placement: PlacementKind, replacement: ReplacementKind) -> Cache {
        Cache::new("test", CacheGeometry::new(8, 2, 32).unwrap(), placement, replacement, 7)
    }

    fn pid(n: u16) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let line = LineAddr::new(5);
        assert!(c.access(pid(1), line).is_miss());
        assert!(c.access(pid(1), line).is_hit());
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn capacity_eviction_with_lru() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let p = pid(1);
        // Three lines mapping to set 0 in a 2-way cache.
        let (a, b, x) = (LineAddr::new(0), LineAddr::new(8), LineAddr::new(16));
        c.access(p, a);
        c.access(p, b);
        let outcome = c.access(p, x);
        match outcome {
            AccessOutcome::Miss { evicted: Some(ev), .. } => assert_eq!(ev.line, a),
            other => panic!("expected eviction of a, got {other:?}"),
        }
        assert!(c.access(p, b).is_hit(), "b must survive");
        assert!(c.access(p, a).is_miss(), "a was evicted");
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        for i in 0..16u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        assert!(c.occupancy() > 0);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(c.access(pid(1), LineAddr::new(0)).is_miss());
    }

    #[test]
    fn flush_process_is_selective() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.access(pid(1), LineAddr::new(0));
        c.access(pid(2), LineAddr::new(1));
        c.flush_process(pid(1));
        assert!(c.access(pid(1), LineAddr::new(0)).is_miss());
        assert!(c.access(pid(2), LineAddr::new(1)).is_hit());
    }

    #[test]
    fn per_process_seeds_separate_layouts() {
        let mut c = small_cache(PlacementKind::RandomModulo, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(111));
        c.set_seed(pid(2), Seed::new(222));
        assert_eq!(c.seed(pid(1)), Seed::new(111));
        // Both processes can cache their own lines independently.
        c.access(pid(1), LineAddr::new(0x40));
        c.access(pid(2), LineAddr::new(0x80));
        assert!(c.access(pid(1), LineAddr::new(0x40)).is_hit());
        assert!(c.access(pid(2), LineAddr::new(0x80)).is_hit());
    }

    #[test]
    fn seed_change_loses_old_layout_until_refetched() {
        let mut c = small_cache(PlacementKind::IdealRandom, ReplacementKind::Lru);
        let p = pid(1);
        c.set_seed(p, Seed::new(1));
        let line = LineAddr::new(0x123);
        c.access(p, line);
        assert!(c.access(p, line).is_hit());
        // A new seed (usually) maps the line elsewhere → miss expected.
        // Use a line/seed pair where the mapping does change.
        let mut moved = None;
        for s in 2..50u64 {
            c.set_seed(p, Seed::new(s));
            if !c.probe(p, line) {
                moved = Some(s);
                break;
            }
        }
        assert!(moved.is_some(), "line never moved across 48 seeds");
    }

    #[test]
    fn probe_does_not_fill_or_count() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        assert!(!c.probe(pid(1), LineAddr::new(3)));
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(pid(1), LineAddr::new(3)).is_miss());
        assert!(c.probe(pid(1), LineAddr::new(3)));
    }

    #[test]
    fn cross_process_eviction_is_counted() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        // Fill set 0 with pid 1, then overflow it with pid 2.
        c.access(pid(1), LineAddr::new(0));
        c.access(pid(1), LineAddr::new(8));
        c.access(pid(2), LineAddr::new(16));
        assert_eq!(c.stats().cross_process_evictions(), 1);
    }

    #[test]
    fn rpcache_redirects_cross_process_contention() {
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(1));
        c.set_seed(pid(2), Seed::new(2));
        // Occupy every set with pid 1 so any pid-2 fill contends.
        for i in 0..64u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        let mut redirects = 0;
        for i in 100..164u64 {
            if let AccessOutcome::Miss { redirected: true, .. } = c.access(pid(2), LineAddr::new(i))
            {
                redirects += 1;
            }
        }
        assert!(redirects > 0, "rpcache never redirected under full contention");
    }

    #[test]
    fn rpcache_remapped_line_remains_cached() {
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(1));
        c.set_seed(pid(2), Seed::new(2));
        for i in 0..64u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        // Whatever happened (redirect or not), the just-filled line must
        // be findable right after its miss.
        for i in 100..110u64 {
            let line = LineAddr::new(i);
            c.access(pid(2), line);
            assert!(c.access(pid(2), line).is_hit(), "line {i} lost after fill");
        }
    }

    #[test]
    fn rpcache_protects_marked_lines_within_one_process() {
        // Wang & Lee's P-bit: even same-process fills that would evict
        // a protected line are redirected to a random set.
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        let p = pid(1);
        c.set_seed(p, Seed::new(4));
        c.add_protected_range(LineAddr::new(0), LineAddr::new(64));
        // Fill the cache with protected lines.
        for i in 0..16u64 {
            c.access(p, LineAddr::new(i));
        }
        // Unprotected fills from elsewhere must trigger redirects.
        let mut redirects = 0;
        for i in 1000..1064u64 {
            if let AccessOutcome::Miss { redirected: true, .. } = c.access(p, LineAddr::new(i)) {
                redirects += 1;
            }
        }
        assert!(redirects > 0, "no protected-line redirect happened");
    }

    #[test]
    fn protected_bit_ignored_by_non_randomizing_policies() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let p = pid(1);
        c.add_protected_range(LineAddr::new(0), LineAddr::new(64));
        for i in 0..16u64 {
            c.access(p, LineAddr::new(i));
        }
        for i in 1000..1016u64 {
            match c.access(p, LineAddr::new(i)) {
                AccessOutcome::Miss { redirected, .. } => assert!(!redirected),
                AccessOutcome::Hit => panic!("unexpected hit"),
            }
        }
    }

    #[test]
    fn protected_ranges_merge_overlaps() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.add_protected_range(LineAddr::new(10), LineAddr::new(20));
        c.add_protected_range(LineAddr::new(15), LineAddr::new(30)); // overlaps
        c.add_protected_range(LineAddr::new(30), LineAddr::new(40)); // adjacent
        c.add_protected_range(LineAddr::new(100), LineAddr::new(110)); // disjoint
        c.add_protected_range(LineAddr::new(5), LineAddr::new(5)); // empty, dropped
        assert_eq!(c.protected_ranges(), &[(10, 40), (100, 110)]);
        for (line, expect) in [
            (9, false),
            (10, true),
            (25, true),
            (39, true),
            (40, false),
            (99, false),
            (105, true),
            (110, false),
        ] {
            assert_eq!(c.is_protected_addr(line), expect, "line {line}");
        }
    }

    #[test]
    fn way_partition_confines_fills() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_way_partition(pid(1), 0, 1);
        c.set_way_partition(pid(2), 1, 2);
        // pid 1 streams many conflicting lines: confined to way 0, its
        // own lines thrash while pid 2's single line survives.
        c.access(pid(2), LineAddr::new(8)); // set 0
        for i in 0..10u64 {
            c.access(pid(1), LineAddr::new(i * 8)); // all set 0
        }
        assert!(c.access(pid(2), LineAddr::new(8)).is_hit(), "partition violated");
        for (_, way, _, owner) in c.contents() {
            match owner.as_u16() {
                1 => assert_eq!(way, 0),
                2 => assert_eq!(way, 1),
                _ => {}
            }
        }
    }

    #[test]
    fn way_partition_reduces_effective_associativity() {
        let mut full = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let mut part = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        part.set_way_partition(pid(1), 0, 1);
        // Two alternating lines in one set: fit a 2-way cache, thrash a
        // 1-way partition.
        for _ in 0..20 {
            for line in [0u64, 8] {
                full.access(pid(1), LineAddr::new(line));
                part.access(pid(1), LineAddr::new(line));
            }
        }
        assert!(part.stats().misses() > full.stats().misses() * 2);
    }

    #[test]
    fn clear_way_partition_restores_full_ways() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_way_partition(pid(1), 0, 1);
        c.clear_way_partition(pid(1));
        c.access(pid(1), LineAddr::new(0));
        c.access(pid(1), LineAddr::new(8));
        assert!(c.access(pid(1), LineAddr::new(0)).is_hit());
        assert!(c.access(pid(1), LineAddr::new(8)).is_hit());
    }

    #[test]
    #[should_panic(expected = "invalid way range")]
    fn empty_partition_rejected() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_way_partition(pid(1), 1, 1);
    }

    #[test]
    fn partitions_work_with_every_replacement_policy() {
        for repl in ReplacementKind::ALL {
            let mut c = small_cache(PlacementKind::Modulo, repl);
            c.set_way_partition(pid(1), 0, 1);
            c.set_way_partition(pid(2), 1, 2);
            for i in 0..50u64 {
                c.access(pid(1), LineAddr::new(i));
                c.access(pid(2), LineAddr::new(1000 + i));
            }
            for (_, way, _, owner) in c.contents() {
                match owner.as_u16() {
                    1 => assert_eq!(way, 0, "{repl}"),
                    2 => assert_eq!(way, 1, "{repl}"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn hot_context_tracks_partition_and_seed_changes() {
        let mut c = small_cache(PlacementKind::RandomModulo, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(1));
        c.access(pid(1), LineAddr::new(0)); // warm the hot context
                                            // Changing the seed must invalidate the memoized context.
        c.set_seed(pid(1), Seed::new(2));
        assert_eq!(c.seed(pid(1)), Seed::new(2));
        c.access(pid(1), LineAddr::new(0));
        // Adding a partition mid-stream must take effect immediately.
        c.set_way_partition(pid(1), 0, 1);
        for i in 0..20u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        for (_, way, _, owner) in c.contents() {
            if owner == pid(1) {
                assert_eq!(way, 0, "fill escaped the partition");
            }
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        for kind in PlacementKind::ALL {
            let mut c = small_cache(kind, ReplacementKind::Random);
            c.set_seed(pid(1), Seed::new(5));
            for i in 0..1000u64 {
                c.access(pid(1), LineAddr::new(i % 97));
            }
            assert!(c.occupancy() <= 16, "{kind}: occupancy {}", c.occupancy());
        }
    }

    #[test]
    fn contents_reports_valid_lines() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.access(pid(3), LineAddr::new(9));
        let all: Vec<_> = c.contents().collect();
        assert_eq!(all.len(), 1);
        let (set, _way, line, owner) = all[0];
        assert_eq!(set, 1); // index bits of 9 in an 8-set cache
        assert_eq!(line, LineAddr::new(9));
        assert_eq!(owner, pid(3));
    }

    #[test]
    fn debug_output_names_policies() {
        let c = small_cache(PlacementKind::HashRp, ReplacementKind::Random);
        let dbg = format!("{c:?}");
        assert!(dbg.contains("hash-rp"));
        assert!(dbg.contains("random"));
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let run = |rng_seed: u64| {
            let mut c = Cache::new(
                "d",
                CacheGeometry::new(8, 2, 32).unwrap(),
                PlacementKind::RandomModulo,
                ReplacementKind::Random,
                rng_seed,
            );
            c.set_seed(pid(1), Seed::new(9));
            let mut misses = 0;
            for i in 0..500u64 {
                if c.access(pid(1), LineAddr::new((i * 7) % 64)).is_miss() {
                    misses += 1;
                }
            }
            misses
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn batch_matches_scalar_accesses_exactly() {
        for placement in PlacementKind::ALL {
            let trace: Vec<LineAddr> = (0..600u64).map(|i| LineAddr::new((i * 13) % 97)).collect();
            let mut scalar = small_cache(placement, ReplacementKind::Random);
            let mut batched = small_cache(placement, ReplacementKind::Random);
            for c in [&mut scalar, &mut batched] {
                c.set_seed(pid(1), Seed::new(11));
                c.add_protected_range(LineAddr::new(0), LineAddr::new(8));
            }
            let mut hits = 0u64;
            for &l in &trace {
                hits += scalar.access(pid(1), l).is_hit() as u64;
            }
            let out = batched.access_batch(pid(1), &trace);
            assert_eq!(out.hits, hits, "{placement}");
            assert_eq!(out.accesses(), trace.len() as u64);
            assert_eq!(scalar.stats(), batched.stats(), "{placement}");
            let a: Vec<_> = scalar.contents().collect();
            let b: Vec<_> = batched.contents().collect();
            assert_eq!(a, b, "{placement}: final contents diverge");
        }
    }

    #[test]
    fn write_through_never_dirties_or_writes_back() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let p = pid(1);
        for i in 0..64u64 {
            c.access_write(p, LineAddr::new(i));
        }
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.stats().writebacks(), 0);
    }

    #[test]
    fn writeback_counts_dirty_evictions() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_write_policy(WritePolicy::WriteBack);
        assert_eq!(c.write_policy(), WritePolicy::WriteBack);
        let p = pid(1);
        // Fill set 0 of the 8-set, 2-way cache with two dirty lines,
        // then displace both with clean reads.
        c.access_write(p, LineAddr::new(0));
        c.access_write(p, LineAddr::new(8));
        assert_eq!(c.dirty_lines(), 2);
        match c.access(p, LineAddr::new(16)) {
            AccessOutcome::Miss { evicted: Some(ev), .. } => {
                assert!(ev.dirty, "evicted line should be dirty");
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        c.access(p, LineAddr::new(24));
        assert_eq!(c.stats().writebacks(), 2);
        // The clean fills themselves are not dirty.
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn write_hit_dirties_clean_line() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_write_policy(WritePolicy::WriteBack);
        let p = pid(1);
        c.access(p, LineAddr::new(0)); // clean fill
        assert_eq!(c.dirty_lines(), 0);
        c.access_write(p, LineAddr::new(0)); // write hit
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn receive_writeback_dirties_present_line_only() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_write_policy(WritePolicy::WriteBack);
        let p = pid(1);
        c.access(p, LineAddr::new(5));
        assert!(c.receive_writeback(p, LineAddr::new(5)), "present line must absorb");
        assert_eq!(c.dirty_lines(), 1);
        assert!(!c.receive_writeback(p, LineAddr::new(6)), "absent line must forward");
        // A write-through cache never absorbs (the write goes through).
        let mut wt = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        wt.access(p, LineAddr::new(5));
        assert!(!wt.receive_writeback(p, LineAddr::new(5)));
        assert_eq!(wt.dirty_lines(), 0);
    }

    #[test]
    fn batch_rw_matches_scalar_rw_with_writebacks() {
        for placement in PlacementKind::ALL {
            let trace: Vec<(LineAddr, bool)> =
                (0..600u64).map(|i| (LineAddr::new((i * 13) % 97), i % 3 == 0)).collect();
            let mut scalar = small_cache(placement, ReplacementKind::Random);
            let mut batched = small_cache(placement, ReplacementKind::Random);
            for c in [&mut scalar, &mut batched] {
                c.set_write_policy(WritePolicy::WriteBack);
                c.set_seed(pid(1), Seed::new(11));
            }
            let mut scalar_wbs = Vec::new();
            for (i, &(l, w)) in trace.iter().enumerate() {
                if let AccessOutcome::Miss { evicted: Some(ev), .. } =
                    scalar.access_rw(pid(1), l, w)
                {
                    if ev.dirty {
                        scalar_wbs.push(Writeback {
                            line: ev.line,
                            owner: ev.owner,
                            op_idx: i as u32,
                        });
                    }
                }
            }
            let lines: Vec<LineAddr> = trace.iter().map(|&(l, _)| l).collect();
            let writes: Vec<bool> = trace.iter().map(|&(_, w)| w).collect();
            let mut batch_wbs = Vec::new();
            let out = batched.access_batch_io(
                pid(1),
                &lines,
                BatchIo {
                    writes: Some(&writes),
                    writebacks: Some(&mut batch_wbs),
                    ..BatchIo::default()
                },
            );
            assert_eq!(batch_wbs, scalar_wbs, "{placement}: writeback streams diverge");
            assert_eq!(out.writebacks, scalar_wbs.len() as u64, "{placement}");
            assert_eq!(scalar.stats(), batched.stats(), "{placement}");
            assert_eq!(scalar.dirty_lines(), batched.dirty_lines(), "{placement}");
            let a: Vec<_> = scalar.contents().collect();
            let b: Vec<_> = batched.contents().collect();
            assert_eq!(a, b, "{placement}: final contents diverge");
        }
    }

    #[test]
    fn batch_outcome_counts_redirects() {
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(1));
        c.set_seed(pid(2), Seed::new(2));
        let warm: Vec<LineAddr> = (0..64u64).map(LineAddr::new).collect();
        c.access_batch(pid(1), &warm);
        let contend: Vec<LineAddr> = (100..164u64).map(LineAddr::new).collect();
        let out = c.access_batch(pid(2), &contend);
        assert!(out.redirected > 0, "no redirects under full contention");
        assert!(out.redirected <= out.misses);
    }
}
