//! Set-associative cache model with pluggable placement and
//! replacement, per-process seeds, and RPCache-style interference
//! randomization.

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{Placement, PlacementKind};
use crate::prng::SplitMix64;
use crate::replacement::{Replacement, ReplacementKind};
use crate::seed::{ProcessId, Seed, SeedTable};
use crate::stats::CacheStats;
use core::fmt;

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The displaced line address.
    pub line: LineAddr,
    /// The process that owned the displaced line.
    pub owner: ProcessId,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled.
    Miss {
        /// The valid line displaced by the fill, if any.
        evicted: Option<EvictedLine>,
        /// Whether an RPCache contention remap redirected the fill to a
        /// random set.
        redirected: bool,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether the access missed.
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

/// A set-associative cache with seed-parameterized placement.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
/// use tscache_core::cache::Cache;
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::PlacementKind;
/// use tscache_core::replacement::ReplacementKind;
/// use tscache_core::seed::{ProcessId, Seed};
///
/// let mut cache = Cache::new(
///     "L1D",
///     CacheGeometry::paper_l1(),
///     PlacementKind::RandomModulo,
///     ReplacementKind::Random,
///     0xc0ffee,
/// );
/// let pid = ProcessId::new(1);
/// cache.set_seed(pid, Seed::new(42));
/// let line = LineAddr::new(0x100);
/// assert!(cache.access(pid, line).is_miss()); // cold
/// assert!(cache.access(pid, line).is_hit());  // warm
/// ```
pub struct Cache {
    label: String,
    geom: CacheGeometry,
    placement: Box<dyn Placement>,
    replacement: Box<dyn Replacement>,
    /// Flat `sets × ways` arrays.
    tags: Vec<u64>,
    valid: Vec<bool>,
    owners: Vec<u16>,
    protected: Vec<bool>,
    /// Protected line-address ranges (RPCache's P-bit pages holding
    /// crypto tables): `start..end` in line addresses.
    protected_ranges: Vec<(u64, u64)>,
    /// Way partitions: `pid → lo..hi` fill-way range (cache
    /// partitioning, the §7 alternative). Processes without an entry
    /// may fill any way.
    partitions: Vec<(u16, u32, u32)>,
    seeds: SeedTable,
    rng: SplitMix64,
    stats: CacheStats,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("label", &self.label)
            .field("geometry", &self.geom)
            .field("placement", &self.placement.name())
            .field("replacement", &self.replacement.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Creates a cache. `rng_seed` drives random replacement and
    /// RPCache remaps; it is independent of placement seeds.
    pub fn new(
        label: impl Into<String>,
        geom: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        rng_seed: u64,
    ) -> Self {
        let n = geom.total_lines() as usize;
        Cache {
            label: label.into(),
            geom,
            placement: placement.build(&geom),
            replacement: replacement.build(&geom),
            tags: vec![0; n],
            valid: vec![false; n],
            owners: vec![0; n],
            protected: vec![false; n],
            protected_ranges: Vec::new(),
            partitions: Vec::new(),
            seeds: SeedTable::new(),
            rng: SplitMix64::new(rng_seed ^ 0x6361_6368_6521),
            stats: CacheStats::new(),
        }
    }

    /// The cache's report label (e.g. `"L1D"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Name of the placement policy.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Name of the replacement policy.
    pub fn replacement_name(&self) -> &'static str {
        self.replacement.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics counters (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Sets the placement seed of `pid`. Contents cached under the old
    /// seed are *not* flushed: the paper's OS support flushes
    /// explicitly when consistency requires it (§5).
    pub fn set_seed(&mut self, pid: ProcessId, seed: Seed) {
        self.seeds.set(pid, seed);
    }

    /// Marks the line-address range `start..end` as *protected*
    /// (RPCache's per-page P bit over crypto tables): interference-
    /// randomizing policies redirect any fill that would evict a
    /// protected line to a random set.
    pub fn add_protected_range(&mut self, start: LineAddr, end: LineAddr) {
        self.protected_ranges.push((start.as_u64(), end.as_u64()));
    }

    #[inline]
    fn is_protected_addr(&self, line: u64) -> bool {
        self.protected_ranges.iter().any(|&(s, e)| line >= s && line < e)
    }

    /// Restricts `pid` to fill ways `lo..hi` in every set (strict way
    /// partitioning, the cache-partitioning alternative of §7). Hits on
    /// lines outside the partition are still served — partitioning
    /// constrains placement of *new* data, not lookup.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn set_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        assert!(lo < hi && hi <= self.geom.ways(), "invalid way range {lo}..{hi}");
        if let Some(entry) = self.partitions.iter_mut().find(|(p, _, _)| *p == pid.as_u16()) {
            *entry = (pid.as_u16(), lo, hi);
        } else {
            self.partitions.push((pid.as_u16(), lo, hi));
        }
    }

    /// Removes `pid`'s way partition.
    pub fn clear_way_partition(&mut self, pid: ProcessId) {
        self.partitions.retain(|(p, _, _)| *p != pid.as_u16());
    }

    #[inline]
    fn way_range(&self, pid: ProcessId) -> (u32, u32) {
        self.partitions
            .iter()
            .find(|(p, _, _)| *p == pid.as_u16())
            .map(|&(_, lo, hi)| (lo, hi))
            .unwrap_or((0, self.geom.ways()))
    }

    /// Returns the placement seed of `pid` ([`Seed::ZERO`] if unset).
    pub fn seed(&self, pid: ProcessId) -> Seed {
        self.seeds.get(pid)
    }

    /// Invalidates every line and resets replacement bookkeeping.
    pub fn flush(&mut self) {
        self.valid.fill(false);
        self.replacement.reset();
        self.stats.record_flush();
    }

    /// Invalidates every line owned by `pid`.
    pub fn flush_process(&mut self, pid: ProcessId) {
        for i in 0..self.valid.len() {
            if self.valid[i] && self.owners[i] == pid.as_u16() {
                self.valid[i] = false;
            }
        }
        self.stats.record_flush();
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.geom.ways() + way) as usize
    }

    /// Looks a line up without changing replacement state or filling.
    ///
    /// Needs `&mut self` because table-based placement builds its
    /// per-seed state lazily.
    pub fn probe(&mut self, pid: ProcessId, line: LineAddr) -> bool {
        let seed = self.seeds.get(pid);
        let set = self.placement.place(line, seed);
        self.find_way(set, line).is_some()
    }

    #[inline]
    fn find_way(&self, set: u32, line: LineAddr) -> Option<u32> {
        for w in 0..self.geom.ways() {
            let slot = self.slot(set, w);
            if self.valid[slot] && self.tags[slot] == line.as_u64() {
                return Some(w);
            }
        }
        None
    }

    #[inline]
    fn find_invalid_way(&self, set: u32, lo: u32, hi: u32) -> Option<u32> {
        (lo..hi).find(|&w| !self.valid[self.slot(set, w)])
    }

    /// Accesses `line` on behalf of `pid`, filling on a miss.
    pub fn access(&mut self, pid: ProcessId, line: LineAddr) -> AccessOutcome {
        let seed = self.seeds.get(pid);
        let mut set = self.placement.place(line, seed);

        if let Some(way) = self.find_way(set, line) {
            self.replacement.on_hit(set, way);
            self.stats.record_hit();
            return AccessOutcome::Hit;
        }

        // Miss: pick the fill way within the process's way partition;
        // invalid ways first.
        let (lo, hi) = self.way_range(pid);
        let full_width = hi - lo == self.geom.ways();
        let mut redirected = false;
        let mut way = match self.find_invalid_way(set, lo, hi) {
            Some(w) => w,
            None if full_width => self.replacement.victim(set, &mut self.rng),
            None => self.replacement.victim_in(set, lo, hi, &mut self.rng),
        };

        // RPCache interference randomization: if the fill would evict
        // another process's line or a protected (crypto-table) line,
        // remap this line's index to a random set and fill there
        // instead (paper §3; Wang & Lee's "contention event that might
        // leak information").
        let slot = self.slot(set, way);
        if self.valid[slot]
            && (self.owners[slot] != pid.as_u16() || self.protected[slot])
            && self.placement.randomizes_interference()
        {
            if let Some(new_set) =
                self.placement.remap_on_contention(line, seed, &mut self.rng)
            {
                // Drop now-unreachable lines of the remapped index from
                // the old set (the hardware moves or invalidates them).
                self.invalidate_line_aliases(set, line, pid);
                set = new_set;
                redirected = true;
                way = match self.find_invalid_way(set, lo, hi) {
                    Some(w) => w,
                    None if full_width => self.replacement.victim(set, &mut self.rng),
                    None => self.replacement.victim_in(set, lo, hi, &mut self.rng),
                };
            }
        }

        let slot = self.slot(set, way);
        let evicted = if self.valid[slot] {
            let ev = EvictedLine {
                line: LineAddr::new(self.tags[slot]),
                owner: ProcessId::new(self.owners[slot]),
            };
            if ev.owner != pid {
                self.stats.record_cross_process_eviction();
            }
            Some(ev)
        } else {
            None
        };

        self.tags[slot] = line.as_u64();
        self.valid[slot] = true;
        self.owners[slot] = pid.as_u16();
        self.protected[slot] = self.is_protected_addr(line.as_u64());
        self.replacement.on_fill(set, way);
        self.stats.record_miss(evicted.is_some());
        AccessOutcome::Miss { evicted, redirected }
    }

    /// After an RPCache remap of `line`'s index, lines of `pid` with the
    /// same placement-relevant index sitting in the old set would become
    /// unreachable; invalidate them.
    fn invalidate_line_aliases(&mut self, old_set: u32, line: LineAddr, pid: ProcessId) {
        let index_bits = self.geom.index_bits();
        for w in 0..self.geom.ways() {
            let slot = self.slot(old_set, w);
            if self.valid[slot]
                && self.owners[slot] == pid.as_u16()
                && LineAddr::new(self.tags[slot]).index_bits(index_bits)
                    == line.index_bits(index_bits)
            {
                self.valid[slot] = false;
            }
        }
    }

    /// Iterates over currently valid lines as `(set, way, line, owner)`.
    pub fn contents(&self) -> impl Iterator<Item = (u32, u32, LineAddr, ProcessId)> + '_ {
        let ways = self.geom.ways();
        (0..self.geom.sets()).flat_map(move |set| {
            (0..ways).filter_map(move |way| {
                let slot = (set * ways + way) as usize;
                if self.valid[slot] {
                    Some((set, way, LineAddr::new(self.tags[slot]), ProcessId::new(self.owners[slot])))
                } else {
                    None
                }
            })
        })
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(placement: PlacementKind, replacement: ReplacementKind) -> Cache {
        Cache::new(
            "test",
            CacheGeometry::new(8, 2, 32).unwrap(),
            placement,
            replacement,
            7,
        )
    }

    fn pid(n: u16) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let line = LineAddr::new(5);
        assert!(c.access(pid(1), line).is_miss());
        assert!(c.access(pid(1), line).is_hit());
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn capacity_eviction_with_lru() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let p = pid(1);
        // Three lines mapping to set 0 in a 2-way cache.
        let (a, b, x) = (LineAddr::new(0), LineAddr::new(8), LineAddr::new(16));
        c.access(p, a);
        c.access(p, b);
        let outcome = c.access(p, x);
        match outcome {
            AccessOutcome::Miss { evicted: Some(ev), .. } => assert_eq!(ev.line, a),
            other => panic!("expected eviction of a, got {other:?}"),
        }
        assert!(c.access(p, b).is_hit(), "b must survive");
        assert!(c.access(p, a).is_miss(), "a was evicted");
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        for i in 0..16u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        assert!(c.occupancy() > 0);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(c.access(pid(1), LineAddr::new(0)).is_miss());
    }

    #[test]
    fn flush_process_is_selective() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.access(pid(1), LineAddr::new(0));
        c.access(pid(2), LineAddr::new(1));
        c.flush_process(pid(1));
        assert!(c.access(pid(1), LineAddr::new(0)).is_miss());
        assert!(c.access(pid(2), LineAddr::new(1)).is_hit());
    }

    #[test]
    fn per_process_seeds_separate_layouts() {
        let mut c = small_cache(PlacementKind::RandomModulo, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(111));
        c.set_seed(pid(2), Seed::new(222));
        assert_eq!(c.seed(pid(1)), Seed::new(111));
        // Both processes can cache their own lines independently.
        c.access(pid(1), LineAddr::new(0x40));
        c.access(pid(2), LineAddr::new(0x80));
        assert!(c.access(pid(1), LineAddr::new(0x40)).is_hit());
        assert!(c.access(pid(2), LineAddr::new(0x80)).is_hit());
    }

    #[test]
    fn seed_change_loses_old_layout_until_refetched() {
        let mut c = small_cache(PlacementKind::IdealRandom, ReplacementKind::Lru);
        let p = pid(1);
        c.set_seed(p, Seed::new(1));
        let line = LineAddr::new(0x123);
        c.access(p, line);
        assert!(c.access(p, line).is_hit());
        // A new seed (usually) maps the line elsewhere → miss expected.
        // Use a line/seed pair where the mapping does change.
        let mut moved = None;
        for s in 2..50u64 {
            c.set_seed(p, Seed::new(s));
            if !c.probe(p, line) {
                moved = Some(s);
                break;
            }
        }
        assert!(moved.is_some(), "line never moved across 48 seeds");
    }

    #[test]
    fn probe_does_not_fill_or_count() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        assert!(!c.probe(pid(1), LineAddr::new(3)));
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(pid(1), LineAddr::new(3)).is_miss());
        assert!(c.probe(pid(1), LineAddr::new(3)));
    }

    #[test]
    fn cross_process_eviction_is_counted() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        // Fill set 0 with pid 1, then overflow it with pid 2.
        c.access(pid(1), LineAddr::new(0));
        c.access(pid(1), LineAddr::new(8));
        c.access(pid(2), LineAddr::new(16));
        assert_eq!(c.stats().cross_process_evictions(), 1);
    }

    #[test]
    fn rpcache_redirects_cross_process_contention() {
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(1));
        c.set_seed(pid(2), Seed::new(2));
        // Occupy every set with pid 1 so any pid-2 fill contends.
        for i in 0..64u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        let mut redirects = 0;
        for i in 100..164u64 {
            if let AccessOutcome::Miss { redirected: true, .. } = c.access(pid(2), LineAddr::new(i)) {
                redirects += 1;
            }
        }
        assert!(redirects > 0, "rpcache never redirected under full contention");
    }

    #[test]
    fn rpcache_remapped_line_remains_cached() {
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        c.set_seed(pid(1), Seed::new(1));
        c.set_seed(pid(2), Seed::new(2));
        for i in 0..64u64 {
            c.access(pid(1), LineAddr::new(i));
        }
        // Whatever happened (redirect or not), the just-filled line must
        // be findable right after its miss.
        for i in 100..110u64 {
            let line = LineAddr::new(i);
            c.access(pid(2), line);
            assert!(c.access(pid(2), line).is_hit(), "line {i} lost after fill");
        }
    }

    #[test]
    fn rpcache_protects_marked_lines_within_one_process() {
        // Wang & Lee's P-bit: even same-process fills that would evict
        // a protected line are redirected to a random set.
        let mut c = small_cache(PlacementKind::RpCache, ReplacementKind::Lru);
        let p = pid(1);
        c.set_seed(p, Seed::new(4));
        c.add_protected_range(LineAddr::new(0), LineAddr::new(64));
        // Fill the cache with protected lines.
        for i in 0..16u64 {
            c.access(p, LineAddr::new(i));
        }
        // Unprotected fills from elsewhere must trigger redirects.
        let mut redirects = 0;
        for i in 1000..1064u64 {
            if let AccessOutcome::Miss { redirected: true, .. } = c.access(p, LineAddr::new(i)) {
                redirects += 1;
            }
        }
        assert!(redirects > 0, "no protected-line redirect happened");
    }

    #[test]
    fn protected_bit_ignored_by_non_randomizing_policies() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let p = pid(1);
        c.add_protected_range(LineAddr::new(0), LineAddr::new(64));
        for i in 0..16u64 {
            c.access(p, LineAddr::new(i));
        }
        for i in 1000..1016u64 {
            match c.access(p, LineAddr::new(i)) {
                AccessOutcome::Miss { redirected, .. } => assert!(!redirected),
                AccessOutcome::Hit => panic!("unexpected hit"),
            }
        }
    }

    #[test]
    fn way_partition_confines_fills() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_way_partition(pid(1), 0, 1);
        c.set_way_partition(pid(2), 1, 2);
        // pid 1 streams many conflicting lines: confined to way 0, its
        // own lines thrash while pid 2's single line survives.
        c.access(pid(2), LineAddr::new(8)); // set 0
        for i in 0..10u64 {
            c.access(pid(1), LineAddr::new(i * 8)); // all set 0
        }
        assert!(c.access(pid(2), LineAddr::new(8)).is_hit(), "partition violated");
        for (_, way, _, owner) in c.contents() {
            match owner.as_u16() {
                1 => assert_eq!(way, 0),
                2 => assert_eq!(way, 1),
                _ => {}
            }
        }
    }

    #[test]
    fn way_partition_reduces_effective_associativity() {
        let mut full = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        let mut part = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        part.set_way_partition(pid(1), 0, 1);
        // Two alternating lines in one set: fit a 2-way cache, thrash a
        // 1-way partition.
        for _ in 0..20 {
            for line in [0u64, 8] {
                full.access(pid(1), LineAddr::new(line));
                part.access(pid(1), LineAddr::new(line));
            }
        }
        assert!(part.stats().misses() > full.stats().misses() * 2);
    }

    #[test]
    fn clear_way_partition_restores_full_ways() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_way_partition(pid(1), 0, 1);
        c.clear_way_partition(pid(1));
        c.access(pid(1), LineAddr::new(0));
        c.access(pid(1), LineAddr::new(8));
        assert!(c.access(pid(1), LineAddr::new(0)).is_hit());
        assert!(c.access(pid(1), LineAddr::new(8)).is_hit());
    }

    #[test]
    #[should_panic(expected = "invalid way range")]
    fn empty_partition_rejected() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.set_way_partition(pid(1), 1, 1);
    }

    #[test]
    fn partitions_work_with_every_replacement_policy() {
        for repl in ReplacementKind::ALL {
            let mut c = small_cache(PlacementKind::Modulo, repl);
            c.set_way_partition(pid(1), 0, 1);
            c.set_way_partition(pid(2), 1, 2);
            for i in 0..50u64 {
                c.access(pid(1), LineAddr::new(i));
                c.access(pid(2), LineAddr::new(1000 + i));
            }
            for (_, way, _, owner) in c.contents() {
                match owner.as_u16() {
                    1 => assert_eq!(way, 0, "{repl}"),
                    2 => assert_eq!(way, 1, "{repl}"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        for kind in PlacementKind::ALL {
            let mut c = small_cache(kind, ReplacementKind::Random);
            c.set_seed(pid(1), Seed::new(5));
            for i in 0..1000u64 {
                c.access(pid(1), LineAddr::new(i % 97));
            }
            assert!(c.occupancy() <= 16, "{kind}: occupancy {}", c.occupancy());
        }
    }

    #[test]
    fn contents_reports_valid_lines() {
        let mut c = small_cache(PlacementKind::Modulo, ReplacementKind::Lru);
        c.access(pid(3), LineAddr::new(9));
        let all: Vec<_> = c.contents().collect();
        assert_eq!(all.len(), 1);
        let (set, _way, line, owner) = all[0];
        assert_eq!(set, 1); // index bits of 9 in an 8-set cache
        assert_eq!(line, LineAddr::new(9));
        assert_eq!(owner, pid(3));
    }

    #[test]
    fn debug_output_names_policies() {
        let c = small_cache(PlacementKind::HashRp, ReplacementKind::Random);
        let dbg = format!("{c:?}");
        assert!(dbg.contains("hash-rp"));
        assert!(dbg.contains("random"));
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let run = |rng_seed: u64| {
            let mut c = Cache::new(
                "d",
                CacheGeometry::new(8, 2, 32).unwrap(),
                PlacementKind::RandomModulo,
                ReplacementKind::Random,
                rng_seed,
            );
            c.set_seed(pid(1), Seed::new(9));
            let mut misses = 0;
            for i in 0..500u64 {
                if c.access(pid(1), LineAddr::new((i * 7) % 64)).is_miss() {
                    misses += 1;
                }
            }
            misses
        };
        assert_eq!(run(42), run(42));
    }
}
