//! # tscache-core — cache models for time-predictable, secure caches
//!
//! Core cache machinery for the reproduction of *"Cache Side-Channel
//! Attacks and Time-Predictability in High-Performance Critical
//! Real-Time Systems"* (Trilla, Hernandez, Abella, Cazorla — DAC 2018).
//!
//! The crate provides:
//!
//! * set-associative [`cache::Cache`]s with pluggable
//!   [`placement`] (modulo, XOR-index, RPCache, HashRP, Random Modulo)
//!   and [`replacement`] (LRU, FIFO, random, PLRU, NRU) policies;
//! * per-process placement [`seed`]s — the mechanism TSCache uses to
//!   decouple attacker and victim cache layouts;
//! * a three-level [`hierarchy::Hierarchy`] matching the paper's
//!   ARM920T-class platform;
//! * the paper's four experimental [`setup`]s (deterministic, RPCache,
//!   MBPTACache, TSCache);
//! * empirical [`properties`] checkers for the `mbpta-p1/p2/p3` and
//!   `sca-p1` properties.
//!
//! ## Quick start
//!
//! ```
//! use tscache_core::addr::Addr;
//! use tscache_core::hierarchy::AccessKind;
//! use tscache_core::seed::{ProcessId, Seed};
//! use tscache_core::setup::SetupKind;
//!
//! // Build the paper's TSCache platform and time one access.
//! let mut h = SetupKind::TsCache.build(0xfeed);
//! let pid = ProcessId::new(1);
//! h.set_process_seed(pid, Seed::new(2024));
//! let cycles = h.access(pid, AccessKind::Read, Addr::new(0x4000));
//! assert_eq!(cycles, 91); // cold: L1 miss + L2 miss + memory
//! ```

pub mod addr;
pub mod boxed_ref;
pub mod cache;
pub mod defense;
pub mod error;
pub mod geometry;
pub mod hierarchy;
pub mod parallel;
pub mod placement;
pub mod pmu;
pub mod prng;
pub mod properties;
pub mod replacement;
pub mod seed;
pub mod setup;
pub mod stats;

pub use addr::{Addr, LineAddr, PageAddr};
pub use cache::{AccessOutcome, BatchOutcome, Cache, EvictedLine, WritePolicy, Writeback};
pub use defense::{DefenseKind, RotationPolicy, TtlConfig};
pub use error::ConfigError;
pub use geometry::CacheGeometry;
pub use hierarchy::{AccessKind, Hierarchy, HierarchyBatchOutcome, Latencies, OpTiming, TraceOp};
pub use placement::{MbptaClass, Placement, PlacementEngine, PlacementKind};
pub use pmu::{PmuCounters, PmuDelta, PmuSampler, PmuSnapshot};
pub use replacement::{Replacement, ReplacementEngine, ReplacementKind};
pub use seed::{ProcessId, Seed, SeedTable};
pub use setup::{HierarchyDepth, SeedSharing, SetupKind};
pub use stats::CacheStats;
