//! The original boxed-dispatch cache, preserved verbatim as a
//! reference implementation.
//!
//! [`BoxedCache`] is the pre-optimization `Cache`: `Box<dyn Placement>`
//! / `Box<dyn Replacement>` dispatch, parallel `Vec<u64>`/`Vec<bool>`
//! metadata arrays, and linear scans for partitions and protected
//! ranges. It exists for two purposes:
//!
//! 1. **differential testing** — the enum-dispatch
//!    [`Cache`](crate::cache::Cache) must produce identical access
//!    outcomes on any trace (`tests/engine_equivalence.rs`);
//! 2. **perf baselining** — `bench_report` measures the boxed and
//!    enum engines in the same run so every PR records a dispatch-
//!    overhead trajectory.
//!
//! It is not used by any simulator or attack code path.

use crate::addr::LineAddr;
use crate::cache::{AccessOutcome, EvictedLine};
use crate::geometry::CacheGeometry;
use crate::placement::{Placement, PlacementKind};
use crate::prng::{mix64, SplitMix64};
use crate::replacement::{Replacement, ReplacementKind};
use crate::seed::{ProcessId, Seed, SeedTable};
use crate::stats::CacheStats;

/// The seed repository's original set-associative cache (boxed trait
/// objects, scattered metadata, linear configuration scans).
pub struct BoxedCache {
    geom: CacheGeometry,
    placement: Box<dyn Placement>,
    replacement: Box<dyn Replacement>,
    tags: Vec<u64>,
    valid: Vec<bool>,
    owners: Vec<u16>,
    protected: Vec<bool>,
    protected_ranges: Vec<(u64, u64)>,
    partitions: Vec<(u16, u32, u32)>,
    seeds: SeedTable,
    rng: SplitMix64,
    rng_seed: u64,
    /// Per-process partition-replacement streams (mirrors
    /// `Cache::part_rngs`): victims chosen *inside* a way partition
    /// draw from the owning process's own stream, not the shared one.
    part_rngs: Vec<(u16, SplitMix64)>,
    stats: CacheStats,
}

impl BoxedCache {
    /// Creates a cache; mirrors `Cache::new` including the RNG stream
    /// derivation, so both implementations draw identical randomness.
    pub fn new(
        geom: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        rng_seed: u64,
    ) -> Self {
        let n = geom.total_lines() as usize;
        BoxedCache {
            geom,
            placement: placement.build(&geom),
            replacement: replacement.build(&geom),
            tags: vec![0; n],
            valid: vec![false; n],
            owners: vec![0; n],
            protected: vec![false; n],
            protected_ranges: Vec::new(),
            partitions: Vec::new(),
            seeds: SeedTable::new(),
            rng: SplitMix64::new(rng_seed ^ 0x6361_6368_6521),
            rng_seed,
            part_rngs: Vec::new(),
            stats: CacheStats::new(),
        }
    }

    /// Index of `pid`'s partition-replacement stream, creating it on
    /// first use with the same derivation as `Cache::part_rng_index`.
    fn part_rng_index(&mut self, pid: ProcessId) -> usize {
        match self.part_rngs.binary_search_by_key(&pid.as_u16(), |&(p, _)| p) {
            Ok(i) => i,
            Err(i) => {
                let stream = SplitMix64::new(mix64(
                    self.rng_seed ^ 0x7061_7274 ^ ((pid.as_u16() as u64) << 40),
                ));
                self.part_rngs.insert(i, (pid.as_u16(), stream));
                i
            }
        }
    }

    /// Sets the placement seed of `pid`.
    pub fn set_seed(&mut self, pid: ProcessId, seed: Seed) {
        self.seeds.set(pid, seed);
    }

    /// Marks `start..end` (line addresses) as protected.
    pub fn add_protected_range(&mut self, start: LineAddr, end: LineAddr) {
        self.protected_ranges.push((start.as_u64(), end.as_u64()));
    }

    #[inline]
    fn is_protected_addr(&self, line: u64) -> bool {
        self.protected_ranges.iter().any(|&(s, e)| line >= s && line < e)
    }

    /// Restricts `pid` to fill ways `lo..hi`.
    pub fn set_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        assert!(lo < hi && hi <= self.geom.ways(), "invalid way range {lo}..{hi}");
        if let Some(entry) = self.partitions.iter_mut().find(|(p, _, _)| *p == pid.as_u16()) {
            *entry = (pid.as_u16(), lo, hi);
        } else {
            self.partitions.push((pid.as_u16(), lo, hi));
        }
    }

    #[inline]
    fn way_range(&self, pid: ProcessId) -> (u32, u32) {
        self.partitions
            .iter()
            .find(|(p, _, _)| *p == pid.as_u16())
            .map(|&(_, lo, hi)| (lo, hi))
            .unwrap_or((0, self.geom.ways()))
    }

    /// Invalidates every line. Mirrors `Cache::flush`: partition-
    /// replacement streams reset to their derivation points so a flush
    /// plus identical replay reproduces bit for bit (the boxed model
    /// is read-only/write-through, so there is no dirty state to
    /// drain).
    pub fn flush(&mut self) {
        self.valid.fill(false);
        self.replacement.reset();
        self.part_rngs.clear();
        self.stats.record_flush();
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.geom.ways() + way) as usize
    }

    /// Looks a line up without filling.
    pub fn probe(&mut self, pid: ProcessId, line: LineAddr) -> bool {
        let seed = self.seeds.get(pid);
        let set = self.placement.place(line, seed);
        self.find_way(set, line).is_some()
    }

    #[inline]
    fn find_way(&self, set: u32, line: LineAddr) -> Option<u32> {
        for w in 0..self.geom.ways() {
            let slot = self.slot(set, w);
            if self.valid[slot] && self.tags[slot] == line.as_u64() {
                return Some(w);
            }
        }
        None
    }

    #[inline]
    fn find_invalid_way(&self, set: u32, lo: u32, hi: u32) -> Option<u32> {
        (lo..hi).find(|&w| !self.valid[self.slot(set, w)])
    }

    /// Accesses `line` on behalf of `pid`, filling on a miss.
    pub fn access(&mut self, pid: ProcessId, line: LineAddr) -> AccessOutcome {
        let seed = self.seeds.get(pid);
        let mut set = self.placement.place(line, seed);

        if let Some(way) = self.find_way(set, line) {
            self.replacement.on_hit(set, way);
            self.stats.record_hit();
            return AccessOutcome::Hit;
        }

        let (lo, hi) = self.way_range(pid);
        let full_width = hi - lo == self.geom.ways();
        let mut redirected = false;
        let mut way = match self.find_invalid_way(set, lo, hi) {
            Some(w) => w,
            None if full_width => self.replacement.victim(set, &mut self.rng),
            None => {
                let i = self.part_rng_index(pid);
                self.replacement.victim_in(set, lo, hi, &mut self.part_rngs[i].1)
            }
        };

        let slot = self.slot(set, way);
        if self.valid[slot]
            && (self.owners[slot] != pid.as_u16() || self.protected[slot])
            && self.placement.randomizes_interference()
        {
            if let Some(new_set) = self.placement.remap_on_contention(line, seed, &mut self.rng) {
                self.invalidate_line_aliases(set, line, pid);
                set = new_set;
                redirected = true;
                way = match self.find_invalid_way(set, lo, hi) {
                    Some(w) => w,
                    None if full_width => self.replacement.victim(set, &mut self.rng),
                    None => {
                        let i = self.part_rng_index(pid);
                        self.replacement.victim_in(set, lo, hi, &mut self.part_rngs[i].1)
                    }
                };
            }
        }

        let slot = self.slot(set, way);
        let evicted = if self.valid[slot] {
            let ev = EvictedLine {
                line: LineAddr::new(self.tags[slot]),
                owner: ProcessId::new(self.owners[slot]),
                // The boxed reference models the seed's read-only
                // write-through world: lines are never dirty.
                dirty: false,
            };
            if ev.owner != pid {
                self.stats.record_cross_process_eviction();
            }
            Some(ev)
        } else {
            None
        };

        self.tags[slot] = line.as_u64();
        self.valid[slot] = true;
        self.owners[slot] = pid.as_u16();
        self.protected[slot] = self.is_protected_addr(line.as_u64());
        self.replacement.on_fill(set, way);
        self.stats.record_miss(evicted.is_some());
        AccessOutcome::Miss { evicted, redirected }
    }

    fn invalidate_line_aliases(&mut self, old_set: u32, line: LineAddr, pid: ProcessId) {
        let index_bits = self.geom.index_bits();
        for w in 0..self.geom.ways() {
            let slot = self.slot(old_set, w);
            if self.valid[slot]
                && self.owners[slot] == pid.as_u16()
                && LineAddr::new(self.tags[slot]).index_bits(index_bits)
                    == line.index_bits(index_bits)
            {
                self.valid[slot] = false;
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Iterates over currently valid lines as `(set, way, line, owner)`.
    pub fn contents(&self) -> impl Iterator<Item = (u32, u32, LineAddr, ProcessId)> + '_ {
        let ways = self.geom.ways();
        (0..self.geom.sets()).flat_map(move |set| {
            (0..ways).filter_map(move |way| {
                let slot = (set * ways + way) as usize;
                if self.valid[slot] {
                    Some((
                        set,
                        way,
                        LineAddr::new(self.tags[slot]),
                        ProcessId::new(self.owners[slot]),
                    ))
                } else {
                    None
                }
            })
        })
    }
}
