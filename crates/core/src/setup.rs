//! The four processor setups evaluated in the paper (§6.1.2) and their
//! seed-management policies.

use crate::cache::Cache;
use crate::geometry::CacheGeometry;
use crate::hierarchy::{Hierarchy, SharedLlc, L3_HIT_CYCLES};
use crate::placement::PlacementKind;
use crate::prng::{Prng, SplitMix64};
use crate::replacement::ReplacementKind;
use crate::seed::{ProcessId, Seed};
use core::fmt;

/// How many cache levels a built hierarchy has. The paper's platform
/// is two-level; the three-level variant adds the 1 MiB L3 that the
/// multi-level randomized-cache literature (ClepsydraCache and
/// friends) evaluates, reusing each setup's unified-level policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HierarchyDepth {
    /// Split L1 + unified L2 (the DAC'18 platform).
    #[default]
    TwoLevel,
    /// Split L1 + unified L2 + unified L3.
    ThreeLevel,
}

impl HierarchyDepth {
    /// Both depths, shallow first.
    pub const ALL: [HierarchyDepth; 2] = [HierarchyDepth::TwoLevel, HierarchyDepth::ThreeLevel];

    /// Number of cache levels (split L1 counted once).
    pub fn levels(self) -> usize {
        match self {
            HierarchyDepth::TwoLevel => 2,
            HierarchyDepth::ThreeLevel => 3,
        }
    }

    /// Short label used in figures and bench names.
    pub fn label(self) -> &'static str {
        match self {
            HierarchyDepth::TwoLevel => "l2",
            HierarchyDepth::ThreeLevel => "l3",
        }
    }
}

impl fmt::Display for HierarchyDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How placement seeds are assigned to processes, the knob that
/// separates MBPTACache from TSCache (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedSharing {
    /// Placement ignores seeds (deterministic caches).
    Irrelevant,
    /// Every process uses the same seed — permitted by plain MBPTA seed
    /// management and exactly what lets a contention attacker mirror
    /// the victim's layout (§4).
    Shared,
    /// Every process gets an independent random seed (TSCache §5;
    /// RPCache's per-process permutations behave likewise).
    PerProcess,
}

impl fmt::Display for SeedSharing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SeedSharing::Irrelevant => "irrelevant",
            SeedSharing::Shared => "shared",
            SeedSharing::PerProcess => "per-process",
        };
        f.write_str(s)
    }
}

/// One of the paper's four evaluated cache configurations.
///
/// | Setup | L1 policy | L2 policy | Seeds |
/// |---|---|---|---|
/// | `Deterministic` | modulo + LRU | modulo + LRU | — |
/// | `RpCache` | RPCache + LRU | modulo + LRU | per-process permutations |
/// | `Mbpta` | Random Modulo + random | HashRP + random | shared |
/// | `TsCache` | Random Modulo + random | HashRP + random | per-process |
/// | `RandomSafe` | HashRP + random | HashRP + random | per-process |
///
/// MBPTACache and TSCache are the *same hardware*; only the OS seed
/// policy differs — the paper's central observation. `RandomSafe` is
/// the defense zoo's Random-and-Safe composite (randomized placement
/// paired with safe random replacement at *every* level, per-process
/// seeds throughout).
///
/// # Examples
///
/// ```
/// use tscache_core::setup::{SeedSharing, SetupKind};
///
/// assert_eq!(SetupKind::Mbpta.seed_sharing(), SeedSharing::Shared);
/// assert_eq!(SetupKind::TsCache.seed_sharing(), SeedSharing::PerProcess);
/// let h = SetupKind::TsCache.build(42);
/// assert_eq!(h.l1d().placement_name(), "random-modulo");
/// assert_eq!(h.l2().placement_name(), "hash-rp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetupKind {
    /// Baseline vulnerable processor with time-deterministic caches.
    Deterministic,
    /// Secure processor implementing the RPCache.
    RpCache,
    /// MBPTA-compliant random cache with shared seeds.
    Mbpta,
    /// The paper's proposal: MBPTA hardware + per-process seeds.
    TsCache,
    /// Random-and-Safe composite (defense zoo): parametric randomized
    /// placement with safe random replacement at every level and
    /// per-process seeds.
    RandomSafe,
}

impl SetupKind {
    /// All setups: the paper's four in presentation order, then the
    /// defense zoo's Random-and-Safe composite.
    pub const ALL: [SetupKind; 5] = [
        SetupKind::Deterministic,
        SetupKind::RpCache,
        SetupKind::Mbpta,
        SetupKind::TsCache,
        SetupKind::RandomSafe,
    ];

    /// Builds the paper's two-level hierarchy for this setup.
    pub fn build(self, rng_seed: u64) -> Hierarchy {
        self.build_depth(HierarchyDepth::TwoLevel, rng_seed)
    }

    /// The `(placement, replacement)` policy pair of this setup's L1s.
    pub fn l1_policy(self) -> (PlacementKind, ReplacementKind) {
        match self {
            SetupKind::Deterministic => (PlacementKind::Modulo, ReplacementKind::Lru),
            SetupKind::RpCache => (PlacementKind::RpCache, ReplacementKind::Lru),
            SetupKind::Mbpta | SetupKind::TsCache => {
                (PlacementKind::RandomModulo, ReplacementKind::Random)
            }
            SetupKind::RandomSafe => (PlacementKind::HashRp, ReplacementKind::Random),
        }
    }

    /// The `(placement, replacement)` policy pair of this setup's
    /// unified levels (L2, and L3 when built three-level).
    pub fn unified_policy(self) -> (PlacementKind, ReplacementKind) {
        match self {
            SetupKind::Deterministic | SetupKind::RpCache => {
                (PlacementKind::Modulo, ReplacementKind::Lru)
            }
            SetupKind::Mbpta | SetupKind::TsCache | SetupKind::RandomSafe => {
                (PlacementKind::HashRp, ReplacementKind::Random)
            }
        }
    }

    /// Builds the hierarchy for this setup at the requested depth.
    ///
    /// Both depths share L1/L2 geometry, policies and RNG streams, so
    /// a three-level build is the two-level platform with an L3
    /// appended — upper-level behaviour is unchanged.
    pub fn build_depth(self, depth: HierarchyDepth, rng_seed: u64) -> Hierarchy {
        let (l1p, l1r) = self.l1_policy();
        let (lup, lur) = self.unified_policy();
        let l1 = CacheGeometry::paper_l1();
        let mut unified =
            vec![(Cache::new("L2", CacheGeometry::paper_l2(), lup, lur, rng_seed ^ 0x33), 10)];
        if depth == HierarchyDepth::ThreeLevel {
            unified.push((
                Cache::new("L3", CacheGeometry::paper_l3(), lup, lur, rng_seed ^ 0x44),
                L3_HIT_CYCLES,
            ));
        }
        Hierarchy::from_parts(
            Cache::new("L1I", l1, l1p, l1r, rng_seed ^ 0x11),
            Cache::new("L1D", l1, l1p, l1r, rng_seed ^ 0x22),
            unified,
            1,
            80,
        )
    }

    /// Builds the *private* per-core portion of a shared-LLC platform
    /// at `depth`: [`build_depth`](Self::build_depth) minus its last
    /// unified level (which lives in the platform-wide [`SharedLlc`]
    /// from [`build_shared_llc`](Self::build_shared_llc)). A two-level
    /// platform keeps only the split L1s per core; a three-level one
    /// keeps L1s + a private L2.
    ///
    /// Upper-level geometry, policies and RNG streams match the
    /// private-hierarchy build exactly, so per-core behaviour above
    /// the shared level is unchanged.
    pub fn build_private(self, depth: HierarchyDepth, rng_seed: u64) -> Hierarchy {
        let (l1p, l1r) = self.l1_policy();
        let (lup, lur) = self.unified_policy();
        let l1 = CacheGeometry::paper_l1();
        let mut unified = Vec::new();
        if depth == HierarchyDepth::ThreeLevel {
            unified
                .push((Cache::new("L2", CacheGeometry::paper_l2(), lup, lur, rng_seed ^ 0x33), 10));
        }
        Hierarchy::from_private_parts(
            Cache::new("L1I", l1, l1p, l1r, rng_seed ^ 0x11),
            Cache::new("L1D", l1, l1p, l1r, rng_seed ^ 0x22),
            unified,
            1,
            80,
        )
    }

    /// Builds the shared last-level cache of a shared-LLC platform at
    /// `depth`, reusing the setup's unified policy: the paper L2
    /// geometry (10-cycle hits) when the platform is two-level, the
    /// 1 MiB L3 preset ([`L3_HIT_CYCLES`]) when three-level. Per-core
    /// way partitions go on via [`SharedLlc::set_way_partition`].
    pub fn build_shared_llc(self, depth: HierarchyDepth, rng_seed: u64) -> SharedLlc {
        let (lup, lur) = self.unified_policy();
        match depth {
            HierarchyDepth::TwoLevel => SharedLlc::new(
                Cache::new("SL2", CacheGeometry::paper_l2(), lup, lur, rng_seed ^ 0x55),
                10,
                80,
            ),
            HierarchyDepth::ThreeLevel => SharedLlc::new(
                Cache::new("SL3", CacheGeometry::paper_l3(), lup, lur, rng_seed ^ 0x55),
                L3_HIT_CYCLES,
                80,
            ),
        }
    }

    /// The seed-management policy of this setup.
    pub fn seed_sharing(self) -> SeedSharing {
        match self {
            SetupKind::Deterministic => SeedSharing::Irrelevant,
            SetupKind::RpCache => SeedSharing::PerProcess,
            SetupKind::Mbpta => SeedSharing::Shared,
            SetupKind::TsCache => SeedSharing::PerProcess,
            SetupKind::RandomSafe => SeedSharing::PerProcess,
        }
    }

    /// Assigns per-run seeds to `pids` in `hierarchy` according to the
    /// setup's policy, drawing randomness from `rng`.
    ///
    /// Call once per run (job) before executing; the paper re-seeds at
    /// job or hyperperiod granularity (§5).
    pub fn assign_seeds<R: Prng>(self, hierarchy: &mut Hierarchy, pids: &[ProcessId], rng: &mut R) {
        match self.seed_sharing() {
            SeedSharing::Irrelevant => {
                for &pid in pids {
                    hierarchy.set_process_seed(pid, Seed::ZERO);
                }
            }
            SeedSharing::Shared => {
                let seed = Seed::random(rng);
                for &pid in pids {
                    hierarchy.set_process_seed(pid, seed);
                }
            }
            SeedSharing::PerProcess => {
                for &pid in pids {
                    hierarchy.set_process_seed(pid, Seed::random(rng));
                }
            }
        }
    }

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            SetupKind::Deterministic => "deterministic",
            SetupKind::RpCache => "rpcache",
            SetupKind::Mbpta => "mbptacache",
            SetupKind::TsCache => "tscache",
            SetupKind::RandomSafe => "random-safe",
        }
    }
}

impl fmt::Display for SetupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Convenience: builds a hierarchy and seeds two processes (victim and
/// attacker) per the setup policy; returns the hierarchy.
pub fn build_two_process(
    kind: SetupKind,
    victim: ProcessId,
    attacker: ProcessId,
    run_seed: u64,
) -> Hierarchy {
    let mut h = kind.build(run_seed);
    let mut rng = SplitMix64::new(run_seed ^ 0x5eed);
    kind.assign_seeds(&mut h, &[victim, attacker], &mut rng);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_build_expected_policies() {
        let det = SetupKind::Deterministic.build(1);
        assert_eq!(det.l1d().placement_name(), "modulo");
        let rp = SetupKind::RpCache.build(1);
        assert_eq!(rp.l1d().placement_name(), "rpcache");
        assert_eq!(rp.l2().placement_name(), "modulo");
        let mb = SetupKind::Mbpta.build(1);
        assert_eq!(mb.l1d().placement_name(), "random-modulo");
        assert_eq!(mb.l1d().replacement_name(), "random");
        assert_eq!(mb.l2().placement_name(), "hash-rp");
        let rs = SetupKind::RandomSafe.build(1);
        assert_eq!(rs.l1d().placement_name(), "hash-rp");
        assert_eq!(rs.l1d().replacement_name(), "random");
        assert_eq!(rs.l2().placement_name(), "hash-rp");
        assert_eq!(SetupKind::RandomSafe.seed_sharing(), SeedSharing::PerProcess);
    }

    #[test]
    fn mbpta_and_tscache_share_hardware() {
        let a = SetupKind::Mbpta.build(1);
        let b = SetupKind::TsCache.build(1);
        assert_eq!(a.l1d().placement_name(), b.l1d().placement_name());
        assert_eq!(a.l2().placement_name(), b.l2().placement_name());
        assert_ne!(SetupKind::Mbpta.seed_sharing(), SetupKind::TsCache.seed_sharing());
    }

    #[test]
    fn shared_seeds_are_equal_per_process_differ() {
        let (v, a) = (ProcessId::new(1), ProcessId::new(2));
        let mut rng = SplitMix64::new(7);

        let mut h = SetupKind::Mbpta.build(1);
        SetupKind::Mbpta.assign_seeds(&mut h, &[v, a], &mut rng);
        assert_eq!(h.l1d().seed(v), h.l1d().seed(a));

        let mut h = SetupKind::TsCache.build(1);
        SetupKind::TsCache.assign_seeds(&mut h, &[v, a], &mut rng);
        assert_ne!(h.l1d().seed(v), h.l1d().seed(a));
    }

    #[test]
    fn deterministic_assigns_zero_seed() {
        let (v, a) = (ProcessId::new(1), ProcessId::new(2));
        let mut h = SetupKind::Deterministic.build(1);
        let mut rng = SplitMix64::new(7);
        SetupKind::Deterministic.assign_seeds(&mut h, &[v, a], &mut rng);
        assert_eq!(h.l1d().seed(v), Seed::new(0).derive(2));
    }

    #[test]
    fn build_two_process_seeds_both() {
        let (v, a) = (ProcessId::new(1), ProcessId::new(2));
        let h = build_two_process(SetupKind::TsCache, v, a, 99);
        assert_ne!(h.l1d().seed(v), h.l1d().seed(a));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SetupKind::Mbpta.to_string(), "mbptacache");
        assert_eq!(SetupKind::RandomSafe.to_string(), "random-safe");
        assert_eq!(SetupKind::ALL.len(), 5);
        assert_eq!(HierarchyDepth::TwoLevel.to_string(), "l2");
        assert_eq!(HierarchyDepth::ThreeLevel.to_string(), "l3");
        assert_eq!(HierarchyDepth::ThreeLevel.levels(), 3);
    }

    #[test]
    fn three_level_presets_append_an_l3() {
        for kind in SetupKind::ALL {
            let two = kind.build_depth(HierarchyDepth::TwoLevel, 7);
            let three = kind.build_depth(HierarchyDepth::ThreeLevel, 7);
            assert_eq!(two.depth(), 2);
            assert_eq!(three.depth(), 3);
            assert!(two.l3().is_none());
            let l3 = three.l3().expect("L3 present");
            // The L3 reuses the setup's unified policy.
            assert_eq!(l3.placement_name(), three.l2().placement_name(), "{kind}");
            assert_eq!(l3.geometry().size_bytes(), 1024 * 1024);
            assert_eq!(three.level_hit_cycles(1), crate::hierarchy::L3_HIT_CYCLES);
        }
    }

    #[test]
    fn shared_platform_splits_the_last_level_off() {
        for kind in SetupKind::ALL {
            // Two-level: L1-only cores + a shared L2-geometry LLC.
            let private = kind.build_private(HierarchyDepth::TwoLevel, 7);
            assert_eq!(private.depth(), 1, "{kind}");
            let llc = kind.build_shared_llc(HierarchyDepth::TwoLevel, 7);
            assert_eq!(llc.cache().geometry().size_bytes(), 256 * 1024, "{kind}");
            assert_eq!(llc.hit_cycles(), 10);
            assert_eq!(
                llc.cache().placement_name(),
                kind.build(7).l2().placement_name(),
                "{kind}: shared L2 must reuse the unified policy"
            );
            // Three-level: L1+L2 cores + a shared L3-geometry LLC.
            let private = kind.build_private(HierarchyDepth::ThreeLevel, 7);
            assert_eq!(private.depth(), 2, "{kind}");
            assert_eq!(private.l2().geometry().size_bytes(), 256 * 1024, "{kind}");
            let llc = kind.build_shared_llc(HierarchyDepth::ThreeLevel, 7);
            assert_eq!(llc.cache().geometry().size_bytes(), 1024 * 1024, "{kind}");
            assert_eq!(llc.hit_cycles(), crate::hierarchy::L3_HIT_CYCLES);
        }
    }

    #[test]
    fn private_build_matches_full_build_above_the_shared_level() {
        use crate::addr::Addr;
        use crate::hierarchy::AccessKind;
        // Same rng seed → the private build's L1/L2 behave exactly as
        // the full build's upper levels on a private-hit workload.
        let pid = ProcessId::new(1);
        let mut full = SetupKind::TsCache.build_depth(HierarchyDepth::ThreeLevel, 9);
        let mut private = SetupKind::TsCache.build_private(HierarchyDepth::ThreeLevel, 9);
        full.set_process_seed(pid, Seed::new(4));
        private.set_process_seed(pid, Seed::new(4));
        let mut wbs = Vec::new();
        for i in 0..3000u64 {
            let a = Addr::new((i * 2083) % (1 << 19));
            full.access(pid, AccessKind::Read, a);
            private.access_upper_detailed(pid, AccessKind::Read, a, i as u32, &mut wbs);
        }
        assert_eq!(full.l1d().stats(), private.l1d().stats());
        assert_eq!(full.l2().stats(), private.l2().stats());
    }

    #[test]
    fn depths_share_upper_level_behaviour() {
        use crate::addr::Addr;
        use crate::hierarchy::AccessKind;
        // Same rng seed → identical L1/L2 outcome sequences; only the
        // L3 catch between L2 miss and memory differs in cost.
        let pid = ProcessId::new(1);
        let mut two = SetupKind::TsCache.build_depth(HierarchyDepth::TwoLevel, 9);
        let mut three = SetupKind::TsCache.build_depth(HierarchyDepth::ThreeLevel, 9);
        two.set_process_seed(pid, Seed::new(4));
        three.set_process_seed(pid, Seed::new(4));
        for i in 0..3000u64 {
            let a = Addr::new((i * 2083) % (1 << 19));
            two.access(pid, AccessKind::Read, a);
            three.access(pid, AccessKind::Read, a);
        }
        assert_eq!(two.l1d().stats(), three.l1d().stats());
        assert_eq!(two.l2().stats(), three.l2().stats());
    }
}
