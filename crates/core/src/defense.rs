//! Defense policies orthogonal to placement/replacement kinds.
//!
//! The paper's dual verdict — *leakage closed?* and *time
//! predictability preserved?* — is asked of every cache defense, not
//! just randomized placement. This module names the defenses from the
//! related work (PAPERS.md) as a single axis that composes with any
//! [`SetupKind`](crate::setup::SetupKind):
//!
//! - **TTL evictions** (ClepsydraCache): every fill arms a randomized
//!   per-line lifetime; set accesses decrement resident lifetimes and
//!   deterministically drain expired lines, so an attacker's primed
//!   lines decay before the victim returns.
//! - **Timed-access normalization** (TimeCache): the first access a
//!   process makes to a line another process loaded is *levelled* to
//!   miss latency, so reload/probe timing no longer distinguishes
//!   "victim touched it" from "still cold".
//! - **Random-and-Safe**: a composite configuration pairing randomized
//!   placement with safe (random) replacement and per-process seeds at
//!   every level — the [`SetupKind::RandomSafe`] preset.
//! - **Seed rotation** beyond per-hyperperiod: the shared level
//!   re-derives per-process placement seeds on a deterministic op
//!   cadence, per partition group or per core.
//!
//! All knobs are deterministic: the TTL jitter stream and rotation
//! schedule derive from the owning cache's seed, so scalar and batch
//! walks stay bit-identical and campaigns reproduce.

use core::fmt;

use crate::error::ConfigError;
use crate::setup::SetupKind;

/// Per-line TTL (time-to-live) configuration for ClepsydraCache-style
/// timed evictions.
///
/// Each fill arms the line with `base + uniform(0..=jitter)` remaining
/// accesses-to-its-set; every access to a set decrements the resident
/// lines' lifetimes, and a line whose lifetime hits zero is drained
/// (dirty lines count a writeback, all expiries count
/// [`ttl_expiries`](crate::stats::CacheStats::ttl_expiries)).
///
/// `base == 0` means *infinite* lifetime: the defense is off and the
/// cache is bit-identical to an undefended one.
///
/// # Examples
///
/// ```
/// use tscache_core::defense::TtlConfig;
///
/// let ttl = TtlConfig::standard();
/// assert!(ttl.base > 0);
/// assert!(!TtlConfig { base: 0, jitter: 0 }.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TtlConfig {
    /// Guaranteed lifetime in set-accesses; 0 disables expiry.
    pub base: u8,
    /// Upper bound of the per-fill uniform random lifetime extension.
    pub jitter: u8,
}

impl TtlConfig {
    /// The standard zoo parameters: short enough that primed lines
    /// decay within one probe round, jittered so decay order leaks no
    /// schedule.
    pub const fn standard() -> Self {
        TtlConfig { base: 2, jitter: 3 }
    }

    /// Whether lines actually expire (`base > 0`).
    pub const fn is_finite(&self) -> bool {
        self.base > 0
    }
}

/// Seed-rotation policy on the shared cache level.
///
/// The paper rotates seeds per hyperperiod; the zoo adds finer
/// policies that re-derive per-process placement seeds after every
/// `period` fill requests the shared level resolves, one rotation
/// group at a time (round-robin), flushing the rotated processes'
/// lines for §5 seed-change consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RotationPolicy {
    /// No rotation (per-hyperperiod rotation stays the RTOS's job).
    Off,
    /// Rotate one partition group's seeds every `period` fills.
    PerPartition {
        /// Fill requests between rotations.
        period: u64,
    },
    /// Rotate one core's (process's) seed every `period` fills.
    PerCore {
        /// Fill requests between rotations.
        period: u64,
    },
}

impl RotationPolicy {
    /// The rotation cadence, or `None` when off.
    pub fn period(&self) -> Option<u64> {
        match self {
            RotationPolicy::Off => None,
            RotationPolicy::PerPartition { period } | RotationPolicy::PerCore { period } => {
                Some(*period)
            }
        }
    }
}

/// One defense from the zoo, applied on top of a base
/// [`SetupKind`](crate::setup::SetupKind).
///
/// # Examples
///
/// ```
/// use tscache_core::defense::DefenseKind;
/// use tscache_core::setup::SetupKind;
///
/// assert_eq!(DefenseKind::parse("ttl"), Some(DefenseKind::Ttl));
/// assert_eq!(
///     DefenseKind::RandomSafe.effective_setup(SetupKind::Deterministic),
///     SetupKind::RandomSafe,
/// );
/// assert_eq!(
///     DefenseKind::Ttl.effective_setup(SetupKind::Deterministic),
///     SetupKind::Deterministic,
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefenseKind {
    /// Undefended baseline.
    Off,
    /// ClepsydraCache-style per-line TTL evictions at every level.
    Ttl,
    /// TimeCache-style timed-access normalization at every level.
    Normalize,
    /// Random-and-Safe composite configuration (replaces the base
    /// setup with [`SetupKind::RandomSafe`]).
    RandomSafe,
    /// Per-partition seed rotation on the shared level.
    RotatePartition,
    /// Per-core seed rotation on the shared level.
    RotateCore,
}

impl DefenseKind {
    /// Every defense, in canonical sweep order.
    pub const ALL: [DefenseKind; 6] = [
        DefenseKind::Off,
        DefenseKind::Ttl,
        DefenseKind::Normalize,
        DefenseKind::RandomSafe,
        DefenseKind::RotatePartition,
        DefenseKind::RotateCore,
    ];

    /// The default rotation cadence (fill requests between rotations)
    /// for the rotating defenses.
    pub const STANDARD_ROTATION_PERIOD: u64 = 2048;

    /// Stable lowercase label (used in campaign keys and reports).
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::Off => "off",
            DefenseKind::Ttl => "ttl",
            DefenseKind::Normalize => "normalize",
            DefenseKind::RandomSafe => "random-safe",
            DefenseKind::RotatePartition => "rotate-partition",
            DefenseKind::RotateCore => "rotate-core",
        }
    }

    /// Parses a [`label`](Self::label) back into a kind.
    pub fn parse(label: &str) -> Option<DefenseKind> {
        DefenseKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// The TTL configuration this defense arms, if any.
    pub fn ttl(&self) -> Option<TtlConfig> {
        match self {
            DefenseKind::Ttl => Some(TtlConfig::standard()),
            _ => None,
        }
    }

    /// Whether this defense arms timed-access normalization.
    pub fn normalize(&self) -> bool {
        matches!(self, DefenseKind::Normalize)
    }

    /// The shared-level seed-rotation policy this defense arms.
    pub fn rotation(&self) -> RotationPolicy {
        match self {
            DefenseKind::RotatePartition => {
                RotationPolicy::PerPartition { period: Self::STANDARD_ROTATION_PERIOD }
            }
            DefenseKind::RotateCore => {
                RotationPolicy::PerCore { period: Self::STANDARD_ROTATION_PERIOD }
            }
            _ => RotationPolicy::Off,
        }
    }

    /// The setup a platform should actually be built with: the
    /// Random-and-Safe defense *is* a configuration, so it replaces
    /// the base setup; every other defense composes with it.
    pub fn effective_setup(&self, base: SetupKind) -> SetupKind {
        match self {
            DefenseKind::RandomSafe => SetupKind::RandomSafe,
            _ => base,
        }
    }

    /// Whether this defense needs a shared last level to act at all
    /// (the rotation policies tick on the shared level's fill stream).
    pub fn needs_shared_level(&self) -> bool {
        matches!(self, DefenseKind::RotatePartition | DefenseKind::RotateCore)
    }

    /// Validates the defense against a platform shape, for campaign
    /// executors that must reject a bad spec as a typed
    /// [`ConfigError`] instead of silently no-opping.
    pub fn validate_platform(&self, shared_llc: bool) -> Result<(), ConfigError> {
        if self.needs_shared_level() && !shared_llc {
            return Err(ConfigError::incompatible(
                "seed-rotation defenses act on the shared level; this platform has none",
            ));
        }
        Ok(())
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in DefenseKind::ALL {
            assert_eq!(DefenseKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(DefenseKind::parse("nonsense"), None);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = DefenseKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            ["off", "ttl", "normalize", "random-safe", "rotate-partition", "rotate-core"],
        );
    }

    #[test]
    fn knob_mapping_is_consistent() {
        assert!(DefenseKind::Off.ttl().is_none());
        assert!(DefenseKind::Ttl.ttl().expect("armed").is_finite());
        assert!(DefenseKind::Normalize.normalize());
        assert!(!DefenseKind::Ttl.normalize());
        assert_eq!(DefenseKind::Off.rotation(), RotationPolicy::Off);
        assert_eq!(
            DefenseKind::RotateCore.rotation().period(),
            Some(DefenseKind::STANDARD_ROTATION_PERIOD),
        );
    }

    #[test]
    fn only_random_safe_replaces_the_setup() {
        for kind in DefenseKind::ALL {
            let eff = kind.effective_setup(SetupKind::Deterministic);
            if kind == DefenseKind::RandomSafe {
                assert_eq!(eff, SetupKind::RandomSafe);
            } else {
                assert_eq!(eff, SetupKind::Deterministic);
            }
        }
    }

    #[test]
    fn rotation_requires_shared_level() {
        assert!(DefenseKind::RotateCore.validate_platform(false).is_err());
        assert!(DefenseKind::RotateCore.validate_platform(true).is_ok());
        assert!(DefenseKind::Ttl.validate_platform(false).is_ok());
    }
}
