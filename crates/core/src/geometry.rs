//! Cache geometry: sets × ways × line size, plus the derived bit-field
//! arithmetic shared by every placement policy.

use crate::addr::{Addr, LineAddr};
use crate::error::ConfigError;
use core::fmt;

/// The shape of a set-associative cache.
///
/// All three parameters must be powers of two; this is validated by
/// [`CacheGeometry::new`], so a constructed geometry can hand out
/// bit-field helpers without further checking.
///
/// # Examples
///
/// ```
/// use tscache_core::geometry::CacheGeometry;
///
/// // The paper's L1: 16 KiB, 128 sets, 4 ways, 32-byte lines.
/// let g = CacheGeometry::new(128, 4, 32)?;
/// assert_eq!(g.size_bytes(), 16 * 1024);
/// assert_eq!(g.offset_bits(), 5);
/// assert_eq!(g.index_bits(), 7);
/// assert_eq!(g.way_size_bytes(), 4096);
/// # Ok::<(), tscache_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry after validating that every parameter is a
    /// non-zero power of two.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `sets`, `ways` or `line_bytes` is zero
    /// or not a power of two.
    pub fn new(sets: u32, ways: u32, line_bytes: u32) -> Result<Self, ConfigError> {
        fn pow2(name: &'static str, v: u32) -> Result<(), ConfigError> {
            if v == 0 || !v.is_power_of_two() {
                Err(ConfigError::not_power_of_two(name, v))
            } else {
                Ok(())
            }
        }
        pow2("sets", sets)?;
        pow2("ways", ways)?;
        pow2("line_bytes", line_bytes)?;
        Ok(CacheGeometry { sets, ways, line_bytes })
    }

    /// The paper's L1 geometry: 16 KiB, 128 sets, 4 ways, 32 B lines
    /// (ARM920T-class, §6.1.2).
    pub fn paper_l1() -> Self {
        CacheGeometry { sets: 128, ways: 4, line_bytes: 32 }
    }

    /// The paper's L2 geometry: 256 KiB, 2048 sets, 4 ways, 32 B lines.
    pub fn paper_l2() -> Self {
        CacheGeometry { sets: 2048, ways: 4, line_bytes: 32 }
    }

    /// The extended three-level scenario's L3: 1 MiB, 8192 sets,
    /// 4 ways, 32 B lines — the shared last level the multi-level
    /// randomized-cache literature evaluates (not in the DAC'18
    /// platform, which stops at L2).
    pub fn paper_l3() -> Self {
        CacheGeometry { sets: 8192, ways: 4, line_bytes: 32 }
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(&self) -> u32 {
        self.sets
    }

    /// Number of ways (associativity).
    #[inline]
    pub const fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    #[inline]
    pub const fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    #[inline]
    pub const fn size_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }

    /// Size of one way in bytes (`sets × line_bytes`). Random Modulo is
    /// applicable when the page size equals or is a multiple of this.
    #[inline]
    pub const fn way_size_bytes(&self) -> u64 {
        self.sets as u64 * self.line_bytes as u64
    }

    /// Number of intra-line offset bits.
    #[inline]
    pub const fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Number of set-index bits.
    #[inline]
    pub const fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Total number of lines the cache can hold.
    #[inline]
    pub const fn total_lines(&self) -> u32 {
        self.sets * self.ways
    }

    /// Converts a byte address to its line address.
    #[inline]
    pub const fn line_of(&self, addr: Addr) -> LineAddr {
        addr.line(self.offset_bits())
    }

    /// Modulo set index of a line (the deterministic baseline mapping).
    #[inline]
    pub const fn modulo_index(&self, line: LineAddr) -> u32 {
        line.index_bits(self.index_bits()) as u32
    }

    /// Tag of a line (everything above the index bits).
    #[inline]
    pub const fn tag_of(&self, line: LineAddr) -> u64 {
        line.tag_bits(self.index_bits())
    }

    /// Whether Random Modulo placement is applicable for pages of
    /// `2^page_bits` bytes: the page size must equal or be a multiple of
    /// the way size (paper §4).
    pub fn random_modulo_compatible(&self, page_bits: u32) -> bool {
        let page = 1u64 << page_bits;
        let way = self.way_size_bytes();
        page >= way && page.is_multiple_of(way)
    }

    /// Validating form of
    /// [`random_modulo_compatible`](Self::random_modulo_compatible).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the page size is not a multiple of
    /// the way size, with a message naming both.
    pub fn require_random_modulo_compatible(&self, page_bits: u32) -> Result<(), ConfigError> {
        if self.random_modulo_compatible(page_bits) {
            Ok(())
        } else {
            Err(ConfigError::incompatible(format!(
                "random modulo requires the page size ({}B) to be a multiple of the way size ({}B)",
                1u64 << page_bits,
                self.way_size_bytes()
            )))
        }
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B ({} sets x {} ways x {}B lines)",
            self.size_bytes(),
            self.sets,
            self.ways,
            self.line_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_matches_spec() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(g.size_bytes(), 16 * 1024);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.line_bytes(), 32);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.index_bits(), 7);
        assert_eq!(g.total_lines(), 512);
    }

    #[test]
    fn paper_l2_matches_spec() {
        let g = CacheGeometry::paper_l2();
        assert_eq!(g.size_bytes(), 256 * 1024);
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.index_bits(), 11);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheGeometry::new(100, 4, 32).is_err());
        assert!(CacheGeometry::new(128, 3, 32).is_err());
        assert!(CacheGeometry::new(128, 4, 48).is_err());
        assert!(CacheGeometry::new(0, 4, 32).is_err());
    }

    #[test]
    fn error_message_names_the_field() {
        let err = CacheGeometry::new(100, 4, 32).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sets"), "message was: {msg}");
    }

    #[test]
    fn modulo_index_and_tag() {
        let g = CacheGeometry::paper_l1();
        let line = LineAddr::new(0b1011_0101_1010);
        assert_eq!(g.modulo_index(line), 0b101_1010);
        assert_eq!(g.tag_of(line), 0b10110);
    }

    #[test]
    fn require_rm_compatibility_reports_sizes() {
        let err = CacheGeometry::paper_l2().require_random_modulo_compatible(12).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("4096B") && msg.contains("65536B"), "{msg}");
        assert!(CacheGeometry::paper_l1().require_random_modulo_compatible(12).is_ok());
    }

    #[test]
    fn l1_is_rm_compatible_l2_is_not() {
        // 4 KiB pages: way size of L1 is 4 KiB (compatible), L2's way is
        // 64 KiB (not compatible) — matching the paper's L1=RM, L2=HashRP
        // choice.
        assert!(CacheGeometry::paper_l1().random_modulo_compatible(12));
        assert!(!CacheGeometry::paper_l2().random_modulo_compatible(12));
    }

    #[test]
    fn line_of_uses_offset_bits() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(g.line_of(Addr::new(0x40)).as_u64(), 2);
    }

    #[test]
    fn display_mentions_shape() {
        let s = CacheGeometry::paper_l1().to_string();
        assert!(s.contains("128 sets"));
    }
}
