//! Multi-level memory hierarchy: split L1 (instruction + data) backed
//! by a configurable stack of unified levels (L2, and optionally an L3
//! or deeper), with per-level hit latencies and a whole-trace batch
//! path.
//!
//! # Batch execution
//!
//! [`Hierarchy::access`] is the scalar reference path: one op, walked
//! down the levels until it hits. [`Hierarchy::access_batch`] executes
//! a whole [`TraceOp`] segment with identical outcomes but amortized
//! bookkeeping: the L1s are driven in maximal same-port runs through
//! [`Cache::access_batch_collect`], each level's *miss stream* (kept in
//! op order) becomes the access stream of the next level down, and
//! statistics are folded in per level instead of per op. Because every
//! cache draws from its own RNG and upper-level accesses never touch
//! lower-level state, deferring each level's accesses until its full
//! input stream is known reproduces the scalar interleaving bit for
//! bit — the differential test suite pins this across every placement
//! × replacement combination and both hierarchy depths.

use crate::addr::{Addr, LineAddr};
use crate::cache::{
    AccessOutcome, BatchIo, BatchOutcome, Cache, InvalidatedCopy, WritePolicy, Writeback,
};
use crate::defense::{DefenseKind, RotationPolicy};
use crate::geometry::CacheGeometry;
use crate::placement::PlacementKind;
use crate::replacement::ReplacementKind;
use crate::seed::{ProcessId, Seed};
use crate::stats::CacheStats;
use core::fmt;

/// Access latencies in cycles for the classic two-level platform,
/// modelled after an ARM920T-class part (paper §6.1.2): single-cycle
/// L1 hits, a 10-cycle L2 penalty and an 80-cycle memory penalty.
///
/// Deeper hierarchies carry one hit latency per unified level inside
/// [`Hierarchy`]; this struct remains the convenient two-level view
/// (see [`Hierarchy::latencies`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Cycles for an L1 hit.
    pub l1_hit: u32,
    /// Additional cycles when the access hits in L2.
    pub l2_hit: u32,
    /// Additional cycles when the access goes to memory.
    pub memory: u32,
}

/// Additional cycles charged for an L3 hit in the three-level presets.
pub const L3_HIT_CYCLES: u32 = 30;

impl Default for Latencies {
    fn default() -> Self {
        Latencies { l1_hit: 1, l2_hit: 10, memory: 80 }
    }
}

impl fmt::Display for Latencies {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L1 {}c / +L2 {}c / +mem {}c", self.l1_hit, self.l2_hit, self.memory)
    }
}

/// Which first-level cache an access goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data read (L1D).
    Read,
    /// Data write (L1D, write-allocate).
    Write,
    /// Line flush (`clflush`-style): invalidates the line from every
    /// private level (dirty copies are forced to memory, counted as
    /// writebacks) without filling anything. On a coherent shared-LLC
    /// platform the flush additionally drains every coherence-tracked
    /// copy — the other cores' private copies and the shared-level
    /// copies — which is the attacker primitive of Flush+Reload.
    Flush,
}

/// One memory operation of a pre-built trace, consumed by
/// [`Hierarchy::access_batch`] (and re-exported as the simulator's
/// `TraceOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Which port the access uses.
    pub kind: AccessKind,
    /// The byte address to access.
    pub addr: Addr,
}

impl TraceOp {
    /// An instruction fetch.
    #[inline]
    pub const fn fetch(addr: Addr) -> Self {
        TraceOp { kind: AccessKind::Fetch, addr }
    }

    /// A data read.
    #[inline]
    pub const fn read(addr: Addr) -> Self {
        TraceOp { kind: AccessKind::Read, addr }
    }

    /// A data write.
    #[inline]
    pub const fn write(addr: Addr) -> Self {
        TraceOp { kind: AccessKind::Write, addr }
    }

    /// A line flush (see [`AccessKind::Flush`]).
    #[inline]
    pub const fn flush(addr: Addr) -> Self {
        TraceOp { kind: AccessKind::Flush, addr }
    }

    /// A deterministic mixed fetch/read/write trace derived from
    /// `salt`, with addresses spread over `footprint` bytes and
    /// roughly one third of the ops per kind — the shared traffic
    /// generator of the differential/property suites, also handy as a
    /// synthetic enemy workload.
    pub fn mixed_trace(salt: u64, len: usize, footprint: u64) -> Vec<TraceOp> {
        let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let addr = Addr::new((state >> 16) % footprint);
                match state % 3 {
                    0 => TraceOp::fetch(addr),
                    1 => TraceOp::read(addr),
                    _ => TraceOp::write(addr),
                }
            })
            .collect()
    }
}

/// Per-op timing event produced by
/// [`Hierarchy::access_detailed`] and
/// [`Hierarchy::access_batch_timed`]: everything the multi-core
/// interference engine needs to replay the op against a shared bus —
/// its solo cycle cost, which levels it missed, and how many dirty
/// writebacks it pushed all the way to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// Cycle cost of the op with no contention (exactly what
    /// [`Hierarchy::access`] returns).
    pub cycles: u32,
    /// Bit `0` = the op missed its L1; bit `k` = it missed unified
    /// level `k-1` (L2 = bit 1, L3 = bit 2, …).
    pub miss_mask: u8,
    /// Dirty-eviction writebacks that cascaded past every cache level
    /// and reached memory during this op (bus write transactions).
    pub mem_writebacks: u8,
}

impl OpTiming {
    /// Whether the op went all the way to memory (a bus read
    /// transaction), for a hierarchy of `depth` levels (split L1
    /// counted once, as [`Hierarchy::depth`] reports).
    #[inline]
    pub fn memory_read(&self, depth: usize) -> bool {
        self.miss_mask >> (depth - 1) & 1 == 1
    }
}

/// Timing of one op through the *private* levels of a hierarchy whose
/// last unified level lives elsewhere (a shared LLC): produced by
/// [`Hierarchy::access_upper_detailed`]. The shared-level cost is
/// composed by the caller once it resolves [`fill`](Self::fill)
/// against the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpperOutcome {
    /// Cycle cost through the private levels (L1 hit plus each
    /// consulted private unified level's hit cycles).
    pub cycles: u32,
    /// Bit `0` = missed the L1; bit `k` = missed private unified level
    /// `k-1`. The shared level's bit is composed by the caller.
    pub miss_mask: u8,
    /// The line to request from the shared level (every private level
    /// missed), or `None` on a private hit.
    pub fill: Option<LineAddr>,
    /// Writebacks this op forced straight to memory, bypassing the
    /// shared level: the dirty private copies a [`AccessKind::Flush`]
    /// op drains (zero for ordinary accesses, whose escaped writebacks
    /// travel through the exported request stream instead).
    pub mem_writebacks: u8,
}

/// Aggregate of one [`Hierarchy::invalidate_line`] call: how many
/// copies a coherence action dropped across the hierarchy's levels,
/// and how many of them were dirty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyInvalidation {
    /// Valid copies dropped.
    pub copies: u32,
    /// Dropped copies that were dirty (data forced out).
    pub dirty: u32,
}

/// The request stream one core sends its shared last-level cache for a
/// trace segment, exported by [`Hierarchy::access_batch_upper_timed`]:
/// the last private level's miss stream (fill requests, with
/// originating op indices) and the dirty-eviction writebacks no
/// private level absorbed, both in op order. `writebacks` carry
/// nondecreasing `op_idx`, and a writeback of op `i` precedes op `i`'s
/// fill — the order the scalar walk's victim buffer drains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LlcRequests {
    /// Fill requests (lines that missed every private level).
    pub fills: Vec<LineAddr>,
    /// Originating op index per fill, parallel to `fills`.
    pub fill_idx: Vec<u32>,
    /// Writebacks bound for the shared level, in delivery order.
    pub writebacks: Vec<Writeback>,
}

impl LlcRequests {
    /// Empties all three streams.
    pub fn clear(&mut self) {
        self.fills.clear();
        self.fill_idx.clear();
        self.writebacks.clear();
    }

    /// Consumes op `op_idx`'s requests off the front of the streams,
    /// advancing the caller's cursors: the writebacks the op escaped
    /// (to deliver *before* its fill) and the fill request, if any.
    /// The one consumption order every shared-LLC engine must share —
    /// having a single implementation is what keeps the scalar and
    /// batch engines structurally incapable of diverging here.
    pub fn take_for_op(
        &self,
        op_idx: u32,
        fill_pos: &mut usize,
        wb_pos: &mut usize,
    ) -> (Option<LineAddr>, &[Writeback]) {
        let wb_start = *wb_pos;
        while *wb_pos < self.writebacks.len() && self.writebacks[*wb_pos].op_idx == op_idx {
            *wb_pos += 1;
        }
        let fill = if *fill_pos < self.fills.len() && self.fill_idx[*fill_pos] == op_idx {
            *fill_pos += 1;
            Some(self.fills[*fill_pos - 1])
        } else {
            None
        };
        (fill, &self.writebacks[wb_start..*wb_pos])
    }
}

/// A last-level cache shared by every core of a multicore platform:
/// one [`Cache`] instance plus the hit and memory latencies the levels
/// above it compose with. Per-core traffic enters under each core's
/// own [`ProcessId`], so per-core way partitions (the §7 partitioning
/// alternative, applied at the shared level) and cross-core eviction
/// accounting fall out of the existing cache model.
///
/// # Coherence
///
/// Declaring a *coherent range* ([`add_coherent_range`]
/// [`has_coherence`]) arms the MSI-style invalidation protocol: the
/// shared level keeps a directory mapping each tracked line to the
/// bitmap of cores holding private copies, and the multicore engines
/// drain those copies — on cross-core writes (upgrades), on
/// [`AccessKind::Flush`] broadcasts, and on shared-level eviction of a
/// tracked line (inclusive back-invalidation) — in deterministic
/// global op order. Untracked lines stay per-core private, exactly the
/// pre-coherence model, and pay none of the bookkeeping.
///
/// [`add_coherent_range`]: Self::add_coherent_range
/// [`has_coherence`]: Self::has_coherence
///
/// The shared level sits *behind* the per-core private hierarchies
/// ([`Hierarchy::access_upper_detailed`] /
/// [`Hierarchy::access_batch_upper_timed`] produce its request
/// streams) and *in front of* the memory bus: a shared-LLC hit never
/// pays a bus transaction, only misses and writebacks that reach
/// memory do.
#[derive(Debug)]
pub struct SharedLlc {
    cache: Cache,
    hit_cycles: u32,
    memory: u32,
    /// Coherence directory: tracked line → bitmap of cores holding
    /// private copies. Only lines inside a declared coherent range
    /// ever enter; empty on platforms without coherence.
    ///
    /// A HashMap is sound here *only* because the directory is pure
    /// keyed lookup: entry/get/remove, never iterated, so the seeded
    /// bucket order can't reach any record or digest. It sits on the
    /// shared-fill hot path, where BTreeMap lookups cost ~10-20% of
    /// defense-suite throughput (BENCH_PR10 bar).
    #[allow(clippy::disallowed_types)]
    // detlint: allow(D2, keyed lookup only — entry/get/remove, never iterated; hot shared-fill path where BTreeMap costs >10% defense-suite throughput)
    directory: std::collections::HashMap<u64, u32>,
    /// Armed seed-rotation policy (defense zoo): re-derives placement
    /// seeds on a deterministic fill-count cadence.
    rotation: RotationPolicy,
    /// Fill requests resolved since construction (the rotation clock;
    /// only ticked while a rotation policy is armed).
    rotation_ops: u64,
    /// Completed rotations (drives both round-robin group selection
    /// and the per-epoch seed derivation).
    rotation_epoch: u64,
    /// Pre-derivation base seed per process, recorded by
    /// [`set_process_seed`](Self::set_process_seed), sorted by pid —
    /// what each rotation epoch re-derives from.
    rotation_base: Vec<(u16, Seed)>,
    /// Partition-group membership `(pid, group)`, sorted by pid, for
    /// [`RotationPolicy::PerPartition`]. Processes without an entry
    /// form implicit singleton groups.
    rotation_groups: Vec<(u16, u8)>,
}

/// Outcome of one fill request against a [`SharedLlc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcFill {
    /// The line was present in the shared level.
    pub hit: bool,
    /// The fill displaced a dirty line, which must be written to
    /// memory (one bus write transaction).
    pub mem_writeback: bool,
}

impl SharedLlc {
    /// Wraps `cache` as a shared last level with the given additional
    /// hit cycles and memory penalty.
    pub fn new(cache: Cache, hit_cycles: u32, memory: u32) -> Self {
        SharedLlc {
            cache,
            hit_cycles,
            memory,
            #[allow(clippy::disallowed_types)]
            // detlint: allow(D2, ctor for the keyed-lookup-only directory field; see field doc)
            directory: std::collections::HashMap::new(),
            rotation: RotationPolicy::Off,
            rotation_ops: 0,
            rotation_epoch: 0,
            rotation_base: Vec::new(),
            rotation_groups: Vec::new(),
        }
    }

    /// The underlying cache (statistics, contents, policy inspection).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Mutably borrows the underlying cache (partition and seed
    /// management, probes).
    pub fn cache_mut(&mut self) -> &mut Cache {
        &mut self.cache
    }

    /// Additional cycles charged when a lookup reaches this level.
    pub fn hit_cycles(&self) -> u32 {
        self.hit_cycles
    }

    /// Additional cycles charged when this level misses.
    pub fn memory_cycles(&self) -> u32 {
        self.memory
    }

    /// Sets the placement seed of `pid`, on a derivation stream
    /// distinct from every private level's
    /// (cf. [`Hierarchy::set_process_seed`]).
    pub fn set_process_seed(&mut self, pid: ProcessId, seed: Seed) {
        let raw = pid.as_u16();
        match self.rotation_base.binary_search_by_key(&raw, |&(p, _)| p) {
            Ok(i) => self.rotation_base[i] = (raw, seed),
            Err(i) => self.rotation_base.insert(i, (raw, seed)),
        }
        self.cache.set_seed(pid, seed.derive(0x11c));
    }

    /// Arms (or disarms) a seed-rotation policy. The rotation clock
    /// counts fill requests; every `period` fills one rotation group
    /// (round-robin over partition groups for
    /// [`RotationPolicy::PerPartition`], over processes for
    /// [`RotationPolicy::PerCore`]) gets its seeds re-derived from the
    /// bases recorded by [`set_process_seed`](Self::set_process_seed),
    /// and its lines flushed (the §5 seed-change consistency flush).
    pub fn set_rotation(&mut self, policy: RotationPolicy) {
        self.rotation = policy;
    }

    /// The armed rotation policy.
    pub fn rotation(&self) -> RotationPolicy {
        self.rotation
    }

    /// Completed rotation epochs (0 until the first rotation fires).
    pub fn rotation_epoch(&self) -> u64 {
        self.rotation_epoch
    }

    /// Declares `pid` a member of partition `group` for
    /// [`RotationPolicy::PerPartition`] (typically the core index that
    /// owns the pid's way partition). Processes never declared form
    /// implicit singleton groups.
    pub fn set_rotation_group(&mut self, pid: ProcessId, group: u8) {
        let raw = pid.as_u16();
        match self.rotation_groups.binary_search_by_key(&raw, |&(p, _)| p) {
            Ok(i) => self.rotation_groups[i] = (raw, group),
            Err(i) => self.rotation_groups.insert(i, (raw, group)),
        }
    }

    /// Arms the TTL / normalization knobs of `defense` on the shared
    /// cache and its rotation policy on this level.
    /// ([`DefenseKind::RandomSafe`] is a *configuration*: build the
    /// platform with [`DefenseKind::effective_setup`] instead.)
    pub fn apply_defense(&mut self, defense: DefenseKind) {
        self.cache.set_ttl(defense.ttl());
        self.cache.set_normalize(defense.normalize());
        self.set_rotation(defense.rotation());
    }

    /// Advances the rotation clock by one fill request and fires a
    /// rotation when the cadence comes due. Ticks only on fill
    /// requests — never on writeback-only resolutions — so the
    /// schedule is a pure function of the fill stream and scalar/batch
    /// executions cannot diverge.
    fn rotation_tick(&mut self) {
        let Some(period) = self.rotation.period() else { return };
        self.rotation_ops += 1;
        if !self.rotation_ops.is_multiple_of(period) || self.rotation_base.is_empty() {
            return;
        }
        self.rotation_epoch += 1;
        let epoch = self.rotation_epoch;
        let members: Vec<(u16, Seed)> = match self.rotation {
            RotationPolicy::PerCore { .. } => {
                let idx = ((epoch - 1) % self.rotation_base.len() as u64) as usize;
                vec![self.rotation_base[idx]]
            }
            RotationPolicy::PerPartition { .. } => {
                // Distinct declared groups, round-robin; processes
                // without a group rotate together as the implicit
                // remainder group when no group is declared at all.
                let mut groups: Vec<u8> = self.rotation_groups.iter().map(|&(_, g)| g).collect();
                groups.sort_unstable();
                groups.dedup();
                if groups.is_empty() {
                    self.rotation_base.clone()
                } else {
                    let g = groups[((epoch - 1) % groups.len() as u64) as usize];
                    self.rotation_base
                        .iter()
                        .copied()
                        .filter(|&(p, _)| {
                            self.rotation_groups
                                .binary_search_by_key(&p, |&(q, _)| q)
                                .map(|i| self.rotation_groups[i].1)
                                == Ok(g)
                        })
                        .collect()
                }
            }
            RotationPolicy::Off => unreachable!("period() returned Some"),
        };
        for (raw, base) in members {
            let pid = ProcessId::new(raw);
            // Chain past the construction-time derivation so every
            // epoch lands on a fresh, reproducible seed.
            self.cache.set_seed(pid, base.derive(0x11c).derive(0x520 + epoch));
            self.cache.flush_process(pid);
        }
    }

    /// Confines `pid` to fill ways `lo..hi` of the shared level — the
    /// per-core partition of the §7 ablation (give each core's
    /// processes a disjoint range and cross-core evictions vanish).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn set_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        self.cache.set_way_partition(pid, lo, hi);
    }

    /// Removes `pid`'s way partition on the shared level.
    pub fn clear_way_partition(&mut self, pid: ProcessId) {
        self.cache.clear_way_partition(pid);
    }

    /// Sets the shared level's write policy.
    pub fn set_write_policy(&mut self, policy: WritePolicy) {
        self.cache.set_write_policy(policy);
    }

    /// Invalidates every line of the shared level and forgets the
    /// coherence directory (a whole-LLC flush accompanies a platform-
    /// wide flush, after which no private copies survive either — the
    /// caller is responsible for flushing the private hierarchies).
    pub fn flush(&mut self) {
        self.cache.flush();
        self.directory.clear();
    }

    /// Invalidates every line of `pid` in the shared level (the §5
    /// consistency flush that must accompany a reseed of `pid`).
    pub fn flush_process(&mut self, pid: ProcessId) {
        self.cache.flush_process(pid);
    }

    /// Marks `size` bytes at `start` as protected (RPCache P-bit,
    /// e.g. over the AES tables) in the shared level, mirroring
    /// [`Hierarchy::add_protected_range`].
    pub fn add_protected_range(&mut self, start: Addr, size: u64) {
        let bits = self.cache.geometry().offset_bits();
        let first = start.line(bits);
        let last = start.offset(size.saturating_sub(1)).line(bits).offset(1);
        self.cache.add_protected_range(first, last);
    }

    /// Marks `size` bytes at `start` as coherence-tracked at the
    /// shared level, arming the invalidation protocol for that range
    /// (see the type-level *Coherence* section). Mirror the range into
    /// each core's private hierarchy via
    /// [`Hierarchy::add_coherent_range`] so private fills carry their
    /// MSI state too.
    pub fn add_coherent_range(&mut self, start: Addr, size: u64) {
        let bits = self.cache.geometry().offset_bits();
        let first = start.line(bits);
        let last = start.offset(size.saturating_sub(1)).line(bits).offset(1);
        self.cache.add_coherent_range(first, last);
    }

    /// Whether any coherent range is declared (the invalidation
    /// protocol is armed).
    pub fn has_coherence(&self) -> bool {
        self.cache.has_coherent_ranges()
    }

    /// Whether `line` is coherence-tracked.
    pub fn is_coherent_line(&self, line: LineAddr) -> bool {
        self.cache.is_coherent_addr(line.as_u64())
    }

    /// Records core `core` as holding a private copy of tracked
    /// `line`. The directory is *imprecise* in the usual way: a silent
    /// private eviction leaves a stale sharer bit, which later costs a
    /// no-op invalidation, never a correctness error.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `core` exceeds the 32-core bitmap.
    pub fn note_sharer(&mut self, line: LineAddr, core: usize) {
        debug_assert!(core < 32, "directory bitmap holds 32 cores");
        *self.directory.entry(line.as_u64()).or_insert(0) |= 1u32 << core;
    }

    /// Bitmap of cores the directory lists as private-copy holders of
    /// `line` (bit `c` = core `c`).
    pub fn sharers(&self, line: LineAddr) -> u32 {
        self.directory.get(&line.as_u64()).copied().unwrap_or(0)
    }

    /// Drops `line`'s directory entry (flush broadcast), returning the
    /// sharer bitmap it held.
    pub fn clear_sharers(&mut self, line: LineAddr) -> u32 {
        self.directory.remove(&line.as_u64()).unwrap_or(0)
    }

    /// Restricts `line`'s directory entry to `core` alone (the upgrade
    /// outcome: after a write, the writer is the only holder),
    /// returning the bitmap of the *other* cores that held copies —
    /// the ones the caller must now invalidate.
    pub fn retain_sharer(&mut self, line: LineAddr, core: usize) -> u32 {
        debug_assert!(core < 32, "directory bitmap holds 32 cores");
        let entry = self.directory.entry(line.as_u64()).or_insert(0);
        let others = *entry & !(1u32 << core);
        *entry = 1u32 << core;
        others
    }

    /// Invalidates the shared-level copy of `line` as placed under
    /// `pid`'s view (each filler pid's seed indexes its own copy — on
    /// per-process-seed platforms the same physical line may sit in
    /// several sets, one per seed, and each is drained under its own
    /// placement).
    pub fn invalidate_copy(&mut self, pid: ProcessId, line: LineAddr) -> InvalidatedCopy {
        self.cache.invalidate_line(pid, line)
    }

    /// One fill request on behalf of `pid`: fills on a miss, reporting
    /// whether a dirty victim must travel to memory. Latency is
    /// composed by the caller from [`hit_cycles`](Self::hit_cycles)
    /// and [`memory_cycles`](Self::memory_cycles).
    pub fn access(&mut self, pid: ProcessId, line: LineAddr) -> LlcFill {
        match self.cache.access(pid, line) {
            AccessOutcome::Hit => LlcFill { hit: true, mem_writeback: false },
            AccessOutcome::Miss { evicted, .. } => {
                LlcFill { hit: false, mem_writeback: evicted.is_some_and(|ev| ev.dirty) }
            }
        }
    }

    /// Delivers a writeback emitted by a core's private levels; returns
    /// `true` when the shared level absorbed it (present copy,
    /// write-back policy), `false` when it must continue to memory.
    pub fn receive_writeback(&mut self, owner: ProcessId, line: LineAddr) -> bool {
        self.cache.receive_writeback(owner, line)
    }

    /// Resolves one op's complete shared-level traffic on behalf of
    /// `pid`: the op's escaped private-level writebacks are delivered
    /// first (victim-drain order), then the fill request, if any. This
    /// is THE shared-level resolution — every consumer (the multicore
    /// engines' per-op composition and the machine's scalar ops)
    /// funnels through it, so the latency/traffic contract cannot
    /// silently diverge between paths.
    pub fn resolve(
        &mut self,
        pid: ProcessId,
        fill: Option<LineAddr>,
        writebacks: &[Writeback],
    ) -> LlcResolution {
        self.resolve_evict(pid, fill, writebacks).0
    }

    /// [`resolve`](Self::resolve), additionally reporting the line the
    /// fill displaced from the shared level (if any) so the coherence
    /// layer can back-invalidate a tracked victim's private copies
    /// (inclusive-LLC semantics).
    pub fn resolve_evict(
        &mut self,
        pid: ProcessId,
        fill: Option<LineAddr>,
        writebacks: &[Writeback],
    ) -> (LlcResolution, Option<LineAddr>) {
        let mut r = LlcResolution { cycles: 0, miss: false, mem_writebacks: 0 };
        let mut evicted_line = None;
        if fill.is_some() {
            self.rotation_tick();
        }
        for wb in writebacks {
            if !self.receive_writeback(wb.owner, wb.line) {
                r.mem_writebacks += 1;
            }
        }
        if let Some(line) = fill {
            r.cycles += self.hit_cycles;
            match self.cache.access(pid, line) {
                AccessOutcome::Hit => {}
                AccessOutcome::Miss { evicted, .. } => {
                    r.miss = true;
                    r.cycles += self.memory;
                    if let Some(ev) = evicted {
                        r.mem_writebacks += ev.dirty as u8;
                        evicted_line = Some(ev.line);
                    }
                }
            }
        }
        (r, evicted_line)
    }
}

/// Outcome of [`SharedLlc::resolve`]: what one op's shared-level
/// traffic costs and sends to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcResolution {
    /// Additional cycles the shared level charges (hit cycles, plus
    /// the memory penalty on a miss; zero without a fill request).
    pub cycles: u32,
    /// The fill missed the shared level (an off-chip read — one bus
    /// read transaction).
    pub miss: bool,
    /// Writebacks that passed the shared level to memory (unabsorbed
    /// private writebacks plus a dirty shared-level victim) — bus
    /// write transactions.
    pub mem_writebacks: u8,
}

/// Per-level aggregate of one [`Hierarchy::access_batch`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyBatchOutcome {
    /// Operations executed.
    pub ops: u64,
    /// Total cycle cost of the batch.
    pub cycles: u64,
    /// L1I aggregate (the batch's fetches).
    pub l1i: BatchOutcome,
    /// L1D aggregate (the batch's reads and writes).
    pub l1d: BatchOutcome,
    /// One aggregate per unified level, L2 outward. The level's
    /// access count is the miss count of the levels above it.
    pub unified: Vec<BatchOutcome>,
    /// Dirty writebacks that cascaded past every level to memory.
    pub mem_writebacks: u64,
}

impl HierarchyBatchOutcome {
    /// Accesses that left the last cache level and went to memory.
    pub fn memory_accesses(&self) -> u64 {
        self.unified.last().map_or(self.l1i.misses + self.l1d.misses, |l| l.misses)
    }
}

/// One unified cache level below the split L1s.
#[derive(Debug)]
struct UnifiedLevel {
    cache: Cache,
    /// Additional cycles charged when the lookup reaches this level.
    hit_cycles: u32,
}

/// A split-L1 hierarchy over a configurable vector of unified levels.
///
/// All levels must share one line size so a line address carries
/// unchanged down the miss path (asserted at construction; every
/// preset uses 32-byte lines).
///
/// # Examples
///
/// ```
/// use tscache_core::hierarchy::{AccessKind, Hierarchy};
/// use tscache_core::setup::SetupKind;
/// use tscache_core::seed::{ProcessId, Seed};
/// use tscache_core::addr::Addr;
///
/// let mut h = SetupKind::TsCache.build(1234);
/// let pid = ProcessId::new(1);
/// h.set_process_seed(pid, Seed::new(77));
/// let cold = h.access(pid, AccessKind::Read, Addr::new(0x8000));
/// let warm = h.access(pid, AccessKind::Read, Addr::new(0x8000));
/// assert!(cold > warm);
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    /// Unified levels in lookup order (L2 first).
    levels: Vec<UnifiedLevel>,
    l1_hit: u32,
    memory: u32,
    /// Cached `any level is write-back` flag (kept fresh by
    /// [`set_write_policy`](Self::set_write_policy)); selects between
    /// the lean write-through walks and the event-conduit walks.
    has_writeback: bool,
    /// Reused batch scratch: per-run line buffer and the ping-pong
    /// miss buffers threaded between levels.
    scratch_lines: Vec<LineAddr>,
    scratch_cur: Vec<LineAddr>,
    scratch_next: Vec<LineAddr>,
    /// Extra scratch of the event-conduit walk (write-back configs and
    /// timed batches): per-run write flags and op indices, the miss
    /// streams' op indices, and the ping-pong writeback buffers.
    scratch_writes: Vec<bool>,
    scratch_run_idx: Vec<u32>,
    scratch_cur_idx: Vec<u32>,
    scratch_next_idx: Vec<u32>,
    scratch_wb_cur: Vec<Writeback>,
    scratch_wb_next: Vec<Writeback>,
    /// Flush events `(op_idx, line)` of the current batch, threaded
    /// through every level of the event-conduit walk.
    scratch_flushes: Vec<(u32, LineAddr)>,
}

impl Hierarchy {
    /// Assembles the classic two-level hierarchy from three caches and
    /// a latency model. The caches are taken in `(l1i, l1d, l2)` order.
    pub fn new(l1i: Cache, l1d: Cache, l2: Cache, latencies: Latencies) -> Self {
        Hierarchy::from_parts(
            l1i,
            l1d,
            vec![(l2, latencies.l2_hit)],
            latencies.l1_hit,
            latencies.memory,
        )
    }

    /// Assembles a hierarchy of arbitrary depth: split L1s plus one
    /// `(cache, additional hit cycles)` pair per unified level, in
    /// lookup order.
    ///
    /// # Panics
    ///
    /// Panics if `unified` is empty or any level's line size differs
    /// from the L1s'.
    pub fn from_parts(
        l1i: Cache,
        l1d: Cache,
        unified: Vec<(Cache, u32)>,
        l1_hit: u32,
        memory: u32,
    ) -> Self {
        assert!(!unified.is_empty(), "hierarchy needs at least one unified level");
        Hierarchy::from_private_parts(l1i, l1d, unified, l1_hit, memory)
    }

    /// Assembles the *private* portion of a core on a shared-LLC
    /// platform: split L1s plus zero or more private unified levels
    /// (the shared last level lives in a [`SharedLlc`] owned by the
    /// platform, not here). Unlike [`from_parts`](Self::from_parts),
    /// `unified` may be empty — a two-level platform with a shared L2
    /// keeps only the L1s per core.
    ///
    /// Drive such a hierarchy through
    /// [`access_upper_detailed`](Self::access_upper_detailed) /
    /// [`access_batch_upper_timed`](Self::access_batch_upper_timed);
    /// the full-walk entry points would charge the memory penalty on a
    /// last-*private*-level miss, ignoring the shared level.
    ///
    /// # Panics
    ///
    /// Panics if any level's line size differs from the L1s'.
    pub fn from_private_parts(
        l1i: Cache,
        l1d: Cache,
        unified: Vec<(Cache, u32)>,
        l1_hit: u32,
        memory: u32,
    ) -> Self {
        let line = l1i.geometry().line_bytes();
        assert_eq!(l1d.geometry().line_bytes(), line, "L1D line size differs from L1I");
        for (cache, _) in &unified {
            assert_eq!(
                cache.geometry().line_bytes(),
                line,
                "{} line size differs from L1 ({}B)",
                cache.label(),
                line
            );
        }
        let mut h = Hierarchy {
            l1i,
            l1d,
            levels: unified
                .into_iter()
                .map(|(cache, hit_cycles)| UnifiedLevel { cache, hit_cycles })
                .collect(),
            l1_hit,
            memory,
            has_writeback: false,
            scratch_lines: Vec::new(),
            scratch_cur: Vec::new(),
            scratch_next: Vec::new(),
            scratch_writes: Vec::new(),
            scratch_run_idx: Vec::new(),
            scratch_cur_idx: Vec::new(),
            scratch_next_idx: Vec::new(),
            scratch_wb_cur: Vec::new(),
            scratch_wb_next: Vec::new(),
            scratch_flushes: Vec::new(),
        };
        h.refresh_has_writeback();
        h
    }

    /// Builds the paper's two-level geometry with uniform policies in
    /// the L1s and a (possibly different) policy in L2.
    pub fn with_policies(
        l1_placement: PlacementKind,
        l1_replacement: ReplacementKind,
        l2_placement: PlacementKind,
        l2_replacement: ReplacementKind,
        rng_seed: u64,
    ) -> Self {
        let l1 = CacheGeometry::paper_l1();
        let l2 = CacheGeometry::paper_l2();
        Hierarchy::new(
            Cache::new("L1I", l1, l1_placement, l1_replacement, rng_seed ^ 0x11),
            Cache::new("L1D", l1, l1_placement, l1_replacement, rng_seed ^ 0x22),
            Cache::new("L2", l2, l2_placement, l2_replacement, rng_seed ^ 0x33),
            Latencies::default(),
        )
    }

    /// The two-level latency view: L1 hit, first-unified-level hit,
    /// memory. Deeper levels' latencies are read per level via
    /// [`level_hit_cycles`](Self::level_hit_cycles).
    pub fn latencies(&self) -> Latencies {
        Latencies { l1_hit: self.l1_hit, l2_hit: self.levels[0].hit_cycles, memory: self.memory }
    }

    /// Replaces the L1-hit, L2-hit and memory latencies (deeper levels
    /// keep their configured hit cycles).
    pub fn set_latencies(&mut self, latencies: Latencies) {
        self.l1_hit = latencies.l1_hit;
        self.levels[0].hit_cycles = latencies.l2_hit;
        self.memory = latencies.memory;
    }

    /// Number of cache levels (the split L1 pair counts as one).
    pub fn depth(&self) -> usize {
        1 + self.levels.len()
    }

    /// Cycles of an L1 hit (safe on L1-only private hierarchies, where
    /// [`latencies`](Self::latencies) has no unified level to report).
    pub fn l1_hit_cycles(&self) -> u32 {
        self.l1_hit
    }

    /// Additional hit cycles of unified level `i` (0 = L2).
    pub fn level_hit_cycles(&self, i: usize) -> u32 {
        self.levels[i].hit_cycles
    }

    /// Performs an access and returns its cost in cycles: the L1 hit
    /// cost, plus each consulted unified level's hit cycles, plus the
    /// memory penalty when every level misses. Each consulted level
    /// fills on its miss.
    pub fn access(&mut self, pid: ProcessId, kind: AccessKind, addr: Addr) -> u32 {
        // Write-through everywhere: no dirty lines can exist, so skip
        // the event/writeback bookkeeping of the detailed walk.
        if self.has_writeback || kind == AccessKind::Flush {
            return self.access_detailed(pid, kind, addr).cycles;
        }
        let l1 = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
            AccessKind::Flush => unreachable!("flush handled by the detailed walk"),
        };
        let line = l1.geometry().line_of(addr);
        let mut cost = self.l1_hit;
        if l1.access(pid, line).is_hit() {
            return cost;
        }
        for level in &mut self.levels {
            cost += level.hit_cycles;
            if level.cache.access(pid, line).is_hit() {
                return cost;
            }
        }
        cost + self.memory
    }

    /// [`access`](Self::access) with the per-op event detail the
    /// interference engine consumes: which levels missed and how many
    /// writebacks reached memory. Writes mark L1D lines dirty under
    /// [`WritePolicy::WriteBack`]; evicting a dirty line delivers its
    /// writeback down the stack (the victim buffer drains *before* the
    /// fill proceeds to the next level), where it silently re-dirties a
    /// present copy or cascades further, ultimately to memory.
    pub fn access_detailed(&mut self, pid: ProcessId, kind: AccessKind, addr: Addr) -> OpTiming {
        if kind == AccessKind::Flush {
            let line = self.l1d.geometry().line_of(addr);
            let inv = self.invalidate_line(pid, line);
            // Flush costs its issue slot; drained dirty copies are
            // forced to memory (bus writes in contended runs).
            return OpTiming {
                cycles: self.l1_hit,
                miss_mask: 0,
                mem_writebacks: inv.dirty.min(u8::MAX as u32) as u8,
            };
        }
        let write = kind == AccessKind::Write;
        let l1 = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
            AccessKind::Flush => unreachable!(),
        };
        let line = l1.geometry().line_of(addr);
        let mut timing = OpTiming { cycles: self.l1_hit, miss_mask: 0, mem_writebacks: 0 };
        let out = l1.access_rw(pid, line, write);
        if let AccessOutcome::Miss { evicted: Some(ev), .. } = out {
            if ev.dirty {
                timing.mem_writebacks += self.cascade_writeback(0, ev.owner, ev.line);
            }
        }
        if out.is_hit() {
            return timing;
        }
        timing.miss_mask |= 1;
        for k in 0..self.levels.len() {
            timing.cycles += self.levels[k].hit_cycles;
            let out = self.levels[k].cache.access(pid, line);
            if let AccessOutcome::Miss { evicted: Some(ev), .. } = out {
                if ev.dirty {
                    timing.mem_writebacks += self.cascade_writeback(k + 1, ev.owner, ev.line);
                }
            }
            if out.is_hit() {
                return timing;
            }
            timing.miss_mask |= 1 << (k + 1);
        }
        timing.cycles += self.memory;
        timing
    }

    /// Delivers a writeback emitted above unified level `start` down
    /// the stack; returns 1 if no level absorbed it (it reached
    /// memory), 0 otherwise.
    fn cascade_writeback(&mut self, start: usize, owner: ProcessId, line: LineAddr) -> u8 {
        for k in start..self.levels.len() {
            if self.levels[k].cache.receive_writeback(owner, line) {
                return 0;
            }
        }
        1
    }

    /// [`access_detailed`](Self::access_detailed) for a core whose last
    /// unified level is a [`SharedLlc`] owned elsewhere: walks only the
    /// private levels, and instead of charging the memory penalty
    /// reports the shared-level fill request (if every private level
    /// missed). Writebacks no private level absorbs are appended to
    /// `writebacks`, tagged `op_idx`, in the exact order the victim
    /// buffer drains them — all before the op's fill would reach the
    /// shared level.
    ///
    /// The caller (the multicore interference engine) resolves the
    /// request stream against the shared cache and composes the final
    /// [`OpTiming`].
    pub fn access_upper_detailed(
        &mut self,
        pid: ProcessId,
        kind: AccessKind,
        addr: Addr,
        op_idx: u32,
        writebacks: &mut Vec<Writeback>,
    ) -> UpperOutcome {
        if kind == AccessKind::Flush {
            // Drain the private copies; dirty data bypasses the shared
            // level (clflush writes to memory — the shared-level copy
            // is drained separately, by the coherence layer).
            let line = self.l1d.geometry().line_of(addr);
            let inv = self.invalidate_line(pid, line);
            return UpperOutcome {
                cycles: self.l1_hit,
                miss_mask: 0,
                fill: None,
                mem_writebacks: inv.dirty.min(u8::MAX as u32) as u8,
            };
        }
        let write = kind == AccessKind::Write;
        let l1 = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
            AccessKind::Flush => unreachable!(),
        };
        let line = l1.geometry().line_of(addr);
        let mut out =
            UpperOutcome { cycles: self.l1_hit, miss_mask: 0, fill: None, mem_writebacks: 0 };
        let res = l1.access_rw(pid, line, write);
        if let AccessOutcome::Miss { evicted: Some(ev), .. } = res {
            if ev.dirty {
                self.cascade_writeback_upper(0, ev.owner, ev.line, op_idx, writebacks);
            }
        }
        if res.is_hit() {
            return out;
        }
        out.miss_mask |= 1;
        for k in 0..self.levels.len() {
            out.cycles += self.levels[k].hit_cycles;
            let res = self.levels[k].cache.access(pid, line);
            if let AccessOutcome::Miss { evicted: Some(ev), .. } = res {
                if ev.dirty {
                    self.cascade_writeback_upper(k + 1, ev.owner, ev.line, op_idx, writebacks);
                }
            }
            if res.is_hit() {
                return out;
            }
            out.miss_mask |= 1 << (k + 1);
        }
        out.fill = Some(line);
        out
    }

    /// Delivers a writeback down the *private* stack from level
    /// `start`; if no private level absorbs it, exports it (bound for
    /// the shared level) instead of sending it to memory.
    fn cascade_writeback_upper(
        &mut self,
        start: usize,
        owner: ProcessId,
        line: LineAddr,
        op_idx: u32,
        sink: &mut Vec<Writeback>,
    ) {
        for k in start..self.levels.len() {
            if self.levels[k].cache.receive_writeback(owner, line) {
                return;
            }
        }
        sink.push(Writeback { line, owner, op_idx });
    }

    /// [`access_batch_timed`](Self::access_batch_timed) for a core
    /// whose last unified level is a [`SharedLlc`]: executes the whole
    /// segment through the private levels and exports the shared-level
    /// request stream into `llc` (cleared and refilled) instead of
    /// charging the memory penalty. `events[i]` carries op `i`'s
    /// private-level cycles and miss bits; the shared level's bit,
    /// latency and memory traffic are composed by the engine that
    /// resolves `llc` against the shared cache.
    ///
    /// Private-level outcomes are a pure function of this core's own
    /// trace — no shared state is touched — which is what lets the
    /// multicore batch engine pre-execute every core's private walk
    /// and still replay the shared level in exact global op order.
    pub fn access_batch_upper_timed(
        &mut self,
        pid: ProcessId,
        ops: &[TraceOp],
        events: &mut Vec<OpTiming>,
        llc: &mut LlcRequests,
    ) -> HierarchyBatchOutcome {
        let mut out = HierarchyBatchOutcome {
            ops: ops.len() as u64,
            unified: Vec::with_capacity(self.levels.len()),
            ..HierarchyBatchOutcome::default()
        };
        events.clear();
        events.resize(ops.len(), OpTiming { cycles: self.l1_hit, miss_mask: 0, mem_writebacks: 0 });
        out.cycles =
            self.batch_walk_events_export(pid, ops, Some(&mut out), Some(events), Some(llc));
        out
    }

    /// Recomputes the cached write-back flag (selects the event-
    /// conduit walks that thread writebacks between levels). Policies
    /// only change through [`set_write_policy`](Self::set_write_policy)
    /// or construction, so the flag cannot go stale.
    fn refresh_has_writeback(&mut self) {
        self.has_writeback = self.l1d.write_policy() == WritePolicy::WriteBack
            || self.levels.iter().any(|l| l.cache.write_policy() == WritePolicy::WriteBack);
    }

    /// Executes a whole trace segment on behalf of `pid`, returning
    /// per-level aggregates and the exact cycle total.
    ///
    /// Outcomes — hits, misses, evictions, RNG draws, final contents,
    /// statistics and cycles — are identical to issuing each op through
    /// [`access`](Self::access) in order; only the bookkeeping is
    /// batched. The L1s are driven in maximal same-port runs; each
    /// level's misses (in op order) form the next level's access
    /// stream, so lower-level fills amortize across the segment
    /// instead of paying a per-op call chain.
    ///
    /// # Examples
    ///
    /// ```
    /// use tscache_core::addr::Addr;
    /// use tscache_core::hierarchy::TraceOp;
    /// use tscache_core::seed::ProcessId;
    /// use tscache_core::setup::SetupKind;
    ///
    /// let mut h = SetupKind::Deterministic.build(1);
    /// let ops = [TraceOp::read(Addr::new(0x1000)), TraceOp::read(Addr::new(0x1000))];
    /// let out = h.access_batch(ProcessId::new(1), &ops);
    /// assert_eq!(out.cycles, 91 + 1); // cold miss then warm hit
    /// assert_eq!(out.l1d.hits, 1);
    /// assert_eq!(out.unified[0].misses, 1);
    /// ```
    pub fn access_batch(&mut self, pid: ProcessId, ops: &[TraceOp]) -> HierarchyBatchOutcome {
        let mut out = HierarchyBatchOutcome {
            ops: ops.len() as u64,
            unified: Vec::with_capacity(self.levels.len()),
            ..HierarchyBatchOutcome::default()
        };
        out.cycles = self.batch_walk(pid, ops, Some(&mut out));
        out
    }

    /// [`access_batch`](Self::access_batch) without the per-level
    /// outcome report: returns only the cycle total. The allocation-
    /// free variant the simulator hot path (`Machine::run_trace`)
    /// calls once per trace segment; cache state, statistics and the
    /// returned cycles are identical to `access_batch`.
    pub fn access_batch_cycles(&mut self, pid: ProcessId, ops: &[TraceOp]) -> u64 {
        self.batch_walk(pid, ops, None)
    }

    /// [`access_batch`](Self::access_batch) plus a per-op
    /// [`OpTiming`] event vector (cleared and refilled): the batch-side
    /// twin of [`access_detailed`](Self::access_detailed), pinned
    /// bit-identical to a scalar walk by the multi-core differential
    /// suite. `events[i]` describes `ops[i]`.
    pub fn access_batch_timed(
        &mut self,
        pid: ProcessId,
        ops: &[TraceOp],
        events: &mut Vec<OpTiming>,
    ) -> HierarchyBatchOutcome {
        let mut out = HierarchyBatchOutcome {
            ops: ops.len() as u64,
            unified: Vec::with_capacity(self.levels.len()),
            ..HierarchyBatchOutcome::default()
        };
        events.clear();
        events.resize(ops.len(), OpTiming { cycles: self.l1_hit, miss_mask: 0, mem_writebacks: 0 });
        out.cycles = self.batch_walk_events(pid, ops, Some(&mut out), Some(events));
        out
    }

    /// The shared batch engine; fills `sink`'s per-level aggregates
    /// when given one, and returns the batch's cycle total. Write-back
    /// configurations route through the event-conduit walk so dirty
    /// evictions thread between levels exactly as the scalar walk
    /// delivers them.
    fn batch_walk(
        &mut self,
        pid: ProcessId,
        ops: &[TraceOp],
        sink: Option<&mut HierarchyBatchOutcome>,
    ) -> u64 {
        // Flush ops invalidate at *every* level in op order, which the
        // fast walk's deferred lower-level streams cannot express; the
        // event-conduit walk threads them like writebacks. The scan is
        // one predictable compare per op — noise next to the walk.
        if self.has_writeback || ops.iter().any(|op| op.kind == AccessKind::Flush) {
            self.batch_walk_events(pid, ops, sink, None)
        } else {
            self.batch_walk_fast(pid, ops, sink)
        }
    }

    /// The allocation-free fast walk for write-through configurations
    /// (no writebacks can occur, so the conduit carries lines only).
    fn batch_walk_fast(
        &mut self,
        pid: ProcessId,
        ops: &[TraceOp],
        mut sink: Option<&mut HierarchyBatchOutcome>,
    ) -> u64 {
        let mut lines = core::mem::take(&mut self.scratch_lines);
        let mut cur = core::mem::take(&mut self.scratch_cur);
        let mut next = core::mem::take(&mut self.scratch_next);
        cur.clear();

        let mut cycles = ops.len() as u64 * self.l1_hit as u64;

        // Phase 1: the split L1s, in maximal same-port runs. Misses
        // spill into `cur` in op order — the exact stream the scalar
        // path would have sent down.
        let offset_bits = self.l1i.geometry().offset_bits();
        let mut i = 0usize;
        while i < ops.len() {
            let fetch = ops[i].kind == AccessKind::Fetch;
            let mut j = i + 1;
            while j < ops.len() && (ops[j].kind == AccessKind::Fetch) == fetch {
                j += 1;
            }
            lines.clear();
            lines.extend(ops[i..j].iter().map(|op| op.addr.line(offset_bits)));
            let agg = if fetch {
                self.l1i.access_batch_collect(pid, &lines, &mut cur)
            } else {
                self.l1d.access_batch_collect(pid, &lines, &mut cur)
            };
            if let Some(out) = sink.as_deref_mut() {
                if fetch {
                    out.l1i += agg;
                } else {
                    out.l1d += agg;
                }
            }
            i = j;
        }

        // Phase 2: thread the miss stream through the unified levels.
        for level in &mut self.levels {
            cycles += cur.len() as u64 * level.hit_cycles as u64;
            next.clear();
            let agg = level.cache.access_batch_collect(pid, &cur, &mut next);
            if let Some(out) = sink.as_deref_mut() {
                out.unified.push(agg);
            }
            core::mem::swap(&mut cur, &mut next);
        }
        cycles += cur.len() as u64 * self.memory as u64;

        self.scratch_lines = lines;
        self.scratch_cur = cur;
        self.scratch_next = next;
        cycles
    }

    /// The event-conduit walk: like the fast walk, but each level's
    /// input is a merged stream of *fills* (the upper level's misses)
    /// and *writebacks* (dirty evictions from the levels above),
    /// processed in op order with a writeback of op `i` delivered
    /// before op `i`'s fill — the exact order the scalar walk's victim
    /// buffer drains. Optionally fills a per-op [`OpTiming`] vector
    /// (pre-sized by the caller to `ops.len()`, cycles initialized to
    /// the L1 hit cost).
    fn batch_walk_events(
        &mut self,
        pid: ProcessId,
        ops: &[TraceOp],
        sink: Option<&mut HierarchyBatchOutcome>,
        timing: Option<&mut Vec<OpTiming>>,
    ) -> u64 {
        self.batch_walk_events_export(pid, ops, sink, timing, None)
    }

    /// [`batch_walk_events`](Self::batch_walk_events) with an optional
    /// shared-level export: when `llc` is given, the final conduit
    /// state (last-level misses and surviving writebacks) is exported
    /// as the shared-LLC request stream instead of being charged the
    /// memory penalty, and `sink.mem_writebacks` counts only the
    /// flush-forced drains (ordinary writebacks travel through the
    /// exported stream — the shared level decides their fate).
    fn batch_walk_events_export(
        &mut self,
        pid: ProcessId,
        ops: &[TraceOp],
        mut sink: Option<&mut HierarchyBatchOutcome>,
        mut timing: Option<&mut Vec<OpTiming>>,
        llc: Option<&mut LlcRequests>,
    ) -> u64 {
        assert!(ops.len() <= u32::MAX as usize, "trace segment too long for 32-bit op indices");
        let mut lines = core::mem::take(&mut self.scratch_lines);
        let mut writes = core::mem::take(&mut self.scratch_writes);
        let mut run_idx = core::mem::take(&mut self.scratch_run_idx);
        let mut cur = core::mem::take(&mut self.scratch_cur);
        let mut next = core::mem::take(&mut self.scratch_next);
        let mut cur_idx = core::mem::take(&mut self.scratch_cur_idx);
        let mut next_idx = core::mem::take(&mut self.scratch_next_idx);
        let mut wb_cur = core::mem::take(&mut self.scratch_wb_cur);
        let mut wb_next = core::mem::take(&mut self.scratch_wb_next);
        let mut flushes = core::mem::take(&mut self.scratch_flushes);
        cur.clear();
        cur_idx.clear();
        wb_cur.clear();
        flushes.clear();
        // Dirty copies drained by flush ops: forced to memory directly
        // (they bypass the conduit and, in export mode, the shared
        // level).
        let mut flush_mem = 0u64;

        let mut cycles = ops.len() as u64 * self.l1_hit as u64;

        // Phase 1: the split L1s in maximal same-port runs, spilling
        // misses (with op indices) and dirty-eviction writebacks in op
        // order. Flush ops are run boundaries: they invalidate both
        // L1s in place and queue a flush event for the lower levels.
        let offset_bits = self.l1i.geometry().offset_bits();
        let mut i = 0usize;
        while i < ops.len() {
            if ops[i].kind == AccessKind::Flush {
                let line = ops[i].addr.line(offset_bits);
                let dirty = (self.l1i.invalidate_line(pid, line).dirty as u32)
                    + self.l1d.invalidate_line(pid, line).dirty as u32;
                if dirty > 0 {
                    flush_mem += dirty as u64;
                    if let Some(events) = timing.as_deref_mut() {
                        events[i].mem_writebacks += dirty as u8;
                    }
                }
                flushes.push((i as u32, line));
                i += 1;
                continue;
            }
            let fetch = ops[i].kind == AccessKind::Fetch;
            let mut j = i + 1;
            while j < ops.len()
                && ops[j].kind != AccessKind::Flush
                && (ops[j].kind == AccessKind::Fetch) == fetch
            {
                j += 1;
            }
            lines.clear();
            lines.extend(ops[i..j].iter().map(|op| op.addr.line(offset_bits)));
            run_idx.clear();
            run_idx.extend(i as u32..j as u32);
            writes.clear();
            if !fetch {
                writes.extend(ops[i..j].iter().map(|op| op.kind == AccessKind::Write));
            }
            let cache = if fetch { &mut self.l1i } else { &mut self.l1d };
            let agg = cache.access_batch_io(
                pid,
                &lines,
                BatchIo {
                    writes: if fetch { None } else { Some(&writes) },
                    idx: Some(&run_idx),
                    misses: Some(&mut cur),
                    miss_idx: Some(&mut cur_idx),
                    writebacks: Some(&mut wb_cur),
                },
            );
            if let Some(out) = sink.as_deref_mut() {
                if fetch {
                    out.l1i += agg;
                } else {
                    out.l1d += agg;
                }
            }
            i = j;
        }
        if let Some(events) = timing.as_deref_mut() {
            for &i in &cur_idx {
                events[i as usize].miss_mask |= 1;
            }
        }

        // Phase 2: thread the merged fill + writeback stream through
        // the unified levels.
        for k in 0..self.levels.len() {
            let level = &mut self.levels[k];
            cycles += cur.len() as u64 * level.hit_cycles as u64;
            if let Some(events) = timing.as_deref_mut() {
                for &i in &cur_idx {
                    events[i as usize].cycles += level.hit_cycles;
                }
            }
            next.clear();
            next_idx.clear();
            wb_next.clear();
            let mut agg = BatchOutcome::default();
            let mut w = 0usize;
            let mut f = 0usize;
            let mut start = 0usize;
            while start < cur.len() || w < wb_cur.len() || f < flushes.len() {
                let wb_idx = wb_cur.get(w).map_or(u32::MAX, |wb| wb.op_idx);
                let fl_idx = flushes.get(f).map_or(u32::MAX, |&(idx, _)| idx);
                let fill_idx = cur_idx.get(start).copied().unwrap_or(u32::MAX);
                if w < wb_cur.len() && wb_idx <= fill_idx && wb_idx < fl_idx {
                    let wb = wb_cur[w];
                    if !level.cache.receive_writeback(wb.owner, wb.line) {
                        wb_next.push(wb);
                    }
                    w += 1;
                    continue;
                }
                if fl_idx < fill_idx {
                    // The flush applies at this level at its op
                    // position (a flush op never shares an op index
                    // with a fill or a writeback, so no tie rule is
                    // needed). A drained dirty copy is forced to
                    // memory, bypassing the conduit.
                    let (idx, line) = flushes[f];
                    let inv = level.cache.invalidate_line(pid, line);
                    if inv.dirty {
                        flush_mem += 1;
                        if let Some(events) = timing.as_deref_mut() {
                            events[idx as usize].mem_writebacks += 1;
                        }
                    }
                    f += 1;
                    continue;
                }
                // Maximal fill run strictly before the next writeback
                // or flush.
                let lim = wb_idx.min(fl_idx);
                let mut end = start;
                while end < cur.len() && cur_idx[end] < lim {
                    end += 1;
                }
                agg += level.cache.access_batch_io(
                    pid,
                    &cur[start..end],
                    BatchIo {
                        writes: None,
                        idx: Some(&cur_idx[start..end]),
                        misses: Some(&mut next),
                        miss_idx: Some(&mut next_idx),
                        writebacks: Some(&mut wb_next),
                    },
                );
                start = end;
            }
            if let Some(events) = timing.as_deref_mut() {
                for &i in &next_idx {
                    events[i as usize].miss_mask |= 1 << (k + 1);
                }
            }
            if let Some(out) = sink.as_deref_mut() {
                out.unified.push(agg);
            }
            core::mem::swap(&mut cur, &mut next);
            core::mem::swap(&mut cur_idx, &mut next_idx);
            core::mem::swap(&mut wb_cur, &mut wb_next);
        }
        if let Some(requests) = llc {
            // Shared-LLC mode: the conduit's final state *is* the
            // shared level's input — nothing reaches memory here
            // except the flush-forced drains, which bypass the shared
            // level by definition.
            requests.clear();
            requests.fills.extend_from_slice(&cur);
            requests.fill_idx.extend_from_slice(&cur_idx);
            requests.writebacks.extend_from_slice(&wb_cur);
            if let Some(out) = sink {
                out.mem_writebacks = flush_mem;
            }
        } else {
            cycles += cur.len() as u64 * self.memory as u64;
            if let Some(events) = timing {
                for &i in &cur_idx {
                    events[i as usize].cycles += self.memory;
                }
                for wb in &wb_cur {
                    events[wb.op_idx as usize].mem_writebacks += 1;
                }
            }
            if let Some(out) = sink {
                out.mem_writebacks = wb_cur.len() as u64 + flush_mem;
            }
        }

        self.scratch_flushes = flushes;
        self.scratch_lines = lines;
        self.scratch_writes = writes;
        self.scratch_run_idx = run_idx;
        self.scratch_cur = cur;
        self.scratch_next = next;
        self.scratch_cur_idx = cur_idx;
        self.scratch_next_idx = next_idx;
        self.scratch_wb_cur = wb_cur;
        self.scratch_wb_next = wb_next;
        cycles
    }

    /// Sets the write policy of every cache level (the L1I never sees
    /// stores, so its setting is inert but kept consistent).
    pub fn set_write_policy(&mut self, policy: WritePolicy) {
        self.l1i.set_write_policy(policy);
        self.l1d.set_write_policy(policy);
        for level in &mut self.levels {
            level.cache.set_write_policy(policy);
        }
        self.refresh_has_writeback();
    }

    /// Sets the placement seed of `pid` in every cache, deriving a
    /// decorrelated sub-seed per level.
    pub fn set_process_seed(&mut self, pid: ProcessId, seed: Seed) {
        self.l1i.set_seed(pid, seed.derive(1));
        self.l1d.set_seed(pid, seed.derive(2));
        for (k, level) in self.levels.iter_mut().enumerate() {
            level.cache.set_seed(pid, seed.derive(3 + k as u64));
        }
    }

    /// Arms the TTL / normalization knobs of `defense` on every level
    /// (both L1s and the unified levels). Seed rotation acts on the
    /// shared level — apply it via [`SharedLlc::apply_defense`] — and
    /// [`DefenseKind::RandomSafe`] is a *configuration*: build the
    /// platform with [`DefenseKind::effective_setup`] instead of
    /// toggling a knob here.
    pub fn apply_defense(&mut self, defense: DefenseKind) {
        for cache in [&mut self.l1i, &mut self.l1d]
            .into_iter()
            .chain(self.levels.iter_mut().map(|l| &mut l.cache))
        {
            cache.set_ttl(defense.ttl());
            cache.set_normalize(defense.normalize());
        }
    }

    /// Confines `pid` to fill ways `lo..hi` in both L1 caches (strict
    /// way partitioning, the §7 alternative; the shared lower levels
    /// are left unpartitioned as partitioning them is what cripples
    /// data sharing).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the L1 associativity.
    pub fn set_l1_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        self.l1i.set_way_partition(pid, lo, hi);
        self.l1d.set_way_partition(pid, lo, hi);
    }

    /// Confines `pid` to fill ways `lo..hi` at *every* level — the
    /// fully partitioned configuration whose no-cross-process-eviction
    /// guarantee the property suite checks.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds any level's
    /// associativity.
    pub fn set_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        self.l1i.set_way_partition(pid, lo, hi);
        self.l1d.set_way_partition(pid, lo, hi);
        for level in &mut self.levels {
            level.cache.set_way_partition(pid, lo, hi);
        }
    }

    /// Marks `size` bytes at `start` as protected data (RPCache P-bit,
    /// e.g. over the AES tables) in the data-side caches of every
    /// level.
    pub fn add_protected_range(&mut self, start: Addr, size: u64) {
        let bits = self.l1d.geometry().offset_bits();
        let first = start.line(bits);
        let last = start.offset(size.saturating_sub(1)).line(bits).offset(1);
        self.l1d.add_protected_range(first, last);
        for level in &mut self.levels {
            level.cache.add_protected_range(first, last);
        }
    }

    /// Marks `size` bytes at `start` as coherence-tracked in every
    /// level (both L1s and the unified levels): fills of the range
    /// carry per-line MSI state, and the platform's invalidation
    /// protocol may drain copies via
    /// [`invalidate_line`](Self::invalidate_line).
    pub fn add_coherent_range(&mut self, start: Addr, size: u64) {
        let bits = self.l1d.geometry().offset_bits();
        let first = start.line(bits);
        let last = start.offset(size.saturating_sub(1)).line(bits).offset(1);
        self.l1i.add_coherent_range(first, last);
        self.l1d.add_coherent_range(first, last);
        for level in &mut self.levels {
            level.cache.add_coherent_range(first, last);
        }
    }

    /// Invalidates `pid`'s copies of `line` in every level (both L1s
    /// and the unified levels) — the receiving side of a coherence
    /// action (remote upgrade, flush broadcast, or shared-level
    /// back-invalidation). Returns how many copies were dropped and
    /// how many of them were dirty (their data is forced out to
    /// memory; the caller accounts the resulting bus writes).
    pub fn invalidate_line(&mut self, pid: ProcessId, line: LineAddr) -> HierarchyInvalidation {
        let mut out = HierarchyInvalidation::default();
        let mut absorb = |c: crate::cache::InvalidatedCopy| {
            out.copies += c.present as u32;
            out.dirty += c.dirty as u32;
        };
        absorb(self.l1i.invalidate_line(pid, line));
        absorb(self.l1d.invalidate_line(pid, line));
        for level in &mut self.levels {
            absorb(level.cache.invalidate_line(pid, line));
        }
        out
    }

    /// Flushes every cache.
    pub fn flush_all(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        for level in &mut self.levels {
            level.cache.flush();
        }
    }

    /// Flushes all lines of `pid` in every cache.
    pub fn flush_process(&mut self, pid: ProcessId) {
        self.l1i.flush_process(pid);
        self.l1d.flush_process(pid);
        for level in &mut self.levels {
            level.cache.flush_process(pid);
        }
    }

    /// The instruction L1.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data L1.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2 (the first level below the L1s).
    pub fn l2(&self) -> &Cache {
        &self.levels[0].cache
    }

    /// The unified L3, when the hierarchy has one.
    pub fn l3(&self) -> Option<&Cache> {
        self.levels.get(1).map(|l| &l.cache)
    }

    /// The unified levels in lookup order (L2 first).
    pub fn unified_levels(&self) -> impl Iterator<Item = &Cache> {
        self.levels.iter().map(|l| &l.cache)
    }

    /// Summed statistics of all levels.
    pub fn total_stats(&self) -> CacheStats {
        let mut total = *self.l1i.stats() + *self.l1d.stats();
        for level in &self.levels {
            total += *level.cache.stats();
        }
        total
    }

    /// Clears statistics on all levels.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        for level in &mut self.levels {
            level.cache.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::with_policies(
            PlacementKind::Modulo,
            ReplacementKind::Lru,
            PlacementKind::Modulo,
            ReplacementKind::Lru,
            99,
        )
    }

    fn three_level() -> Hierarchy {
        use crate::setup::{HierarchyDepth, SetupKind};
        SetupKind::Deterministic.build_depth(HierarchyDepth::ThreeLevel, 99)
    }

    fn pid() -> ProcessId {
        ProcessId::new(1)
    }

    #[test]
    fn latency_ladder() {
        let mut h = hierarchy();
        let a = Addr::new(0x4_0000);
        // Cold: L1 miss + L2 miss.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10 + 80);
        // Warm: L1 hit.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1);
    }

    #[test]
    fn three_level_latency_ladder() {
        let mut h = three_level();
        assert_eq!(h.depth(), 3);
        let a = Addr::new(0x4_0000);
        // Cold: miss everywhere.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10 + 30 + 80);
        // Warm: L1 hit.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1);
        // Evict from L1D (128-set, 4-way) and L2 (2048-set, 4-way):
        // the line must still sit in the 8192-set L3.
        for i in 1..=4u64 {
            h.access(pid(), AccessKind::Read, Addr::new(0x4_0000 + i * 128 * 32));
        }
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10, "L2 still warm");
        for i in 1..=4u64 {
            h.access(pid(), AccessKind::Read, Addr::new(0x4_0000 + i * 2048 * 32));
        }
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10 + 30, "L3 catch");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        let a = Addr::new(0);
        h.access(pid(), AccessKind::Read, a);
        // Evict `a` from L1D (128-set, 4-way): four conflicting lines.
        for i in 1..=4u64 {
            h.access(pid(), AccessKind::Read, Addr::new(i * 128 * 32));
        }
        // `a` is gone from L1 but still in the 2048-set L2.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10);
    }

    #[test]
    fn fetch_and_read_use_separate_l1s() {
        let mut h = hierarchy();
        let a = Addr::new(0x1000);
        h.access(pid(), AccessKind::Fetch, a);
        // A read of the same address must still miss L1D (though it
        // hits L2, warmed by the fetch).
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10);
        assert_eq!(h.l1i().stats().misses(), 1);
        assert_eq!(h.l1d().stats().misses(), 1);
    }

    #[test]
    fn write_goes_through_l1d() {
        let mut h = hierarchy();
        let a = Addr::new(0x2000);
        h.access(pid(), AccessKind::Write, a);
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1);
    }

    #[test]
    fn flush_all_cools_everything() {
        let mut h = hierarchy();
        let a = Addr::new(0x3000);
        h.access(pid(), AccessKind::Read, a);
        h.flush_all();
        assert_eq!(h.access(pid(), AccessKind::Read, a), 91);
    }

    #[test]
    fn per_level_seeds_are_distinct() {
        let mut h = Hierarchy::with_policies(
            PlacementKind::RandomModulo,
            ReplacementKind::Random,
            PlacementKind::HashRp,
            ReplacementKind::Random,
            1,
        );
        h.set_process_seed(pid(), Seed::new(5));
        let s1 = h.l1i().seed(pid());
        let s2 = h.l1d().seed(pid());
        let s3 = h.l2().seed(pid());
        assert_ne!(s1, s2);
        assert_ne!(s2, s3);
        assert_ne!(s1, s3);
    }

    #[test]
    fn l3_seed_distinct_too() {
        let mut h = three_level();
        h.set_process_seed(pid(), Seed::new(5));
        let s3 = h.l2().seed(pid());
        let s4 = h.l3().expect("three levels").seed(pid());
        assert_ne!(s3, s4);
    }

    #[test]
    fn total_stats_sums_levels() {
        let mut h = hierarchy();
        h.access(pid(), AccessKind::Read, Addr::new(0));
        h.access(pid(), AccessKind::Fetch, Addr::new(0x100));
        // 2 L1 misses (one per L1) + 2 L2 misses.
        assert_eq!(h.total_stats().misses(), 4);
        h.reset_stats();
        assert_eq!(h.total_stats().accesses(), 0);
    }

    #[test]
    fn batch_matches_scalar_walk() {
        let ops: Vec<TraceOp> = (0..900u64)
            .map(|i| {
                let addr = Addr::new((i * 1117) % (1 << 18));
                match i % 3 {
                    0 => TraceOp::read(addr),
                    1 => TraceOp::write(addr),
                    _ => TraceOp::fetch(addr),
                }
            })
            .collect();
        for build in [|| hierarchy(), || three_level()] {
            let mut scalar = build();
            let mut batched = build();
            let mut cycles = 0u64;
            for op in &ops {
                cycles += scalar.access(pid(), op.kind, op.addr) as u64;
            }
            let out = batched.access_batch(pid(), &ops);
            assert_eq!(out.cycles, cycles);
            assert_eq!(out.ops, ops.len() as u64);
            assert_eq!(batched.total_stats(), scalar.total_stats());
            assert_eq!(out.l1i.accesses() + out.l1d.accesses(), ops.len() as u64);
            assert_eq!(out.unified[0].accesses(), out.l1i.misses + out.l1d.misses);
        }
    }

    #[test]
    fn cycles_only_batch_matches_full_outcome() {
        let ops: Vec<TraceOp> =
            (0..500u64).map(|i| TraceOp::read(Addr::new((i * 607) % (1 << 16)))).collect();
        let mut full = three_level();
        let mut cycles_only = three_level();
        let out = full.access_batch(pid(), &ops);
        let cycles = cycles_only.access_batch_cycles(pid(), &ops);
        assert_eq!(cycles, out.cycles);
        assert_eq!(full.total_stats(), cycles_only.total_stats());
    }

    #[test]
    fn batch_outcome_memory_accesses() {
        let mut h = hierarchy();
        let ops = [TraceOp::read(Addr::new(0)), TraceOp::read(Addr::new(0))];
        let out = h.access_batch(pid(), &ops);
        assert_eq!(out.memory_accesses(), 1);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut h = three_level();
        let out = h.access_batch(pid(), &[]);
        assert_eq!(out.cycles, 0);
        assert_eq!(out.ops, 0);
        assert_eq!(out.unified.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one unified level")]
    fn from_parts_rejects_empty_stack() {
        let l1 = CacheGeometry::paper_l1();
        let mk =
            |label: &str| Cache::new(label, l1, PlacementKind::Modulo, ReplacementKind::Lru, 1);
        Hierarchy::from_parts(mk("L1I"), mk("L1D"), Vec::new(), 1, 80);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn from_parts_rejects_mixed_line_sizes() {
        let l1 = CacheGeometry::paper_l1();
        let odd = CacheGeometry::new(2048, 4, 64).unwrap();
        let mk =
            |label: &str| Cache::new(label, l1, PlacementKind::Modulo, ReplacementKind::Lru, 1);
        let l2 = Cache::new("L2", odd, PlacementKind::Modulo, ReplacementKind::Lru, 1);
        Hierarchy::from_parts(mk("L1I"), mk("L1D"), vec![(l2, 10)], 1, 80);
    }

    #[test]
    fn hierarchy_wide_partition_applies_everywhere() {
        let mut h = three_level();
        h.set_way_partition(pid(), 0, 2);
        h.set_way_partition(ProcessId::new(2), 2, 4);
        for i in 0..4096u64 {
            h.access(pid(), AccessKind::Read, Addr::new(i * 32));
            h.access(ProcessId::new(2), AccessKind::Read, Addr::new((1 << 22) + i * 32));
        }
        for cache in [h.l1d(), h.l2(), h.l3().unwrap()] {
            assert_eq!(cache.stats().cross_process_evictions(), 0, "{}", cache.label());
            for (_, way, _, owner) in cache.contents() {
                match owner.as_u16() {
                    1 => assert!(way < 2, "{}", cache.label()),
                    2 => assert!(way >= 2, "{}", cache.label()),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn writeback_cascades_down_the_stack() {
        let mut h = hierarchy();
        h.set_write_policy(WritePolicy::WriteBack);
        let a = Addr::new(0);
        h.access(pid(), AccessKind::Write, a);
        assert_eq!(h.l1d().dirty_lines(), 1);
        // Evict `a` from L1D (128-set, 4-way): its writeback must be
        // absorbed by the L2 copy, which turns dirty.
        for i in 1..=4u64 {
            h.access(pid(), AccessKind::Read, Addr::new(i * 128 * 32));
        }
        assert_eq!(h.l1d().stats().writebacks(), 1);
        assert_eq!(h.l2().dirty_lines(), 1);
        assert_eq!(h.l1d().dirty_lines(), 0);
    }

    #[test]
    fn writeback_reaches_memory_when_no_level_holds_the_line() {
        let mut h = hierarchy();
        h.set_write_policy(WritePolicy::WriteBack);
        h.access(pid(), AccessKind::Write, Addr::new(0));
        let hit = h.access_detailed(pid(), AccessKind::Write, Addr::new(0));
        assert_eq!(hit.mem_writebacks, 0, "write hit emits nothing");
        // Thrash set 0 of both levels (addresses i·64 KiB alias set 0
        // in the 128-set L1D and the 2048-set L2): the dirty line is
        // evicted from L1 (writeback absorbed by the L2 copy, which
        // turns dirty), then the dirty L2 copy is evicted — that
        // writeback finds no lower level and must reach memory.
        let mut reached_memory = 0u64;
        for i in 1..=16u64 {
            reached_memory += h
                .access_detailed(pid(), AccessKind::Read, Addr::new(i * 2048 * 32))
                .mem_writebacks as u64;
        }
        assert_eq!(h.l1d().stats().writebacks(), 1, "one dirty L1 eviction");
        // The dirty line counts once per level it cascades through.
        assert_eq!(h.l2().stats().writebacks(), 1, "one dirty L2 eviction");
        assert_eq!(reached_memory, 1, "exactly one writeback hit the bus");
        assert_eq!(h.l2().dirty_lines(), 0);
    }

    #[test]
    fn timed_batch_matches_detailed_scalar_walk() {
        let ops: Vec<TraceOp> = (0..900u64)
            .map(|i| {
                let addr = Addr::new((i * 1117) % (1 << 18));
                match i % 3 {
                    0 => TraceOp::read(addr),
                    1 => TraceOp::write(addr),
                    _ => TraceOp::fetch(addr),
                }
            })
            .collect();
        for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
            for build in [|| hierarchy(), || three_level()] {
                let mut scalar = build();
                let mut batched = build();
                scalar.set_write_policy(policy);
                batched.set_write_policy(policy);
                let expected: Vec<OpTiming> =
                    ops.iter().map(|op| scalar.access_detailed(pid(), op.kind, op.addr)).collect();
                let mut events = Vec::new();
                let out = batched.access_batch_timed(pid(), &ops, &mut events);
                assert_eq!(events, expected, "{policy:?}: per-op timing diverges");
                assert_eq!(
                    out.cycles,
                    expected.iter().map(|e| e.cycles as u64).sum::<u64>(),
                    "{policy:?}"
                );
                assert_eq!(
                    out.mem_writebacks,
                    expected.iter().map(|e| e.mem_writebacks as u64).sum::<u64>(),
                    "{policy:?}"
                );
                assert_eq!(batched.total_stats(), scalar.total_stats(), "{policy:?}");
            }
        }
    }

    #[test]
    fn op_timing_memory_read_uses_depth() {
        let mut h = three_level();
        let t = h.access_detailed(pid(), AccessKind::Read, Addr::new(0x4_0000));
        assert_eq!(t.miss_mask, 0b111, "cold miss at every level");
        assert!(t.memory_read(3));
        let t = h.access_detailed(pid(), AccessKind::Read, Addr::new(0x4_0000));
        assert_eq!(t.miss_mask, 0, "warm hit");
        assert!(!t.memory_read(3));
    }

    /// A small private hierarchy for the shared-LLC walks: split L1s
    /// plus `private_unified` unified levels (0 = L1-only).
    fn private_hierarchy(private_unified: usize, policy: WritePolicy) -> Hierarchy {
        let l1 = CacheGeometry::new(8, 2, 32).unwrap();
        let l2 = CacheGeometry::new(32, 4, 32).unwrap();
        let mk = |label: &str, geom, salt| {
            Cache::new(label, geom, PlacementKind::RandomModulo, ReplacementKind::Random, salt)
        };
        let unified =
            (0..private_unified).map(|k| (mk("L2", l2, 0x33 + k as u64), 10)).collect::<Vec<_>>();
        let mut h =
            Hierarchy::from_private_parts(mk("L1I", l1, 0x11), mk("L1D", l1, 0x22), unified, 1, 80);
        h.set_process_seed(pid(), Seed::new(0x5eed));
        h.set_write_policy(policy);
        h
    }

    #[test]
    fn l1_only_private_hierarchy_is_allowed() {
        let h = private_hierarchy(0, WritePolicy::WriteThrough);
        assert_eq!(h.depth(), 1);
        assert_eq!(h.unified_levels().count(), 0);
    }

    #[test]
    fn upper_batch_matches_upper_scalar_walk() {
        let ops = TraceOp::mixed_trace(0xabc, 900, 1 << 14);
        for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
            for private_unified in [0usize, 1] {
                let label = format!("{policy:?}/{private_unified} private unified");
                let mut scalar = private_hierarchy(private_unified, policy);
                let mut batched = private_hierarchy(private_unified, policy);
                let mut scalar_llc = LlcRequests::default();
                let mut scalar_events = Vec::new();
                for (i, op) in ops.iter().enumerate() {
                    let up = scalar.access_upper_detailed(
                        pid(),
                        op.kind,
                        op.addr,
                        i as u32,
                        &mut scalar_llc.writebacks,
                    );
                    scalar_events.push(OpTiming {
                        cycles: up.cycles,
                        miss_mask: up.miss_mask,
                        mem_writebacks: 0,
                    });
                    if let Some(line) = up.fill {
                        scalar_llc.fills.push(line);
                        scalar_llc.fill_idx.push(i as u32);
                    }
                }
                let mut events = Vec::new();
                let mut llc = LlcRequests::default();
                let out = batched.access_batch_upper_timed(pid(), &ops, &mut events, &mut llc);
                assert_eq!(events, scalar_events, "{label}: per-op events diverge");
                assert_eq!(llc, scalar_llc, "{label}: LLC request streams diverge");
                assert_eq!(batched.total_stats(), scalar.total_stats(), "{label}");
                assert_eq!(
                    out.cycles,
                    scalar_events.iter().map(|e| e.cycles as u64).sum::<u64>(),
                    "{label}"
                );
                assert_eq!(out.mem_writebacks, 0, "{label}: upper walk reached memory");
                // The request stream respects the delivery contract the
                // shared engine relies on.
                assert!(llc.fill_idx.windows(2).all(|w| w[0] < w[1]), "{label}");
                assert!(
                    llc.writebacks.windows(2).all(|w| w[0].op_idx <= w[1].op_idx),
                    "{label}: writebacks out of op order"
                );
                assert!(!llc.fills.is_empty(), "{label}: trace never reached the shared level");
            }
        }
    }

    #[test]
    fn shared_llc_fills_hits_and_writes_back() {
        let geom = CacheGeometry::new(8, 2, 32).unwrap();
        let mut llc = SharedLlc::new(
            Cache::new("SL2", geom, PlacementKind::Modulo, ReplacementKind::Lru, 1),
            10,
            80,
        );
        llc.set_write_policy(WritePolicy::WriteBack);
        let p = pid();
        assert_eq!(llc.hit_cycles(), 10);
        assert_eq!(llc.memory_cycles(), 80);
        let line = LineAddr::new(5);
        assert!(!llc.access(p, line).hit, "cold fill");
        assert!(llc.access(p, line).hit, "warm hit");
        // An absorbed writeback dirties the copy; evicting it later
        // must report a memory-bound writeback.
        assert!(llc.receive_writeback(p, line));
        assert_eq!(llc.cache().dirty_lines(), 1);
        let evictions =
            (1..=2u64).map(|i| llc.access(p, LineAddr::new(5 + 8 * i))).collect::<Vec<_>>();
        assert!(evictions.iter().any(|f| f.mem_writeback), "dirty victim never reached memory");
        // An absent line forwards the writeback to memory.
        assert!(!llc.receive_writeback(p, LineAddr::new(99)));
        llc.flush();
        assert_eq!(llc.cache().occupancy(), 0);
    }

    #[test]
    fn shared_llc_partitions_confine_fills_per_core() {
        let geom = CacheGeometry::new(8, 2, 32).unwrap();
        let mut llc = SharedLlc::new(
            Cache::new("SL2", geom, PlacementKind::Modulo, ReplacementKind::Lru, 1),
            10,
            80,
        );
        let (core0, core1) = (ProcessId::new(1), ProcessId::new(2));
        llc.set_way_partition(core0, 0, 1);
        llc.set_way_partition(core1, 1, 2);
        for i in 0..64u64 {
            llc.access(core0, LineAddr::new(i));
            llc.access(core1, LineAddr::new(1000 + i));
        }
        assert_eq!(llc.cache().stats().cross_process_evictions(), 0);
        for (_, way, _, owner) in llc.cache().contents() {
            match owner.as_u16() {
                1 => assert_eq!(way, 0),
                2 => assert_eq!(way, 1),
                _ => {}
            }
        }
    }

    /// A mixed trace sprinkled with flush ops over a reused segment,
    /// so flushes regularly hit resident (and, under write-back,
    /// dirty) lines.
    fn flushing_trace(salt: u64, len: usize) -> Vec<TraceOp> {
        let mut ops = TraceOp::mixed_trace(salt, len, 1 << 14);
        let mut state = salt | 1;
        for i in (0..ops.len()).step_by(11) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ops[i] = TraceOp::flush(Addr::new((state >> 20) % (1 << 14)));
        }
        ops
    }

    #[test]
    fn flush_ops_match_across_scalar_and_batch_walks() {
        for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
            for build in [|| hierarchy(), || three_level()] {
                let ops = flushing_trace(0xf1a5, 900);
                let mut scalar = build();
                let mut batched = build();
                scalar.set_write_policy(policy);
                batched.set_write_policy(policy);
                let expected: Vec<OpTiming> =
                    ops.iter().map(|op| scalar.access_detailed(pid(), op.kind, op.addr)).collect();
                let mut events = Vec::new();
                let out = batched.access_batch_timed(pid(), &ops, &mut events);
                assert_eq!(events, expected, "{policy:?}: per-op timing diverges on flush ops");
                assert_eq!(
                    out.cycles,
                    expected.iter().map(|e| e.cycles as u64).sum::<u64>(),
                    "{policy:?}"
                );
                assert_eq!(batched.total_stats(), scalar.total_stats(), "{policy:?}");
                let a: Vec<_> = scalar.l1d().contents().collect();
                let b: Vec<_> = batched.l1d().contents().collect();
                assert_eq!(a, b, "{policy:?}: L1D contents diverge");
                assert!(
                    scalar.l1d().stats().coh_invalidations() > 0,
                    "{policy:?}: no flush ever found a resident line — the trace is vacuous"
                );
                if policy == WritePolicy::WriteBack {
                    assert!(
                        out.mem_writebacks
                            >= expected.iter().map(|e| e.mem_writebacks as u64).sum::<u64>(),
                        "flush-forced drains unaccounted"
                    );
                }
                // The plain (untimed) batch walk routes through the
                // event conduit when flushes are present and must
                // agree too.
                let mut plain = build();
                plain.set_write_policy(policy);
                let plain_out = plain.access_batch(pid(), &ops);
                assert_eq!(plain_out.cycles, out.cycles, "{policy:?}: plain batch diverges");
                assert_eq!(plain.total_stats(), batched.total_stats(), "{policy:?}");
            }
        }
    }

    #[test]
    fn flush_ops_match_across_upper_walks() {
        let ops = flushing_trace(0xfee1, 800);
        for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
            for private_unified in [0usize, 1] {
                let label = format!("{policy:?}/{private_unified} private unified");
                let mut scalar = private_hierarchy(private_unified, policy);
                let mut batched = private_hierarchy(private_unified, policy);
                let mut scalar_llc = LlcRequests::default();
                let mut scalar_events = Vec::new();
                for (i, op) in ops.iter().enumerate() {
                    let up = scalar.access_upper_detailed(
                        pid(),
                        op.kind,
                        op.addr,
                        i as u32,
                        &mut scalar_llc.writebacks,
                    );
                    scalar_events.push(OpTiming {
                        cycles: up.cycles,
                        miss_mask: up.miss_mask,
                        mem_writebacks: up.mem_writebacks,
                    });
                    if let Some(line) = up.fill {
                        scalar_llc.fills.push(line);
                        scalar_llc.fill_idx.push(i as u32);
                    }
                }
                let mut events = Vec::new();
                let mut llc = LlcRequests::default();
                batched.access_batch_upper_timed(pid(), &ops, &mut events, &mut llc);
                assert_eq!(events, scalar_events, "{label}: per-op events diverge");
                assert_eq!(llc, scalar_llc, "{label}: LLC request streams diverge");
                assert_eq!(batched.total_stats(), scalar.total_stats(), "{label}");
                if policy == WritePolicy::WriteBack {
                    assert!(
                        scalar_events.iter().any(|e| e.mem_writebacks > 0),
                        "{label}: no flush ever drained a dirty private copy"
                    );
                }
            }
        }
    }

    #[test]
    fn coherent_range_tags_line_state() {
        use crate::cache::CohState;
        let mut h = hierarchy();
        h.set_write_policy(WritePolicy::WriteBack);
        h.add_coherent_range(Addr::new(0x2000), 1024);
        h.access(pid(), AccessKind::Read, Addr::new(0x2000));
        let line = LineAddr::new(0x2000 >> 5);
        assert_eq!(h.l1d.coherence_state(pid(), line), Some(CohState::Shared));
        h.access(pid(), AccessKind::Write, Addr::new(0x2000));
        assert_eq!(h.l1d.coherence_state(pid(), line), Some(CohState::Modified));
        let inv = h.invalidate_line(pid(), line);
        assert!(inv.copies >= 1 && inv.dirty >= 1);
        assert_eq!(h.l1d.coherence_state(pid(), line), None, "state I = absent");
        // Untracked lines carry no coherence state even when present.
        h.access(pid(), AccessKind::Read, Addr::new(0x8000));
        assert_eq!(h.l1d.coherence_state(pid(), LineAddr::new(0x8000 >> 5)), None);
    }

    #[test]
    fn protected_range_reaches_every_level() {
        let mut h = three_level();
        h.add_protected_range(Addr::new(0x2000), 1024);
        let line = 0x2000u64 >> 5;
        assert!(h.l1d().is_protected_addr(line));
        assert!(h.l2().is_protected_addr(line));
        assert!(h.l3().unwrap().is_protected_addr(line));
        assert!(!h.l1i().is_protected_addr(line), "instruction side unprotected");
    }
}
