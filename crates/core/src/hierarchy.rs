//! Multi-level memory hierarchy: split L1 (instruction + data) backed
//! by a unified L2, with configurable hit/miss latencies.

use crate::addr::Addr;
use crate::cache::Cache;
use crate::geometry::CacheGeometry;
use crate::placement::PlacementKind;
use crate::replacement::ReplacementKind;
use crate::seed::{ProcessId, Seed};
use crate::stats::CacheStats;
use core::fmt;

/// Access latencies in cycles, modelled after an ARM920T-class part
/// (paper §6.1.2): single-cycle L1 hits, a 10-cycle L2 penalty and an
/// 80-cycle memory penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Cycles for an L1 hit.
    pub l1_hit: u32,
    /// Additional cycles when the access hits in L2.
    pub l2_hit: u32,
    /// Additional cycles when the access goes to memory.
    pub memory: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies { l1_hit: 1, l2_hit: 10, memory: 80 }
    }
}

impl fmt::Display for Latencies {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L1 {}c / +L2 {}c / +mem {}c", self.l1_hit, self.l2_hit, self.memory)
    }
}

/// Which first-level cache an access goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data read (L1D).
    Read,
    /// Data write (L1D, write-allocate).
    Write,
}

/// A split-L1 + unified-L2 hierarchy.
///
/// # Examples
///
/// ```
/// use tscache_core::hierarchy::{AccessKind, Hierarchy};
/// use tscache_core::setup::SetupKind;
/// use tscache_core::seed::{ProcessId, Seed};
/// use tscache_core::addr::Addr;
///
/// let mut h = SetupKind::TsCache.build(1234);
/// let pid = ProcessId::new(1);
/// h.set_process_seed(pid, Seed::new(77));
/// let cold = h.access(pid, AccessKind::Read, Addr::new(0x8000));
/// let warm = h.access(pid, AccessKind::Read, Addr::new(0x8000));
/// assert!(cold > warm);
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    latencies: Latencies,
}

impl Hierarchy {
    /// Assembles a hierarchy from three caches and a latency model.
    ///
    /// The caches are taken in `(l1i, l1d, l2)` order.
    pub fn new(l1i: Cache, l1d: Cache, l2: Cache, latencies: Latencies) -> Self {
        Hierarchy { l1i, l1d, l2, latencies }
    }

    /// Builds the paper's geometry with uniform policies in the L1s and
    /// a (possibly different) policy in L2.
    pub fn with_policies(
        l1_placement: PlacementKind,
        l1_replacement: ReplacementKind,
        l2_placement: PlacementKind,
        l2_replacement: ReplacementKind,
        rng_seed: u64,
    ) -> Self {
        let l1 = CacheGeometry::paper_l1();
        let l2 = CacheGeometry::paper_l2();
        Hierarchy::new(
            Cache::new("L1I", l1, l1_placement, l1_replacement, rng_seed ^ 0x11),
            Cache::new("L1D", l1, l1_placement, l1_replacement, rng_seed ^ 0x22),
            Cache::new("L2", l2, l2_placement, l2_replacement, rng_seed ^ 0x33),
            Latencies::default(),
        )
    }

    /// The latency model.
    pub fn latencies(&self) -> Latencies {
        self.latencies
    }

    /// Replaces the latency model.
    pub fn set_latencies(&mut self, latencies: Latencies) {
        self.latencies = latencies;
    }

    /// Performs an access and returns its cost in cycles.
    pub fn access(&mut self, pid: ProcessId, kind: AccessKind, addr: Addr) -> u32 {
        let l1 = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
        };
        let line = l1.geometry().line_of(addr);
        if l1.access(pid, line).is_hit() {
            return self.latencies.l1_hit;
        }
        // L1 miss: consult the unified L2 (same line size here, so the
        // line address carries over).
        let l2_line = self.l2.geometry().line_of(addr);
        if self.l2.access(pid, l2_line).is_hit() {
            self.latencies.l1_hit + self.latencies.l2_hit
        } else {
            self.latencies.l1_hit + self.latencies.l2_hit + self.latencies.memory
        }
    }

    /// Sets the placement seed of `pid` in all three caches, deriving a
    /// decorrelated sub-seed per level.
    pub fn set_process_seed(&mut self, pid: ProcessId, seed: Seed) {
        self.l1i.set_seed(pid, seed.derive(1));
        self.l1d.set_seed(pid, seed.derive(2));
        self.l2.set_seed(pid, seed.derive(3));
    }

    /// Confines `pid` to fill ways `lo..hi` in both L1 caches (strict
    /// way partitioning, the §7 alternative; the shared L2 is left
    /// unpartitioned as partitioning it is what cripples data sharing).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the L1 associativity.
    pub fn set_l1_way_partition(&mut self, pid: ProcessId, lo: u32, hi: u32) {
        self.l1i.set_way_partition(pid, lo, hi);
        self.l1d.set_way_partition(pid, lo, hi);
    }

    /// Marks `size` bytes at `start` as protected data (RPCache P-bit,
    /// e.g. over the AES tables) in the data-side caches.
    pub fn add_protected_range(&mut self, start: Addr, size: u64) {
        let bits = self.l1d.geometry().offset_bits();
        let first = start.line(bits);
        let last = start.offset(size.saturating_sub(1)).line(bits).offset(1);
        self.l1d.add_protected_range(first, last);
        self.l2.add_protected_range(first, last);
    }

    /// Flushes all three caches.
    pub fn flush_all(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }

    /// Flushes all lines of `pid` in all three caches.
    pub fn flush_process(&mut self, pid: ProcessId) {
        self.l1i.flush_process(pid);
        self.l1d.flush_process(pid);
        self.l2.flush_process(pid);
    }

    /// The instruction L1.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data L1.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Summed statistics of all levels.
    pub fn total_stats(&self) -> CacheStats {
        *self.l1i.stats() + *self.l1d.stats() + *self.l2.stats()
    }

    /// Clears statistics on all levels.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::with_policies(
            PlacementKind::Modulo,
            ReplacementKind::Lru,
            PlacementKind::Modulo,
            ReplacementKind::Lru,
            99,
        )
    }

    fn pid() -> ProcessId {
        ProcessId::new(1)
    }

    #[test]
    fn latency_ladder() {
        let mut h = hierarchy();
        let a = Addr::new(0x4_0000);
        // Cold: L1 miss + L2 miss.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10 + 80);
        // Warm: L1 hit.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        let a = Addr::new(0);
        h.access(pid(), AccessKind::Read, a);
        // Evict `a` from L1D (128-set, 4-way): four conflicting lines.
        for i in 1..=4u64 {
            h.access(pid(), AccessKind::Read, Addr::new(i * 128 * 32));
        }
        // `a` is gone from L1 but still in the 2048-set L2.
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10);
    }

    #[test]
    fn fetch_and_read_use_separate_l1s() {
        let mut h = hierarchy();
        let a = Addr::new(0x1000);
        h.access(pid(), AccessKind::Fetch, a);
        // A read of the same address must still miss L1D (though it
        // hits L2, warmed by the fetch).
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1 + 10);
        assert_eq!(h.l1i().stats().misses(), 1);
        assert_eq!(h.l1d().stats().misses(), 1);
    }

    #[test]
    fn write_goes_through_l1d() {
        let mut h = hierarchy();
        let a = Addr::new(0x2000);
        h.access(pid(), AccessKind::Write, a);
        assert_eq!(h.access(pid(), AccessKind::Read, a), 1);
    }

    #[test]
    fn flush_all_cools_everything() {
        let mut h = hierarchy();
        let a = Addr::new(0x3000);
        h.access(pid(), AccessKind::Read, a);
        h.flush_all();
        assert_eq!(h.access(pid(), AccessKind::Read, a), 91);
    }

    #[test]
    fn per_level_seeds_are_distinct() {
        let mut h = Hierarchy::with_policies(
            PlacementKind::RandomModulo,
            ReplacementKind::Random,
            PlacementKind::HashRp,
            ReplacementKind::Random,
            1,
        );
        h.set_process_seed(pid(), Seed::new(5));
        let s1 = h.l1i().seed(pid());
        let s2 = h.l1d().seed(pid());
        let s3 = h.l2().seed(pid());
        assert_ne!(s1, s2);
        assert_ne!(s2, s3);
        assert_ne!(s1, s3);
    }

    #[test]
    fn total_stats_sums_levels() {
        let mut h = hierarchy();
        h.access(pid(), AccessKind::Read, Addr::new(0));
        h.access(pid(), AccessKind::Fetch, Addr::new(0x100));
        // 2 L1 misses (one per L1) + 2 L2 misses.
        assert_eq!(h.total_stats().misses(), 4);
        h.reset_stats();
        assert_eq!(h.total_stats().accesses(), 0);
    }
}
