//! Aciicmez-style XOR-index placement (US patent 8,055,848).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, Placement};
use crate::prng::mix64;
use crate::seed::Seed;

/// XOR-index placement: the set is the modulo index XORed with a
/// seed-derived constant.
///
/// The paper's §3 analysis: this *permutes* the set names but preserves
/// the conflict structure of modulo exactly — two lines with equal
/// index bits collide under **every** seed, and two lines with distinct
/// index bits **never** collide. Hence it breaks `mbpta-p2(2)` (conflict
/// randomization) and provides no time composability, even though each
/// individual address does move across seeds.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::{Placement, XorIndex};
/// use tscache_core::seed::Seed;
///
/// let mut p = XorIndex::new(&CacheGeometry::paper_l1());
/// let (a, b) = (LineAddr::new(0x005), LineAddr::new(0x085)); // same index bits
/// for s in 0..8 {
///     let seed = Seed::new(s);
///     assert_eq!(p.place(a, seed), p.place(b, seed)); // systematic conflict
/// }
/// ```
#[derive(Debug, Clone)]
pub struct XorIndex {
    index_bits: u32,
    sets: u32,
}

impl XorIndex {
    /// Creates XOR-index placement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        XorIndex { index_bits: geom.index_bits(), sets: geom.sets() }
    }
}

impl Placement for XorIndex {
    fn sets(&self) -> u32 {
        self.sets
    }

    #[inline]
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        let mask = (self.sets - 1) as u64;
        // The hardware XORs the index bits with a random number; we
        // derive that number from the seed with a mixer so nearby seeds
        // do not produce nearby offsets.
        let r = mix64(seed.as_u64()) & mask;
        ((line.index_bits(self.index_bits) ^ r) & mask) as u32
    }

    fn name(&self) -> &'static str {
        "xor-index"
    }

    fn mbpta_class(&self) -> MbptaClass {
        MbptaClass::AddressDependent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_across_seeds() {
        // Individual addresses do relocate with the seed…
        let mut p = XorIndex::new(&CacheGeometry::paper_l1());
        let line = LineAddr::new(0x42);
        let sets: std::collections::BTreeSet<u32> =
            (0..64).map(|s| p.place(line, Seed::new(s))).collect();
        assert!(sets.len() > 16, "address barely moves: {} sets", sets.len());
    }

    #[test]
    fn conflict_structure_is_seed_invariant() {
        // …but pairwise conflicts never change (the §3 flaw).
        let mut p = XorIndex::new(&CacheGeometry::paper_l1());
        let same_index = (LineAddr::new(0x010), LineAddr::new(0x090));
        let diff_index = (LineAddr::new(0x010), LineAddr::new(0x011));
        for s in 0..50u64 {
            let seed = Seed::new(s);
            assert_eq!(p.place(same_index.0, seed), p.place(same_index.1, seed));
            assert_ne!(p.place(diff_index.0, seed), p.place(diff_index.1, seed));
        }
    }

    #[test]
    fn stays_in_range() {
        let geom = CacheGeometry::paper_l2();
        let mut p = XorIndex::new(&geom);
        for i in 0..1000u64 {
            assert!(p.place(LineAddr::new(i * 37), Seed::new(i)) < geom.sets());
        }
    }
}
