//! Hash-based parametric random placement (HashRP, Kosmidis et al.
//! DATE'13).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, Placement};
use crate::prng::mix64;
use crate::seed::Seed;

/// HashRP: rotator blocks and XOR gates combine the tag+index bits with
/// a seed (paper Fig. 2a).
///
/// Structure of one placement:
///
/// 1. the line address is split into 16-bit blocks, each rotated by a
///    seed-selected amount and XOR-folded together with seed bits (the
///    rotate+XOR tree of Fig. 2a);
/// 2. a two-round seed-keyed Feistel stage scrambles the folded value;
/// 3. the 16-bit result is XOR-reduced to the index width.
///
/// Step 2 deserves a note: a *purely* linear rotate+XOR network maps a
/// single-bit address difference to a single-bit hash difference, so
/// two addresses differing in one bit could never collide under any
/// seed — violating the full-randomness property `mbpta-p2(2)` that
/// the hardware design is credited with. The keyed Feistel rounds (a
/// handful of XOR gates and a small S-box in hardware terms) restore
/// the property: pairwise conflicts become random and independent
/// across seeds, which is what the paper's analysis relies on.
///
/// HashRP places no constraint on page alignment, so it suits L2/L3
/// caches whose way size exceeds the page size (paper §4).
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::{HashRp, Placement};
/// use tscache_core::seed::Seed;
///
/// let mut p = HashRp::new(&CacheGeometry::paper_l2());
/// let a = LineAddr::new(0x12345);
/// // The same address relocates as the seed changes:
/// assert_ne!(p.place(a, Seed::new(1)), p.place(a, Seed::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct HashRp {
    index_bits: u32,
    sets: u32,
}

/// Number of 16-bit rotator blocks covering the line address.
const BLOCKS: u32 = 4;

impl HashRp {
    /// Creates HashRP placement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        HashRp { index_bits: geom.index_bits(), sets: geom.sets() }
    }

    /// The raw 16-bit hash before reduction to the index width.
    #[inline]
    fn hash16(&self, line: u64, raw_seed: u64) -> u16 {
        // The hardware consumes a PRNG-generated seed word; raw seeds
        // handed in by tests may be tiny integers, so expand first.
        let seed = mix64(raw_seed);
        let mut acc: u16 = 0;
        // Rotator blocks: each 16-bit slice of the line address is
        // rotated by an amount drawn from a different seed nibble, then
        // folded into the accumulator (Fig. 2a's rotate+XOR tree).
        for b in 0..BLOCKS {
            let block = ((line >> (16 * b)) & 0xffff) as u16;
            let rot = ((seed >> (4 * b)) & 0xf) as u32;
            acc ^= block.rotate_left(rot);
        }
        acc ^= ((seed >> 16) & 0xffff) as u16;
        // Keyed Feistel rounds (see type-level docs): left/right 8-bit
        // halves, round keys from the upper seed bits.
        let mut l = (acc >> 8) as u8;
        let mut r = (acc & 0xff) as u8;
        let k0 = ((seed >> 32) & 0xff) as u8;
        let k1 = ((seed >> 40) & 0xff) as u8;
        l ^= round(r, k0);
        r ^= round(l, k1);
        ((l as u16) << 8) | r as u16
    }
}

/// Feistel round function: an 8-bit keyed S-box built from the 64-bit
/// mixer.
#[inline]
fn round(x: u8, k: u8) -> u8 {
    (mix64(((x as u64) << 8) | k as u64) & 0xff) as u8
}

impl Placement for HashRp {
    fn sets(&self) -> u32 {
        self.sets
    }

    #[inline]
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        let h = self.hash16(line.as_u64(), seed.as_u64()) as u32;
        // Fold all 16 hash bits down to the index width.
        let mask = self.sets - 1;
        let folded = h ^ (h >> self.index_bits) ^ (h >> (2 * self.index_bits).min(31));
        folded & mask
    }

    fn name(&self) -> &'static str {
        "hash-rp"
    }

    fn mbpta_class(&self) -> MbptaClass {
        MbptaClass::FullRandom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn address_relocates_across_seeds() {
        // mbpta-p2(1): there exist seeds mapping A to different sets
        // and seeds mapping A to the same set.
        let mut p = HashRp::new(&CacheGeometry::paper_l1());
        let a = LineAddr::new(0xbeef);
        let placements: Vec<u32> = (0..200).map(|s| p.place(a, Seed::new(s))).collect();
        let distinct: BTreeSet<u32> = placements.iter().copied().collect();
        assert!(distinct.len() > 32, "too static: {} distinct sets", distinct.len());
        // With 200 draws over 128 sets, some pair of seeds must agree.
        assert!(distinct.len() < 200);
    }

    #[test]
    fn pairwise_conflicts_are_seed_dependent() {
        // mbpta-p2(2): for some seeds A and B collide, for others not —
        // including pairs with identical modulo index bits and pairs
        // differing in a single address bit.
        let mut p = HashRp::new(&CacheGeometry::paper_l1());
        let pairs = [
            (LineAddr::new(0x010), LineAddr::new(0x090)), // same modulo index
            (LineAddr::new(0x010), LineAddr::new(0x011)), // single-bit difference
            (LineAddr::new(0x1234), LineAddr::new(0x4321)),
        ];
        for (a, b) in pairs {
            let mut collide = 0;
            let mut split = 0;
            for s in 0..4000u64 {
                let seed = Seed::new(s);
                if p.place(a, seed) == p.place(b, seed) {
                    collide += 1;
                } else {
                    split += 1;
                }
            }
            assert!(collide > 0, "{a} vs {b}: never collide");
            assert!(split > 0, "{a} vs {b}: always collide");
        }
    }

    #[test]
    fn roughly_uniform_over_sets() {
        let geom = CacheGeometry::paper_l1();
        let mut p = HashRp::new(&geom);
        let mut counts = vec![0u32; geom.sets() as usize];
        let n = 128_000u64;
        for i in 0..n {
            counts[p.place(LineAddr::new(0x4000 + i % 128), Seed::new(i / 128)) as usize] += 1;
        }
        let expected = n as f64 / geom.sets() as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 127 dof; the 0.999 quantile is ~181. Allow ample slack.
        assert!(chi2 < 250.0, "chi2 = {chi2}");
    }

    #[test]
    fn l2_geometry_in_range() {
        let geom = CacheGeometry::paper_l2();
        let mut p = HashRp::new(&geom);
        for i in 0..10_000u64 {
            assert!(p.place(LineAddr::new(i * 131), Seed::new(i)) < geom.sets());
        }
    }

    #[test]
    fn zero_address_still_moves_with_seed() {
        let mut p = HashRp::new(&CacheGeometry::paper_l1());
        let distinct: BTreeSet<u32> =
            (0..50).map(|s| p.place(LineAddr::new(0), Seed::new(s))).collect();
        assert!(distinct.len() > 8);
    }

    #[test]
    fn collision_rate_near_ideal() {
        // Pair collision probability should be close to 1/sets, the
        // "random and independent" conflict behaviour of mbpta-p2.
        let geom = CacheGeometry::paper_l1();
        let mut p = HashRp::new(&geom);
        let (a, b) = (LineAddr::new(0x88), LineAddr::new(0x108));
        let n = 60_000u64;
        let collisions =
            (0..n).filter(|&s| p.place(a, Seed::new(s)) == p.place(b, Seed::new(s))).count();
        let rate = collisions as f64 / n as f64;
        let ideal = 1.0 / geom.sets() as f64;
        assert!((rate - ideal).abs() < ideal * 0.5, "rate {rate} vs ideal {ideal}");
    }
}
