//! Conventional modulo placement (the deterministic baseline).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, Placement};
use crate::seed::Seed;

/// Modulo placement: the set is the low index bits of the line address.
///
/// This is the time-deterministic baseline of the paper's evaluation
/// (§6.1.2 setup *(a)*): timing depends directly on memory layout, so
/// it is neither MBPTA-analysable across integrations nor robust
/// against contention side channels.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::{Modulo, Placement};
/// use tscache_core::seed::Seed;
///
/// let mut p = Modulo::new(&CacheGeometry::paper_l1());
/// // The seed is ignored: placement is a pure function of the address.
/// assert_eq!(p.place(LineAddr::new(0x81), Seed::new(1)), 1);
/// assert_eq!(p.place(LineAddr::new(0x81), Seed::new(2)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Modulo {
    index_bits: u32,
    sets: u32,
}

impl Modulo {
    /// Creates modulo placement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Modulo { index_bits: geom.index_bits(), sets: geom.sets() }
    }
}

impl Placement for Modulo {
    fn sets(&self) -> u32 {
        self.sets
    }

    #[inline]
    fn place(&mut self, line: LineAddr, _seed: Seed) -> u32 {
        line.index_bits(self.index_bits) as u32
    }

    fn name(&self) -> &'static str {
        "modulo"
    }

    fn mbpta_class(&self) -> MbptaClass {
        MbptaClass::Deterministic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_seed() {
        let mut p = Modulo::new(&CacheGeometry::paper_l1());
        let line = LineAddr::new(0xabcde);
        let s0 = p.place(line, Seed::new(0));
        for s in 1..100u64 {
            assert_eq!(p.place(line, Seed::new(s)), s0);
        }
    }

    #[test]
    fn consecutive_lines_round_robin_sets() {
        let mut p = Modulo::new(&CacheGeometry::paper_l1());
        for i in 0..256u64 {
            assert_eq!(p.place(LineAddr::new(i), Seed::ZERO), (i % 128) as u32);
        }
    }

    #[test]
    fn same_index_always_conflicts() {
        // The deterministic conflict structure exploited by contention
        // attacks: lines 0 and 128 share a set under every "seed".
        let mut p = Modulo::new(&CacheGeometry::paper_l1());
        for s in 0..20u64 {
            let seed = Seed::new(s);
            assert_eq!(p.place(LineAddr::new(0), seed), p.place(LineAddr::new(128), seed));
        }
    }
}
