//! Cache placement policies.
//!
//! A placement policy decides which cache set a line address maps to.
//! The paper contrasts five hardware designs:
//!
//! | Policy | Origin | MBPTA class | SCA robust? |
//! |---|---|---|---|
//! | [`Modulo`] | conventional caches | deterministic | no |
//! | [`XorIndex`] | Aciicmez (US 8,055,848) | address-dependent (§3) | partially |
//! | [`RpCachePerm`] | RPCache, Wang & Lee ISCA'07 | address-dependent (§3) | vs. cross-process contention |
//! | [`HashRp`] | Kosmidis et al. DATE'13 | full randomness (`mbpta-p2`) | with per-process seeds (§5) |
//! | [`RandomModulo`] | Hernandez et al. DAC'16 | partial APOP-fixed (`mbpta-p3`) | with per-process seeds (§5) |
//!
//! [`IdealRandom`] is an idealized uniform hash used as a gold standard
//! in property tests.
//!
//! Every policy implements [`Placement`]: a deterministic function of
//! `(line address, seed)`. Stateful behaviour (RPCache's dynamic
//! remapping on cross-process contention) is exposed through
//! [`Placement::remap_on_contention`].

mod benes;
mod hash_rp;
mod ideal;
mod modulo;
mod random_modulo;
mod rpcache;
mod xor_index;

pub use benes::PermutationNetwork;
pub use hash_rp::HashRp;
pub use ideal::IdealRandom;
pub use modulo::Modulo;
pub use random_modulo::RandomModulo;
pub use rpcache::RpCachePerm;
pub use xor_index::XorIndex;

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::prng::SplitMix64;
use crate::seed::Seed;
use core::fmt;

/// MBPTA-compliance class of a placement policy, as analysed in the
/// paper's §2–§4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MbptaClass {
    /// Timing is a deterministic function of addresses (plain modulo);
    /// not analysable with MBPTA across integrations.
    Deterministic,
    /// Randomized, but conflicts remain a function of the actual
    /// addresses (XOR-index, RPCache): breaks `mbpta-p1`/`p2`.
    AddressDependent,
    /// Full randomness (`mbpta-p2`): pairwise conflicts are random and
    /// independent across seeds (HashRP).
    FullRandom,
    /// Partial APOP-fixed randomness (`mbpta-p3`): random across pages,
    /// conflict-free within a page (Random Modulo).
    PartialApop,
}

impl MbptaClass {
    /// Whether this class satisfies the MBPTA requirements (`mbpta-p1`
    /// via `p2` or `p3`).
    pub fn is_mbpta_compliant(self) -> bool {
        matches!(self, MbptaClass::FullRandom | MbptaClass::PartialApop)
    }
}

impl fmt::Display for MbptaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MbptaClass::Deterministic => "deterministic",
            MbptaClass::AddressDependent => "address-dependent randomization",
            MbptaClass::FullRandom => "full randomness (mbpta-p2)",
            MbptaClass::PartialApop => "partial APOP-fixed randomness (mbpta-p3)",
        };
        f.write_str(s)
    }
}

/// A cache placement policy: maps `(line, seed)` to a set index.
///
/// Implementations must be deterministic in `(line, seed)` except across
/// calls to [`remap_on_contention`](Placement::remap_on_contention),
/// which only RPCache uses.
pub trait Placement: fmt::Debug + Send {
    /// Number of sets this policy maps into.
    fn sets(&self) -> u32;

    /// Maps a line address under `seed` to a set index in `0..sets()`.
    ///
    /// Takes `&mut self` so table-based policies (RPCache) can build
    /// their per-seed state lazily; pure policies ignore the mutability.
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// The policy's MBPTA-compliance class (paper §2–§4).
    fn mbpta_class(&self) -> MbptaClass;

    /// Whether the policy randomizes cross-process interference
    /// (RPCache's security mechanism, §3).
    fn randomizes_interference(&self) -> bool {
        false
    }

    /// Reacts to a cross-process contention event on `line` (the
    /// incoming line whose fill would evict another process's data).
    ///
    /// RPCache redirects the fill to a random set and updates its
    /// permutation so future lookups of the line find it; other
    /// policies return `None` (no remapping).
    fn remap_on_contention(
        &mut self,
        _line: LineAddr,
        _seed: Seed,
        _rng: &mut SplitMix64,
    ) -> Option<u32> {
        None
    }
}

/// Enum-dispatch placement engine: the hot-path counterpart of the
/// boxed [`Placement`] objects.
///
/// Set selection runs on every cache access — hundreds of times per
/// simulated AES encryption and millions of times per attack campaign.
/// `PlacementEngine` holds the concrete policies in an enum so
/// [`place`](PlacementEngine::place) compiles to a direct match over
/// inlinable policy bodies instead of a virtual call through
/// `Box<dyn Placement>`. The boxed form stays available through
/// [`PlacementKind::build`] for extension and differential testing.
#[derive(Debug)]
pub enum PlacementEngine {
    /// Conventional modulo indexing.
    Modulo(Modulo),
    /// Aciicmez XOR-index.
    XorIndex(XorIndex),
    /// RPCache per-process permutations.
    RpCache(RpCachePerm),
    /// HashRP parametric hashing.
    HashRp(HashRp),
    /// Random Modulo (seed XOR + Benes permutation).
    RandomModulo(RandomModulo),
    /// Idealized uniform hash.
    IdealRandom(IdealRandom),
}

macro_rules! place_dispatch {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            PlacementEngine::Modulo($inner) => $e,
            PlacementEngine::XorIndex($inner) => $e,
            PlacementEngine::RpCache($inner) => $e,
            PlacementEngine::HashRp($inner) => $e,
            PlacementEngine::RandomModulo($inner) => $e,
            PlacementEngine::IdealRandom($inner) => $e,
        }
    };
}

impl PlacementEngine {
    /// Builds the engine for `kind` and `geom`.
    pub fn new(kind: PlacementKind, geom: &CacheGeometry) -> Self {
        match kind {
            PlacementKind::Modulo => PlacementEngine::Modulo(Modulo::new(geom)),
            PlacementKind::XorIndex => PlacementEngine::XorIndex(XorIndex::new(geom)),
            PlacementKind::RpCache => PlacementEngine::RpCache(RpCachePerm::new(geom)),
            PlacementKind::HashRp => PlacementEngine::HashRp(HashRp::new(geom)),
            PlacementKind::RandomModulo => PlacementEngine::RandomModulo(RandomModulo::new(geom)),
            PlacementKind::IdealRandom => PlacementEngine::IdealRandom(IdealRandom::new(geom)),
        }
    }

    /// The kind this engine was built from.
    pub fn kind(&self) -> PlacementKind {
        match self {
            PlacementEngine::Modulo(_) => PlacementKind::Modulo,
            PlacementEngine::XorIndex(_) => PlacementKind::XorIndex,
            PlacementEngine::RpCache(_) => PlacementKind::RpCache,
            PlacementEngine::HashRp(_) => PlacementKind::HashRp,
            PlacementEngine::RandomModulo(_) => PlacementKind::RandomModulo,
            PlacementEngine::IdealRandom(_) => PlacementKind::IdealRandom,
        }
    }

    /// Number of sets this policy maps into.
    pub fn sets(&self) -> u32 {
        place_dispatch!(self, p => Placement::sets(p))
    }

    /// Maps a line address under `seed` to a set index in `0..sets()`.
    #[inline]
    pub fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        place_dispatch!(self, p => p.place(line, seed))
    }

    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        place_dispatch!(self, p => Placement::name(p))
    }

    /// The policy's MBPTA-compliance class (paper §2–§4).
    pub fn mbpta_class(&self) -> MbptaClass {
        place_dispatch!(self, p => p.mbpta_class())
    }

    /// Whether the policy randomizes cross-process interference.
    #[inline]
    pub fn randomizes_interference(&self) -> bool {
        matches!(self, PlacementEngine::RpCache(_))
    }

    /// Whether `place` is a pure function of `(line, seed)` whose
    /// evaluation is expensive enough that the cache hot path should
    /// memoize it (the multi-stage network/Feistel hashes). RPCache is
    /// excluded because contention remaps mutate its mapping;
    /// modulo, XOR-index and IdealRandom are excluded because their
    /// placement is already cheaper than a memo probe.
    #[inline]
    pub fn memoizable(&self) -> bool {
        matches!(self, PlacementEngine::RandomModulo(_) | PlacementEngine::HashRp(_))
    }

    /// Reacts to a cross-process contention event on `line` (RPCache's
    /// dynamic remap; `None` for every other policy).
    #[inline]
    pub fn remap_on_contention(
        &mut self,
        line: LineAddr,
        seed: Seed,
        rng: &mut SplitMix64,
    ) -> Option<u32> {
        place_dispatch!(self, p => p.remap_on_contention(line, seed, rng))
    }
}

/// Configuration enum naming each placement policy, used to build
/// caches from a declarative description.
///
/// # Examples
///
/// ```
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::{PlacementKind, Placement};
/// use tscache_core::seed::Seed;
/// use tscache_core::addr::LineAddr;
///
/// let geom = CacheGeometry::paper_l1();
/// let mut p = PlacementKind::RandomModulo.build(&geom);
/// let set = p.place(LineAddr::new(0x1234), Seed::new(99));
/// assert!(set < geom.sets());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// Conventional modulo indexing.
    Modulo,
    /// Aciicmez XOR of index bits with a seed-derived constant.
    XorIndex,
    /// RPCache per-process permutation tables with randomized
    /// cross-process interference.
    RpCache,
    /// Hash-based parametric random placement (rotate + XOR folding).
    HashRp,
    /// Random Modulo: seed XOR + Benes-style permutation driven by the
    /// tag bits.
    RandomModulo,
    /// Idealized uniform random hash (test gold standard).
    IdealRandom,
}

impl PlacementKind {
    /// Builds the policy for the given geometry.
    pub fn build(self, geom: &CacheGeometry) -> Box<dyn Placement> {
        match self {
            PlacementKind::Modulo => Box::new(Modulo::new(geom)),
            PlacementKind::XorIndex => Box::new(XorIndex::new(geom)),
            PlacementKind::RpCache => Box::new(RpCachePerm::new(geom)),
            PlacementKind::HashRp => Box::new(HashRp::new(geom)),
            PlacementKind::RandomModulo => Box::new(RandomModulo::new(geom)),
            PlacementKind::IdealRandom => Box::new(IdealRandom::new(geom)),
        }
    }

    /// Builds the enum-dispatch engine used by the cache hot path.
    pub fn engine(self, geom: &CacheGeometry) -> PlacementEngine {
        PlacementEngine::new(self, geom)
    }

    /// All kinds, in presentation order.
    pub const ALL: [PlacementKind; 6] = [
        PlacementKind::Modulo,
        PlacementKind::XorIndex,
        PlacementKind::RpCache,
        PlacementKind::HashRp,
        PlacementKind::RandomModulo,
        PlacementKind::IdealRandom,
    ];
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlacementKind::Modulo => "modulo",
            PlacementKind::XorIndex => "xor-index",
            PlacementKind::RpCache => "rpcache",
            PlacementKind::HashRp => "hash-rp",
            PlacementKind::RandomModulo => "random-modulo",
            PlacementKind::IdealRandom => "ideal-random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_place_in_range() {
        let geom = CacheGeometry::paper_l1();
        for kind in PlacementKind::ALL {
            let mut p = kind.build(&geom);
            assert_eq!(p.sets(), geom.sets());
            for raw in [0u64, 1, 0x7f, 0x80, 0xffff, 0xdead_beef] {
                for s in [0u64, 1, 0xffff_ffff] {
                    let set = p.place(LineAddr::new(raw), Seed::new(s));
                    assert!(set < geom.sets(), "{kind}: set {set} out of range");
                }
            }
        }
    }

    #[test]
    fn placement_is_deterministic_per_line_and_seed() {
        let geom = CacheGeometry::paper_l2();
        for kind in PlacementKind::ALL {
            let mut p = kind.build(&geom);
            let line = LineAddr::new(0xabcd_ef01);
            let seed = Seed::new(0x1357_9bdf);
            let first = p.place(line, seed);
            for _ in 0..10 {
                assert_eq!(p.place(line, seed), first, "{kind} not deterministic");
            }
        }
    }

    #[test]
    fn mbpta_classes_match_paper_analysis() {
        let geom = CacheGeometry::paper_l1();
        assert_eq!(PlacementKind::Modulo.build(&geom).mbpta_class(), MbptaClass::Deterministic);
        assert_eq!(
            PlacementKind::XorIndex.build(&geom).mbpta_class(),
            MbptaClass::AddressDependent
        );
        assert_eq!(PlacementKind::RpCache.build(&geom).mbpta_class(), MbptaClass::AddressDependent);
        assert_eq!(PlacementKind::HashRp.build(&geom).mbpta_class(), MbptaClass::FullRandom);
        assert_eq!(PlacementKind::RandomModulo.build(&geom).mbpta_class(), MbptaClass::PartialApop);
    }

    #[test]
    fn compliance_flag_matches_class() {
        assert!(!MbptaClass::Deterministic.is_mbpta_compliant());
        assert!(!MbptaClass::AddressDependent.is_mbpta_compliant());
        assert!(MbptaClass::FullRandom.is_mbpta_compliant());
        assert!(MbptaClass::PartialApop.is_mbpta_compliant());
    }

    #[test]
    fn only_rpcache_randomizes_interference() {
        let geom = CacheGeometry::paper_l1();
        for kind in PlacementKind::ALL {
            let p = kind.build(&geom);
            assert_eq!(p.randomizes_interference(), kind == PlacementKind::RpCache, "{kind}");
        }
    }

    #[test]
    fn engine_matches_boxed_policy_exactly() {
        use crate::prng::SplitMix64;
        let geom = CacheGeometry::paper_l1();
        for kind in PlacementKind::ALL {
            let mut engine = kind.engine(&geom);
            let mut boxed = kind.build(&geom);
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.name(), boxed.name());
            assert_eq!(engine.sets(), boxed.sets());
            assert_eq!(engine.mbpta_class(), boxed.mbpta_class());
            assert_eq!(engine.randomizes_interference(), boxed.randomizes_interference());
            let mut rng_e = SplitMix64::new(3);
            let mut rng_b = SplitMix64::new(3);
            for i in 0..2000u64 {
                let line = LineAddr::new(i.wrapping_mul(0x9e37_79b9));
                let seed = Seed::new(i / 7);
                assert_eq!(engine.place(line, seed), boxed.place(line, seed), "{kind}");
                if i % 37 == 0 {
                    assert_eq!(
                        engine.remap_on_contention(line, seed, &mut rng_e),
                        boxed.remap_on_contention(line, seed, &mut rng_b),
                        "{kind}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(PlacementKind::RandomModulo.to_string(), "random-modulo");
        assert_eq!(MbptaClass::PartialApop.to_string(), "partial APOP-fixed randomness (mbpta-p3)");
    }
}
