//! Random Modulo placement (Hernandez et al. DAC'16, Trilla et al.
//! IOLTS'16).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, PermutationNetwork, Placement};
use crate::prng::mix64;
use crate::seed::Seed;

/// Random Modulo (RM): the index bits, XORed with seed bits, enter a
/// Benes-style permutation network driven by the (seed-XORed) tag bits
/// (paper Fig. 2b).
///
/// For a fixed `(tag, seed)` the map index→set is a **bijection**, so
/// two lines in the same page (same tag) are never placed in the same
/// set — exactly modulo's intra-page behaviour, hence the name. Across
/// pages and seeds the permutation varies pseudo-randomly, achieving
/// *partial APOP-fixed randomness* (`mbpta-p3`).
///
/// RM requires the page size to equal or be a multiple of the way size
/// (so the tag is page-stable); this holds for the paper's L1
/// (way = page = 4 KiB) but not its L2, which uses
/// [`HashRp`](crate::placement::HashRp) instead.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::{Placement, RandomModulo};
/// use tscache_core::seed::Seed;
///
/// let mut p = RandomModulo::new(&CacheGeometry::paper_l1());
/// let seed = Seed::new(7);
/// // Lines 0 and 1 are in the same page: they can never collide.
/// assert_ne!(p.place(LineAddr::new(0), seed), p.place(LineAddr::new(1), seed));
/// ```
#[derive(Debug, Clone)]
pub struct RandomModulo {
    index_bits: u32,
    sets: u32,
    network: PermutationNetwork,
}

impl RandomModulo {
    /// Creates Random Modulo placement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RandomModulo {
            index_bits: geom.index_bits(),
            sets: geom.sets(),
            network: PermutationNetwork::new(geom.index_bits()),
        }
    }
}

impl Placement for RandomModulo {
    fn sets(&self) -> u32 {
        self.sets
    }

    #[inline]
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        let mask = (self.sets - 1) as u64;
        let s = seed.as_u64();
        // Input stage: index bits XORed with seed bits (Fig. 2b).
        let data = ((line.index_bits(self.index_bits) ^ s) & mask) as u32;
        // Control stage: tag bits XORed with (different) seed bits,
        // expanded into switch controls.
        let tag = line.tag_bits(self.index_bits);
        let control = mix64(tag ^ s.rotate_left(32));
        self.network.apply(data, control)
    }

    fn name(&self) -> &'static str {
        "random-modulo"
    }

    fn mbpta_class(&self) -> MbptaClass {
        MbptaClass::PartialApop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn same_page_lines_never_collide() {
        // mbpta-p3(1): null probability of intra-page conflicts, for
        // any seed. A page holds exactly `sets` lines for the paper L1.
        let geom = CacheGeometry::paper_l1();
        let mut p = RandomModulo::new(&geom);
        for s in 0..25u64 {
            let seed = Seed::new(mix64(s));
            let mut seen = vec![false; geom.sets() as usize];
            for i in 0..geom.sets() as u64 {
                // Page 3: lines 3*128 .. 4*128.
                let set = p.place(LineAddr::new(3 * 128 + i), seed) as usize;
                assert!(!seen[set], "seed {seed}: intra-page collision at set {set}");
                seen[set] = true;
            }
        }
    }

    #[test]
    fn cross_page_conflicts_vary_with_seed() {
        // mbpta-p3(2): across pages, full-randomization principles
        // apply — conflicts must not be systematic.
        let mut p = RandomModulo::new(&CacheGeometry::paper_l1());
        let a = LineAddr::new(0x080); // page 1, index 0
        let b = LineAddr::new(0x100); // page 2, index 0
        let mut collide = 0;
        let mut split = 0;
        for s in 0..4000u64 {
            let seed = Seed::new(s);
            if p.place(a, seed) == p.place(b, seed) {
                collide += 1;
            } else {
                split += 1;
            }
        }
        assert!(collide > 0, "cross-page pair never collides");
        assert!(split > 0, "cross-page pair always collides");
        // Expected collision rate is ~1/128; allow generous bounds.
        let rate = collide as f64 / 4000.0;
        assert!(rate < 0.1, "collision rate {rate} too high");
    }

    #[test]
    fn address_relocates_across_seeds() {
        let mut p = RandomModulo::new(&CacheGeometry::paper_l1());
        let line = LineAddr::new(0x1234);
        let distinct: BTreeSet<u32> = (0..300).map(|s| p.place(line, Seed::new(s))).collect();
        assert!(distinct.len() > 64, "{} distinct sets", distinct.len());
    }

    #[test]
    fn uniform_over_sets_across_seeds() {
        let geom = CacheGeometry::paper_l1();
        let mut p = RandomModulo::new(&geom);
        let line = LineAddr::new(0x777);
        let mut counts = vec![0u32; geom.sets() as usize];
        let n = 128_000u64;
        for s in 0..n {
            counts[p.place(line, Seed::new(s)) as usize] += 1;
        }
        let expected = n as f64 / geom.sets() as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 250.0, "chi2 = {chi2}"); // 127 dof, q(0.999) ≈ 181
    }

    #[test]
    fn zero_seed_is_a_valid_layout() {
        let geom = CacheGeometry::paper_l1();
        let mut p = RandomModulo::new(&geom);
        let mut seen = vec![false; geom.sets() as usize];
        for i in 0..128u64 {
            seen[p.place(LineAddr::new(i), Seed::ZERO) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "seed 0 must still be a bijection per page");
    }
}
