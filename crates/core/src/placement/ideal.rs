//! Idealized uniform random placement (test gold standard).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, Placement};
use crate::prng::mix64;
use crate::seed::Seed;

/// Ideal random placement: a full 64-bit mix of `(line, seed)` reduced
/// to the index width.
///
/// Not a hardware design — it models the abstract "fully random and
/// independent placement" that HashRP approximates, and serves as the
/// reference distribution in statistical property tests.
#[derive(Debug, Clone)]
pub struct IdealRandom {
    sets: u32,
}

impl IdealRandom {
    /// Creates ideal random placement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        IdealRandom { sets: geom.sets() }
    }
}

impl Placement for IdealRandom {
    fn sets(&self) -> u32 {
        self.sets
    }

    #[inline]
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        (mix64(line.as_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed.as_u64())
            & (self.sets - 1) as u64) as u32
    }

    fn name(&self) -> &'static str {
        "ideal-random"
    }

    fn mbpta_class(&self) -> MbptaClass {
        MbptaClass::FullRandom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniformity_chi2() {
        let geom = CacheGeometry::paper_l1();
        let mut p = IdealRandom::new(&geom);
        let mut counts = vec![0u32; geom.sets() as usize];
        let n = 128_000u64;
        for i in 0..n {
            counts[p.place(LineAddr::new(i), Seed::new(42)) as usize] += 1;
        }
        let expected = n as f64 / geom.sets() as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 200.0, "chi2 = {chi2}");
    }

    #[test]
    fn pair_collision_rate_near_one_over_sets() {
        let geom = CacheGeometry::paper_l1();
        let mut p = IdealRandom::new(&geom);
        let (a, b) = (LineAddr::new(100), LineAddr::new(228));
        let n = 50_000u64;
        let collisions =
            (0..n).filter(|&s| p.place(a, Seed::new(s)) == p.place(b, Seed::new(s))).count();
        let rate = collisions as f64 / n as f64;
        let ideal = 1.0 / geom.sets() as f64;
        assert!((rate - ideal).abs() < ideal * 0.5, "rate {rate} vs ideal {ideal}");
    }
}
