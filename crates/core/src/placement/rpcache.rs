//! RPCache placement (Wang & Lee, ISCA'07).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, Placement};
use crate::prng::{Prng, SplitMix64};
use crate::seed::Seed;
use std::collections::BTreeMap;

/// RPCache: a per-process permutation table maps the modulo index to a
/// set; on cross-process contention the interference is randomized by
/// remapping the contended index to a random set.
///
/// Security rationale (paper §3): an attacker cannot build a stable
/// eviction relationship with the victim because every interfering
/// access scrambles the mapping. MBPTA assessment (also §3): within a
/// process the permutation is a fixed bijection of sets, so the
/// *conflict structure equals modulo's* — timing still depends on the
/// actual addresses, breaking `mbpta-p1`/`p2` (no time composability).
///
/// The per-process permutation is keyed by the process's [`Seed`]: the
/// OS gives each process a distinct seed, which here selects a distinct
/// permutation table (built lazily with Fisher-Yates).
#[derive(Debug)]
pub struct RpCachePerm {
    index_bits: u32,
    sets: u32,
    /// seed → (perm, inverse perm); both maintained so contention
    /// remaps can swap entries in O(1).
    tables: BTreeMap<u64, PermTable>,
}

#[derive(Debug, Clone)]
struct PermTable {
    perm: Vec<u16>,
    inv: Vec<u16>,
}

impl PermTable {
    fn build(sets: u32, seed: u64) -> Self {
        let mut perm: Vec<u16> = (0..sets as u16).collect();
        let mut rng = SplitMix64::new(seed ^ 0x5252_5043_6163_6865); // "RRPCache"
        rng.shuffle(&mut perm);
        let mut inv = vec![0u16; sets as usize];
        for (i, &p) in perm.iter().enumerate() {
            inv[p as usize] = i as u16;
        }
        PermTable { perm, inv }
    }

    /// Swaps the images of indices `i` and `j`, keeping `inv` in sync.
    fn swap_images(&mut self, i: usize, j: usize) {
        self.perm.swap(i, j);
        self.inv[self.perm[i] as usize] = i as u16;
        self.inv[self.perm[j] as usize] = j as u16;
    }
}

impl RpCachePerm {
    /// Creates RPCache placement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RpCachePerm { index_bits: geom.index_bits(), sets: geom.sets(), tables: BTreeMap::new() }
    }

    fn table(&mut self, seed: Seed) -> &mut PermTable {
        let sets = self.sets;
        self.tables.entry(seed.as_u64()).or_insert_with(|| PermTable::build(sets, seed.as_u64()))
    }

    /// Number of distinct per-seed tables materialized so far.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

impl Placement for RpCachePerm {
    fn sets(&self) -> u32 {
        self.sets
    }

    #[inline]
    fn place(&mut self, line: LineAddr, seed: Seed) -> u32 {
        let idx = line.index_bits(self.index_bits) as usize;
        self.table(seed).perm[idx] as u32
    }

    fn name(&self) -> &'static str {
        "rpcache"
    }

    fn mbpta_class(&self) -> MbptaClass {
        MbptaClass::AddressDependent
    }

    fn randomizes_interference(&self) -> bool {
        true
    }

    fn remap_on_contention(
        &mut self,
        line: LineAddr,
        seed: Seed,
        rng: &mut SplitMix64,
    ) -> Option<u32> {
        let sets = self.sets;
        let idx = line.index_bits(self.index_bits) as usize;
        let target_set = rng.below(sets) as usize;
        let table = self.table(seed);
        // Remap `idx` to a random set S': find the index currently
        // mapping to S' and swap images so the table stays a bijection
        // (the RPCache permutation-register update).
        let other_idx = table.inv[target_set] as usize;
        table.swap_images(idx, other_idx);
        Some(target_set as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_seed_tables_are_bijections() {
        let geom = CacheGeometry::paper_l1();
        let mut p = RpCachePerm::new(&geom);
        for s in 0..5u64 {
            let seed = Seed::new(s);
            let mut seen = vec![false; geom.sets() as usize];
            for i in 0..geom.sets() as u64 {
                let set = p.place(LineAddr::new(i), seed) as usize;
                assert!(!seen[set], "seed {s}: collision");
                seen[set] = true;
            }
        }
    }

    #[test]
    fn conflict_structure_equals_modulo_within_process() {
        // The §3 flaw: same-index lines collide under every seed.
        let mut p = RpCachePerm::new(&CacheGeometry::paper_l1());
        for s in 0..20u64 {
            let seed = Seed::new(s);
            assert_eq!(p.place(LineAddr::new(0x005), seed), p.place(LineAddr::new(0x085), seed));
            assert_ne!(p.place(LineAddr::new(0x005), seed), p.place(LineAddr::new(0x006), seed));
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let mut p = RpCachePerm::new(&CacheGeometry::paper_l1());
        let differs = (0..128u64).any(|i| {
            p.place(LineAddr::new(i), Seed::new(1)) != p.place(LineAddr::new(i), Seed::new(2))
        });
        assert!(differs);
    }

    #[test]
    fn remap_redirects_and_stays_bijective() {
        let geom = CacheGeometry::paper_l1();
        let mut p = RpCachePerm::new(&geom);
        let seed = Seed::new(3);
        let line = LineAddr::new(0x42);
        let before = p.place(line, seed);
        let mut rng = SplitMix64::new(9);
        let new_set = p.remap_on_contention(line, seed, &mut rng).expect("rpcache remaps");
        // Future lookups follow the remap.
        assert_eq!(p.place(line, seed), new_set);
        // The table remains a bijection.
        let mut seen = vec![false; geom.sets() as usize];
        for i in 0..geom.sets() as u64 {
            let set = p.place(LineAddr::new(i), seed) as usize;
            assert!(!seen[set], "post-remap collision");
            seen[set] = true;
        }
        // The displaced index took the old set of `line` (swap).
        let displaced = (0..128u64).map(LineAddr::new).find(|&l| p.place(l, seed) == before);
        assert!(displaced.is_some());
        let _ = before;
    }

    #[test]
    fn tables_are_lazy() {
        let mut p = RpCachePerm::new(&CacheGeometry::paper_l1());
        assert_eq!(p.table_count(), 0);
        p.place(LineAddr::new(1), Seed::new(10));
        p.place(LineAddr::new(2), Seed::new(10));
        assert_eq!(p.table_count(), 1);
        p.place(LineAddr::new(1), Seed::new(11));
        assert_eq!(p.table_count(), 2);
    }
}
