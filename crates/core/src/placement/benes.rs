//! Benes-style controlled-exchange permutation network.
//!
//! Random Modulo feeds the seed-XORed index bits into a Benes network
//! whose switches are driven by the seed-XORed tag bits (paper §4,
//! Fig. 2b). A Benes network built from 2-input exchange switches
//! permutes *bit positions*; combined with the input XOR stage the
//! overall map is, for every control word, a **bijection** on the
//! `2^k`-value index space. Bijectivity is what yields `mbpta-p3`: two
//! lines of the same page (same tag ⇒ same control word) can never
//! collide in a set.
//!
//! This module implements the network as `2k−1` stages of disjoint
//! controlled bit-position swaps, the same expressiveness class as the
//! hardware network (an affine-in-GF(2) permutation per control word).

/// A controlled-exchange permutation network on `k`-bit values.
///
/// # Examples
///
/// ```
/// use tscache_core::placement::PermutationNetwork;
///
/// let net = PermutationNetwork::new(7);
/// // For any control word the map is a bijection on 0..128:
/// let mut seen = vec![false; 128];
/// for v in 0..128u32 {
///     seen[net.apply(v, 0xdead_beef) as usize] = true;
/// }
/// assert!(seen.iter().all(|&b| b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutationNetwork {
    k: u32,
}

impl PermutationNetwork {
    /// Creates a network for `k`-bit values (`k` may be 0, in which
    /// case the network is the identity on the single value 0).
    ///
    /// # Panics
    ///
    /// Panics if `k > 31`.
    pub fn new(k: u32) -> Self {
        assert!(k <= 31, "index width {k} exceeds 31 bits");
        PermutationNetwork { k }
    }

    /// Width of the values this network permutes.
    pub const fn width(&self) -> u32 {
        self.k
    }

    /// Number of exchange stages (`2k−1`, the Benes depth for `k`
    /// wires; 0 when `k < 2`).
    pub const fn stages(&self) -> u32 {
        if self.k < 2 {
            0
        } else {
            2 * self.k - 1
        }
    }

    /// Number of control bits consumed per evaluation.
    pub const fn control_bits(&self) -> u32 {
        // Each stage uses floor(k/2) independent switch controls.
        self.stages() * (self.k / 2)
    }

    /// Applies the permutation selected by `control` to `value`.
    ///
    /// The result is a bijection of the `2^k` value space for every
    /// `control`; the identity when `k < 2`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `value` has bits above `k`.
    #[inline]
    pub fn apply(&self, value: u32, control: u64) -> u32 {
        debug_assert!(
            self.k == 0 || value < (1 << self.k),
            "value {value} wider than {} bits",
            self.k
        );
        let k = self.k;
        if k < 2 {
            return value;
        }
        let mut x = value;
        let mut ctrl = control;
        let switches_per_stage = k / 2;
        for stage in 0..self.stages() {
            // Stage `stage` pairs bit positions (2t+stage, 2t+1+stage)
            // mod k; the pairs are disjoint, so the stage is a valid
            // layer of exchange switches.
            for t in 0..switches_per_stage {
                let take = ctrl & 1;
                ctrl >>= 1;
                if ctrl == 0 {
                    // Refill the control stream deterministically so
                    // deep networks never run out of bits.
                    ctrl = crate::prng::mix64(control ^ ((stage as u64) << 32) ^ t as u64);
                }
                if take == 1 {
                    let i = (2 * t + stage) % k;
                    let j = (2 * t + 1 + stage) % k;
                    x = swap_bits(x, i, j);
                }
            }
        }
        x
    }
}

/// Swaps bit positions `i` and `j` of `x` (no-op when the bits are
/// equal).
#[inline]
fn swap_bits(x: u32, i: u32, j: u32) -> u32 {
    let bit_i = (x >> i) & 1;
    let bit_j = (x >> j) & 1;
    if bit_i == bit_j {
        x
    } else {
        x ^ (1 << i) ^ (1 << j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_bits_works() {
        assert_eq!(swap_bits(0b01, 0, 1), 0b10);
        assert_eq!(swap_bits(0b11, 0, 1), 0b11);
        assert_eq!(swap_bits(0b100, 2, 0), 0b001);
    }

    #[test]
    fn identity_for_tiny_widths() {
        for k in [0u32, 1] {
            let net = PermutationNetwork::new(k);
            for v in 0..(1u32 << k) {
                assert_eq!(net.apply(v, 12345), v);
            }
        }
    }

    #[test]
    fn bijective_for_every_sampled_control_k7() {
        let net = PermutationNetwork::new(7);
        for c in [0u64, 1, 0xff, 0xdead_beef, u64::MAX, 0x0123_4567_89ab_cdef] {
            let mut seen = [false; 128];
            for v in 0..128u32 {
                let out = net.apply(v, c) as usize;
                assert!(!seen[out], "control {c:#x}: collision at {out}");
                seen[out] = true;
            }
        }
    }

    #[test]
    fn bijective_for_every_sampled_control_k11() {
        let net = PermutationNetwork::new(11);
        for c in [3u64, 0xabcdef, u64::MAX / 3] {
            let mut seen = vec![false; 2048];
            for v in 0..2048u32 {
                let out = net.apply(v, c) as usize;
                assert!(!seen[out], "control {c:#x}: collision at {out}");
                seen[out] = true;
            }
        }
    }

    #[test]
    fn different_controls_give_different_permutations() {
        let net = PermutationNetwork::new(7);
        let mut distinct = 0;
        for c in 1..64u64 {
            if (0..128).any(|v| net.apply(v, c) != net.apply(v, 0)) {
                distinct += 1;
            }
        }
        assert!(distinct > 55, "only {distinct}/63 controls differ from control 0");
    }

    #[test]
    fn preserves_popcount() {
        // Bit-position permutations preserve the number of set bits —
        // a structural invariant of the exchange network (the seed XOR
        // stage in RandomModulo is what breaks this symmetry).
        let net = PermutationNetwork::new(7);
        for c in [7u64, 99, 12345] {
            for v in 0..128u32 {
                assert_eq!(net.apply(v, c).count_ones(), v.count_ones());
            }
        }
    }

    #[test]
    fn stage_and_control_counts() {
        let net = PermutationNetwork::new(7);
        assert_eq!(net.stages(), 13);
        assert_eq!(net.control_bits(), 13 * 3);
        assert_eq!(PermutationNetwork::new(1).stages(), 0);
    }
}
