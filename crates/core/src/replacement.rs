//! Cache replacement policies.
//!
//! MBPTA-compliant caches pair random placement with random (or at
//! least analysable) replacement; deterministic setups use LRU. The
//! cache asks the policy for a victim way only when every way of the
//! set holds valid data — invalid ways are always filled first.

use crate::geometry::CacheGeometry;
use crate::prng::{Prng, SplitMix64};
use core::fmt;

/// A per-set replacement policy.
///
/// Implementations keep per-set bookkeeping indexed as
/// `set * ways + way` and must tolerate [`reset`](Replacement::reset)
/// at any time (cache flush).
pub trait Replacement: fmt::Debug + Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Records a hit on `(set, way)`.
    fn on_hit(&mut self, set: u32, way: u32);

    /// Records a fill of `(set, way)`.
    fn on_fill(&mut self, set: u32, way: u32);

    /// Chooses the victim way in a full set.
    fn victim(&mut self, set: u32, rng: &mut SplitMix64) -> u32;

    /// Chooses the victim way within the way range `lo..hi` (way
    /// partitioning, paper §7). The default picks uniformly at random
    /// within the partition; stamp-based policies override with an
    /// exact range scan.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn victim_in(&mut self, _set: u32, lo: u32, hi: u32, rng: &mut SplitMix64) -> u32 {
        assert!(lo < hi, "empty way partition");
        lo + rng.below(hi - lo)
    }

    /// Clears all bookkeeping (cache flush).
    fn reset(&mut self);

    /// Whether victim selection consumes randomness.
    fn is_randomized(&self) -> bool {
        false
    }
}

/// Enum-dispatch replacement engine: the hot-path counterpart of the
/// boxed [`Replacement`] objects.
///
/// [`Cache`](crate::cache::Cache) accesses run victim selection and
/// hit/fill bookkeeping millions of times per experiment; routing them
/// through a `Box<dyn Replacement>` costs an indirect call each.
/// `ReplacementEngine` holds the concrete policies in an enum so every
/// policy method compiles to a direct (and inlinable) match arm. The
/// boxed trait objects remain available through
/// [`ReplacementKind::build`] for extension and differential testing.
#[derive(Debug)]
pub enum ReplacementEngine {
    /// True LRU.
    Lru(Lru),
    /// FIFO.
    Fifo(Fifo),
    /// Uniform random.
    Random(RandomRepl),
    /// Tree pseudo-LRU.
    PlruTree(PlruTree),
    /// Not-recently-used.
    Nru(Nru),
}

macro_rules! repl_dispatch {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            ReplacementEngine::Lru($inner) => $e,
            ReplacementEngine::Fifo($inner) => $e,
            ReplacementEngine::Random($inner) => $e,
            ReplacementEngine::PlruTree($inner) => $e,
            ReplacementEngine::Nru($inner) => $e,
        }
    };
}

impl ReplacementEngine {
    /// Builds the engine for `kind` and `geom`.
    pub fn new(kind: ReplacementKind, geom: &CacheGeometry) -> Self {
        match kind {
            ReplacementKind::Lru => ReplacementEngine::Lru(Lru::new(geom)),
            ReplacementKind::Fifo => ReplacementEngine::Fifo(Fifo::new(geom)),
            ReplacementKind::Random => ReplacementEngine::Random(RandomRepl::new(geom)),
            ReplacementKind::PlruTree => ReplacementEngine::PlruTree(PlruTree::new(geom)),
            ReplacementKind::Nru => ReplacementEngine::Nru(Nru::new(geom)),
        }
    }

    /// The kind this engine was built from.
    pub fn kind(&self) -> ReplacementKind {
        match self {
            ReplacementEngine::Lru(_) => ReplacementKind::Lru,
            ReplacementEngine::Fifo(_) => ReplacementKind::Fifo,
            ReplacementEngine::Random(_) => ReplacementKind::Random,
            ReplacementEngine::PlruTree(_) => ReplacementKind::PlruTree,
            ReplacementEngine::Nru(_) => ReplacementKind::Nru,
        }
    }

    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        repl_dispatch!(self, p => Replacement::name(p))
    }

    /// Records a hit on `(set, way)`.
    #[inline]
    pub fn on_hit(&mut self, set: u32, way: u32) {
        repl_dispatch!(self, p => p.on_hit(set, way))
    }

    /// Records a fill of `(set, way)`.
    #[inline]
    pub fn on_fill(&mut self, set: u32, way: u32) {
        repl_dispatch!(self, p => p.on_fill(set, way))
    }

    /// Chooses the victim way in a full set.
    #[inline]
    pub fn victim(&mut self, set: u32, rng: &mut SplitMix64) -> u32 {
        repl_dispatch!(self, p => p.victim(set, rng))
    }

    /// Chooses the victim way within `lo..hi` (way partitioning).
    #[inline]
    pub fn victim_in(&mut self, set: u32, lo: u32, hi: u32, rng: &mut SplitMix64) -> u32 {
        repl_dispatch!(self, p => p.victim_in(set, lo, hi, rng))
    }

    /// Clears all bookkeeping (cache flush).
    pub fn reset(&mut self) {
        repl_dispatch!(self, p => p.reset())
    }

    /// Whether victim selection consumes randomness.
    pub fn is_randomized(&self) -> bool {
        repl_dispatch!(self, p => p.is_randomized())
    }
}

/// Configuration enum naming each replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least recently used.
    Lru,
    /// First in, first out (fill order).
    Fifo,
    /// Uniformly random victim (the paper's optional random replacement).
    Random,
    /// Tree pseudo-LRU.
    PlruTree,
    /// Not-recently-used (single reference bit per line).
    Nru,
}

impl ReplacementKind {
    /// Builds the policy for the given geometry.
    pub fn build(self, geom: &CacheGeometry) -> Box<dyn Replacement> {
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(geom)),
            ReplacementKind::Fifo => Box::new(Fifo::new(geom)),
            ReplacementKind::Random => Box::new(RandomRepl::new(geom)),
            ReplacementKind::PlruTree => Box::new(PlruTree::new(geom)),
            ReplacementKind::Nru => Box::new(Nru::new(geom)),
        }
    }

    /// Builds the enum-dispatch engine used by the cache hot path.
    pub fn engine(self, geom: &CacheGeometry) -> ReplacementEngine {
        ReplacementEngine::new(self, geom)
    }

    /// All kinds, in presentation order.
    pub const ALL: [ReplacementKind; 5] = [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
        ReplacementKind::PlruTree,
        ReplacementKind::Nru,
    ];
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementKind::Lru => "lru",
            ReplacementKind::Fifo => "fifo",
            ReplacementKind::Random => "random",
            ReplacementKind::PlruTree => "plru-tree",
            ReplacementKind::Nru => "nru",
        };
        f.write_str(s)
    }
}

/// True LRU via monotonically increasing access stamps.
#[derive(Debug)]
pub struct Lru {
    ways: u32,
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates LRU bookkeeping for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Lru { ways: geom.ways(), stamps: vec![0; geom.total_lines() as usize], clock: 0 }
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }
}

impl Replacement for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_hit(&mut self, set: u32, way: u32) {
        self.clock += 1;
        let slot = self.slot(set, way);
        self.stamps[slot] = self.clock;
    }

    fn on_fill(&mut self, set: u32, way: u32) {
        self.on_hit(set, way);
    }

    fn victim(&mut self, set: u32, _rng: &mut SplitMix64) -> u32 {
        let base = self.slot(set, 0);
        let mut best = 0u32;
        let mut best_stamp = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w as usize];
            if s < best_stamp {
                best_stamp = s;
                best = w;
            }
        }
        best
    }

    fn victim_in(&mut self, set: u32, lo: u32, hi: u32, _rng: &mut SplitMix64) -> u32 {
        assert!(lo < hi, "empty way partition");
        let base = self.slot(set, 0);
        let mut best = lo;
        let mut best_stamp = u64::MAX;
        for w in lo..hi {
            let s = self.stamps[base + w as usize];
            if s < best_stamp {
                best_stamp = s;
                best = w;
            }
        }
        best
    }

    fn reset(&mut self) {
        self.stamps.fill(0);
        self.clock = 0;
    }
}

/// FIFO: victim is the oldest fill.
#[derive(Debug)]
pub struct Fifo {
    ways: u32,
    stamps: Vec<u64>,
    clock: u64,
}

impl Fifo {
    /// Creates FIFO bookkeeping for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Fifo { ways: geom.ways(), stamps: vec![0; geom.total_lines() as usize], clock: 0 }
    }
}

impl Replacement for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn on_hit(&mut self, _set: u32, _way: u32) {
        // Hits do not refresh FIFO order.
    }

    fn on_fill(&mut self, set: u32, way: u32) {
        self.clock += 1;
        self.stamps[(set * self.ways + way) as usize] = self.clock;
    }

    fn victim(&mut self, set: u32, _rng: &mut SplitMix64) -> u32 {
        let base = (set * self.ways) as usize;
        let mut best = 0u32;
        let mut best_stamp = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w as usize];
            if s < best_stamp {
                best_stamp = s;
                best = w;
            }
        }
        best
    }

    fn victim_in(&mut self, set: u32, lo: u32, hi: u32, _rng: &mut SplitMix64) -> u32 {
        assert!(lo < hi, "empty way partition");
        let base = (set * self.ways) as usize;
        let mut best = lo;
        let mut best_stamp = u64::MAX;
        for w in lo..hi {
            let s = self.stamps[base + w as usize];
            if s < best_stamp {
                best_stamp = s;
                best = w;
            }
        }
        best
    }

    fn reset(&mut self) {
        self.stamps.fill(0);
        self.clock = 0;
    }
}

/// Uniformly random replacement (paper §2.1: the optional randomized
/// replacement of MBPTA caches).
#[derive(Debug)]
pub struct RandomRepl {
    ways: u32,
}

impl RandomRepl {
    /// Creates random replacement for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RandomRepl { ways: geom.ways() }
    }
}

impl Replacement for RandomRepl {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_hit(&mut self, _set: u32, _way: u32) {}

    fn on_fill(&mut self, _set: u32, _way: u32) {}

    fn victim(&mut self, _set: u32, rng: &mut SplitMix64) -> u32 {
        rng.below(self.ways)
    }

    fn reset(&mut self) {}

    fn is_randomized(&self) -> bool {
        true
    }
}

/// Tree pseudo-LRU (binary decision tree per set).
///
/// # Panics
///
/// Construction panics if the geometry's way count is not a power of
/// two (the tree requires it); `CacheGeometry` already guarantees this.
#[derive(Debug)]
pub struct PlruTree {
    ways: u32,
    /// `ways - 1` tree bits per set, packed one `u32` per set (supports
    /// up to 32 ways).
    bits: Vec<u32>,
}

impl PlruTree {
    /// Creates tree-PLRU bookkeeping for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        assert!(geom.ways() <= 32, "plru-tree supports at most 32 ways");
        PlruTree { ways: geom.ways(), bits: vec![0; geom.sets() as usize] }
    }

    /// Walks the tree towards `way`, setting each node to point *away*
    /// from it (the touched side becomes "recently used").
    fn touch(&mut self, set: u32, way: u32) {
        let levels = self.ways.trailing_zeros();
        let bits = &mut self.bits[set as usize];
        let mut node = 0u32; // root at node 0; children of n are 2n+1, 2n+2
        for level in (0..levels).rev() {
            let go_right = (way >> level) & 1;
            // Node bit = 1 means "next victim is on the right"; point
            // away from the touched side.
            if go_right == 1 {
                *bits &= !(1 << node);
            } else {
                *bits |= 1 << node;
            }
            node = 2 * node + 1 + go_right;
        }
    }
}

impl Replacement for PlruTree {
    fn name(&self) -> &'static str {
        "plru-tree"
    }

    fn on_hit(&mut self, set: u32, way: u32) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: u32, way: u32) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: u32, _rng: &mut SplitMix64) -> u32 {
        let levels = self.ways.trailing_zeros();
        let bits = self.bits[set as usize];
        let mut node = 0u32;
        let mut way = 0u32;
        for _ in 0..levels {
            let dir = (bits >> node) & 1;
            way = (way << 1) | dir;
            node = 2 * node + 1 + dir;
        }
        way
    }

    fn reset(&mut self) {
        self.bits.fill(0);
    }
}

/// Not-recently-used: one reference bit per line; victim is the first
/// way with a clear bit, clearing all bits when the set saturates.
#[derive(Debug)]
pub struct Nru {
    ways: u32,
    refs: Vec<bool>,
}

impl Nru {
    /// Creates NRU bookkeeping for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Nru { ways: geom.ways(), refs: vec![false; geom.total_lines() as usize] }
    }
}

impl Replacement for Nru {
    fn name(&self) -> &'static str {
        "nru"
    }

    fn on_hit(&mut self, set: u32, way: u32) {
        self.refs[(set * self.ways + way) as usize] = true;
    }

    fn on_fill(&mut self, set: u32, way: u32) {
        self.on_hit(set, way);
    }

    fn victim(&mut self, set: u32, _rng: &mut SplitMix64) -> u32 {
        let base = (set * self.ways) as usize;
        for w in 0..self.ways {
            if !self.refs[base + w as usize] {
                return w;
            }
        }
        // Saturated: age the set and evict way 0.
        for w in 0..self.ways {
            self.refs[base + w as usize] = false;
        }
        0
    }

    fn victim_in(&mut self, set: u32, lo: u32, hi: u32, _rng: &mut SplitMix64) -> u32 {
        assert!(lo < hi, "empty way partition");
        let base = (set * self.ways) as usize;
        for w in lo..hi {
            if !self.refs[base + w as usize] {
                return w;
            }
        }
        for w in lo..hi {
            self.refs[base + w as usize] = false;
        }
        lo
    }

    fn reset(&mut self) {
        self.refs.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(4, 4, 32).unwrap()
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Lru::new(&geom());
        let mut rng = SplitMix64::new(0);
        for w in 0..4 {
            lru.on_fill(0, w);
        }
        lru.on_hit(0, 0); // refresh way 0: victim must be way 1
        assert_eq!(lru.victim(0, &mut rng), 1);
        lru.on_hit(0, 1);
        assert_eq!(lru.victim(0, &mut rng), 2);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut lru = Lru::new(&geom());
        let mut rng = SplitMix64::new(0);
        for w in 0..4 {
            lru.on_fill(0, w);
            lru.on_fill(1, 3 - w);
        }
        assert_eq!(lru.victim(0, &mut rng), 0);
        assert_eq!(lru.victim(1, &mut rng), 3);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut fifo = Fifo::new(&geom());
        let mut rng = SplitMix64::new(0);
        for w in 0..4 {
            fifo.on_fill(0, w);
        }
        fifo.on_hit(0, 0); // must not refresh
        assert_eq!(fifo.victim(0, &mut rng), 0);
    }

    #[test]
    fn random_victim_covers_all_ways_and_is_seeded() {
        let g = geom();
        let mut r1 = RandomRepl::new(&g);
        let mut r2 = RandomRepl::new(&g);
        let mut rng1 = SplitMix64::new(7);
        let mut rng2 = SplitMix64::new(7);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let v = r1.victim(0, &mut rng1);
            assert_eq!(v, r2.victim(0, &mut rng2), "same rng stream, same victims");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn plru_points_away_from_recent() {
        let mut plru = PlruTree::new(&geom());
        let mut rng = SplitMix64::new(0);
        for w in 0..4 {
            plru.on_fill(0, w);
        }
        // After touching 0,1,2,3 in order the victim must be on the
        // left half (ways 0/1), specifically way 0 for the tree walk.
        let v = plru.victim(0, &mut rng);
        assert!(v < 2, "victim {v} should be in the cold half");
    }

    #[test]
    fn plru_victim_never_most_recent() {
        let mut plru = PlruTree::new(&geom());
        let mut rng = SplitMix64::new(0);
        for pattern in 0..64u32 {
            let way = pattern % 4;
            plru.on_hit(0, way);
            assert_ne!(plru.victim(0, &mut rng), way);
        }
    }

    #[test]
    fn nru_picks_first_unreferenced_then_ages() {
        let mut nru = Nru::new(&geom());
        let mut rng = SplitMix64::new(0);
        nru.on_fill(0, 0);
        nru.on_fill(0, 1);
        assert_eq!(nru.victim(0, &mut rng), 2);
        nru.on_fill(0, 2);
        nru.on_fill(0, 3);
        // All referenced: ages and returns way 0.
        assert_eq!(nru.victim(0, &mut rng), 0);
        // After aging, way 0 (still unreferenced) is chosen again.
        assert_eq!(nru.victim(0, &mut rng), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut lru = Lru::new(&geom());
        let mut rng = SplitMix64::new(0);
        for w in 0..4 {
            lru.on_fill(0, w);
        }
        lru.reset();
        // After reset all stamps are equal; the scan picks way 0.
        assert_eq!(lru.victim(0, &mut rng), 0);
    }

    #[test]
    fn all_kinds_build() {
        let g = CacheGeometry::paper_l1();
        for kind in ReplacementKind::ALL {
            let r = kind.build(&g);
            assert!(!r.name().is_empty());
            assert_eq!(r.is_randomized(), kind == ReplacementKind::Random);
        }
    }

    #[test]
    fn engine_matches_boxed_policy_exactly() {
        let g = CacheGeometry::paper_l1();
        for kind in ReplacementKind::ALL {
            let mut engine = kind.engine(&g);
            let mut boxed = kind.build(&g);
            assert_eq!(engine.name(), boxed.name());
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.is_randomized(), boxed.is_randomized());
            let mut rng_e = SplitMix64::new(77);
            let mut rng_b = SplitMix64::new(77);
            let mut drive = SplitMix64::new(5);
            for _ in 0..2000 {
                let set = drive.below(128);
                match drive.below(4) {
                    0 => {
                        let way = drive.below(4);
                        engine.on_hit(set, way);
                        boxed.on_hit(set, way);
                    }
                    1 => {
                        let way = drive.below(4);
                        engine.on_fill(set, way);
                        boxed.on_fill(set, way);
                    }
                    2 => {
                        assert_eq!(
                            engine.victim(set, &mut rng_e),
                            boxed.victim(set, &mut rng_b),
                            "{kind}"
                        );
                    }
                    _ => {
                        assert_eq!(
                            engine.victim_in(set, 1, 3, &mut rng_e),
                            boxed.victim_in(set, 1, 3, &mut rng_b),
                            "{kind}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn victims_always_in_range() {
        let g = CacheGeometry::paper_l1();
        let mut rng = SplitMix64::new(1);
        for kind in ReplacementKind::ALL {
            let mut r = kind.build(&g);
            for set in [0u32, 63, 127] {
                for _ in 0..32 {
                    assert!(r.victim(set, &mut rng) < g.ways());
                }
            }
        }
    }
}
