//! Access statistics counters.

use core::fmt;
use core::ops::{Add, AddAssign};

/// Hit/miss/eviction counters of one cache (or an aggregate).
///
/// # Examples
///
/// ```
/// use tscache_core::stats::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.record_hit();
/// s.record_miss(false);
/// assert_eq!(s.accesses(), 2);
/// assert!((s.miss_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    hits: u64,
    misses: u64,
    evictions: u64,
    cross_process_evictions: u64,
    writebacks: u64,
    flushes: u64,
    coh_invalidations: u64,
    ttl_expiries: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit.
    #[inline]
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss; `evicted` tells whether a valid line was
    /// displaced by the fill.
    #[inline]
    pub fn record_miss(&mut self, evicted: bool) {
        self.misses += 1;
        if evicted {
            self.evictions += 1;
        }
    }

    /// Records that an eviction displaced another process's line.
    #[inline]
    pub fn record_cross_process_eviction(&mut self) {
        self.cross_process_evictions += 1;
    }

    /// Records a dirty-line eviction that produced a writeback (only
    /// write-back caches generate these; write-through caches never
    /// hold dirty lines).
    #[inline]
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Records a whole-cache flush.
    #[inline]
    pub fn record_flush(&mut self) {
        self.flushes += 1;
    }

    /// Records one line copy invalidated by a coherence action (a
    /// cross-core upgrade, a flush broadcast, or an inclusive-LLC
    /// back-invalidation) in this cache.
    #[inline]
    pub fn record_coh_invalidation(&mut self) {
        self.coh_invalidations += 1;
    }

    /// Records one line drained by a TTL expiry (ClepsydraCache-style
    /// time-based eviction); dirty expiries additionally record a
    /// writeback via [`record_writeback`](Self::record_writeback).
    #[inline]
    pub fn record_ttl_expiry(&mut self) {
        self.ttl_expiries += 1;
    }

    /// Records an aggregated batch of accesses in one update (the
    /// amortized bookkeeping path of `Cache::access_batch`).
    #[inline]
    pub fn record_batch(
        &mut self,
        hits: u64,
        misses: u64,
        evictions: u64,
        cross_process_evictions: u64,
    ) {
        self.hits += hits;
        self.misses += misses;
        self.evictions += evictions;
        self.cross_process_evictions += cross_process_evictions;
    }

    /// Records `n` writebacks in one update (the batch path's amortized
    /// counterpart of [`record_writeback`](Self::record_writeback)).
    #[inline]
    pub fn record_writebacks(&mut self, n: u64) {
        self.writebacks += n;
    }

    /// Total accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid-line evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions that displaced a different process's line (the
    /// contention events RPCache randomizes).
    pub fn cross_process_evictions(&self) -> u64 {
        self.cross_process_evictions
    }

    /// Dirty-line evictions that produced a writeback toward the next
    /// level (zero on write-through caches).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Number of flushes.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Line copies invalidated in this cache by coherence actions
    /// (zero on platforms without coherence-tracked lines).
    pub fn coh_invalidations(&self) -> u64 {
        self.coh_invalidations
    }

    /// Lines drained by TTL expiry (zero unless a TTL defense is
    /// armed on this cache).
    pub fn ttl_expiries(&self) -> u64 {
        self.ttl_expiries
    }

    /// Miss rate in `[0, 1]`; 0 when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            cross_process_evictions: self.cross_process_evictions + rhs.cross_process_evictions,
            writebacks: self.writebacks + rhs.writebacks,
            flushes: self.flushes + rhs.flushes,
            coh_invalidations: self.coh_invalidations + rhs.coh_invalidations,
            ttl_expiries: self.ttl_expiries + rhs.ttl_expiries,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses (miss rate {:.4})",
            self.accesses(),
            self.hits,
            self.misses,
            self.miss_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_no_accesses_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::new();
        s.record_hit();
        s.record_hit();
        s.record_miss(true);
        s.record_miss(false);
        s.record_cross_process_eviction();
        s.record_writeback();
        s.record_writebacks(2);
        s.record_flush();
        s.record_ttl_expiry();
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.cross_process_evictions(), 1);
        assert_eq!(s.writebacks(), 3);
        assert_eq!(s.flushes(), 1);
        assert_eq!(s.ttl_expiries(), 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_merges_counters() {
        let mut a = CacheStats::new();
        a.record_hit();
        let mut b = CacheStats::new();
        b.record_miss(true);
        b.record_ttl_expiry();
        let c = a + b;
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.ttl_expiries(), 1);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats::new();
        s.record_hit();
        s.reset();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn display_shows_miss_rate() {
        let mut s = CacheStats::new();
        s.record_miss(false);
        assert!(s.to_string().contains("miss rate 1.0000"));
    }
}
