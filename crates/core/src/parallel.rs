//! Deterministic parallel execution of embarrassingly-parallel loops.
//!
//! Attack campaigns and MBPTA measurement protocols repeat independent
//! trials — Prime+Probe rounds, Bernstein sampling nodes, per-key-byte
//! correlation sweeps, per-run execution-time collection. This module
//! fans such loops out over OS threads while keeping results
//! **bit-reproducible regardless of thread count**: work is split by
//! index, each index computes a pure function (callers derive a
//! per-index `SplitMix64` stream instead of sharing one RNG), and
//! results are returned in index order.
//!
//! The thread count honours `RAYON_NUM_THREADS` (the convention users
//! of rayon-based tools expect) and `TSCACHE_THREADS`, falling back to
//! the machine's available parallelism. With the `rayon` cargo feature
//! a vendored rayon could take over scheduling; the std::thread
//! fallback below is always available and has no dependencies.

use std::env;
use std::num::NonZeroUsize;
use std::thread;

/// The worker-thread count used by [`par_map_indexed`].
///
/// Resolution order: `RAYON_NUM_THREADS`, then `TSCACHE_THREADS`, then
/// [`std::thread::available_parallelism`]. Values of 0 or unparsable
/// strings fall through to the next source.
pub fn thread_count() -> usize {
    for var in ["RAYON_NUM_THREADS", "TSCACHE_THREADS"] {
        if let Ok(v) = env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// `f` must be a pure function of its index (derive any randomness
/// from the index, e.g. `SplitMix64::new(mix64(master ^ i as u64))`);
/// the output is then identical for every thread count, including 1.
///
/// # Examples
///
/// ```
/// use tscache_core::parallel::par_map_indexed;
///
/// let squares = par_map_indexed(8, |i| (i * i) as u64);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = t * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            });
        }
    });
    out.into_iter().map(|s| s.expect("worker filled every slot")).collect()
}

/// Runs two independent closures, in parallel when more than one
/// worker thread is configured, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if thread_count() <= 1 {
        return (a(), b());
    }
    thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        (ra, handle.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::{mix64, Prng, SplitMix64};

    #[test]
    fn results_are_in_index_order() {
        let v = par_map_indexed(100, |i| i);
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn per_index_streams_are_thread_count_independent() {
        // Not a real test of concurrency (the container may have one
        // core); asserts the contract: same per-index derivation, same
        // output vector.
        let run = || par_map_indexed(64, |i| SplitMix64::new(mix64(0xabc ^ i as u64)).next_u64());
        assert_eq!(run(), run());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
