//! Deterministic parallel execution of embarrassingly-parallel loops.
//!
//! Attack campaigns and MBPTA measurement protocols repeat independent
//! trials — Prime+Probe rounds, Bernstein sampling nodes, per-key-byte
//! correlation sweeps, per-run execution-time collection. This module
//! fans such loops out over OS threads while keeping results
//! **bit-reproducible regardless of thread count**: work is split by
//! index, each index computes a pure function (callers derive a
//! per-index `SplitMix64` stream instead of sharing one RNG), and
//! results are returned in index order.
//!
//! Two schedulers back [`par_map_indexed`]:
//!
//! * with the `rayon` cargo feature (on by default), a **work-stealing
//!   range scheduler**: each worker owns a contiguous index range,
//!   claims grains from its front, and — once empty — steals the back
//!   half of the fullest remaining range. Heterogeneous trial costs
//!   (contended vs solo campaigns, deep vs shallow hierarchies) no
//!   longer leave workers idle behind one slow fixed chunk;
//! * without it (`--no-default-features`), the original fixed-chunk
//!   static split.
//!
//! Both schedulers place each result by its index, so the output — and
//! any seed derivation keyed on the index — is identical whichever
//! worker computes it, in whatever order.
//!
//! Worker panics are **isolated**: a panicking index can no longer
//! poison the fan-out. [`try_par_map_indexed`] and [`try_join`] surface
//! the first panic (lowest index) as a typed [`WorkerPanic`]; the
//! panicking variants re-raise it with a clean message. Remaining
//! workers drain quickly via a stop flag instead of running the loop to
//! completion.
//!
//! The thread count honours `RAYON_NUM_THREADS` (the convention users
//! of rayon-based tools expect) and `TSCACHE_THREADS`, falling back to
//! the machine's available parallelism.

use std::any::Any;
use std::env;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

/// The worker-thread count used by [`par_map_indexed`].
///
/// Resolution order: `RAYON_NUM_THREADS`, then `TSCACHE_THREADS`, then
/// [`std::thread::available_parallelism`]. Values of 0 or unparsable
/// strings fall through to the next source.
pub fn thread_count() -> usize {
    for var in ["RAYON_NUM_THREADS", "TSCACHE_THREADS"] {
        if let Ok(v) = env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// A worker closure panicked during a parallel fan-out.
///
/// Carries the index whose computation panicked (the lowest such index
/// when several workers fail in the same fan-out, so the error itself
/// is deterministic) and the stringified panic payload. Campaign
/// executors use this to distinguish "this shard's computation
/// crashed" (retryable) from a bad configuration (a
/// [`ConfigError`](crate::error::ConfigError), never retried).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The loop index whose closure panicked (for [`try_join`]: 0 for
    /// the first closure, 1 for the second).
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked at index {}: {}", self.index, self.message)
    }
}

impl Error for WorkerPanic {}

/// Extracts the human-readable message from a caught panic payload
/// (`&str` or `String` payloads; anything else gets a placeholder).
/// Public so campaign executors doing their own `catch_unwind` report
/// panics the same way this module does.
pub fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(i)` with panic isolation.
fn run_isolated<T, F: Fn(usize) -> T>(f: &F, i: usize) -> Result<T, WorkerPanic> {
    panic::catch_unwind(AssertUnwindSafe(|| f(i)))
        .map_err(|p| WorkerPanic { index: i, message: payload_message(p.as_ref()) })
}

/// Records the panic with the lowest index (deterministic winner).
fn record_panic(slot: &Mutex<Option<WorkerPanic>>, stop: &AtomicBool, e: WorkerPanic) {
    stop.store(true, Ordering::Relaxed);
    let mut guard = slot.lock().unwrap();
    match &*guard {
        Some(prev) if prev.index <= e.index => {}
        _ => *guard = Some(e),
    }
}

/// One worker's index range; the front is claimed by the owner, the
/// back stolen by idle workers. A `Mutex` rather than lock-free
/// atomics: claims happen once per *grain* (tens to thousands of
/// indices), so contention is negligible next to the work itself.
struct RangeQueue {
    span: Mutex<(usize, usize)>,
}

impl RangeQueue {
    fn new(lo: usize, hi: usize) -> Self {
        RangeQueue { span: Mutex::new((lo, hi)) }
    }

    /// Claims up to `grain` indices from the front.
    fn pop_front(&self, grain: usize) -> Option<(usize, usize)> {
        let mut g = self.span.lock().unwrap();
        if g.0 >= g.1 {
            return None;
        }
        let lo = g.0;
        let hi = (lo + grain).min(g.1);
        g.0 = hi;
        Some((lo, hi))
    }

    /// Indices still queued.
    #[cfg(feature = "rayon")]
    fn remaining(&self) -> usize {
        let g = self.span.lock().unwrap();
        g.1 - g.0
    }

    /// Steals the back half of the range (work-stealing).
    #[cfg(feature = "rayon")]
    fn steal_back(&self) -> Option<(usize, usize)> {
        let mut g = self.span.lock().unwrap();
        let len = g.1 - g.0;
        if len == 0 {
            return None;
        }
        let take = len.div_ceil(2);
        let hi = g.1;
        g.1 -= take;
        Some((g.1, hi))
    }
}

/// Finds the fullest victim queue and steals from it. Compiled out
/// without the `rayon` feature (fixed-chunk static split).
#[cfg(feature = "rayon")]
fn steal(queues: &[RangeQueue], me: usize) -> Option<(usize, usize)> {
    loop {
        let victim = queues
            .iter()
            .enumerate()
            .filter(|(t, _)| *t != me)
            .map(|(t, q)| (q.remaining(), t))
            .max()?;
        if victim.0 == 0 {
            return None;
        }
        // The victim may drain between the scan and the steal; retry
        // until a steal lands or everyone is empty.
        if let Some(block) = queues[victim.1].steal_back() {
            return Some(block);
        }
    }
}

#[cfg(not(feature = "rayon"))]
fn steal(_queues: &[RangeQueue], _me: usize) -> Option<(usize, usize)> {
    None
}

/// Maps `f` over `0..n` in parallel, returning results in index order,
/// or the first (lowest-index) [`WorkerPanic`] if any index's closure
/// panicked.
///
/// `f` must be a pure function of its index (derive any randomness
/// from the index, e.g. `SplitMix64::new(mix64(master ^ i as u64))`);
/// the output is then identical for every thread count **and every
/// scheduler** — the work-stealing and fixed-chunk paths agree
/// bit-for-bit, including 1 worker.
///
/// On `Err`, the results of the non-panicking indices are discarded:
/// a deterministic caller re-runs the whole fan-out (or, like the
/// fleet executor, retries at shard granularity instead).
///
/// # Examples
///
/// ```
/// use tscache_core::parallel::try_par_map_indexed;
///
/// let squares = try_par_map_indexed(4, |i| (i * i) as u64).unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9]);
///
/// let err = try_par_map_indexed(4, |i| {
///     if i == 2 {
///         panic!("boom");
///     }
///     i
/// })
/// .unwrap_err();
/// assert_eq!(err.index, 2);
/// assert_eq!(err.message, "boom");
/// ```
pub fn try_par_map_indexed<T, F>(n: usize, f: F) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count().min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(run_isolated(&f, i)?);
        }
        return Ok(out);
    }

    // Per-worker initial ranges: the same contiguous split as the old
    // fixed-chunk scheduler; stealing only redistributes who *computes*
    // an index, never which index feeds which result slot.
    let chunk = n.div_ceil(threads);
    let queues: Vec<RangeQueue> = (0..threads)
        .map(|t| RangeQueue::new((t * chunk).min(n), ((t + 1) * chunk).min(n)))
        .collect();
    let grain = (chunk / 8).clamp(1, 1024);
    let stop = AtomicBool::new(false);
    let panic_slot: Mutex<Option<WorkerPanic>> = Mutex::new(None);

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let parts = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let queues = &queues;
                let stop = &stop;
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    'work: while !stop.load(Ordering::Relaxed) {
                        let block = match queues[t].pop_front(grain) {
                            Some(b) => b,
                            None => match steal(queues, t) {
                                Some(b) => b,
                                None => break 'work,
                            },
                        };
                        for i in block.0..block.1 {
                            if stop.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            match run_isolated(f, i) {
                                Ok(v) => local.push((i, v)),
                                Err(e) => {
                                    record_panic(panic_slot, stop, e);
                                    break 'work;
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    });

    for part in parts {
        match part {
            Ok(pairs) => {
                for (i, v) in pairs {
                    out[i] = Some(v);
                }
            }
            // The worker harness itself panicked (not the closure —
            // that is caught inside): still a typed error.
            Err(p) => record_panic(
                &panic_slot,
                &stop,
                WorkerPanic { index: usize::MAX, message: payload_message(p.as_ref()) },
            ),
        }
    }
    if let Some(e) = panic_slot.into_inner().unwrap() {
        return Err(e);
    }
    Ok(out.into_iter().map(|s| s.expect("worker filled every slot")).collect())
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// Infallible wrapper over [`try_par_map_indexed`]: a worker panic is
/// re-raised on the calling thread with a clean `WorkerPanic` message
/// instead of poisoning the thread scope.
///
/// # Examples
///
/// ```
/// use tscache_core::parallel::par_map_indexed;
///
/// let squares = par_map_indexed(8, |i| (i * i) as u64);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_par_map_indexed(n, f) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Runs two independent closures, in parallel when more than one
/// worker thread is configured; a panic in either surfaces as a typed
/// [`WorkerPanic`] (index 0 = first closure, 1 = second; if both
/// panic, the first wins deterministically).
pub fn try_join<A, B, RA, RB>(a: A, b: B) -> Result<(RA, RB), WorkerPanic>
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    fn catch<T>(i: usize, r: thread::Result<T>) -> Result<T, WorkerPanic> {
        r.map_err(|p| WorkerPanic { index: i, message: payload_message(p.as_ref()) })
    }
    if thread_count() <= 1 {
        let ra = catch(0, panic::catch_unwind(AssertUnwindSafe(a)))?;
        let rb = catch(1, panic::catch_unwind(AssertUnwindSafe(b)))?;
        return Ok((ra, rb));
    }
    let (ra, rb) = thread::scope(|scope| {
        let handle = scope.spawn(|| panic::catch_unwind(AssertUnwindSafe(b)));
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        (ra, handle.join().expect("join-worker harness panicked"))
    });
    Ok((catch(0, ra)?, catch(1, rb)?))
}

/// Runs two independent closures, in parallel when more than one
/// worker thread is configured, and returns both results.
///
/// Infallible wrapper over [`try_join`]; panics with a clean
/// [`WorkerPanic`] message if either closure panicked.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match try_join(a, b) {
        Ok(pair) => pair,
        Err(e) => panic!("{e}"),
    }
}

/// A drained permutation of `0..n`: the order in which a work-stealing
/// run with `workers` hypothetical workers *could* complete indices.
/// Used by robustness tests to prove completion order cannot reach
/// results; callers wanting real scheduling jitter use the pool above.
pub fn scrambled_indices(n: usize, seed: u64) -> Vec<usize> {
    use crate::prng::{mix64, Prng, SplitMix64};
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SplitMix64::new(mix64(seed ^ 0x5c4a_3b1e));
    // Fisher–Yates with the deterministic stream.
    for i in (1..n).rev() {
        let j = rng.below(i as u32 + 1) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::{mix64, Prng, SplitMix64};

    #[test]
    fn results_are_in_index_order() {
        let v = par_map_indexed(100, |i| i);
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn per_index_streams_are_thread_count_independent() {
        // Not a real test of concurrency (the container may have one
        // core); asserts the contract: same per-index derivation, same
        // output vector.
        let run = || par_map_indexed(64, |i| SplitMix64::new(mix64(0xabc ^ i as u64)).next_u64());
        assert_eq!(run(), run());
    }

    #[test]
    fn uneven_work_completes_and_stays_ordered() {
        // Heterogeneous per-index cost: the work-stealing path must
        // still produce index-ordered results.
        let v = par_map_indexed(257, |i| {
            let spin = if i % 31 == 0 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(0x9e37_79b9).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(v, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error() {
        let err = try_par_map_indexed(64, |i| {
            if i == 13 {
                panic!("injected fault at {i}");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.index, 13);
        assert!(err.message.contains("injected fault"));
        assert!(err.to_string().contains("index 13"));
    }

    #[test]
    fn lowest_panicking_index_wins() {
        // Every index panics; the reported index must be 0 regardless
        // of scheduling (the deterministic-winner rule).
        let err = try_par_map_indexed(32, |i| -> usize { panic!("fault {i}") }).unwrap_err();
        assert_eq!(err.index, 0);
    }

    #[test]
    fn panicking_wrapper_raises_clean_message() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(8, |i| if i == 3 { panic!("shard died") } else { i })
        })
        .unwrap_err();
        let msg = payload_message(caught.as_ref());
        assert!(msg.contains("index 3") && msg.contains("shard died"), "got: {msg}");
    }

    #[test]
    fn fan_out_survives_panic_and_reruns_clean() {
        // The poisoning regression: after a panicked fan-out, the next
        // fan-out on the same thread must work normally.
        let _ = try_par_map_indexed(16, |i| -> usize {
            if i == 5 {
                panic!("first run dies")
            } else {
                i
            }
        });
        assert_eq!(par_map_indexed(16, |i| i * 2), (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn try_join_reports_panicking_side() {
        let err = try_join(|| 1, || -> u32 { panic!("right side died") }).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.message.contains("right side died"));
        let err = try_join(|| -> u32 { panic!("left") }, || 2).unwrap_err();
        assert_eq!(err.index, 0);
    }

    #[test]
    fn scrambled_indices_is_a_permutation() {
        let order = scrambled_indices(100, 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_eq!(order, scrambled_indices(100, 7));
        assert_ne!(order, scrambled_indices(100, 8));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
