//! PMU-style observability: counting-mode counter snapshots with
//! delta-safe arithmetic and op-window sampling.
//!
//! Real detectors (BarnOwlD-style) do not trace individual accesses —
//! they read a handful of aggregated performance counters at coarse
//! boundaries and reason about *deltas*. This module is that interface
//! over the simulated platform: [`PmuSnapshot`] captures every
//! monitored counter (per-level accesses, misses, writebacks,
//! cross-process evictions, coherence invalidations, plus bus-wait and
//! cycle totals) in one cheap copy, [`PmuSnapshot::delta`] subtracts
//! two snapshots with saturating, monotonicity-checked arithmetic, and
//! [`PmuSampler`] turns a stream of "N ops retired" notifications into
//! window-boundary deltas without touching the per-access fast path.
//!
//! Delta safety is the point: counters are plain `u64`s that a future
//! `reset_stats`/`reset_counters` call can rewind, and a raw `a - b`
//! would underflow-panic a report (the exact bug class PR 7 fixes in
//! the RTOS report path). Every subtraction here saturates at zero and
//! records the violation in [`PmuDelta::monotone`] instead of crashing.

use crate::hierarchy::Hierarchy;
use crate::stats::CacheStats;

/// Saturating counter subtraction for scalar before/after pairs
/// (cycle counts, contention totals). Never underflows: a rewound
/// counter yields `0`, not a panic.
#[inline]
pub fn delta_u64(after: u64, before: u64) -> u64 {
    after.saturating_sub(before)
}

#[inline]
fn sub_checked(after: u64, before: u64, monotone: &mut bool) -> u64 {
    if after < before {
        *monotone = false;
    }
    after.saturating_sub(before)
}

/// One monitored cache level's counter image — the PMU event registers
/// a counting-mode daemon would read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmuCounters {
    /// Total accesses (hits + misses).
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty-line writebacks toward the next level.
    pub writebacks: u64,
    /// Evictions that displaced a *different* process's line — the
    /// Prime+Probe contention signal.
    pub cross_process_evictions: u64,
    /// Line copies invalidated by coherence actions (flush broadcasts,
    /// upgrades, inclusive back-invalidations) — the Flush+Reload
    /// signal.
    pub coh_invalidations: u64,
}

impl PmuCounters {
    /// Reads the monitored events out of one cache's statistics block.
    pub fn from_stats(stats: &CacheStats) -> Self {
        PmuCounters {
            accesses: stats.accesses(),
            misses: stats.misses(),
            writebacks: stats.writebacks(),
            cross_process_evictions: stats.cross_process_evictions(),
            coh_invalidations: stats.coh_invalidations(),
        }
    }

    fn delta(&self, before: &PmuCounters, monotone: &mut bool) -> PmuCounters {
        PmuCounters {
            accesses: sub_checked(self.accesses, before.accesses, monotone),
            misses: sub_checked(self.misses, before.misses, monotone),
            writebacks: sub_checked(self.writebacks, before.writebacks, monotone),
            cross_process_evictions: sub_checked(
                self.cross_process_evictions,
                before.cross_process_evictions,
                monotone,
            ),
            coh_invalidations: sub_checked(
                self.coh_invalidations,
                before.coh_invalidations,
                monotone,
            ),
        }
    }

    fn accumulate(&mut self, other: &PmuCounters) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.cross_process_evictions += other.cross_process_evictions;
        self.coh_invalidations += other.coh_invalidations;
    }
}

/// A point-in-time image of every monitored counter: one
/// [`PmuCounters`] per cache level plus the scalar bus-wait and cycle
/// totals. Capturing is a handful of `u64` copies — cheap enough for
/// window boundaries, never done per access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PmuSnapshot {
    /// Per-level counters, in hierarchy order (L1I, L1D, unified
    /// levels, then any extra levels appended via
    /// [`with_level`](Self::with_level) — e.g. a shared LLC).
    pub levels: Vec<PmuCounters>,
    /// Cycles lost to shared-bus queuing and MSHR stalls.
    pub bus_wait_cycles: u64,
    /// Total cycles elapsed on the monitored core.
    pub cycles: u64,
}

impl PmuSnapshot {
    /// Captures every private level of `hierarchy` (L1I, L1D, unified
    /// levels in order). Shared levels and scalar counters live outside
    /// the hierarchy; append them with [`with_level`](Self::with_level)
    /// / [`with_bus_wait`](Self::with_bus_wait) /
    /// [`with_cycles`](Self::with_cycles).
    pub fn capture(hierarchy: &Hierarchy) -> Self {
        let mut levels = vec![
            PmuCounters::from_stats(hierarchy.l1i().stats()),
            PmuCounters::from_stats(hierarchy.l1d().stats()),
        ];
        levels.extend(hierarchy.unified_levels().map(|c| PmuCounters::from_stats(c.stats())));
        PmuSnapshot { levels, bus_wait_cycles: 0, cycles: 0 }
    }

    /// Builds a snapshot from explicit per-level statistics — for
    /// monitoring sources that are bare [`crate::cache::Cache`]s rather
    /// than a full hierarchy (e.g. the single-cache Prime+Probe
    /// campaign).
    pub fn from_level_stats(levels: &[CacheStats]) -> Self {
        PmuSnapshot {
            levels: levels.iter().map(PmuCounters::from_stats).collect(),
            bus_wait_cycles: 0,
            cycles: 0,
        }
    }

    /// Appends one more monitored level (e.g. the shared LLC).
    pub fn with_level(mut self, stats: &CacheStats) -> Self {
        self.levels.push(PmuCounters::from_stats(stats));
        self
    }

    /// Sets the bus-wait cycle counter.
    pub fn with_bus_wait(mut self, cycles: u64) -> Self {
        self.bus_wait_cycles = cycles;
        self
    }

    /// Sets the elapsed-cycles counter.
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Subtracts `before` from `self`, level by level, with saturating
    /// arithmetic. Any underflow (a rewound counter) or level-count
    /// mismatch clears [`PmuDelta::monotone`] instead of panicking;
    /// mismatched snapshots compare over their common level prefix.
    pub fn delta(&self, before: &PmuSnapshot) -> PmuDelta {
        let mut monotone = self.levels.len() == before.levels.len();
        let levels = self
            .levels
            .iter()
            .zip(&before.levels)
            .map(|(after, b)| after.delta(b, &mut monotone))
            .collect();
        PmuDelta {
            levels,
            bus_wait_cycles: sub_checked(
                self.bus_wait_cycles,
                before.bus_wait_cycles,
                &mut monotone,
            ),
            cycles: sub_checked(self.cycles, before.cycles, &mut monotone),
            monotone,
        }
    }
}

/// The difference between two [`PmuSnapshot`]s — what happened in one
/// observation window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PmuDelta {
    /// Per-level counter deltas (same order as the snapshots).
    pub levels: Vec<PmuCounters>,
    /// Bus-wait cycles accrued in the window.
    pub bus_wait_cycles: u64,
    /// Cycles elapsed in the window.
    pub cycles: u64,
    /// `false` when any counter went backwards (or the snapshots had
    /// different level counts) and the delta was clamped — the signal
    /// that a reset happened mid-window and the numbers are a floor,
    /// not an exact count.
    pub monotone: bool,
}

impl PmuDelta {
    /// Sums the per-level deltas into one aggregate counter block.
    pub fn total(&self) -> PmuCounters {
        let mut total = PmuCounters::default();
        for level in &self.levels {
            total.accumulate(level);
        }
        total
    }

    /// Aggregate accesses across all monitored levels.
    pub fn accesses(&self) -> u64 {
        self.total().accesses
    }

    /// Aggregate misses across all monitored levels.
    pub fn misses(&self) -> u64 {
        self.total().misses
    }

    /// Aggregate miss rate in `[0, 1]`; 0 for an empty window. Clamped
    /// at 1 — counter skew on a non-monotone delta could otherwise
    /// leave more miss delta than access delta.
    pub fn miss_rate(&self) -> f64 {
        let t = self.total();
        if t.accesses == 0 {
            0.0
        } else {
            (t.misses as f64 / t.accesses as f64).min(1.0)
        }
    }

    /// Coherence invalidations per access; 0 for an empty window.
    pub fn inval_rate(&self) -> f64 {
        let t = self.total();
        if t.accesses == 0 {
            0.0
        } else {
            t.coh_invalidations as f64 / t.accesses as f64
        }
    }

    /// Cross-process evictions per access; 0 for an empty window.
    pub fn cross_eviction_rate(&self) -> f64 {
        let t = self.total();
        if t.accesses == 0 {
            0.0
        } else {
            t.cross_process_evictions as f64 / t.accesses as f64
        }
    }
}

/// Counting-mode window sampler: accumulate "ops retired" ticks on the
/// fast path (one integer add), and only when a window's worth has
/// passed does the caller capture a snapshot and [`cut`](Self::cut)
/// the delta. Nothing here runs per access.
#[derive(Debug, Clone)]
pub struct PmuSampler {
    window_ops: u64,
    pending_ops: u64,
    windows: u64,
    baseline: PmuSnapshot,
}

impl PmuSampler {
    /// Creates a sampler emitting one delta per `window_ops` retired
    /// operations (clamped to ≥ 1), baselined at `initial`.
    pub fn new(window_ops: u64, initial: PmuSnapshot) -> Self {
        PmuSampler { window_ops: window_ops.max(1), pending_ops: 0, windows: 0, baseline: initial }
    }

    /// The configured window length in ops.
    pub fn window_ops(&self) -> u64 {
        self.window_ops
    }

    /// Windows cut so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Credits `ops` retired operations; returns `true` when a full
    /// window has accumulated and the caller should capture a snapshot
    /// and [`cut`](Self::cut). This is the entire fast-path cost.
    #[inline]
    pub fn note_ops(&mut self, ops: u64) -> bool {
        self.pending_ops = self.pending_ops.saturating_add(ops);
        self.pending_ops >= self.window_ops
    }

    /// Closes the current window at `now`: returns the delta since the
    /// baseline and re-baselines on `now`.
    pub fn cut(&mut self, now: PmuSnapshot) -> PmuDelta {
        let delta = now.delta(&self.baseline);
        self.baseline = now;
        self.pending_ops = 0;
        self.windows += 1;
        delta
    }

    /// Moves the baseline to `now` without emitting a window — for
    /// boundaries whose counter churn is *expected* (e.g. an OS-owned
    /// hyperperiod flush) and must not pollute the next delta.
    pub fn rebaseline(&mut self, now: PmuSnapshot) {
        self.baseline = now;
        self.pending_ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(hits: u64, misses: u64) -> CacheStats {
        let mut s = CacheStats::new();
        for _ in 0..hits {
            s.record_hit();
        }
        for _ in 0..misses {
            s.record_miss(false);
        }
        s
    }

    #[test]
    fn delta_of_monotone_counters_is_exact() {
        let before = PmuSnapshot::from_level_stats(&[stats_with(10, 2)]);
        let after = PmuSnapshot::from_level_stats(&[stats_with(30, 10)]).with_cycles(500);
        let d = after.delta(&before);
        assert!(d.monotone);
        assert_eq!(d.accesses(), 28);
        assert_eq!(d.misses(), 8);
        assert_eq!(d.cycles, 500);
        assert!((d.miss_rate() - 8.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn rewound_counter_saturates_and_clears_monotone() {
        let before = PmuSnapshot::from_level_stats(&[stats_with(100, 50)]).with_cycles(1_000);
        let after = PmuSnapshot::from_level_stats(&[stats_with(3, 1)]).with_cycles(1_200);
        let d = after.delta(&before);
        assert!(!d.monotone, "counter rewind must be flagged");
        assert_eq!(d.misses(), 0, "underflow must clamp to zero, not wrap");
        assert_eq!(d.cycles, 200, "untouched counters still subtract exactly");
    }

    #[test]
    fn level_count_mismatch_is_flagged_not_fatal() {
        let before = PmuSnapshot::from_level_stats(&[stats_with(1, 0), stats_with(2, 0)]);
        let after = PmuSnapshot::from_level_stats(&[stats_with(5, 1)]);
        let d = after.delta(&before);
        assert!(!d.monotone);
        assert_eq!(d.levels.len(), 1, "compares over the common prefix");
        assert_eq!(d.accesses(), 5);
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let d = PmuDelta { monotone: true, ..PmuDelta::default() };
        assert_eq!(d.miss_rate(), 0.0);
        assert_eq!(d.inval_rate(), 0.0);
        assert_eq!(d.cross_eviction_rate(), 0.0);
    }

    #[test]
    fn sampler_cuts_at_window_boundaries_only() {
        let mut sampler = PmuSampler::new(100, PmuSnapshot::from_level_stats(&[stats_with(0, 0)]));
        assert!(!sampler.note_ops(60));
        assert!(!sampler.note_ops(39));
        assert!(sampler.note_ops(1), "100 ops is a full window");
        let d = sampler.cut(PmuSnapshot::from_level_stats(&[stats_with(7, 3)]));
        assert!(d.monotone);
        assert_eq!(d.misses(), 3);
        assert_eq!(sampler.windows(), 1);
        assert!(!sampler.note_ops(99), "cut resets the pending-op count");
    }

    #[test]
    fn sampler_cut_rebaselines_on_now() {
        let s0 = PmuSnapshot::from_level_stats(&[stats_with(0, 0)]);
        let s1 = PmuSnapshot::from_level_stats(&[stats_with(10, 4)]);
        let s2 = PmuSnapshot::from_level_stats(&[stats_with(15, 5)]);
        let mut sampler = PmuSampler::new(1, s0);
        sampler.note_ops(1);
        assert_eq!(sampler.cut(s1).misses(), 4);
        sampler.note_ops(1);
        assert_eq!(sampler.cut(s2).misses(), 1, "second window counts only its own misses");
    }

    #[test]
    fn rebaseline_swallows_expected_churn() {
        let s0 = PmuSnapshot::from_level_stats(&[stats_with(0, 0)]);
        let flushy = PmuSnapshot::from_level_stats(&[stats_with(0, 1_000)]);
        let after = PmuSnapshot::from_level_stats(&[stats_with(5, 1_002)]);
        let mut sampler = PmuSampler::new(1, s0);
        sampler.rebaseline(flushy);
        sampler.note_ops(1);
        let d = sampler.cut(after);
        assert_eq!(d.misses(), 2, "the flush transient must not leak into the window");
        assert_eq!(sampler.windows(), 1, "rebaseline itself emits no window");
    }

    #[test]
    fn capture_orders_levels_l1i_l1d_then_unified() {
        let h = crate::setup::SetupKind::TsCache.build(0xfeed);
        let snap = PmuSnapshot::capture(&h);
        assert_eq!(snap.levels.len(), 3, "paper platform: L1I + L1D + L2");
        assert_eq!(snap.levels[0], PmuCounters::from_stats(h.l1i().stats()));
        assert_eq!(snap.levels[1], PmuCounters::from_stats(h.l1d().stats()));
    }

    #[test]
    fn delta_u64_saturates() {
        assert_eq!(delta_u64(10, 3), 7);
        assert_eq!(delta_u64(3, 10), 0);
    }
}
