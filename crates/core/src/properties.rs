//! Empirical checkers for the MBPTA and SCA placement properties the
//! paper defines (`mbpta-p1/p2/p3`, `sca-p1` — §2) and uses to assess
//! each cache design (§3–§4).
//!
//! These run a policy over sampled addresses and seeds and report which
//! properties hold, regenerating the paper's qualitative compliance
//! analysis as a measurable artefact (see the `tab_compliance_matrix`
//! harness).

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::placement::{MbptaClass, Placement, PlacementKind};
use crate::prng::{mix64, Prng, SplitMix64};
use crate::seed::Seed;
use core::fmt;

/// Outcome of the empirical property checks for one placement policy.
#[derive(Debug, Clone)]
pub struct PlacementProperties {
    /// Policy under test.
    pub policy: PlacementKind,
    /// The class the implementation claims (paper analysis).
    pub declared_class: MbptaClass,
    /// mbpta-p2(1): an address relocates across seeds.
    pub relocates_across_seeds: bool,
    /// mbpta-p2(2) for arbitrary address pairs (including same modulo
    /// index): collisions both occur and don't occur across seeds.
    pub pairwise_conflicts_randomized: bool,
    /// The §3 failure mode: the pairwise collision relation is
    /// identical under every seed.
    pub conflict_structure_seed_invariant: bool,
    /// mbpta-p3(1): lines of one page never collide (any seed).
    pub intra_page_conflict_free: bool,
    /// mbpta-p3(2): cross-page pairs collide for some seeds only.
    pub cross_page_conflicts_randomized: bool,
    /// sca-p1 precondition: with *different* seeds for victim and
    /// attacker, cross-process conflicts are randomized.
    pub cross_seed_contention_randomized: bool,
    /// Chi-square statistic of one address's placement over seeds
    /// (uniformity; degrees of freedom = sets − 1).
    pub uniformity_chi2: f64,
    /// Degrees of freedom for `uniformity_chi2`.
    pub uniformity_dof: u32,
}

impl PlacementProperties {
    /// The MBPTA class the measurements support.
    pub fn empirical_class(&self) -> MbptaClass {
        if !self.relocates_across_seeds {
            MbptaClass::Deterministic
        } else if self.pairwise_conflicts_randomized {
            MbptaClass::FullRandom
        } else if self.intra_page_conflict_free && self.cross_page_conflicts_randomized {
            MbptaClass::PartialApop
        } else {
            MbptaClass::AddressDependent
        }
    }

    /// Whether the empirical class satisfies MBPTA requirements.
    pub fn mbpta_compliant(&self) -> bool {
        self.empirical_class().is_mbpta_compliant()
    }

    /// Whether the design defeats contention attacks when the OS gives
    /// victim and attacker different seeds (the TSCache argument, §5).
    pub fn sca_robust_with_unique_seeds(&self) -> bool {
        self.cross_seed_contention_randomized
    }

    /// Whether measurements match the declared class.
    pub fn consistent_with_declared(&self) -> bool {
        self.empirical_class() == self.declared_class
    }
}

impl fmt::Display for PlacementProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy: {}", self.policy)?;
        writeln!(f, "  declared:   {}", self.declared_class)?;
        writeln!(f, "  empirical:  {}", self.empirical_class())?;
        writeln!(f, "  relocates across seeds:      {}", self.relocates_across_seeds)?;
        writeln!(f, "  pairwise conflicts random:   {}", self.pairwise_conflicts_randomized)?;
        writeln!(f, "  conflict structure invariant: {}", self.conflict_structure_seed_invariant)?;
        writeln!(f, "  intra-page conflict free:    {}", self.intra_page_conflict_free)?;
        writeln!(f, "  cross-page conflicts random: {}", self.cross_page_conflicts_randomized)?;
        writeln!(f, "  cross-seed contention random: {}", self.cross_seed_contention_randomized)?;
        write!(f, "  uniformity chi2: {:.1} ({} dof)", self.uniformity_chi2, self.uniformity_dof)
    }
}

/// Parameters for the property checks.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of seeds sampled per check.
    pub seeds: u32,
    /// Number of address pairs sampled per check.
    pub pairs: u32,
    /// Page size in bits (paper platform: 4 KiB pages).
    pub page_bits: u32,
    /// RNG seed for sampling.
    pub rng_seed: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        // 2048 seeds keep the false-negative probability of the
        // collide/split existence checks negligible: a pair colliding
        // with probability 1/128 misses all 2048 draws with
        // probability e^-16 ≈ 1e-7.
        CheckConfig { seeds: 2048, pairs: 48, page_bits: 12, rng_seed: 0x70707 }
    }
}

/// Runs all property checks for `kind` on `geom`.
///
/// # Examples
///
/// ```
/// use tscache_core::geometry::CacheGeometry;
/// use tscache_core::placement::{MbptaClass, PlacementKind};
/// use tscache_core::properties::{check_placement, CheckConfig};
///
/// let report = check_placement(
///     PlacementKind::RandomModulo,
///     &CacheGeometry::paper_l1(),
///     &CheckConfig::default(),
/// );
/// assert_eq!(report.empirical_class(), MbptaClass::PartialApop);
/// assert!(report.mbpta_compliant());
/// ```
pub fn check_placement(
    kind: PlacementKind,
    geom: &CacheGeometry,
    cfg: &CheckConfig,
) -> PlacementProperties {
    let mut policy = kind.build(geom);
    let mut rng = SplitMix64::new(cfg.rng_seed);
    let lines_per_page = 1u64 << (cfg.page_bits - geom.offset_bits());

    let relocates = check_relocation(policy.as_mut(), cfg, &mut rng);
    let (pair_random, structure_invariant) =
        check_pairwise(policy.as_mut(), geom, cfg, &mut rng, lines_per_page);
    let intra_page_free = check_intra_page(policy.as_mut(), geom, cfg, lines_per_page);
    let cross_page_random = check_cross_page(policy.as_mut(), cfg, &mut rng, lines_per_page);
    let cross_seed_random = check_cross_seed(policy.as_mut(), cfg, &mut rng);
    let (chi2, dof) = uniformity_chi2(policy.as_mut(), geom, cfg);

    PlacementProperties {
        policy: kind,
        declared_class: policy.mbpta_class(),
        relocates_across_seeds: relocates,
        pairwise_conflicts_randomized: pair_random,
        conflict_structure_seed_invariant: structure_invariant,
        intra_page_conflict_free: intra_page_free,
        cross_page_conflicts_randomized: cross_page_random,
        cross_seed_contention_randomized: cross_seed_random,
        uniformity_chi2: chi2,
        uniformity_dof: dof,
    }
}

fn sample_seeds(cfg: &CheckConfig) -> impl Iterator<Item = Seed> + '_ {
    (0..cfg.seeds as u64).map(move |i| Seed::new(mix64(cfg.rng_seed ^ i)))
}

fn check_relocation(policy: &mut dyn Placement, cfg: &CheckConfig, rng: &mut SplitMix64) -> bool {
    // mbpta-p2(1): sampled addresses must occupy >1 set across seeds.
    (0..16).all(|_| {
        let line = LineAddr::new(rng.next_u64() >> 16);
        let mut sets = std::collections::BTreeSet::new();
        for seed in sample_seeds(cfg) {
            sets.insert(policy.place(line, seed));
        }
        sets.len() > 1
    })
}

fn check_pairwise(
    policy: &mut dyn Placement,
    geom: &CacheGeometry,
    cfg: &CheckConfig,
    rng: &mut SplitMix64,
    lines_per_page: u64,
) -> (bool, bool) {
    // Sample pairs of both flavours: same modulo index (the contention
    // pairs attackers need) and arbitrary.
    let mut all_pairs_randomized = true;
    let mut structure_invariant = true;
    for p in 0..cfg.pairs {
        let base = rng.next_u64() >> 16;
        let a = LineAddr::new(base);
        let b = if p % 2 == 0 {
            // Same modulo index, different tag — and different page so
            // RM's intra-page exemption doesn't apply.
            LineAddr::new(base + geom.sets() as u64 * lines_per_page.max(1))
        } else {
            LineAddr::new(base ^ (1 + (rng.next_u64() & 0xff)))
        };
        if a == b {
            continue;
        }
        let mut collide = 0u32;
        let mut split = 0u32;
        for seed in sample_seeds(cfg) {
            if policy.place(a, seed) == policy.place(b, seed) {
                collide += 1;
            } else {
                split += 1;
            }
        }
        if collide == 0 || split == 0 {
            all_pairs_randomized = false;
        }
        if collide != 0 && split != 0 {
            structure_invariant = false;
        }
    }
    (all_pairs_randomized, structure_invariant)
}

fn check_intra_page(
    policy: &mut dyn Placement,
    geom: &CacheGeometry,
    cfg: &CheckConfig,
    lines_per_page: u64,
) -> bool {
    // mbpta-p3(1): within a page, all lines land in distinct sets — for
    // every sampled seed. Only meaningful when a page fits in one way.
    if lines_per_page > geom.sets() as u64 {
        return false;
    }
    for seed in sample_seeds(cfg).take(32) {
        for page in [0u64, 3, 17] {
            let mut seen = vec![false; geom.sets() as usize];
            for i in 0..lines_per_page {
                let set = policy.place(LineAddr::new(page * lines_per_page + i), seed) as usize;
                if seen[set] {
                    return false;
                }
                seen[set] = true;
            }
        }
    }
    true
}

fn check_cross_page(
    policy: &mut dyn Placement,
    cfg: &CheckConfig,
    rng: &mut SplitMix64,
    lines_per_page: u64,
) -> bool {
    for _ in 0..cfg.pairs {
        let a = LineAddr::new(rng.next_u64() >> 16);
        let pages_apart = 1 + (rng.next_u64() & 0x7);
        let b = LineAddr::new(a.as_u64() + pages_apart * lines_per_page);
        let mut collide = 0u32;
        let mut split = 0u32;
        for seed in sample_seeds(cfg) {
            if policy.place(a, seed) == policy.place(b, seed) {
                collide += 1;
            } else {
                split += 1;
            }
        }
        if collide == 0 || split == 0 {
            return false;
        }
    }
    true
}

fn check_cross_seed(policy: &mut dyn Placement, cfg: &CheckConfig, rng: &mut SplitMix64) -> bool {
    // sca-p1 precondition: victim line under seed s1 vs attacker line
    // under seed s2 — collisions must vary across (s1, s2) draws.
    for _ in 0..16 {
        let a = LineAddr::new(rng.next_u64() >> 16);
        let b = LineAddr::new(rng.next_u64() >> 16);
        let mut collide = 0u32;
        let mut split = 0u32;
        for i in 0..cfg.seeds as u64 {
            let s1 = Seed::new(mix64(cfg.rng_seed ^ (2 * i)));
            let s2 = Seed::new(mix64(cfg.rng_seed ^ (2 * i + 1)));
            if policy.place(a, s1) == policy.place(b, s2) {
                collide += 1;
            } else {
                split += 1;
            }
        }
        if collide == 0 || split == 0 {
            return false;
        }
    }
    true
}

fn uniformity_chi2(
    policy: &mut dyn Placement,
    geom: &CacheGeometry,
    cfg: &CheckConfig,
) -> (f64, u32) {
    let line = LineAddr::new(0xabc_def);
    let mut counts = vec![0u32; geom.sets() as usize];
    let draws = (cfg.seeds as u64).max(64 * geom.sets() as u64);
    for i in 0..draws {
        let seed = Seed::new(mix64(cfg.rng_seed ^ (i.wrapping_mul(0x9e37))));
        counts[policy.place(line, seed) as usize] += 1;
    }
    let expected = draws as f64 / geom.sets() as f64;
    let chi2 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    (chi2, geom.sets() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(kind: PlacementKind) -> PlacementProperties {
        check_placement(kind, &CacheGeometry::paper_l1(), &CheckConfig::default())
    }

    #[test]
    fn modulo_is_deterministic() {
        let r = check(PlacementKind::Modulo);
        assert_eq!(r.empirical_class(), MbptaClass::Deterministic);
        assert!(!r.mbpta_compliant());
        assert!(!r.relocates_across_seeds);
        assert!(r.conflict_structure_seed_invariant);
        assert!(!r.sca_robust_with_unique_seeds());
        assert!(r.consistent_with_declared());
    }

    #[test]
    fn xor_index_is_address_dependent() {
        // The §3 analysis of the Aciicmez scheme: addresses relocate
        // but the conflict structure never changes.
        let r = check(PlacementKind::XorIndex);
        assert_eq!(r.empirical_class(), MbptaClass::AddressDependent);
        assert!(r.relocates_across_seeds);
        assert!(r.conflict_structure_seed_invariant);
        assert!(!r.mbpta_compliant());
        assert!(r.consistent_with_declared());
    }

    #[test]
    fn rpcache_is_address_dependent() {
        let r = check(PlacementKind::RpCache);
        assert_eq!(r.empirical_class(), MbptaClass::AddressDependent);
        assert!(r.conflict_structure_seed_invariant);
        assert!(!r.mbpta_compliant());
        // But with per-process tables, cross-process contention IS
        // randomized (its security mechanism).
        assert!(r.sca_robust_with_unique_seeds());
    }

    #[test]
    fn hash_rp_achieves_full_randomness() {
        let r = check(PlacementKind::HashRp);
        assert_eq!(r.empirical_class(), MbptaClass::FullRandom);
        assert!(r.mbpta_compliant());
        assert!(r.sca_robust_with_unique_seeds());
        assert!(!r.conflict_structure_seed_invariant);
        assert!(r.consistent_with_declared());
    }

    #[test]
    fn random_modulo_achieves_partial_apop() {
        let r = check(PlacementKind::RandomModulo);
        assert_eq!(r.empirical_class(), MbptaClass::PartialApop);
        assert!(r.intra_page_conflict_free);
        assert!(r.cross_page_conflicts_randomized);
        assert!(r.mbpta_compliant());
        assert!(r.sca_robust_with_unique_seeds());
        assert!(r.consistent_with_declared());
    }

    #[test]
    fn ideal_random_is_fully_random() {
        let r = check(PlacementKind::IdealRandom);
        assert_eq!(r.empirical_class(), MbptaClass::FullRandom);
        // Chi-square within a loose bound of the 127-dof expectation.
        assert!(r.uniformity_chi2 < 250.0, "chi2 {}", r.uniformity_chi2);
    }

    #[test]
    fn display_contains_key_lines() {
        let r = check(PlacementKind::Modulo);
        let s = r.to_string();
        assert!(s.contains("policy: modulo"));
        assert!(s.contains("empirical"));
    }
}
