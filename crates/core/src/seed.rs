//! Placement seeds and process identifiers.
//!
//! A [`Seed`] parameterizes randomized placement: the same (address,
//! seed) pair always maps to the same set, and drawing a fresh seed
//! re-randomizes the whole cache layout (paper §2.1). A [`ProcessId`]
//! names a software unit (an AUTOSAR SWC in the paper's OS model); the
//! TSCache proposal keys seeds by process so attacker and victim layouts
//! are independent (paper §5).

use crate::prng::{mix64, Prng};
use core::fmt;

/// A 64-bit placement seed.
///
/// # Examples
///
/// ```
/// use tscache_core::seed::Seed;
///
/// let s = Seed::new(0xdead_beef);
/// assert_eq!(s.as_u64(), 0xdead_beef);
/// // Derived sub-seeds are deterministic but uncorrelated:
/// assert_ne!(s.derive(0).as_u64(), s.derive(1).as_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Seed(u64);

impl Seed {
    /// The all-zero seed (used by deterministic setups, which ignore it).
    pub const ZERO: Seed = Seed(0);

    /// Creates a seed from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Seed(raw)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Draws a fresh random seed from `rng`.
    pub fn random<R: Prng>(rng: &mut R) -> Self {
        Seed(rng.next_u64())
    }

    /// Derives a decorrelated sub-seed, e.g. one per cache level from a
    /// single per-process seed.
    #[inline]
    pub const fn derive(self, stream: u64) -> Seed {
        Seed(mix64(self.0 ^ mix64(stream.wrapping_add(0xa076_1d64_78bd_642f))))
    }
}

impl fmt::Display for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed:{:#018x}", self.0)
    }
}

impl From<u64> for Seed {
    fn from(raw: u64) -> Self {
        Seed(raw)
    }
}

/// Identifier of a software unit (process / AUTOSAR SWC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcessId(u16);

impl ProcessId {
    /// The conventional id for the OS itself (paper §5 reserves a seed
    /// for OS invocations).
    pub const OS: ProcessId = ProcessId(0);

    /// Creates a process id.
    #[inline]
    pub const fn new(id: u16) -> Self {
        ProcessId(id)
    }

    /// Returns the raw id.
    #[inline]
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the id as a usize, for table indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(raw: u16) -> Self {
        ProcessId(raw)
    }
}

/// Per-process seed registers of one cache, as the TSCache OS support
/// maintains them (paper Fig. 3: seeds are saved/restored on context
/// switches between SWCs).
#[derive(Debug, Clone, Default)]
pub struct SeedTable {
    seeds: Vec<(ProcessId, Seed)>,
}

impl SeedTable {
    /// Creates an empty table; unknown processes read [`Seed::ZERO`].
    pub fn new() -> Self {
        SeedTable { seeds: Vec::new() }
    }

    /// Sets (or replaces) the seed of `pid`.
    pub fn set(&mut self, pid: ProcessId, seed: Seed) {
        if let Some(entry) = self.seeds.iter_mut().find(|(p, _)| *p == pid) {
            entry.1 = seed;
        } else {
            self.seeds.push((pid, seed));
        }
    }

    /// Returns the seed of `pid`, or [`Seed::ZERO`] if never set.
    pub fn get(&self, pid: ProcessId) -> Seed {
        self.seeds.iter().find(|(p, _)| *p == pid).map(|(_, s)| *s).unwrap_or(Seed::ZERO)
    }

    /// Sets every known process to the same seed (the "shared seed"
    /// configuration that makes plain MBPTA caches attackable, §4).
    pub fn set_all(&mut self, seed: Seed) {
        for entry in &mut self.seeds {
            entry.1 = seed;
        }
    }

    /// Iterates over `(pid, seed)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Seed)> + '_ {
        self.seeds.iter().copied()
    }

    /// Number of processes with an explicit seed.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no process has an explicit seed.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;

    #[test]
    fn derive_is_deterministic_and_stream_separated() {
        let s = Seed::new(42);
        assert_eq!(s.derive(3), s.derive(3));
        assert_ne!(s.derive(0), s.derive(1));
        assert_ne!(Seed::new(1).derive(0), Seed::new(2).derive(0));
    }

    #[test]
    fn random_seed_uses_rng_stream() {
        let mut r1 = SplitMix64::new(9);
        let mut r2 = SplitMix64::new(9);
        assert_eq!(Seed::random(&mut r1), Seed::random(&mut r2));
    }

    #[test]
    fn seed_table_defaults_to_zero() {
        let t = SeedTable::new();
        assert_eq!(t.get(ProcessId::new(5)), Seed::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn seed_table_set_get_replace() {
        let mut t = SeedTable::new();
        let p = ProcessId::new(1);
        t.set(p, Seed::new(10));
        assert_eq!(t.get(p), Seed::new(10));
        t.set(p, Seed::new(20));
        assert_eq!(t.get(p), Seed::new(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn seed_table_set_all_overwrites_known_only() {
        let mut t = SeedTable::new();
        t.set(ProcessId::new(1), Seed::new(1));
        t.set(ProcessId::new(2), Seed::new(2));
        t.set_all(Seed::new(7));
        assert_eq!(t.get(ProcessId::new(1)), Seed::new(7));
        assert_eq!(t.get(ProcessId::new(2)), Seed::new(7));
        assert_eq!(t.get(ProcessId::new(3)), Seed::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId::new(3).to_string(), "pid:3");
        assert!(Seed::new(0xff).to_string().starts_with("seed:0x"));
    }
}
