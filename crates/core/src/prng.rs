//! Deterministic pseudo-random number generators.
//!
//! Random caches need a hardware-friendly PRNG to draw seeds and random
//! replacement victims (paper §2.1 cites IEC-61508-compliant PRNGs, reference \[3\]).
//! We provide three generators:
//!
//! * [`SplitMix64`] — the de-facto standard 64-bit mixer; also the
//!   stateless [`mix64`] finalizer used by placement hashes.
//! * [`Xoroshiro128pp`] — fast, high-quality general-purpose stream.
//! * [`Lfsr32`] — a 32-bit maximal-length Galois LFSR, the kind of
//!   generator that fits in a few gates of cache control logic.
//!
//! All generators are deterministic functions of their 64-bit seed, so
//! every experiment in this repository is bit-reproducible.

/// Stateless 64-bit finalizer (the SplitMix64 output function).
///
/// Used by placement policies as an idealized random hash: it is a
/// bijection on `u64`, and flipping any input bit flips each output bit
/// with probability ~1/2.
///
/// # Examples
///
/// ```
/// use tscache_core::prng::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Common interface of the deterministic generators in this module.
pub trait Prng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses the widening-multiply technique with rejection, so the
    /// distribution is exactly uniform for any `bound > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire's method with rejection for exact uniformity.
        let mut x = self.next_u32();
        let mut m = (x as u64) * (bound as u64);
        let mut l = m as u32;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u32();
                m = (x as u64) * (bound as u64);
                l = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Shuffles `slice` in place (Fisher-Yates).
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a 64-bit generator with a single u64 of state.
///
/// # Examples
///
/// ```
/// use tscache_core::prng::{Prng, SplitMix64};
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Prng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Xoroshiro128++: fast general-purpose generator (Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoroshiro128pp {
    s0: u64,
    s1: u64,
}

impl Xoroshiro128pp {
    /// Creates a generator, expanding the 64-bit seed with SplitMix64 as
    /// the reference implementation recommends.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64();
        let mut s1 = sm.next_u64();
        if s0 == 0 && s1 == 0 {
            s1 = 1; // the all-zero state is the one forbidden state
        }
        Xoroshiro128pp { s0, s1 }
    }
}

impl Prng for Xoroshiro128pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let (s0, mut s1) = (self.s0, self.s1);
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s1 = s1.rotate_left(28);
        result
    }
}

/// A 32-bit maximal-length Galois LFSR (taps 32,22,2,1 — polynomial
/// 0x80200003), representative of the low-overhead PRNGs used in
/// time-randomized cache hardware.
///
/// The all-zero state is unreachable and is corrected at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr32 {
    state: u32,
}

impl Lfsr32 {
    /// Creates an LFSR from a seed; a zero seed is mapped to a fixed
    /// non-zero state because zero is a fixed point of the recurrence.
    pub fn new(seed: u64) -> Self {
        let folded = (seed as u32) ^ ((seed >> 32) as u32);
        Lfsr32 { state: if folded == 0 { 0xace1_u32 } else { folded } }
    }

    /// Advances one bit.
    #[inline]
    fn step(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= 0x8020_0003;
        }
        lsb
    }
}

impl Prng for Lfsr32 {
    fn next_u64(&mut self) -> u64 {
        let mut out = 0u64;
        // One bit per step, like the serial hardware implementation.
        for _ in 0..64 {
            out = (out << 1) | self.step() as u64;
        }
        out
    }

    fn next_u32(&mut self) -> u32 {
        let mut out = 0u32;
        for _ in 0..32 {
            out = (out << 1) | self.step();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        // Consecutive inputs should differ in many bits.
        let d = (mix64(1) ^ mix64(2)).count_ones();
        assert!(d > 16, "only {d} differing bits");
    }

    #[test]
    fn splitmix_reproducible() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoroshiro_reproducible_and_nonzero() {
        let mut a = Xoroshiro128pp::new(99);
        let mut b = Xoroshiro128pp::new(99);
        let mut any_nonzero = false;
        for _ in 0..100 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            any_nonzero |= v != 0;
        }
        assert!(any_nonzero);
    }

    #[test]
    fn lfsr_zero_seed_is_fixed_up() {
        let mut l = Lfsr32::new(0);
        assert_ne!(l.next_u32(), 0xffff_ffff); // progresses, no lock-up
        let mut prev = l.next_u32();
        let mut changes = 0;
        for _ in 0..10 {
            let v = l.next_u32();
            if v != prev {
                changes += 1;
            }
            prev = v;
        }
        assert!(changes >= 9);
    }

    #[test]
    fn lfsr_period_is_long() {
        // The state must not revisit the seed within a small horizon
        // (full period is 2^32-1; we just sanity-check a prefix).
        let mut l = Lfsr32::new(0xdead_beef);
        let start = l.clone();
        for i in 0..10_000 {
            l.next_u32();
            assert_ne!(l, start, "period too short: {i}");
        }
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoroshiro128pp::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Xoroshiro128pp::new(3);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }
}
