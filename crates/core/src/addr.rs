//! Address newtypes used throughout the cache models.
//!
//! Three granularities appear in the simulator:
//!
//! * [`Addr`] — a byte address, as issued by a load/store or an
//!   instruction fetch.
//! * [`LineAddr`] — a cache-line address, i.e. the byte address with the
//!   intra-line offset stripped. All placement policies operate on line
//!   addresses because the offset bits never participate in set
//!   selection (paper §2.1).
//! * [`PageAddr`] — a memory-page address. The *Random Modulo* placement
//!   guarantees that lines of the same page never collide in cache
//!   (`mbpta-p3`), so pages are a first-class concept.

use core::fmt;

/// A byte address in the simulated physical address space.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::Addr;
///
/// let a = Addr::new(0x8000_1234);
/// assert_eq!(a.as_u64(), 0x8000_1234);
/// assert_eq!(a.line(5).as_u64(), 0x8000_1234 >> 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address for a line of `2^offset_bits` bytes.
    #[inline]
    pub const fn line(self, offset_bits: u32) -> LineAddr {
        LineAddr(self.0 >> offset_bits)
    }

    /// Returns the page address for pages of `2^page_bits` bytes.
    #[inline]
    pub const fn page(self, page_bits: u32) -> PageAddr {
        PageAddr(self.0 >> page_bits)
    }

    /// Returns the byte offset within a line of `2^offset_bits` bytes.
    #[inline]
    pub const fn line_offset(self, offset_bits: u32) -> u64 {
        self.0 & ((1 << offset_bits) - 1)
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address: byte address divided by the line size.
///
/// Placement policies map a `LineAddr` (tag + index bits) to a cache
/// set; the intra-line offset bits are gone at this granularity.
///
/// # Examples
///
/// ```
/// use tscache_core::addr::LineAddr;
///
/// let l = LineAddr::new(0x1000);
/// // With 128 sets the low 7 bits are the index, the rest the tag.
/// assert_eq!(l.index_bits(7), 0x1000 & 0x7f);
/// assert_eq!(l.tag_bits(7), 0x1000 >> 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw (already shifted) value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line-address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the low `index_bits` bits (the modulo-placement index).
    #[inline]
    pub const fn index_bits(self, index_bits: u32) -> u64 {
        self.0 & ((1 << index_bits) - 1)
    }

    /// Returns everything above the low `index_bits` bits (the tag).
    #[inline]
    pub const fn tag_bits(self, index_bits: u32) -> u64 {
        self.0 >> index_bits
    }

    /// Reconstructs the first byte address of this line.
    #[inline]
    pub const fn base_addr(self, offset_bits: u32) -> Addr {
        Addr(self.0 << offset_bits)
    }

    /// Returns the page this line belongs to, for `2^page_bits`-byte
    /// pages and `2^offset_bits`-byte lines.
    #[inline]
    pub const fn page(self, page_bits: u32, offset_bits: u32) -> PageAddr {
        PageAddr(self.0 >> (page_bits - offset_bits))
    }

    /// Returns the line advanced by `n` lines.
    #[inline]
    pub const fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

/// A memory-page address: byte address divided by the page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from its raw (already shifted) value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PageAddr(raw)
    }

    /// Returns the raw page-address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

impl From<u64> for PageAddr {
    fn from(raw: u64) -> Self {
        PageAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_strips_offset() {
        let a = Addr::new(0b1111_0110);
        assert_eq!(a.line(5).as_u64(), 0b111);
        assert_eq!(a.line_offset(5), 0b10110);
    }

    #[test]
    fn addr_page_strips_page_offset() {
        let a = Addr::new(0x12345);
        assert_eq!(a.page(12).as_u64(), 0x12);
    }

    #[test]
    fn line_index_and_tag_partition_the_address() {
        let l = LineAddr::new(0xdead_beef);
        for bits in [5u32, 7, 11] {
            let rebuilt = (l.tag_bits(bits) << bits) | l.index_bits(bits);
            assert_eq!(rebuilt, l.as_u64());
        }
    }

    #[test]
    fn line_base_addr_round_trips() {
        let a = Addr::new(0x1000);
        assert_eq!(a.line(5).base_addr(5), a);
    }

    #[test]
    fn line_page_consistent_with_addr_page() {
        // 4 KiB pages, 32 B lines.
        let a = Addr::new(0x0123_4567);
        assert_eq!(a.line(5).page(12, 5), a.page(12));
    }

    #[test]
    fn display_formats_are_nonempty_and_hex() {
        assert_eq!(Addr::new(0xff).to_string(), "0xff");
        assert_eq!(LineAddr::new(0xff).to_string(), "line:0xff");
        assert_eq!(PageAddr::new(0xff).to_string(), "page:0xff");
    }

    #[test]
    fn addr_offset_advances() {
        assert_eq!(Addr::new(4).offset(4), Addr::new(8));
        assert_eq!(LineAddr::new(4).offset(1), LineAddr::new(5));
    }
}
