//! Error types for cache configuration.

use core::fmt;
use std::error::Error;

/// An invalid cache or policy configuration.
///
/// Returned by constructors that validate their arguments, e.g.
/// [`CacheGeometry::new`](crate::geometry::CacheGeometry::new).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    kind: ConfigErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ConfigErrorKind {
    NotPowerOfTwo { field: &'static str, value: u32 },
    Incompatible { what: String },
}

impl ConfigError {
    /// A field that must be a non-zero power of two is not.
    pub fn not_power_of_two(field: &'static str, value: u32) -> Self {
        ConfigError { kind: ConfigErrorKind::NotPowerOfTwo { field, value } }
    }

    /// A combination of otherwise-valid settings that cannot work
    /// together (or a value outside its domain). Public so the
    /// downstream crates' configuration types (`SamplingConfig`,
    /// `MeasurementProtocol`, sweep specs) validate into the same
    /// error type — campaign executors rely on one "bad spec" type to
    /// tell misconfiguration (never retried) apart from a worker crash
    /// (retried with backoff).
    pub fn incompatible(what: impl Into<String>) -> Self {
        ConfigError { kind: ConfigErrorKind::Incompatible { what: what.into() } }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ConfigErrorKind::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a non-zero power of two, got {value}")
            }
            ConfigErrorKind::Incompatible { what } => write!(f, "{what}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConfigError::not_power_of_two("ways", 3);
        assert_eq!(e.to_string(), "ways must be a non-zero power of two, got 3");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn incompatible_passes_message_through() {
        let e = ConfigError::incompatible("random modulo requires page-aligned ways");
        assert!(e.to_string().contains("random modulo"));
    }
}
