//! Property-based tests for write-back semantics: dirty-bit
//! bookkeeping, writeback counting and partition containment, across
//! random traces, placements and write mixes.

use proptest::prelude::*;
use tscache_core::addr::LineAddr;
use tscache_core::cache::{AccessOutcome, Cache, WritePolicy};
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{Hierarchy, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};

/// Deterministic op trace from a salt: mixed fetch/read/write over a
/// footprint that overflows the small caches used below.
fn trace(salt: u64, len: usize) -> Vec<TraceOp> {
    TraceOp::mixed_trace(salt, len, 1 << 14)
}

fn small_hierarchy(depth: HierarchyDepth, policy: WritePolicy) -> Hierarchy {
    let mut h = SetupKind::TsCache.build_depth(depth, 7);
    h.set_process_seed(ProcessId::new(1), Seed::new(0x5eed));
    h.set_write_policy(policy);
    h
}

proptest! {
    /// Write-through caches never hold dirty lines, so no level ever
    /// records a writeback, whatever the trace.
    #[test]
    fn write_through_implies_zero_writebacks(salt in any::<u64>()) {
        for depth in HierarchyDepth::ALL {
            let mut h = small_hierarchy(depth, WritePolicy::WriteThrough);
            let ops = trace(salt, 1200);
            let out = h.access_batch(ProcessId::new(1), &ops);
            prop_assert_eq!(out.mem_writebacks, 0);
            prop_assert_eq!(h.l1d().stats().writebacks(), 0);
            prop_assert_eq!(h.l1d().dirty_lines(), 0);
            for level in h.unified_levels() {
                prop_assert_eq!(level.stats().writebacks(), 0, "{}", level.label());
                prop_assert_eq!(level.dirty_lines(), 0, "{}", level.label());
            }
        }
    }

    /// Under write-back, every level's writeback count is bounded by
    /// the number of write ops: a line must be dirtied by a CPU store
    /// before any level can ever write it back, and each store dirties
    /// at most one line per level.
    #[test]
    fn writebacks_bounded_by_write_count(salt in any::<u64>()) {
        for depth in HierarchyDepth::ALL {
            let mut h = small_hierarchy(depth, WritePolicy::WriteBack);
            let ops = trace(salt, 1500);
            let writes = ops.iter().filter(|op| matches!(op.kind, tscache_core::hierarchy::AccessKind::Write)).count() as u64;
            h.access_batch(ProcessId::new(1), &ops);
            prop_assert!(h.l1d().stats().writebacks() <= writes);
            for level in h.unified_levels() {
                prop_assert!(
                    level.stats().writebacks() <= writes,
                    "{}: {} writebacks for {} writes",
                    level.label(), level.stats().writebacks(), writes
                );
                // Still-dirty lines are bounded the same way.
                prop_assert!(level.dirty_lines() as u64 <= writes, "{}", level.label());
            }
        }
    }

    /// With a full way partition, a dirty line is only ever evicted by
    /// its own process: dirty data never leaks across the partition.
    #[test]
    fn full_partition_confines_dirty_evictions(salt in any::<u64>(), placement_sel in 0usize..6) {
        let placement = PlacementKind::ALL[placement_sel];
        let mut c = Cache::new(
            "part",
            CacheGeometry::new(16, 4, 32).unwrap(),
            placement,
            ReplacementKind::Lru,
            salt,
        );
        c.set_write_policy(WritePolicy::WriteBack);
        let (p1, p2) = (ProcessId::new(1), ProcessId::new(2));
        c.set_seed(p1, Seed::new(salt ^ 1));
        c.set_seed(p2, Seed::new(salt ^ 2));
        c.set_way_partition(p1, 0, 2);
        c.set_way_partition(p2, 2, 4);
        let mut state = salt | 1;
        for i in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pid = if i % 3 == 0 { p2 } else { p1 };
            let line = LineAddr::new((state >> 20) % 509);
            let write = state.is_multiple_of(2);
            if let AccessOutcome::Miss { evicted: Some(ev), .. } = c.access_rw(pid, line, write) {
                if ev.dirty {
                    prop_assert_eq!(
                        ev.owner, pid,
                        "{}: dirty line of {:?} evicted by {:?}", placement, ev.owner, pid
                    );
                }
            }
        }
    }

    /// Dirty-line accounting survives flushes: a flush invalidates
    /// dirty lines (this model's flush is an invalidate), after which
    /// no stale dirtiness can produce writebacks.
    #[test]
    fn flush_clears_dirty_state(salt in any::<u64>()) {
        let mut h = small_hierarchy(HierarchyDepth::TwoLevel, WritePolicy::WriteBack);
        let pid = ProcessId::new(1);
        h.access_batch(pid, &trace(salt, 600));
        h.flush_all();
        prop_assert_eq!(h.l1d().dirty_lines(), 0);
        let before = h.l1d().stats().writebacks();
        // A read-only epoch after the flush can never write back.
        let reads: Vec<TraceOp> = trace(salt ^ 0xf00, 600)
            .into_iter()
            .map(|op| TraceOp::read(op.addr))
            .collect();
        h.access_batch(pid, &reads);
        prop_assert_eq!(h.l1d().stats().writebacks(), before);
    }

    /// A flush may not silently discard modified data: every dirty
    /// line resident at flush time is *drained* — one counted
    /// writeback per dirty line, at the level it leaves. This pins the
    /// PR-5 fix (flush previously dropped dirty lines with no
    /// accounting at all).
    #[test]
    fn flush_drains_and_counts_every_dirty_line(salt in any::<u64>()) {
        for depth in HierarchyDepth::ALL {
            let mut h = small_hierarchy(depth, WritePolicy::WriteBack);
            let pid = ProcessId::new(1);
            h.access_batch(pid, &trace(salt, 900));
            let before: Vec<(u64, u64)> = std::iter::once(h.l1d())
                .chain(h.unified_levels())
                .map(|c| (c.dirty_lines() as u64, c.stats().writebacks()))
                .collect();
            h.flush_all();
            let after: Vec<(u64, u64)> = std::iter::once(h.l1d())
                .chain(h.unified_levels())
                .map(|c| (c.dirty_lines() as u64, c.stats().writebacks()))
                .collect();
            for (i, (&(dirty, wbs), &(dirty_after, wbs_after))) in
                before.iter().zip(&after).enumerate()
            {
                prop_assert_eq!(dirty_after, 0, "level {} kept dirty lines across a flush", i);
                prop_assert_eq!(
                    wbs_after,
                    wbs + dirty,
                    "level {}: {} dirty lines flushed but writebacks went {} -> {}",
                    i, dirty, wbs, wbs_after
                );
            }
        }
    }

    /// `flush_process` drains exactly the flushed pid's dirty lines,
    /// leaving other processes' dirty state (and accounting) intact.
    #[test]
    fn flush_process_drains_only_the_named_pid(salt in any::<u64>()) {
        use tscache_core::cache::Cache;
        use tscache_core::geometry::CacheGeometry;
        use tscache_core::placement::PlacementKind;
        use tscache_core::replacement::ReplacementKind;
        let mut c = Cache::new(
            "fp",
            CacheGeometry::new(16, 4, 32).unwrap(),
            PlacementKind::Modulo,
            ReplacementKind::Lru,
            salt,
        );
        c.set_write_policy(WritePolicy::WriteBack);
        let (p1, p2) = (ProcessId::new(1), ProcessId::new(2));
        c.set_way_partition(p1, 0, 2);
        c.set_way_partition(p2, 2, 4);
        let mut state = salt | 1;
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let line = LineAddr::new((state >> 22) % 127);
            c.access_rw(p1, line, state & 1 == 0);
            c.access_rw(p2, LineAddr::new(512 + ((state >> 13) % 127)), state & 2 == 0);
        }
        let total_dirty = c.dirty_lines() as u64;
        let wbs_before = c.stats().writebacks();
        let drained = c.flush_process(p1);
        prop_assert_eq!(c.stats().writebacks(), wbs_before + drained);
        // Only p2's lines (and dirty state) survive.
        for (_, _, _, owner) in c.contents() {
            prop_assert_eq!(owner, p2);
        }
        prop_assert_eq!(c.dirty_lines() as u64, total_dirty - drained);
    }
}
