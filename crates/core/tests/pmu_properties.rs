//! Property tests for the PMU snapshot/delta machinery: deltas are
//! always finite, non-negative, and never panic — even when counters
//! rewind (the underflow bug class the delta-safe path exists for).

use proptest::prelude::*;
use tscache_core::pmu::{delta_u64, PmuSampler, PmuSnapshot};
use tscache_core::stats::CacheStats;

fn stats(hits: u64, misses: u64, invals: u64, xev: u64) -> CacheStats {
    let mut s = CacheStats::new();
    for _ in 0..hits {
        s.record_hit();
    }
    for _ in 0..misses {
        s.record_miss(true);
    }
    for _ in 0..invals {
        s.record_coh_invalidation();
    }
    for _ in 0..xev {
        s.record_cross_process_eviction();
    }
    s
}

type Level = (u64, u64, u64, u64);

fn snapshot(levels: &[Level], bus: u64, cycles: u64) -> PmuSnapshot {
    let stats: Vec<CacheStats> = levels.iter().map(|&(h, m, i, x)| stats(h, m, i, x)).collect();
    PmuSnapshot::from_level_stats(&stats).with_bus_wait(bus).with_cycles(cycles)
}

fn level() -> impl Strategy<Value = Level> {
    (0u64..200, 0u64..200, 0u64..50, 0u64..50)
}

proptest! {
    /// Arbitrary before/after snapshot pairs — including rewound
    /// counters and mismatched level counts — always produce finite,
    /// non-negative deltas and rates, never a panic or a wrap.
    #[test]
    fn deltas_are_finite_and_non_negative(
        before in prop::collection::vec(level(), 0..4),
        after in prop::collection::vec(level(), 0..4),
        bus in (0u64..10_000, 0u64..10_000),
        cyc in (0u64..10_000, 0u64..10_000),
    ) {
        let b = snapshot(&before, bus.0, cyc.0);
        let a = snapshot(&after, bus.1, cyc.1);
        let d = a.delta(&b);
        let t = d.total();
        // u64 fields cannot be negative; what matters is that the
        // saturating path never wrapped toward u64::MAX.
        prop_assert!(t.accesses <= a.levels.iter().map(|l| l.accesses).sum::<u64>());
        prop_assert!(t.misses <= a.levels.iter().map(|l| l.misses).sum::<u64>());
        prop_assert!(d.bus_wait_cycles <= bus.1);
        prop_assert!(d.cycles <= cyc.1);
        for rate in [d.miss_rate(), d.inval_rate(), d.cross_eviction_rate()] {
            prop_assert!(rate.is_finite() && rate >= 0.0, "rate {rate} out of range");
        }
        prop_assert!(d.miss_rate() <= 1.0);
    }

    /// The monotone flag is `true` exactly when no counter rewound and
    /// the level counts matched.
    #[test]
    fn monotone_flag_matches_reality(
        base in prop::collection::vec(level(), 1..4),
        grow in prop::collection::vec(level(), 1..4),
    ) {
        let b = snapshot(&base, 10, 10);
        if base.len() == grow.len() {
            // Growing every counter from the same base is monotone by
            // construction.
            let grown: Vec<Level> = base
                .iter()
                .zip(&grow)
                .map(|(x, y)| (x.0 + y.0, x.1 + y.1, x.2 + y.2, x.3 + y.3))
                .collect();
            let a = snapshot(&grown, 20, 30);
            prop_assert!(a.delta(&b).monotone);
        } else {
            let a = snapshot(&grow, 20, 30);
            prop_assert!(!a.delta(&b).monotone, "level-count mismatch must clear monotone");
        }
    }

    /// A reset (counters rewound to zero) clamps instead of wrapping.
    #[test]
    fn reset_mid_window_clamps(
        lvl in (1u64..100, 1u64..100, 0u64..20, 0u64..20),
        bus in 1u64..1_000,
    ) {
        let b = snapshot(&[lvl], bus, bus);
        let a = snapshot(&[(0, 0, 0, 0)], 0, 0);
        let d = a.delta(&b);
        prop_assert!(!d.monotone);
        prop_assert_eq!(d.accesses(), 0);
        prop_assert_eq!(d.bus_wait_cycles, 0);
        prop_assert_eq!(delta_u64(0, bus), 0);
    }

    /// Sampler windows partition the run: per-window deltas sum to the
    /// whole-run delta (nothing double-counted, nothing lost).
    #[test]
    fn sampler_windows_partition_the_run(
        steps in prop::collection::vec((1u64..50, 0u64..50), 1..20),
        window_ops in 1u64..16,
    ) {
        let mut total = (0u64, 0u64);
        let mut sampler = PmuSampler::new(window_ops, snapshot(&[(0, 0, 0, 0)], 0, 0));
        let mut seen = (0u64, 0u64);
        for &(h, m) in &steps {
            total.0 += h;
            total.1 += m;
            if sampler.note_ops(h + m) {
                let d = sampler.cut(snapshot(&[(total.0, total.1, 0, 0)], 0, 0));
                prop_assert!(d.monotone);
                seen.0 += d.accesses();
                seen.1 += d.misses();
            }
        }
        // Close the final partial window.
        let d = sampler.cut(snapshot(&[(total.0, total.1, 0, 0)], 0, 0));
        seen.0 += d.accesses();
        seen.1 += d.misses();
        prop_assert_eq!(seen.1, total.1, "windows must partition the miss stream");
        prop_assert_eq!(seen.0, total.0 + total.1, "windows must partition the access stream");
    }
}
