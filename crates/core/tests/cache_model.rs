//! Model-based property tests: the `Cache` under modulo+LRU must agree
//! with a trivially correct reference model on arbitrary access
//! sequences, and structural invariants must hold for every policy mix.

use proptest::prelude::*;
use std::collections::VecDeque;
use tscache_core::addr::LineAddr;
use tscache_core::cache::Cache;
use tscache_core::geometry::CacheGeometry;
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};

/// Reference model: per-set LRU as a deque of line addresses.
struct RefCache {
    sets: u64,
    ways: usize,
    content: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        RefCache { sets, ways, content: (0..sets).map(|_| VecDeque::new()).collect() }
    }

    /// Returns true on hit.
    fn access(&mut self, line: u64) -> bool {
        let set = (line % self.sets) as usize;
        let dq = &mut self.content[set];
        if let Some(pos) = dq.iter().position(|&l| l == line) {
            dq.remove(pos);
            dq.push_back(line);
            true
        } else {
            if dq.len() == self.ways {
                dq.pop_front();
            }
            dq.push_back(line);
            false
        }
    }
}

proptest! {
    /// Hit/miss sequence matches the reference LRU model exactly.
    #[test]
    fn modulo_lru_matches_reference(accesses in prop::collection::vec(0u64..64, 1..400)) {
        let geom = CacheGeometry::new(8, 2, 32).unwrap();
        let mut cache = Cache::new("sut", geom, PlacementKind::Modulo, ReplacementKind::Lru, 1);
        let mut reference = RefCache::new(8, 2);
        let pid = ProcessId::new(1);
        for (i, &line) in accesses.iter().enumerate() {
            let got = cache.access(pid, LineAddr::new(line)).is_hit();
            let want = reference.access(line);
            prop_assert_eq!(got, want, "divergence at access {} (line {})", i, line);
        }
    }

    /// Structural invariants for every policy combination:
    /// hit-after-access, occupancy bound, stats consistency.
    #[test]
    fn structural_invariants(
        accesses in prop::collection::vec((0u64..256, 1u16..4), 1..200),
        placement_idx in 0usize..6,
        replacement_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let geom = CacheGeometry::new(16, 4, 32).unwrap();
        let placement = PlacementKind::ALL[placement_idx];
        let replacement = ReplacementKind::ALL[replacement_idx];
        let mut cache = Cache::new("sut", geom, placement, replacement, seed);
        cache.set_seed(ProcessId::new(1), Seed::new(seed ^ 1));
        cache.set_seed(ProcessId::new(2), Seed::new(seed ^ 2));
        cache.set_seed(ProcessId::new(3), Seed::new(seed ^ 3));

        for &(line, pid_raw) in &accesses {
            let pid = ProcessId::new(pid_raw);
            cache.access(pid, LineAddr::new(line));
            // The just-accessed line must be resident.
            prop_assert!(
                cache.probe(pid, LineAddr::new(line)),
                "{placement}/{replacement}: line {line} absent right after access"
            );
            prop_assert!(cache.occupancy() <= 64);
        }
        let stats = *cache.stats();
        prop_assert_eq!(stats.accesses() as usize, accesses.len());
        prop_assert!(stats.evictions() <= stats.misses());
    }

    /// Flush always empties the cache, whatever preceded it.
    #[test]
    fn flush_empties(accesses in prop::collection::vec(0u64..512, 0..200)) {
        let geom = CacheGeometry::new(32, 4, 32).unwrap();
        let mut cache =
            Cache::new("sut", geom, PlacementKind::HashRp, ReplacementKind::Random, 3);
        let pid = ProcessId::new(1);
        cache.set_seed(pid, Seed::new(17));
        for &line in &accesses {
            cache.access(pid, LineAddr::new(line));
        }
        cache.flush();
        prop_assert_eq!(cache.occupancy(), 0);
    }

    /// Ownership bookkeeping: with disjoint per-process address ranges,
    /// every resident line's owner matches the range it came from.
    #[test]
    fn owner_tracking_is_consistent(accesses in prop::collection::vec((0u64..128, prop::bool::ANY), 1..300)) {
        let geom = CacheGeometry::new(16, 2, 32).unwrap();
        let mut cache =
            Cache::new("sut", geom, PlacementKind::RandomModulo, ReplacementKind::Lru, 9);
        let (p1, p2) = (ProcessId::new(1), ProcessId::new(2));
        cache.set_seed(p1, Seed::new(100));
        cache.set_seed(p2, Seed::new(200));
        // Disjoint ranges: p1 uses lines 0..128, p2 lines 1000..1128.
        for &(line, is_p1) in &accesses {
            if is_p1 {
                cache.access(p1, LineAddr::new(line));
            } else {
                cache.access(p2, LineAddr::new(1000 + line));
            }
        }
        for (_set, _way, line, owner) in cache.contents() {
            let expected = if line.as_u64() >= 1000 { p2 } else { p1 };
            prop_assert_eq!(owner, expected, "line {} owned by {}", line, owner);
        }
    }
}
