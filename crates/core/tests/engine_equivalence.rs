//! Differential tests: the enum-dispatch, packed-metadata `Cache` must
//! reproduce the seed repository's boxed-dispatch implementation
//! access-for-access, plus the partitioning and RPCache-redirection
//! invariants the optimized fill path has to preserve.

use tscache_core::addr::LineAddr;
use tscache_core::boxed_ref::BoxedCache;
use tscache_core::cache::{AccessOutcome, Cache};
use tscache_core::geometry::CacheGeometry;
use tscache_core::placement::PlacementKind;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};

/// A mixed-pid recorded trace with locality (reuses a window of recent
/// lines) so hits, misses, evictions and redirects all occur.
fn recorded_trace(len: usize, salt: u64) -> Vec<(ProcessId, LineAddr)> {
    let mut rng = SplitMix64::new(mix64(salt));
    let mut recent: Vec<u64> = Vec::new();
    let mut trace = Vec::with_capacity(len);
    for _ in 0..len {
        let pid = ProcessId::new(1 + rng.below(3) as u16);
        let line = if !recent.is_empty() && rng.below(4) < 2 {
            recent[rng.below(recent.len() as u32) as usize]
        } else {
            let l = rng.below(2048) as u64;
            recent.push(l);
            if recent.len() > 64 {
                recent.remove(0);
            }
            l
        };
        trace.push((pid, LineAddr::new(line)));
    }
    trace
}

fn configure_pair(
    placement: PlacementKind,
    replacement: ReplacementKind,
    with_partitions: bool,
) -> (Cache, BoxedCache) {
    let geom = CacheGeometry::paper_l1();
    let mut cache = Cache::new("sut", geom, placement, replacement, 0xfeed);
    let mut boxed = BoxedCache::new(geom, placement, replacement, 0xfeed);
    for pid in 1..=3u16 {
        let seed = Seed::new(mix64(0x5eed ^ pid as u64));
        cache.set_seed(ProcessId::new(pid), seed);
        boxed.set_seed(ProcessId::new(pid), seed);
    }
    // Overlapping registrations on purpose: the packed cache merges
    // them, the boxed one scans them as-is — lookups must still agree.
    for (s, e) in [(0u64, 64), (32, 96), (500, 600)] {
        cache.add_protected_range(LineAddr::new(s), LineAddr::new(e));
        boxed.add_protected_range(LineAddr::new(s), LineAddr::new(e));
    }
    if with_partitions {
        cache.set_way_partition(ProcessId::new(1), 0, 2);
        boxed.set_way_partition(ProcessId::new(1), 0, 2);
        cache.set_way_partition(ProcessId::new(2), 2, 4);
        boxed.set_way_partition(ProcessId::new(2), 2, 4);
    }
    (cache, boxed)
}

#[test]
fn enum_engine_matches_boxed_reference_on_recorded_traces() {
    for placement in PlacementKind::ALL {
        for replacement in ReplacementKind::ALL {
            for with_partitions in [false, true] {
                let (mut cache, mut boxed) =
                    configure_pair(placement, replacement, with_partitions);
                let trace = recorded_trace(4000, 0xabc ^ with_partitions as u64);
                for (i, &(pid, line)) in trace.iter().enumerate() {
                    let a = cache.access(pid, line);
                    let b = boxed.access(pid, line);
                    assert_eq!(
                        a, b,
                        "{placement}/{replacement} partitions={with_partitions}: \
                         outcome diverged at access {i} ({pid}, {line})"
                    );
                }
                assert_eq!(cache.stats(), boxed.stats(), "{placement}/{replacement}");
                assert_eq!(cache.occupancy(), boxed.occupancy());
                let a: Vec<_> = cache.contents().collect();
                let b: Vec<_> = boxed.contents().collect();
                assert_eq!(a, b, "{placement}/{replacement}: contents diverge");
            }
        }
    }
}

#[test]
fn batch_api_matches_boxed_reference() {
    let geom = CacheGeometry::paper_l1();
    for placement in [PlacementKind::Modulo, PlacementKind::RandomModulo, PlacementKind::RpCache] {
        let mut cache = Cache::new("sut", geom, placement, ReplacementKind::Random, 3);
        let mut boxed = BoxedCache::new(geom, placement, ReplacementKind::Random, 3);
        let pid = ProcessId::new(1);
        cache.set_seed(pid, Seed::new(99));
        boxed.set_seed(pid, Seed::new(99));
        let mut rng = SplitMix64::new(4);
        let lines: Vec<LineAddr> =
            (0..5000).map(|_| LineAddr::new(rng.below(1024) as u64)).collect();
        let out = cache.access_batch(pid, &lines);
        let mut hits = 0u64;
        for &l in &lines {
            hits += boxed.access(pid, l).is_hit() as u64;
        }
        assert_eq!(out.hits, hits, "{placement}");
        assert_eq!(cache.stats(), boxed.stats(), "{placement}");
    }
}

#[test]
fn partition_fills_never_land_outside_pid_ways() {
    // Random traces over every placement: a partitioned process's
    // lines must only ever occupy its way range, even through RPCache
    // contention redirects.
    for placement in PlacementKind::ALL {
        let mut cache =
            Cache::new("part", CacheGeometry::paper_l1(), placement, ReplacementKind::Random, 17);
        let (p1, p2) = (ProcessId::new(1), ProcessId::new(2));
        cache.set_seed(p1, Seed::new(1));
        cache.set_seed(p2, Seed::new(2));
        cache.set_way_partition(p1, 0, 1);
        cache.set_way_partition(p2, 1, 4);
        let mut rng = SplitMix64::new(23);
        for step in 0..6000 {
            let pid = if rng.below(2) == 0 { p1 } else { p2 };
            cache.access(pid, LineAddr::new(rng.below(4096) as u64));
            if step % 500 == 0 {
                for (_, way, _, owner) in cache.contents() {
                    match owner.as_u16() {
                        1 => assert!(way < 1, "{placement}: pid1 line in way {way}"),
                        2 => assert!((1..4).contains(&way), "{placement}: pid2 way {way}"),
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

#[test]
fn rpcache_redirect_spares_protected_lines_when_capacity_exists() {
    // Wang & Lee's P-bit: a fill whose LRU victim is a protected
    // crypto-table line is redirected to a random set, where it takes
    // a free way. As long as every set keeps spare capacity, redirected
    // fills therefore never evict protected lines, and the victim's
    // whole protected working set survives the attacker's stream.
    let mut cache = Cache::new(
        "rp",
        CacheGeometry::paper_l1(),
        PlacementKind::RpCache,
        ReplacementKind::Lru,
        5,
    );
    let (victim, attacker) = (ProcessId::new(1), ProcessId::new(2));
    cache.set_seed(victim, Seed::new(8));
    cache.set_seed(attacker, Seed::new(9));
    cache.add_protected_range(LineAddr::new(0), LineAddr::new(128));
    // The victim saturates the cache with four pages — page 0 holds
    // the protected tables — then re-touches the tables, so in every
    // set the LRU victim is an *unprotected* page-1/2/3 line while the
    // protected line is most-recent. Every attacker fill then selects
    // a valid cross-process victim (a contention event, redirected),
    // but neither the original nor the redirect-target slot holds a
    // protected line in LRU position.
    let protected: Vec<LineAddr> = (0..128u64).map(LineAddr::new).collect();
    for page in 0..4u64 {
        for i in 0..128u64 {
            cache.access(victim, LineAddr::new(page * 128 + i));
        }
    }
    for &l in &protected {
        cache.access(victim, l); // refresh: tables become MRU
    }
    let mut redirects = 0u32;
    for i in 0..64u64 {
        let line = LineAddr::new(0x4_0000 + i);
        match cache.access(attacker, line) {
            AccessOutcome::Miss { evicted, redirected } => {
                redirects += redirected as u32;
                if redirected {
                    if let Some(ev) = evicted {
                        assert!(
                            !cache.is_protected_addr(ev.line.as_u64()),
                            "redirected fill evicted protected {}",
                            ev.line
                        );
                    }
                }
            }
            AccessOutcome::Hit => {}
        }
    }
    assert!(redirects > 0, "no redirects happened");
    let survivors = protected.iter().filter(|&&l| cache.probe(victim, l)).count();
    assert_eq!(survivors, 128, "protected tables lost despite LRU shielding");
}

#[test]
fn redirected_fills_stay_within_partition_and_protect_crypto_tables() {
    // Combined invariant: partition + protected range + RPCache.
    let mut cache = Cache::new(
        "combo",
        CacheGeometry::paper_l1(),
        PlacementKind::RpCache,
        ReplacementKind::Lru,
        29,
    );
    let (crypto, os) = (ProcessId::new(1), ProcessId::new(2));
    cache.set_seed(crypto, Seed::new(1));
    cache.set_seed(os, Seed::new(2));
    cache.set_way_partition(crypto, 0, 3);
    cache.set_way_partition(os, 3, 4);
    cache.add_protected_range(LineAddr::new(0), LineAddr::new(160)); // "AES tables"
    for i in 0..160u64 {
        cache.access(crypto, LineAddr::new(i));
    }
    let tables_cached_before =
        (0..160u64).filter(|&i| cache.probe(crypto, LineAddr::new(i))).count();
    // OS streams hard; its fills are confined to way 3 and its
    // contention events are redirected.
    for i in 0..4000u64 {
        cache.access(os, LineAddr::new(0x8_0000 + i));
    }
    for (_, way, _, owner) in cache.contents() {
        if owner == os {
            assert_eq!(way, 3, "OS fill escaped its partition");
        }
    }
    let tables_cached_after =
        (0..160u64).filter(|&i| cache.probe(crypto, LineAddr::new(i))).count();
    assert!(
        tables_cached_after * 2 >= tables_cached_before,
        "OS sweep destroyed the protected tables: {tables_cached_after}/{tables_cached_before}"
    );
}
