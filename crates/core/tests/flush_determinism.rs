//! Flush-replay determinism: a flush must return the cache to a state
//! from which an identical trace replays bit for bit — across
//! placement × replacement × partitioning. This pins the PR-5 fix
//! that `Cache::flush` resets the per-process partition-replacement
//! RNG streams (`part_rngs`) to their derivation points (and that
//! `flush_process` drops the flushed pid's stream): before the fix,
//! partitioned random replacement replayed from mid-stream positions
//! and flush + replay diverged from the original run.
//!
//! The shared hardware RNG stream (full-width victim selection,
//! RPCache remaps) deliberately survives a flush — it models
//! free-running LFSR state — so the replay guarantee is stated where
//! the §5/§6 OS support needs it: fully partitioned processes, whose
//! victim draws come exclusively from the per-process streams.

use tscache_core::addr::LineAddr;
use tscache_core::boxed_ref::BoxedCache;
use tscache_core::cache::Cache;
use tscache_core::geometry::CacheGeometry;
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};

fn build(placement: PlacementKind, replacement: ReplacementKind) -> Cache {
    let mut c =
        Cache::new("flush", CacheGeometry::new(16, 4, 32).unwrap(), placement, replacement, 0xf1);
    for (pid, lo, hi) in [(1u16, 0u32, 2u32), (2, 2, 4)] {
        let p = ProcessId::new(pid);
        c.set_seed(p, Seed::new(0x5eed ^ pid as u64));
        c.set_way_partition(p, lo, hi);
    }
    c
}

/// A two-process interleaved line trace with heavy set reuse, so
/// partitioned victim selection fires constantly.
fn trace(salt: u64, len: usize) -> Vec<(ProcessId, LineAddr)> {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pid = ProcessId::new(1 + (i % 3 == 0) as u16);
            (pid, LineAddr::new((state >> 20) % 251))
        })
        .collect()
}

fn outcomes(c: &mut Cache, ops: &[(ProcessId, LineAddr)]) -> Vec<(bool, Option<u64>)> {
    ops.iter()
        .map(|&(pid, line)| match c.access(pid, line) {
            tscache_core::cache::AccessOutcome::Hit => (true, None),
            tscache_core::cache::AccessOutcome::Miss { evicted, .. } => {
                (false, evicted.map(|ev| ev.line.as_u64()))
            }
        })
        .collect()
}

#[test]
fn flush_then_replay_is_bit_identical_across_policies() {
    for placement in PlacementKind::ALL {
        for replacement in ReplacementKind::ALL {
            let ops = trace(0xabc, 1500);
            let mut c = build(placement, replacement);
            let first = outcomes(&mut c, &ops);
            c.flush();
            assert_eq!(c.occupancy(), 0, "{placement}/{replacement}");
            let replay = outcomes(&mut c, &ops);
            assert_eq!(
                replay, first,
                "{placement}/{replacement}: flush + identical replay diverged \
                 (partition RNG streams not reset?)"
            );
            // And a second flush cycle reproduces again — the reset is
            // to the derivation point, not to a one-shot snapshot.
            c.flush();
            let replay2 = outcomes(&mut c, &ops);
            assert_eq!(replay2, first, "{placement}/{replacement}: second flush cycle diverged");
        }
    }
}

#[test]
fn flush_process_restarts_the_flushed_pids_stream_only() {
    for replacement in ReplacementKind::ALL {
        let ops = trace(0x77, 1200);
        let p1 = ProcessId::new(1);
        let p1_ops: Vec<_> = ops.iter().copied().filter(|&(p, _)| p == p1).collect();
        let mut c = build(PlacementKind::RandomModulo, replacement);
        let first = outcomes(&mut c, &p1_ops);
        c.flush_process(p1);
        let replay = outcomes(&mut c, &p1_ops);
        assert_eq!(
            replay, first,
            "{replacement}: flush_process + replay diverged for the flushed pid"
        );
    }
}

#[test]
fn boxed_reference_mirrors_the_flush_reset() {
    // The boxed seed implementation must stay draw-for-draw identical
    // to the enum cache across a flush boundary, or the differential
    // suites lose their baseline.
    let ops = trace(0x99, 1200);
    let mut fast = build(PlacementKind::RandomModulo, ReplacementKind::Random);
    let mut boxed = BoxedCache::new(
        CacheGeometry::new(16, 4, 32).unwrap(),
        PlacementKind::RandomModulo,
        ReplacementKind::Random,
        0xf1,
    );
    for (pid, lo, hi) in [(1u16, 0u32, 2u32), (2, 2, 4)] {
        let p = ProcessId::new(pid);
        boxed.set_seed(p, Seed::new(0x5eed ^ pid as u64));
        boxed.set_way_partition(p, lo, hi);
    }
    let run_pair = |fast: &mut Cache, boxed: &mut BoxedCache| {
        for &(pid, line) in &ops {
            let a = fast.access(pid, line).is_hit();
            let b = boxed.access(pid, line).is_hit();
            assert_eq!(a, b, "boxed and enum caches diverged");
        }
    };
    run_pair(&mut fast, &mut boxed);
    fast.flush();
    boxed.flush();
    run_pair(&mut fast, &mut boxed);
}

#[test]
fn flush_replay_holds_on_a_partitioned_hierarchy() {
    use tscache_core::hierarchy::TraceOp;
    use tscache_core::setup::{HierarchyDepth, SetupKind};
    // The end-to-end form the TSCache OS relies on: a fully
    // partitioned random-replacement hierarchy replays a job
    // identically after the hyperperiod flush.
    let mut h = SetupKind::TsCache.build_depth(HierarchyDepth::ThreeLevel, 0xcafe);
    let pid = ProcessId::new(1);
    h.set_process_seed(pid, Seed::new(0x5eed));
    h.set_way_partition(pid, 0, 2);
    let ops = TraceOp::mixed_trace(0x1234, 2000, 1 << 15);
    let first = h.access_batch(pid, &ops);
    h.flush_all();
    let replay = h.access_batch(pid, &ops);
    assert_eq!(replay.cycles, first.cycles, "flushed hierarchy replayed a different cycle count");
    assert_eq!(replay.l1d, first.l1d);
    assert_eq!(replay.unified, first.unified);
}
