//! Property and differential tests for the defense zoo
//! (`tscache_core::defense`): TTL expiry accounting, the TTL=∞
//! identity, timed-access normalization semantics, shared-level seed
//! rotation, and scalar-vs-batch bit-identity with every defense
//! armed.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use tscache_core::cache::{AccessOutcome, Cache, WritePolicy};
use tscache_core::defense::{DefenseKind, RotationPolicy, TtlConfig};
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{Hierarchy, SharedLlc, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::prng::{mix64, Prng, SplitMix64};
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::HierarchyDepth;

fn pid(n: u16) -> ProcessId {
    ProcessId::new(n)
}

/// A small cache whose placement is a pure modulo (no contention
/// remaps), so residency only ever changes through fills, evictions
/// and TTL drains — the paths the shadow model below accounts for.
fn small_modulo_cache() -> Cache {
    let geom = CacheGeometry::new(16, 2, 32).unwrap();
    let mut c = Cache::new(
        "L1",
        geom,
        PlacementKind::Modulo,
        tscache_core::replacement::ReplacementKind::Lru,
        0x77,
    );
    c.set_write_policy(WritePolicy::WriteBack);
    c
}

proptest! {
    /// Exact writeback accounting under TTL evictions: replaying a
    /// random read/write trace against a shadow residency model, every
    /// line that leaves the cache (capacity eviction *or* TTL drain)
    /// emits exactly one writeback iff the shadow knows it dirty, and
    /// the drains that aren't capacity evictions are exactly the
    /// recorded TTL expiries.
    #[test]
    fn ttl_drains_write_back_exactly_the_dirty_lines(salt in any::<u64>()) {
        let mut cache = small_modulo_cache();
        cache.set_ttl(Some(TtlConfig { base: 2, jitter: 2 }));
        let mut rng = SplitMix64::new(mix64(salt ^ 0xd4a1));
        let owner = pid(1);

        // Shadow state: resident line → dirty?
        let mut shadow: BTreeMap<u64, bool> = BTreeMap::new();
        let mut expected_writebacks = 0u64;

        for _ in 0..600 {
            let line = tscache_core::addr::LineAddr::new(rng.next_u64() % 64);
            let write = rng.next_u64().is_multiple_of(3);
            let before: BTreeSet<u64> = shadow.keys().copied().collect();
            let was_resident = before.contains(&line.as_u64());
            let out = cache.access_rw(owner, line, write);

            // A resident line that *misses* expired under its own
            // access's TTL tick and was refilled — a departure a
            // before/after contents diff can't see.
            if was_resident && !out.is_hit() && shadow.insert(line.as_u64(), false) == Some(true) {
                expected_writebacks += 1;
            }

            // Re-derive residency from the cache itself (drains happen
            // inside the access), then charge departures to the shadow.
            let after: BTreeSet<u64> =
                cache.contents().map(|(_, _, l, _)| l.as_u64()).collect();
            for gone in before.difference(&after) {
                if shadow.remove(gone) == Some(true) {
                    expected_writebacks += 1;
                }
            }
            shadow.retain(|l, _| after.contains(l));
            let entry = shadow.entry(line.as_u64()).or_insert(false);
            *entry |= write;

            prop_assert_eq!(
                cache.stats().writebacks(),
                expected_writebacks,
                "writebacks diverge from dirty departures"
            );
        }

        // Departures split exactly into capacity evictions and TTL
        // expiries: nothing else ever removes a line on this path, and
        // every miss fills exactly one line.
        prop_assert_eq!(
            cache.stats().misses() - cache.occupancy() as u64,
            cache.stats().evictions() + cache.stats().ttl_expiries(),
            "departures don't split into evictions + expiries"
        );
        // The trace is long enough that the defense actually acted.
        prop_assert!(cache.stats().ttl_expiries() > 0, "TTL never fired");
    }

    /// A TTL config with `base == 0` (infinite lifetime) is
    /// bit-identical to an undefended cache: same per-op outcomes,
    /// same statistics, same final contents — the jitter stream is
    /// never even drawn from.
    #[test]
    fn infinite_ttl_is_bit_identical_to_defense_off(salt in any::<u64>()) {
        let mut defended = small_modulo_cache();
        let mut bare = small_modulo_cache();
        defended.set_ttl(Some(TtlConfig { base: 0, jitter: 7 }));
        prop_assert!(defended.ttl().is_none(), "infinite config must normalize to None");

        let mut rng = SplitMix64::new(mix64(salt ^ 0x1f1f));
        for _ in 0..400 {
            let line = tscache_core::addr::LineAddr::new(rng.next_u64() % 96);
            let write = rng.next_u64().is_multiple_of(4);
            let a = defended.access_rw(pid(1), line, write);
            let b = bare.access_rw(pid(1), line, write);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(defended.stats(), bare.stats());
        let da: Vec<_> = defended.contents().collect();
        let db: Vec<_> = bare.contents().collect();
        prop_assert_eq!(da, db);
    }
}

#[test]
fn normalization_levels_the_first_foreign_access() {
    let mut cache = small_modulo_cache();
    cache.set_normalize(true);
    let line = tscache_core::addr::LineAddr::new(5);

    // Victim loads the line.
    assert!(!cache.access(pid(1), line).is_hit());
    assert_eq!(cache.occupancy(), 1);

    // The attacker's reload is levelled: reported as a miss, but the
    // line never leaves the cache and nothing is evicted.
    match cache.access(pid(2), line) {
        AccessOutcome::Miss { evicted: None, redirected: false } => {}
        other => panic!("levelled access reported {other:?}"),
    }
    assert_eq!(cache.occupancy(), 1, "levelling must not refill");

    // Ownership transferred: the attacker's second access hits, and
    // the *victim* is now the foreign process.
    assert!(cache.access(pid(2), line).is_hit());
    match cache.access(pid(1), line) {
        AccessOutcome::Miss { evicted: None, .. } => {}
        other => panic!("victim re-access reported {other:?}"),
    }
}

#[test]
fn normalized_probe_hides_foreign_lines() {
    let mut cache = small_modulo_cache();
    let line = tscache_core::addr::LineAddr::new(9);
    cache.access(pid(1), line);

    // Undefended, a probe sees any resident line.
    assert!(cache.probe(pid(2), line));
    cache.set_normalize(true);
    // Normalized, only the owner does.
    assert!(!cache.probe(pid(2), line));
    assert!(cache.probe(pid(1), line));
    // Probing must not transfer ownership the way an access does.
    assert!(cache.probe(pid(1), line));
}

/// A 32×4 shared level with per-process seeds for three cores.
fn shared_level() -> SharedLlc {
    let geom = CacheGeometry::new(32, 4, 32).unwrap();
    let cache = Cache::new(
        "LLC",
        geom,
        PlacementKind::HashRp,
        tscache_core::replacement::ReplacementKind::Random,
        0x5e,
    );
    let mut llc = SharedLlc::new(cache, 10, 80);
    for p in 1..=3u16 {
        llc.set_process_seed(pid(p), Seed::new(0x1000 + p as u64));
    }
    llc
}

/// Drives `fills` fill requests round-robin over three processes with
/// distinct line streams; returns final stats + contents for equality
/// checks.
fn drive_rotation(llc: &mut SharedLlc, fills: u64) {
    for i in 0..fills {
        let p = pid((i % 3) as u16 + 1);
        let line = tscache_core::addr::LineAddr::new(0x4000 + (i * 7) % 256);
        llc.resolve(p, Some(line), &[]);
    }
}

#[test]
fn per_core_rotation_fires_on_schedule_and_flushes_the_rotated_core() {
    let mut llc = shared_level();
    llc.set_rotation(RotationPolicy::PerCore { period: 64 });

    // Seed pid 1 with some lines, then let pids 2 and 3 tick the clock
    // up to one period: epoch 1 rotates rotation_base[0] = pid 1.
    for i in 0..10u64 {
        llc.resolve(pid(1), Some(tscache_core::addr::LineAddr::new(0x9000 + i)), &[]);
    }
    assert_eq!(llc.rotation_epoch(), 0);
    for i in 0..54u64 {
        let p = pid((i % 2) as u16 + 2);
        llc.resolve(p, Some(tscache_core::addr::LineAddr::new(0xa000 + i)), &[]);
    }
    assert_eq!(llc.rotation_epoch(), 1, "rotation missed its cadence");

    // The rotated core's lines were flushed for seed-change
    // consistency; the other cores keep theirs.
    let owners: BTreeSet<u16> = llc.cache().contents().map(|(_, _, _, o)| o.as_u16()).collect();
    assert!(!owners.contains(&1), "rotated core's lines survived the flush");
    assert!(owners.contains(&2) && owners.contains(&3));
}

#[test]
fn per_partition_rotation_rotates_declared_groups_together() {
    let mut llc = shared_level();
    llc.set_rotation(RotationPolicy::PerPartition { period: 32 });
    llc.set_rotation_group(pid(1), 0);
    llc.set_rotation_group(pid(2), 0);
    llc.set_rotation_group(pid(3), 1);

    for p in 1..=3u16 {
        for i in 0..6u64 {
            llc.resolve(
                pid(p),
                Some(tscache_core::addr::LineAddr::new(0xb000 + p as u64 * 64 + i)),
                &[],
            );
        }
    }
    // 18 fills so far; 14 more by pid 3 reach the period.
    for i in 0..14u64 {
        llc.resolve(pid(3), Some(tscache_core::addr::LineAddr::new(0xc000 + i)), &[]);
    }
    assert_eq!(llc.rotation_epoch(), 1);
    let owners: BTreeSet<u16> = llc.cache().contents().map(|(_, _, _, o)| o.as_u16()).collect();
    assert!(!owners.contains(&1) && !owners.contains(&2), "group 0 must rotate together");
    assert!(owners.contains(&3), "group 1 rotates in a later epoch");
}

#[test]
fn rotation_reproduces_bit_for_bit() {
    let run = || {
        let mut llc = shared_level();
        llc.set_rotation(RotationPolicy::PerCore { period: 48 });
        drive_rotation(&mut llc, 500);
        let contents: Vec<_> =
            llc.cache().contents().map(|(s, w, l, o)| (s, w, l.as_u64(), o.as_u16())).collect();
        (llc.rotation_epoch(), *llc.cache().stats(), contents)
    };
    assert_eq!(run(), run());
    // The schedule actually fired several times over 500 fills.
    let mut llc = shared_level();
    llc.set_rotation(RotationPolicy::PerCore { period: 48 });
    drive_rotation(&mut llc, 500);
    assert!(llc.rotation_epoch() >= 10, "epoch {}", llc.rotation_epoch());
}

/// The differential harness from `hierarchy_batch_differential`, with
/// a defense armed on both walks: scalar and batch executions must
/// stay bit-identical under every defense × placement × replacement ×
/// depth combination (TTL ticks and normalization transfers happen in
/// access order on both paths; the defenses must not disturb that).
#[test]
fn scalar_vs_batch_bit_identical_under_every_defense() {
    use tscache_core::replacement::ReplacementKind;

    fn small_hierarchy(
        placement: PlacementKind,
        replacement: ReplacementKind,
        depth: HierarchyDepth,
    ) -> Hierarchy {
        let l1 = CacheGeometry::new(8, 2, 32).unwrap();
        let l2 = CacheGeometry::new(32, 4, 32).unwrap();
        let l3 = CacheGeometry::new(64, 4, 32).unwrap();
        let mut unified = vec![(Cache::new("L2", l2, placement, replacement, 0x33), 10)];
        if depth == HierarchyDepth::ThreeLevel {
            unified.push((Cache::new("L3", l3, placement, replacement, 0x44), 30));
        }
        let mut h = Hierarchy::from_parts(
            Cache::new("L1I", l1, placement, replacement, 0x11),
            Cache::new("L1D", l1, placement, replacement, 0x22),
            unified,
            1,
            80,
        );
        h.set_process_seed(pid(1), Seed::new(0xaaaa));
        h.set_process_seed(pid(2), Seed::new(0xbbbb));
        h.set_write_policy(WritePolicy::WriteBack);
        h
    }

    fn contents_of(c: &Cache) -> Vec<(u32, u32, u64, u16)> {
        c.contents().map(|(s, w, l, o)| (s, w, l.as_u64(), o.as_u16())).collect()
    }

    // Two processes interleaving over a *shared* footprint, so
    // normalization's ownership transfers actually occur.
    let pid_of = |i: usize| if (i / 61).is_multiple_of(2) { pid(1) } else { pid(2) };

    for defense in DefenseKind::ALL {
        for depth in HierarchyDepth::ALL {
            for placement in PlacementKind::ALL {
                for replacement in ReplacementKind::ALL {
                    let label = format!("{defense}/{placement}/{replacement}/{depth}");
                    let trace = TraceOp::mixed_trace(
                        mix64(defense as u64 * 31 + placement as u64),
                        600,
                        1 << 13,
                    );
                    let mut scalar = small_hierarchy(placement, replacement, depth);
                    let mut batched = small_hierarchy(placement, replacement, depth);
                    scalar.apply_defense(defense);
                    batched.apply_defense(defense);

                    let mut scalar_cycles = 0u64;
                    for (i, op) in trace.iter().enumerate() {
                        scalar_cycles += scalar.access(pid_of(i), op.kind, op.addr) as u64;
                    }
                    let mut batch_cycles = 0u64;
                    for (seg, chunk) in trace.chunks(61).enumerate() {
                        batch_cycles += batched.access_batch(pid_of(seg * 61), chunk).cycles;
                    }

                    assert_eq!(batch_cycles, scalar_cycles, "{label}: cycles diverge");
                    let pairs = [(scalar.l1i(), batched.l1i()), (scalar.l1d(), batched.l1d())];
                    for (a, b) in pairs
                        .into_iter()
                        .chain(scalar.unified_levels().zip(batched.unified_levels()))
                    {
                        assert_eq!(a.stats(), b.stats(), "{label}: {} stats diverge", a.label());
                        assert_eq!(
                            contents_of(a),
                            contents_of(b),
                            "{label}: {} contents diverge",
                            a.label()
                        );
                    }
                    if defense == DefenseKind::Ttl {
                        let expiries: u64 = [scalar.l1i(), scalar.l1d()]
                            .into_iter()
                            .chain(scalar.unified_levels())
                            .map(|c| c.stats().ttl_expiries())
                            .sum();
                        assert!(expiries > 0, "{label}: TTL armed but never fired");
                    }
                }
            }
        }
    }
}

#[test]
fn hierarchy_apply_defense_arms_every_level() {
    let mut h = tscache_core::setup::SetupKind::TsCache.build_depth(HierarchyDepth::ThreeLevel, 7);
    h.apply_defense(DefenseKind::Ttl);
    assert!(h.l1i().ttl().is_some());
    assert!(h.l1d().ttl().is_some());
    assert!(h.unified_levels().all(|c| c.ttl().is_some()));
    assert!(!h.l1d().normalize_enabled());

    h.apply_defense(DefenseKind::Normalize);
    assert!(h.l1d().normalize_enabled());
    assert!(h.unified_levels().all(|c| c.normalize_enabled()));
    assert!(h.l1i().ttl().is_none(), "switching defenses must disarm the previous one");

    h.apply_defense(DefenseKind::Off);
    assert!(!h.l1d().normalize_enabled());
    assert!(h.l1d().ttl().is_none());
}
