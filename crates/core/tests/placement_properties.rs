//! Property-based tests (proptest) for the placement policies and the
//! Benes-style permutation network.

use proptest::prelude::*;
use tscache_core::addr::LineAddr;
use tscache_core::geometry::CacheGeometry;
use tscache_core::placement::{PermutationNetwork, PlacementKind};
use tscache_core::seed::Seed;

proptest! {
    /// The permutation network is a bijection for every control word.
    #[test]
    fn benes_bijective_k7(control in any::<u64>()) {
        let net = PermutationNetwork::new(7);
        let mut seen = [false; 128];
        for v in 0..128u32 {
            let out = net.apply(v, control) as usize;
            prop_assert!(!seen[out], "collision at {out}");
            seen[out] = true;
        }
    }

    /// Bijectivity also holds at the L2 index width.
    #[test]
    fn benes_bijective_k11(control in any::<u64>()) {
        let net = PermutationNetwork::new(11);
        let mut seen = vec![false; 2048];
        for v in 0..2048u32 {
            let out = net.apply(v, control) as usize;
            prop_assert!(!seen[out], "collision at {out}");
            seen[out] = true;
        }
    }

    /// Every policy places every (line, seed) pair inside the set range.
    #[test]
    fn placement_in_range(line in any::<u64>(), seed in any::<u64>()) {
        let geom = CacheGeometry::paper_l1();
        for kind in PlacementKind::ALL {
            let mut p = kind.build(&geom);
            let set = p.place(LineAddr::new(line >> 5), Seed::new(seed));
            prop_assert!(set < geom.sets(), "{kind}: {set}");
        }
    }

    /// Placement is a pure function of (line, seed) for every policy
    /// (absent contention remaps).
    #[test]
    fn placement_deterministic(line in any::<u64>(), seed in any::<u64>()) {
        let geom = CacheGeometry::paper_l1();
        for kind in PlacementKind::ALL {
            let mut p = kind.build(&geom);
            let l = LineAddr::new(line >> 5);
            let s = Seed::new(seed);
            prop_assert_eq!(p.place(l, s), p.place(l, s), "{}", kind);
        }
    }

    /// Random Modulo: no two lines of the same page ever share a set
    /// (mbpta-p3), for arbitrary pages and seeds.
    #[test]
    fn random_modulo_intra_page_injective(page in 0u64..1_000_000, seed in any::<u64>()) {
        let geom = CacheGeometry::paper_l1();
        let mut p = PlacementKind::RandomModulo.build(&geom);
        let lines_per_page = 128u64; // 4 KiB page / 32 B lines
        let s = Seed::new(seed);
        let mut seen = [false; 128];
        for i in 0..lines_per_page {
            let set = p.place(LineAddr::new(page * lines_per_page + i), s) as usize;
            prop_assert!(!seen[set], "intra-page collision at set {set}");
            seen[set] = true;
        }
    }

    /// Modulo ignores the seed entirely.
    #[test]
    fn modulo_seed_invariant(line in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let geom = CacheGeometry::paper_l2();
        let mut p = PlacementKind::Modulo.build(&geom);
        let l = LineAddr::new(line >> 5);
        prop_assert_eq!(p.place(l, Seed::new(s1)), p.place(l, Seed::new(s2)));
    }

    /// XOR-index preserves the modulo conflict relation for every seed.
    #[test]
    fn xor_index_preserves_conflict_relation(
        a in any::<u64>(),
        b in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let geom = CacheGeometry::paper_l1();
        let mut xor = PlacementKind::XorIndex.build(&geom);
        let mut modulo = PlacementKind::Modulo.build(&geom);
        let (la, lb) = (LineAddr::new(a >> 5), LineAddr::new(b >> 5));
        let s = Seed::new(seed);
        let conflict_mod = modulo.place(la, Seed::ZERO) == modulo.place(lb, Seed::ZERO);
        let conflict_xor = xor.place(la, s) == xor.place(lb, s);
        prop_assert_eq!(conflict_mod, conflict_xor);
    }

    /// RPCache per-seed tables are permutations of the set space.
    #[test]
    fn rpcache_tables_bijective(seed in any::<u64>()) {
        let geom = CacheGeometry::paper_l1();
        let mut p = PlacementKind::RpCache.build(&geom);
        let s = Seed::new(seed);
        let mut seen = [false; 128];
        for i in 0..128u64 {
            let set = p.place(LineAddr::new(i), s) as usize;
            prop_assert!(!seen[set]);
            seen[set] = true;
        }
    }

    /// HashRP single-bit neighbours must *sometimes* collide across a
    /// seed population (the full-randomness property a purely linear
    /// hash cannot deliver).
    #[test]
    fn hash_rp_single_bit_pairs_collide_sometimes(base in any::<u64>(), bit in 0u32..40) {
        let geom = CacheGeometry::paper_l1();
        let mut p = PlacementKind::HashRp.build(&geom);
        let a = LineAddr::new(base >> 10);
        let b = LineAddr::new((base >> 10) ^ (1u64 << bit));
        prop_assume!(a != b);
        let mut collide = 0u32;
        for s in 0..4096u64 {
            if p.place(a, Seed::new(s)) == p.place(b, Seed::new(s)) {
                collide += 1;
            }
        }
        // Expected ≈ 32; demand at least a handful and not all.
        prop_assert!(collide > 0, "pair never collides");
        prop_assert!(collide < 4096, "pair always collides");
    }
}
