//! Differential tests pinning `Hierarchy::access_batch` access-for-
//! access against the scalar `Hierarchy::access` loop: hits, misses,
//! evictions, redirects, cycles and final contents must be identical
//! on recorded traces, across every placement × replacement
//! combination and both hierarchy depths. Any divergence in the batch
//! plumbing (run splitting, miss-stream ordering, per-level RNG use)
//! shows up here as a counter or contents mismatch.

use tscache_core::addr::Addr;
use tscache_core::cache::{Cache, WritePolicy};
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{AccessKind, Hierarchy, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};

/// Deterministic trace mixing fetches, reads and writes over a working
/// set large enough to overflow the small L1 below (hits, misses,
/// evictions and L2/L3 traffic all occur).
fn recorded_trace(salt: u64, len: usize) -> Vec<TraceOp> {
    TraceOp::mixed_trace(salt, len, 1 << 14)
}

/// A small hierarchy (8×2 L1s, 32×4 L2, optional 64×4 L3) built with
/// uniform policies, two seeded processes, a protected range and an
/// L1 way partition for pid 2 — every feature the batch path must
/// reproduce.
fn small_hierarchy(
    placement: PlacementKind,
    replacement: ReplacementKind,
    depth: HierarchyDepth,
) -> Hierarchy {
    let l1 = CacheGeometry::new(8, 2, 32).unwrap();
    let l2 = CacheGeometry::new(32, 4, 32).unwrap();
    let l3 = CacheGeometry::new(64, 4, 32).unwrap();
    let mut unified = vec![(Cache::new("L2", l2, placement, replacement, 0x33), 10)];
    if depth == HierarchyDepth::ThreeLevel {
        unified.push((Cache::new("L3", l3, placement, replacement, 0x44), 30));
    }
    let mut h = Hierarchy::from_parts(
        Cache::new("L1I", l1, placement, replacement, 0x11),
        Cache::new("L1D", l1, placement, replacement, 0x22),
        unified,
        1,
        80,
    );
    h.set_process_seed(ProcessId::new(1), Seed::new(0xaaaa));
    h.set_process_seed(ProcessId::new(2), Seed::new(0xbbbb));
    h.add_protected_range(Addr::new(0x200), 256);
    h.set_l1_way_partition(ProcessId::new(2), 0, 1);
    h
}

fn contents_of(c: &Cache) -> Vec<(u32, u32, u64, u16)> {
    c.contents().map(|(s, w, l, o)| (s, w, l.as_u64(), o.as_u16())).collect()
}

fn assert_levels_identical(scalar: &Hierarchy, batched: &Hierarchy, label: &str) {
    let pairs = [(scalar.l1i(), batched.l1i()), (scalar.l1d(), batched.l1d())];
    for (a, b) in pairs.into_iter().chain(scalar.unified_levels().zip(batched.unified_levels())) {
        // CacheStats equality covers hit/miss/eviction/cross-process
        // *and* writeback counters.
        assert_eq!(a.stats(), b.stats(), "{label}: {} stats diverge", a.label());
        assert_eq!(contents_of(a), contents_of(b), "{label}: {} final contents diverge", a.label());
        assert_eq!(a.dirty_lines(), b.dirty_lines(), "{label}: {} dirty sets diverge", a.label());
    }
}

/// The scalar reference walk, interleaving the two processes the same
/// way the batch run below does (pid switches at fixed op indices).
fn pid_of(i: usize) -> ProcessId {
    if (i / 97).is_multiple_of(2) {
        ProcessId::new(1)
    } else {
        ProcessId::new(2)
    }
}

#[test]
fn batch_is_bit_identical_across_all_policy_combinations() {
    for depth in HierarchyDepth::ALL {
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
                    let label = format!("{placement}/{replacement}/{depth}/{policy:?}");
                    let trace = recorded_trace(
                        (placement as usize * 16 + replacement as usize) as u64 + 1,
                        700,
                    );
                    let mut scalar = small_hierarchy(placement, replacement, depth);
                    let mut batched = small_hierarchy(placement, replacement, depth);
                    scalar.set_write_policy(policy);
                    batched.set_write_policy(policy);

                    let mut scalar_cycles = 0u64;
                    for (i, op) in trace.iter().enumerate() {
                        scalar_cycles += scalar.access(pid_of(i), op.kind, op.addr) as u64;
                    }

                    // Batch in pid-homogeneous segments (97 ops each), the
                    // way `Machine::run_trace` drives the hierarchy.
                    let mut batch_cycles = 0u64;
                    let mut hits = 0u64;
                    let mut misses = 0u64;
                    let mut evictions = 0u64;
                    for (seg, chunk) in trace.chunks(97).enumerate() {
                        let out = batched.access_batch(pid_of(seg * 97), chunk);
                        batch_cycles += out.cycles;
                        for agg in [out.l1i, out.l1d].into_iter().chain(out.unified.iter().copied())
                        {
                            hits += agg.hits;
                            misses += agg.misses;
                            evictions += agg.evictions;
                        }
                    }

                    assert_eq!(batch_cycles, scalar_cycles, "{label}: cycle totals diverge");
                    assert_levels_identical(&scalar, &batched, &label);
                    let total = scalar.total_stats();
                    assert_eq!(hits, total.hits(), "{label}: hit totals diverge");
                    assert_eq!(misses, total.misses(), "{label}: miss totals diverge");
                    assert_eq!(evictions, total.evictions(), "{label}: eviction totals diverge");
                }
            }
        }
    }
}

#[test]
fn batch_is_bit_identical_on_paper_presets() {
    for depth in HierarchyDepth::ALL {
        for setup in SetupKind::ALL {
            let label = format!("{setup}/{depth}");
            let pid = ProcessId::new(1);
            let trace = recorded_trace(0x5e7 ^ setup as u64, 2500);
            let mut scalar = setup.build_depth(depth, 42);
            let mut batched = setup.build_depth(depth, 42);
            scalar.set_process_seed(pid, Seed::new(7));
            batched.set_process_seed(pid, Seed::new(7));

            let mut scalar_cycles = 0u64;
            for op in &trace {
                scalar_cycles += scalar.access(pid, op.kind, op.addr) as u64;
            }
            let out = batched.access_batch(pid, &trace);

            assert_eq!(out.cycles, scalar_cycles, "{label}: cycle totals diverge");
            assert_eq!(out.ops, trace.len() as u64, "{label}");
            assert_levels_identical(&scalar, &batched, &label);
        }
    }
}

#[test]
fn batch_redirect_counts_match_scalar_outcomes() {
    // RPCache's contention remap is the trickiest path (extra RNG
    // draws, alias invalidation): count scalar redirects one by one
    // and compare with the batch aggregate.
    let trace = recorded_trace(99, 900);
    let mut scalar =
        small_hierarchy(PlacementKind::RpCache, ReplacementKind::Lru, HierarchyDepth::ThreeLevel);
    let mut batched =
        small_hierarchy(PlacementKind::RpCache, ReplacementKind::Lru, HierarchyDepth::ThreeLevel);

    // Scalar walk via the underlying per-level caches to observe each
    // op's outcome (Hierarchy::access hides them).
    let mut scalar_cycles = 0u64;
    for (i, op) in trace.iter().enumerate() {
        scalar_cycles += scalar.access(pid_of(i), op.kind, op.addr) as u64;
    }
    let mut batch_cycles = 0u64;
    let mut redirected = 0u64;
    for (seg, chunk) in trace.chunks(97).enumerate() {
        let out = batched.access_batch(pid_of(seg * 97), chunk);
        batch_cycles += out.cycles;
        redirected += out.l1i.redirected + out.l1d.redirected;
        redirected += out.unified.iter().map(|u| u.redirected).sum::<u64>();
    }
    assert_eq!(batch_cycles, scalar_cycles);
    assert_levels_identical(&scalar, &batched, "rpcache/lru/l3");
    assert!(redirected > 0, "contention-heavy RPCache trace never redirected");
}

#[test]
fn fetch_heavy_and_data_heavy_run_boundaries() {
    // Degenerate run shapes: all-fetch, all-data, and strict
    // alternation (runs of length one) must all match the scalar walk.
    let pid = ProcessId::new(1);
    for shape in 0..3u8 {
        let trace: Vec<TraceOp> = (0..500u64)
            .map(|i| {
                let addr = Addr::new((i * 613) % (1 << 13));
                match (shape, i % 2) {
                    (0, _) => TraceOp::fetch(addr),
                    (1, _) => TraceOp::read(addr),
                    (_, 0) => TraceOp::fetch(addr),
                    (_, _) => TraceOp::write(addr),
                }
            })
            .collect();
        let mut scalar = small_hierarchy(
            PlacementKind::RandomModulo,
            ReplacementKind::Random,
            HierarchyDepth::TwoLevel,
        );
        let mut batched = small_hierarchy(
            PlacementKind::RandomModulo,
            ReplacementKind::Random,
            HierarchyDepth::TwoLevel,
        );
        let mut scalar_cycles = 0u64;
        for op in &trace {
            scalar_cycles += scalar.access(pid, op.kind, op.addr) as u64;
        }
        let out = batched.access_batch(pid, &trace);
        assert_eq!(out.cycles, scalar_cycles, "shape {shape}");
        assert_levels_identical(&scalar, &batched, &format!("shape {shape}"));
        match shape {
            0 => assert_eq!(out.l1d.accesses(), 0),
            1 => assert_eq!(out.l1i.accesses(), 0),
            _ => {
                assert_eq!(out.l1i.accesses(), 250);
                assert_eq!(out.l1d.accesses(), 250);
            }
        }
    }
}

#[test]
fn machine_access_kinds_route_to_expected_l1() {
    // Sanity on AccessKind routing used by the run splitter.
    let mut h =
        small_hierarchy(PlacementKind::Modulo, ReplacementKind::Lru, HierarchyDepth::TwoLevel);
    let pid = ProcessId::new(1);
    h.access_batch(
        pid,
        &[
            TraceOp::fetch(Addr::new(0)),
            TraceOp::read(Addr::new(0x40)),
            TraceOp::write(Addr::new(0x80)),
        ],
    );
    assert_eq!(h.l1i().stats().accesses(), 1);
    assert_eq!(h.l1d().stats().accesses(), 2);
    assert_eq!(h.access(pid, AccessKind::Read, Addr::new(0x40)), 1);
}
