//! Property tests for the memory hierarchy: latency algebra, level
//! isolation, seed handling, capacity monotonicity, partition
//! containment and batch-split independence under arbitrary access
//! sequences.

use proptest::prelude::*;
use tscache_core::addr::Addr;
use tscache_core::cache::Cache;
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{AccessKind, Hierarchy, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};

fn kind_of(tag: u8) -> AccessKind {
    match tag % 3 {
        0 => AccessKind::Fetch,
        1 => AccessKind::Read,
        _ => AccessKind::Write,
    }
}

/// A modulo/LRU hierarchy with explicit L1 and L2 associativity (the
/// capacity-growth knob below).
fn lru_hierarchy(l1_ways: u32, l2_ways: u32) -> Hierarchy {
    let l1 = CacheGeometry::new(8, l1_ways, 32).unwrap();
    let l2 = CacheGeometry::new(64, l2_ways, 32).unwrap();
    let mk =
        |label: &str, geom| Cache::new(label, geom, PlacementKind::Modulo, ReplacementKind::Lru, 5);
    Hierarchy::from_parts(mk("L1I", l1), mk("L1D", l1), vec![(mk("L2", l2), 10)], 1, 80)
}

proptest! {
    /// Every access costs exactly one of the three latency sums
    /// (L1 hit / L2 hit / memory), for every setup.
    #[test]
    fn latency_is_always_on_the_ladder(
        accesses in prop::collection::vec((0u64..1 << 20, 0u8..3), 1..300),
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let mut h = setup.build(42);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(7));
        for &(addr, tag) in &accesses {
            let cost = h.access(pid, kind_of(tag), Addr::new(addr));
            prop_assert!(
                cost == 1 || cost == 11 || cost == 91,
                "{setup}: cost {cost} not in {{1, 11, 91}}"
            );
        }
    }

    /// Immediately repeating any access hits L1 (cost 1).
    #[test]
    fn repeat_access_hits(
        addr in 0u64..1 << 24,
        tag in 0u8..3,
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let mut h = setup.build(3);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(11));
        let kind = kind_of(tag);
        h.access(pid, kind, Addr::new(addr));
        prop_assert_eq!(h.access(pid, kind, Addr::new(addr)), 1);
    }

    /// Total statistics equal the sum of per-level statistics, and L1D
    /// never sees fetches (level isolation).
    #[test]
    fn stats_decompose_by_level(
        accesses in prop::collection::vec((0u64..1 << 16, 0u8..3), 1..200),
    ) {
        let mut h = SetupKind::Mbpta.build(5);
        let pid = ProcessId::new(2);
        h.set_process_seed(pid, Seed::new(13));
        let mut fetches = 0u64;
        let mut data = 0u64;
        for &(addr, tag) in &accesses {
            match kind_of(tag) {
                AccessKind::Fetch => fetches += 1,
                _ => data += 1,
            }
            h.access(pid, kind_of(tag), Addr::new(addr));
        }
        prop_assert_eq!(h.l1i().stats().accesses(), fetches);
        prop_assert_eq!(h.l1d().stats().accesses(), data);
        let total = h.total_stats();
        prop_assert_eq!(
            total.accesses(),
            h.l1i().stats().accesses()
                + h.l1d().stats().accesses()
                + h.l2().stats().accesses()
        );
    }

    /// After flush_all, the next access to any previously-touched line
    /// pays the full memory latency.
    #[test]
    fn flush_all_is_total(addrs in prop::collection::vec(0u64..1 << 20, 1..100)) {
        let mut h = SetupKind::TsCache.build(9);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(21));
        for &a in &addrs {
            h.access(pid, AccessKind::Read, Addr::new(a));
        }
        h.flush_all();
        prop_assert_eq!(h.access(pid, AccessKind::Read, Addr::new(addrs[0])), 91);
    }

    /// flush_process removes only the named process's lines.
    #[test]
    fn flush_process_is_selective(
        a_addrs in prop::collection::vec(0u64..1 << 12, 1..30),
        b_addrs in prop::collection::vec((1u64 << 20)..(1 << 20) + (1 << 12), 1..30),
    ) {
        let mut h = SetupKind::Deterministic.build(1);
        let (pa, pb) = (ProcessId::new(1), ProcessId::new(2));
        for &a in &a_addrs {
            h.access(pa, AccessKind::Read, Addr::new(a));
        }
        for &b in &b_addrs {
            h.access(pb, AccessKind::Read, Addr::new(b));
        }
        // Re-touch to ensure residency (evictions may have occurred),
        // then flush pa and check pb's last line survives in L1.
        let keep = Addr::new(b_addrs[b_addrs.len() - 1]);
        h.access(pb, AccessKind::Read, keep);
        h.flush_process(pa);
        prop_assert_eq!(h.access(pb, AccessKind::Read, keep), 1);
        prop_assert_eq!(h.access(pa, AccessKind::Read, Addr::new(a_addrs[0])), 91);
    }

    /// Three-level presets keep every access on their (longer) latency
    /// ladder.
    #[test]
    fn three_level_latency_is_always_on_the_ladder(
        accesses in prop::collection::vec((0u64..1 << 20, 0u8..3), 1..300),
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let mut h = setup.build_depth(HierarchyDepth::ThreeLevel, 42);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(7));
        for &(addr, tag) in &accesses {
            let cost = h.access(pid, kind_of(tag), Addr::new(addr));
            prop_assert!(
                cost == 1 || cost == 11 || cost == 41 || cost == 121,
                "{setup}: cost {cost} not in {{1, 11, 41, 121}}"
            );
        }
    }

    /// Growing a level's associativity under LRU never increases that
    /// level's miss count on the same access sequence (the stack
    /// property, per set): grown L1s see the identical op stream;
    /// with L1s fixed, a grown L2 sees the identical miss stream.
    #[test]
    fn miss_counts_are_monotone_under_capacity_growth(
        accesses in prop::collection::vec((0u64..1 << 13, 0u8..3), 1..250),
    ) {
        let pid = ProcessId::new(1);
        let run = |l1_ways: u32, l2_ways: u32| {
            let mut h = lru_hierarchy(l1_ways, l2_ways);
            for &(addr, tag) in &accesses {
                h.access(pid, kind_of(tag), Addr::new(addr));
            }
            (
                h.l1i().stats().misses() + h.l1d().stats().misses(),
                h.l2().stats().misses(),
            )
        };
        let (l1_small, _) = run(2, 4);
        let (l1_big, _) = run(4, 4);
        prop_assert!(
            l1_big <= l1_small,
            "L1 misses grew with associativity: {l1_big} > {l1_small}"
        );
        let (_, l2_small) = run(2, 2);
        let (_, l2_big) = run(2, 4);
        prop_assert!(
            l2_big <= l2_small,
            "L2 misses grew with associativity: {l2_big} > {l2_small}"
        );
    }

    /// With disjoint way partitions installed at *every* level, no
    /// process ever evicts another's line at any level, and every
    /// cached line sits inside its owner's partition — the strict
    /// no-cross-pid-leakage configuration of §7.
    #[test]
    fn full_partitioning_prevents_cross_pid_leakage_at_every_level(
        a_ops in prop::collection::vec((0u64..1 << 14, 0u8..3), 1..150),
        b_ops in prop::collection::vec((0u64..1 << 14, 0u8..3), 1..150),
        depth_idx in 0usize..2,
    ) {
        let (pa, pb) = (ProcessId::new(1), ProcessId::new(2));
        let mut h = SetupKind::TsCache.build_depth(HierarchyDepth::ALL[depth_idx], 13);
        h.set_process_seed(pa, Seed::new(1));
        h.set_process_seed(pb, Seed::new(2));
        h.set_way_partition(pa, 0, 2);
        h.set_way_partition(pb, 2, 4);
        let n = a_ops.len().max(b_ops.len());
        for i in 0..n {
            if let Some(&(addr, tag)) = a_ops.get(i) {
                h.access(pa, kind_of(tag), Addr::new(addr));
            }
            if let Some(&(addr, tag)) = b_ops.get(i) {
                h.access(pb, kind_of(tag), Addr::new(addr));
            }
        }
        let levels: Vec<&Cache> =
            [h.l1i(), h.l1d()].into_iter().chain(h.unified_levels()).collect();
        for cache in levels {
            prop_assert_eq!(
                cache.stats().cross_process_evictions(),
                0,
                "{}: cross-pid eviction under full partitioning",
                cache.label()
            );
            for (_, way, _, owner) in cache.contents() {
                match owner.as_u16() {
                    1 => prop_assert!(way < 2, "{}: pid 1 line in way {way}", cache.label()),
                    2 => prop_assert!(way >= 2, "{}: pid 2 line in way {way}", cache.label()),
                    _ => {}
                }
            }
        }
    }

    /// Protected ranges registered on the hierarchy cover the same
    /// lines at every data level (the P-bit view cannot diverge
    /// between L1D, L2 and L3).
    #[test]
    fn protected_ranges_agree_across_levels(
        start in 0u64..1 << 16,
        size in 1u64..1 << 12,
        probe in 0u64..1 << 17,
        depth_idx in 0usize..2,
    ) {
        let mut h = SetupKind::RpCache.build_depth(HierarchyDepth::ALL[depth_idx], 3);
        h.add_protected_range(Addr::new(start), size);
        let line = probe >> 5;
        let expect = h.l1d().is_protected_addr(line);
        for cache in h.unified_levels() {
            prop_assert_eq!(
                cache.is_protected_addr(line),
                expect,
                "{} disagrees with L1D on line {line}",
                cache.label()
            );
        }
    }

    /// Splitting a trace at any point and batching the halves yields
    /// exactly the totals of one whole-trace batch, which equal the
    /// scalar walk (batch-size independence).
    #[test]
    fn batch_totals_are_split_point_independent(
        accesses in prop::collection::vec((0u64..1 << 16, 0u8..3), 2..250),
        split_sel in 0usize..1 << 16,
        setup_idx in 0usize..4,
        depth_idx in 0usize..2,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let depth = HierarchyDepth::ALL[depth_idx];
        let pid = ProcessId::new(1);
        let ops: Vec<TraceOp> = accesses
            .iter()
            .map(|&(addr, tag)| TraceOp { kind: kind_of(tag), addr: Addr::new(addr) })
            .collect();
        let split = split_sel % (ops.len() + 1);

        let build = || {
            let mut h = setup.build_depth(depth, 77);
            h.set_process_seed(pid, Seed::new(99));
            h
        };
        let mut whole = build();
        let whole_out = whole.access_batch(pid, &ops);

        let mut halves = build();
        let first = halves.access_batch(pid, &ops[..split]);
        let second = halves.access_batch(pid, &ops[split..]);
        prop_assert_eq!(
            first.cycles + second.cycles,
            whole_out.cycles,
            "{setup}/{depth}: split at {split} changes cycles"
        );
        prop_assert_eq!(whole.total_stats(), halves.total_stats());

        let mut scalar = build();
        let mut scalar_cycles = 0u64;
        for op in &ops {
            scalar_cycles += scalar.access(pid, op.kind, op.addr) as u64;
        }
        prop_assert_eq!(whole_out.cycles, scalar_cycles);
        prop_assert_eq!(whole.total_stats(), scalar.total_stats());
    }

    /// The same seed always reproduces the same cost sequence
    /// (simulator determinism end to end).
    #[test]
    fn cost_sequences_are_reproducible(
        accesses in prop::collection::vec((0u64..1 << 18, 0u8..3), 1..150),
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let run = || {
            let mut h = setup.build(77);
            let pid = ProcessId::new(1);
            h.set_process_seed(pid, Seed::new(99));
            accesses
                .iter()
                .map(|&(a, t)| h.access(pid, kind_of(t), Addr::new(a)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
