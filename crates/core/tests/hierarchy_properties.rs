//! Property tests for the memory hierarchy: latency algebra, level
//! isolation and seed handling under arbitrary access sequences.

use proptest::prelude::*;
use tscache_core::addr::Addr;
use tscache_core::hierarchy::AccessKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::SetupKind;

fn kind_of(tag: u8) -> AccessKind {
    match tag % 3 {
        0 => AccessKind::Fetch,
        1 => AccessKind::Read,
        _ => AccessKind::Write,
    }
}

proptest! {
    /// Every access costs exactly one of the three latency sums
    /// (L1 hit / L2 hit / memory), for every setup.
    #[test]
    fn latency_is_always_on_the_ladder(
        accesses in prop::collection::vec((0u64..1 << 20, 0u8..3), 1..300),
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let mut h = setup.build(42);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(7));
        for &(addr, tag) in &accesses {
            let cost = h.access(pid, kind_of(tag), Addr::new(addr));
            prop_assert!(
                cost == 1 || cost == 11 || cost == 91,
                "{setup}: cost {cost} not in {{1, 11, 91}}"
            );
        }
    }

    /// Immediately repeating any access hits L1 (cost 1).
    #[test]
    fn repeat_access_hits(
        addr in 0u64..1 << 24,
        tag in 0u8..3,
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let mut h = setup.build(3);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(11));
        let kind = kind_of(tag);
        h.access(pid, kind, Addr::new(addr));
        prop_assert_eq!(h.access(pid, kind, Addr::new(addr)), 1);
    }

    /// Total statistics equal the sum of per-level statistics, and L1D
    /// never sees fetches (level isolation).
    #[test]
    fn stats_decompose_by_level(
        accesses in prop::collection::vec((0u64..1 << 16, 0u8..3), 1..200),
    ) {
        let mut h = SetupKind::Mbpta.build(5);
        let pid = ProcessId::new(2);
        h.set_process_seed(pid, Seed::new(13));
        let mut fetches = 0u64;
        let mut data = 0u64;
        for &(addr, tag) in &accesses {
            match kind_of(tag) {
                AccessKind::Fetch => fetches += 1,
                _ => data += 1,
            }
            h.access(pid, kind_of(tag), Addr::new(addr));
        }
        prop_assert_eq!(h.l1i().stats().accesses(), fetches);
        prop_assert_eq!(h.l1d().stats().accesses(), data);
        let total = h.total_stats();
        prop_assert_eq!(
            total.accesses(),
            h.l1i().stats().accesses()
                + h.l1d().stats().accesses()
                + h.l2().stats().accesses()
        );
    }

    /// After flush_all, the next access to any previously-touched line
    /// pays the full memory latency.
    #[test]
    fn flush_all_is_total(addrs in prop::collection::vec(0u64..1 << 20, 1..100)) {
        let mut h = SetupKind::TsCache.build(9);
        let pid = ProcessId::new(1);
        h.set_process_seed(pid, Seed::new(21));
        for &a in &addrs {
            h.access(pid, AccessKind::Read, Addr::new(a));
        }
        h.flush_all();
        prop_assert_eq!(h.access(pid, AccessKind::Read, Addr::new(addrs[0])), 91);
    }

    /// flush_process removes only the named process's lines.
    #[test]
    fn flush_process_is_selective(
        a_addrs in prop::collection::vec(0u64..1 << 12, 1..30),
        b_addrs in prop::collection::vec((1u64 << 20)..(1 << 20) + (1 << 12), 1..30),
    ) {
        let mut h = SetupKind::Deterministic.build(1);
        let (pa, pb) = (ProcessId::new(1), ProcessId::new(2));
        for &a in &a_addrs {
            h.access(pa, AccessKind::Read, Addr::new(a));
        }
        for &b in &b_addrs {
            h.access(pb, AccessKind::Read, Addr::new(b));
        }
        // Re-touch to ensure residency (evictions may have occurred),
        // then flush pa and check pb's last line survives in L1.
        let keep = Addr::new(b_addrs[b_addrs.len() - 1]);
        h.access(pb, AccessKind::Read, keep);
        h.flush_process(pa);
        prop_assert_eq!(h.access(pb, AccessKind::Read, keep), 1);
        prop_assert_eq!(h.access(pa, AccessKind::Read, Addr::new(a_addrs[0])), 91);
    }

    /// The same seed always reproduces the same cost sequence
    /// (simulator determinism end to end).
    #[test]
    fn cost_sequences_are_reproducible(
        accesses in prop::collection::vec((0u64..1 << 18, 0u8..3), 1..150),
        setup_idx in 0usize..4,
    ) {
        let setup = SetupKind::ALL[setup_idx];
        let run = || {
            let mut h = setup.build(77);
            let pid = ProcessId::new(1);
            h.set_process_seed(pid, Seed::new(99));
            accesses
                .iter()
                .map(|&(a, t)| h.access(pid, kind_of(t), Addr::new(a)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
