//! The multi-core differential suite (the PR's acceptance criterion):
//! contention-aware batch execution must be bit-identical to the
//! scalar multi-core interleaving — per-core cycles, bus waits, MSHR
//! accounting, per-level statistics (including writeback counters) and
//! final cache contents — across every placement × replacement ×
//! depth × arbitration combination, with write-back caches on.

use tscache_core::cache::{Cache, WritePolicy};
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{Hierarchy, SharedLlc, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};
use tscache_interference::{
    execute_batch, execute_batch_shared, execute_scalar, execute_scalar_shared, Arbitration,
    BusConfig, CoreRun, MshrConfig, SystemConfig,
};

/// Deterministic mixed trace whose footprint overflows the small
/// hierarchies below at every level.
fn recorded_trace(salt: u64, len: usize) -> Vec<TraceOp> {
    TraceOp::mixed_trace(salt, len, 1 << 14)
}

/// A small per-core hierarchy (8×2 L1s, 32×4 L2, optional 64×4 L3)
/// with uniform policies, a seeded process and write-back caches.
fn small_hierarchy(
    placement: PlacementKind,
    replacement: ReplacementKind,
    depth: HierarchyDepth,
    core: u64,
) -> Hierarchy {
    let l1 = CacheGeometry::new(8, 2, 32).unwrap();
    let l2 = CacheGeometry::new(32, 4, 32).unwrap();
    let l3 = CacheGeometry::new(64, 4, 32).unwrap();
    let mut unified = vec![(Cache::new("L2", l2, placement, replacement, core ^ 0x33), 10)];
    if depth == HierarchyDepth::ThreeLevel {
        unified.push((Cache::new("L3", l3, placement, replacement, core ^ 0x44), 30));
    }
    let mut h = Hierarchy::from_parts(
        Cache::new("L1I", l1, placement, replacement, core ^ 0x11),
        Cache::new("L1D", l1, placement, replacement, core ^ 0x22),
        unified,
        1,
        80,
    );
    h.set_process_seed(ProcessId::new(1), Seed::new(core.wrapping_mul(0xabcd) | 1));
    h.set_write_policy(WritePolicy::WriteBack);
    h
}

fn contents_of(c: &Cache) -> Vec<(u32, u32, u64, u16)> {
    c.contents().map(|(s, w, l, o)| (s, w, l.as_u64(), o.as_u16())).collect()
}

fn assert_hierarchies_identical(a: &Hierarchy, b: &Hierarchy, label: &str) {
    let pairs = [(a.l1i(), b.l1i()), (a.l1d(), b.l1d())];
    for (x, y) in pairs.into_iter().chain(a.unified_levels().zip(b.unified_levels())) {
        assert_eq!(x.stats(), y.stats(), "{label}: {} stats diverge", x.label());
        assert_eq!(contents_of(x), contents_of(y), "{label}: {} contents diverge", x.label());
        assert_eq!(x.dirty_lines(), y.dirty_lines(), "{label}: {} dirty lines diverge", x.label());
    }
}

#[test]
fn contended_batch_is_bit_identical_to_scalar_interleaving() {
    let pid = ProcessId::new(1);
    for depth in HierarchyDepth::ALL {
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                for arbitration in Arbitration::ALL {
                    let label = format!("{placement}/{replacement}/{depth}/{arbitration}");
                    let cfg = SystemConfig {
                        bus: BusConfig { arbitration, ..BusConfig::default() },
                        mshr: Some(MshrConfig { entries: 2, window_ops: 6, stall_cycles: 5 }),
                    };
                    let salt = (placement as usize * 64 + replacement as usize * 8 + depth as usize)
                        as u64
                        + 1;
                    let traces: Vec<Vec<TraceOp>> = (0..3)
                        .map(|c| recorded_trace(salt ^ (c as u64) << 8, 420 + 60 * c))
                        .collect();
                    let mut scalar_h: Vec<Hierarchy> = (0..3)
                        .map(|c| small_hierarchy(placement, replacement, depth, c as u64))
                        .collect();
                    let mut batch_h: Vec<Hierarchy> = (0..3)
                        .map(|c| small_hierarchy(placement, replacement, depth, c as u64))
                        .collect();
                    let scalar = {
                        let mut cores: Vec<CoreRun<'_>> = scalar_h
                            .iter_mut()
                            .zip(&traces)
                            .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                            .collect();
                        execute_scalar(&mut cores, &cfg)
                    };
                    let batch = {
                        let mut cores: Vec<CoreRun<'_>> = batch_h
                            .iter_mut()
                            .zip(&traces)
                            .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                            .collect();
                        execute_batch(&mut cores, &cfg)
                    };
                    assert_eq!(scalar, batch, "{label}: engine outcomes diverge");
                    for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                        assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
                    }
                }
            }
        }
    }
}

#[test]
fn paper_presets_match_across_engines_with_active_writebacks() {
    // The four DAC'18 setups at both depths, three cores, write-back
    // caches: the production path the campaign layers drive.
    let pid = ProcessId::new(1);
    for setup in SetupKind::ALL {
        for depth in HierarchyDepth::ALL {
            let label = format!("{setup}/{depth}");
            let cfg = SystemConfig::default();
            // A footprint well past the 16 KiB paper L1, so dirty
            // lines really get evicted.
            let traces: Vec<Vec<TraceOp>> = (0..3)
                .map(|c| TraceOp::mixed_trace(0xd5e ^ setup as u64 ^ (c as u64) << 9, 900, 1 << 17))
                .collect();
            let build = |c: u64| {
                let mut h = setup.build_depth(depth, 40 + c);
                h.set_process_seed(pid, Seed::new(0x77 + c));
                h.set_write_policy(WritePolicy::WriteBack);
                h
            };
            let mut scalar_h: Vec<Hierarchy> = (0..3).map(|c| build(c as u64)).collect();
            let mut batch_h: Vec<Hierarchy> = (0..3).map(|c| build(c as u64)).collect();
            let scalar = {
                let mut cores: Vec<CoreRun<'_>> = scalar_h
                    .iter_mut()
                    .zip(&traces)
                    .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                    .collect();
                execute_scalar(&mut cores, &cfg)
            };
            let batch = {
                let mut cores: Vec<CoreRun<'_>> = batch_h
                    .iter_mut()
                    .zip(&traces)
                    .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                    .collect();
                execute_batch(&mut cores, &cfg)
            };
            assert_eq!(scalar, batch, "{label}");
            for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
            }
            // The mixed write trace on write-back caches must really
            // exercise the writeback plumbing.
            let wbs: u64 = scalar_h
                .iter()
                .map(|h| {
                    h.l1d().stats().writebacks()
                        + h.unified_levels().map(|l| l.stats().writebacks()).sum::<u64>()
                })
                .sum();
            assert!(wbs > 0, "{label}: no writeback traffic generated");
        }
    }
}

/// The per-core *private* portion of a shared-LLC platform: split L1s
/// plus an optional private L2, per-core pid and seeds.
fn small_private(
    placement: PlacementKind,
    replacement: ReplacementKind,
    depth: HierarchyDepth,
    policy: WritePolicy,
    core: u64,
) -> (Hierarchy, ProcessId) {
    let l1 = CacheGeometry::new(8, 2, 32).unwrap();
    let l2 = CacheGeometry::new(32, 4, 32).unwrap();
    let mut unified = Vec::new();
    if depth == HierarchyDepth::ThreeLevel {
        unified.push((Cache::new("L2", l2, placement, replacement, core ^ 0x33), 10));
    }
    let mut h = Hierarchy::from_private_parts(
        Cache::new("L1I", l1, placement, replacement, core ^ 0x11),
        Cache::new("L1D", l1, placement, replacement, core ^ 0x22),
        unified,
        1,
        80,
    );
    let pid = ProcessId::new(1 + core as u16);
    h.set_process_seed(pid, Seed::new(core.wrapping_mul(0xabcd) | 1));
    h.set_write_policy(policy);
    (h, pid)
}

fn small_shared_llc(
    placement: PlacementKind,
    replacement: ReplacementKind,
    policy: WritePolicy,
    pids: &[ProcessId],
) -> SharedLlc {
    let mut llc = SharedLlc::new(
        Cache::new("SLLC", CacheGeometry::new(64, 4, 32).unwrap(), placement, replacement, 0x55),
        10,
        80,
    );
    llc.set_write_policy(policy);
    for (k, &pid) in pids.iter().enumerate() {
        llc.set_process_seed(pid, Seed::new(0x511c ^ (k as u64) << 8 | 1));
    }
    llc
}

#[test]
fn shared_llc_batch_is_bit_identical_to_scalar_interleaving() {
    // The shared axis of the acceptance criterion: three cores funnel
    // into one shared last level (so cross-core evictions really
    // happen), across placement × replacement × arbitration × write
    // policy × private depth. Everything must match: engine outcomes,
    // every private level, and the shared cache itself — stats,
    // contents, dirty lines.
    for depth in HierarchyDepth::ALL {
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                for arbitration in Arbitration::ALL {
                    for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
                        let label = format!(
                            "shared/{placement}/{replacement}/{depth}/{arbitration}/{policy:?}"
                        );
                        let cfg = SystemConfig {
                            bus: BusConfig { arbitration, ..BusConfig::default() },
                            mshr: Some(MshrConfig { entries: 2, window_ops: 6, stall_cycles: 5 }),
                        };
                        let salt = (placement as usize * 64
                            + replacement as usize * 8
                            + depth as usize) as u64
                            + 0x9000;
                        let traces: Vec<Vec<TraceOp>> = (0..3)
                            .map(|c| recorded_trace(salt ^ (c as u64) << 8, 360 + 40 * c))
                            .collect();
                        let run = |scalar: bool| {
                            let mut cores_h: Vec<(Hierarchy, ProcessId)> = (0..3)
                                .map(|c| {
                                    small_private(placement, replacement, depth, policy, c as u64)
                                })
                                .collect();
                            let pids: Vec<ProcessId> =
                                cores_h.iter().map(|&(_, pid)| pid).collect();
                            let mut llc = small_shared_llc(placement, replacement, policy, &pids);
                            let out = {
                                let mut cores: Vec<CoreRun<'_>> = cores_h
                                    .iter_mut()
                                    .zip(&traces)
                                    .map(|((h, pid), t)| CoreRun {
                                        hierarchy: h,
                                        pid: *pid,
                                        ops: t,
                                    })
                                    .collect();
                                if scalar {
                                    execute_scalar_shared(&mut cores, &mut llc, &cfg)
                                } else {
                                    execute_batch_shared(&mut cores, &mut llc, &cfg)
                                }
                            };
                            (out, cores_h.into_iter().map(|(h, _)| h).collect::<Vec<_>>(), llc)
                        };
                        let (scalar_out, scalar_h, scalar_llc) = run(true);
                        let (batch_out, batch_h, batch_llc) = run(false);
                        assert_eq!(scalar_out, batch_out, "{label}: engine outcomes diverge");
                        for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                            assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
                        }
                        assert_eq!(
                            scalar_llc.cache().stats(),
                            batch_llc.cache().stats(),
                            "{label}: shared-LLC stats diverge"
                        );
                        assert_eq!(
                            contents_of(scalar_llc.cache()),
                            contents_of(batch_llc.cache()),
                            "{label}: shared-LLC contents diverge"
                        );
                        assert_eq!(
                            scalar_llc.cache().dirty_lines(),
                            batch_llc.cache().dirty_lines(),
                            "{label}: shared-LLC dirty lines diverge"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn shared_llc_paper_presets_match_across_engines() {
    // The four DAC'18 setups on the paper-geometry shared platform
    // (SetupKind::build_private + build_shared_llc), both depths,
    // write-back on — the production path Machine::from_setup_shared
    // drives.
    for setup in SetupKind::ALL {
        for depth in HierarchyDepth::ALL {
            let label = format!("shared-preset/{setup}/{depth}");
            let cfg = SystemConfig::default();
            let traces: Vec<Vec<TraceOp>> = (0..3)
                .map(|c| TraceOp::mixed_trace(0xf00 ^ setup as u64 ^ (c as u64) << 9, 800, 1 << 17))
                .collect();
            let run = |scalar: bool| {
                let mut hs: Vec<Hierarchy> = (0..3u64)
                    .map(|c| {
                        let mut h = setup.build_private(depth, 40 + c);
                        h.set_process_seed(ProcessId::new(1 + c as u16), Seed::new(0x77 + c));
                        h.set_write_policy(WritePolicy::WriteBack);
                        h
                    })
                    .collect();
                let mut llc = setup.build_shared_llc(depth, 40);
                llc.set_write_policy(WritePolicy::WriteBack);
                for c in 0..3u64 {
                    llc.set_process_seed(ProcessId::new(1 + c as u16), Seed::new(0x99 + c));
                }
                let out = {
                    let mut cores: Vec<CoreRun<'_>> = hs
                        .iter_mut()
                        .enumerate()
                        .zip(&traces)
                        .map(|((c, h), t)| CoreRun {
                            hierarchy: h,
                            pid: ProcessId::new(1 + c as u16),
                            ops: t,
                        })
                        .collect();
                    if scalar {
                        execute_scalar_shared(&mut cores, &mut llc, &cfg)
                    } else {
                        execute_batch_shared(&mut cores, &mut llc, &cfg)
                    }
                };
                (out, hs, llc)
            };
            let (scalar_out, scalar_h, scalar_llc) = run(true);
            let (batch_out, batch_h, batch_llc) = run(false);
            assert_eq!(scalar_out, batch_out, "{label}");
            for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
            }
            assert_eq!(scalar_llc.cache().stats(), batch_llc.cache().stats(), "{label}");
            assert_eq!(contents_of(scalar_llc.cache()), contents_of(batch_llc.cache()), "{label}");
        }
    }
}

/// A trace interleaving private traffic with reads, writes and
/// flushes of a shared coherent segment at `shared_base`: the
/// coherence-affected workload shape (upgrade invalidations, flush
/// broadcasts, back-invalidations all fire).
fn coherent_trace(salt: u64, len: usize, shared_base: u64) -> Vec<TraceOp> {
    use tscache_core::addr::Addr;
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let shared_line = Addr::new(shared_base + ((state >> 18) % 16) * 32);
            match i % 13 {
                0 | 5 | 9 => TraceOp::read(shared_line),
                3 => TraceOp::write(shared_line),
                7 => TraceOp::flush(shared_line),
                _ => {
                    let addr = Addr::new((state >> 16) % (1 << 14));
                    if state & 2 == 0 {
                        TraceOp::read(addr)
                    } else {
                        TraceOp::write(addr)
                    }
                }
            }
        })
        .collect()
}

#[test]
fn coherence_axis_batch_is_bit_identical_to_scalar_interleaving() {
    // The coherence axis of the acceptance criterion: two cores share
    // (and write, and flush) a coherent read-mostly segment while a
    // third runs pure private traffic — so the batch engine really
    // mixes pre-executed and per-op cores — across placement ×
    // replacement × write policy × private depth. Everything must
    // match bit for bit: engine outcomes *including the coherence
    // counters*, every private level (stats carry per-cache
    // invalidation counts), and the shared cache.
    const SHARED_BASE: u64 = 1 << 20;
    for depth in HierarchyDepth::ALL {
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
                    let label = format!("coherent/{placement}/{replacement}/{depth}/{policy:?}");
                    let cfg = SystemConfig {
                        bus: BusConfig::default(),
                        mshr: Some(MshrConfig { entries: 2, window_ops: 6, stall_cycles: 5 }),
                    };
                    let salt = (placement as usize * 64 + replacement as usize * 8 + depth as usize)
                        as u64
                        + 0xc0;
                    let traces: Vec<Vec<TraceOp>> = vec![
                        coherent_trace(salt ^ 0x1, 420, SHARED_BASE),
                        coherent_trace(salt ^ 0x2, 380, SHARED_BASE),
                        // Core 2 never touches the shared segment: it
                        // stays pre-batchable in the batch engine.
                        recorded_trace(salt ^ 0x3, 400),
                    ];
                    let run = |scalar: bool| {
                        let mut cores_h: Vec<(Hierarchy, ProcessId)> = (0..3)
                            .map(|c| small_private(placement, replacement, depth, policy, c as u64))
                            .collect();
                        let pids: Vec<ProcessId> = cores_h.iter().map(|&(_, pid)| pid).collect();
                        let mut llc = small_shared_llc(placement, replacement, policy, &pids);
                        llc.add_coherent_range(tscache_core::addr::Addr::new(SHARED_BASE), 512);
                        for (h, _) in cores_h.iter_mut() {
                            h.add_coherent_range(tscache_core::addr::Addr::new(SHARED_BASE), 512);
                        }
                        let out = {
                            let mut cores: Vec<CoreRun<'_>> = cores_h
                                .iter_mut()
                                .zip(&traces)
                                .map(|((h, pid), t)| CoreRun { hierarchy: h, pid: *pid, ops: t })
                                .collect();
                            if scalar {
                                execute_scalar_shared(&mut cores, &mut llc, &cfg)
                            } else {
                                execute_batch_shared(&mut cores, &mut llc, &cfg)
                            }
                        };
                        (out, cores_h.into_iter().map(|(h, _)| h).collect::<Vec<_>>(), llc)
                    };
                    let (scalar_out, scalar_h, scalar_llc) = run(true);
                    let (batch_out, batch_h, batch_llc) = run(false);
                    assert_eq!(scalar_out, batch_out, "{label}: engine outcomes diverge");
                    for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                        assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
                    }
                    assert_eq!(
                        scalar_llc.cache().stats(),
                        batch_llc.cache().stats(),
                        "{label}: shared-LLC stats diverge"
                    );
                    assert_eq!(
                        contents_of(scalar_llc.cache()),
                        contents_of(batch_llc.cache()),
                        "{label}: shared-LLC contents diverge"
                    );
                    // The axis must actually exercise coherence: the
                    // sharing cores invalidate each other, the private
                    // core is never touched.
                    let invalidations: u64 =
                        scalar_out.cores.iter().map(|c| c.coh_invalidations).sum();
                    let txns: u64 = scalar_out.cores.iter().map(|c| c.coh_txns).sum();
                    assert!(invalidations > 0, "{label}: no invalidation ever landed");
                    assert!(txns > 0, "{label}: no coherence bus transaction issued");
                    assert_eq!(
                        scalar_out.cores[2].coh_invalidations, 0,
                        "{label}: coherence traffic reached the private core"
                    );
                }
            }
        }
    }
}

#[test]
fn arbitration_policies_differ_and_order_sensibly() {
    // Same workload under the three policies: the contended core's
    // wait should be zero only when it never collides, and TDMA (a
    // bandwidth-partitioned bus) should generally cost the most.
    let pid = ProcessId::new(1);
    let mut waits = Vec::new();
    for arbitration in Arbitration::ALL {
        let cfg =
            SystemConfig { bus: BusConfig { arbitration, ..BusConfig::default() }, mshr: None };
        let traces: Vec<Vec<TraceOp>> =
            (0..2).map(|c| recorded_trace(0xaa ^ c as u64, 800)).collect();
        let mut hs: Vec<Hierarchy> = (0..2)
            .map(|c| {
                small_hierarchy(
                    PlacementKind::Modulo,
                    ReplacementKind::Lru,
                    HierarchyDepth::TwoLevel,
                    c as u64,
                )
            })
            .collect();
        let mut cores: Vec<CoreRun<'_>> = hs
            .iter_mut()
            .zip(&traces)
            .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
            .collect();
        let out = execute_batch(&mut cores, &cfg);
        let wait: u64 = out.cores.iter().map(|c| c.bus_wait).sum();
        assert!(wait > 0, "{arbitration}: two miss-heavy cores never collided");
        waits.push((arbitration, wait));
    }
    let tdma = waits.iter().find(|(a, _)| matches!(a, Arbitration::Tdma { .. })).unwrap().1;
    let rr = waits.iter().find(|(a, _)| matches!(a, Arbitration::RoundRobin)).unwrap().1;
    assert!(tdma > rr, "TDMA should pay more queuing than round-robin (tdma {tdma}, rr {rr})");
}
