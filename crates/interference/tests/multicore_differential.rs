//! The multi-core differential suite (the PR's acceptance criterion):
//! contention-aware batch execution must be bit-identical to the
//! scalar multi-core interleaving — per-core cycles, bus waits, MSHR
//! accounting, per-level statistics (including writeback counters) and
//! final cache contents — across every placement × replacement ×
//! depth × arbitration combination, with write-back caches on.

use tscache_core::cache::{Cache, WritePolicy};
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{Hierarchy, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_core::setup::{HierarchyDepth, SetupKind};
use tscache_interference::{
    execute_batch, execute_scalar, Arbitration, BusConfig, CoreRun, MshrConfig, SystemConfig,
};

/// Deterministic mixed trace whose footprint overflows the small
/// hierarchies below at every level.
fn recorded_trace(salt: u64, len: usize) -> Vec<TraceOp> {
    TraceOp::mixed_trace(salt, len, 1 << 14)
}

/// A small per-core hierarchy (8×2 L1s, 32×4 L2, optional 64×4 L3)
/// with uniform policies, a seeded process and write-back caches.
fn small_hierarchy(
    placement: PlacementKind,
    replacement: ReplacementKind,
    depth: HierarchyDepth,
    core: u64,
) -> Hierarchy {
    let l1 = CacheGeometry::new(8, 2, 32).unwrap();
    let l2 = CacheGeometry::new(32, 4, 32).unwrap();
    let l3 = CacheGeometry::new(64, 4, 32).unwrap();
    let mut unified = vec![(Cache::new("L2", l2, placement, replacement, core ^ 0x33), 10)];
    if depth == HierarchyDepth::ThreeLevel {
        unified.push((Cache::new("L3", l3, placement, replacement, core ^ 0x44), 30));
    }
    let mut h = Hierarchy::from_parts(
        Cache::new("L1I", l1, placement, replacement, core ^ 0x11),
        Cache::new("L1D", l1, placement, replacement, core ^ 0x22),
        unified,
        1,
        80,
    );
    h.set_process_seed(ProcessId::new(1), Seed::new(core.wrapping_mul(0xabcd) | 1));
    h.set_write_policy(WritePolicy::WriteBack);
    h
}

fn contents_of(c: &Cache) -> Vec<(u32, u32, u64, u16)> {
    c.contents().map(|(s, w, l, o)| (s, w, l.as_u64(), o.as_u16())).collect()
}

fn assert_hierarchies_identical(a: &Hierarchy, b: &Hierarchy, label: &str) {
    let pairs = [(a.l1i(), b.l1i()), (a.l1d(), b.l1d())];
    for (x, y) in pairs.into_iter().chain(a.unified_levels().zip(b.unified_levels())) {
        assert_eq!(x.stats(), y.stats(), "{label}: {} stats diverge", x.label());
        assert_eq!(contents_of(x), contents_of(y), "{label}: {} contents diverge", x.label());
        assert_eq!(x.dirty_lines(), y.dirty_lines(), "{label}: {} dirty lines diverge", x.label());
    }
}

#[test]
fn contended_batch_is_bit_identical_to_scalar_interleaving() {
    let pid = ProcessId::new(1);
    for depth in HierarchyDepth::ALL {
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                for arbitration in Arbitration::ALL {
                    let label = format!("{placement}/{replacement}/{depth}/{arbitration}");
                    let cfg = SystemConfig {
                        bus: BusConfig { arbitration, ..BusConfig::default() },
                        mshr: Some(MshrConfig { entries: 2, window_ops: 6, stall_cycles: 5 }),
                    };
                    let salt = (placement as usize * 64 + replacement as usize * 8 + depth as usize)
                        as u64
                        + 1;
                    let traces: Vec<Vec<TraceOp>> = (0..3)
                        .map(|c| recorded_trace(salt ^ (c as u64) << 8, 420 + 60 * c))
                        .collect();
                    let mut scalar_h: Vec<Hierarchy> = (0..3)
                        .map(|c| small_hierarchy(placement, replacement, depth, c as u64))
                        .collect();
                    let mut batch_h: Vec<Hierarchy> = (0..3)
                        .map(|c| small_hierarchy(placement, replacement, depth, c as u64))
                        .collect();
                    let scalar = {
                        let mut cores: Vec<CoreRun<'_>> = scalar_h
                            .iter_mut()
                            .zip(&traces)
                            .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                            .collect();
                        execute_scalar(&mut cores, &cfg)
                    };
                    let batch = {
                        let mut cores: Vec<CoreRun<'_>> = batch_h
                            .iter_mut()
                            .zip(&traces)
                            .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                            .collect();
                        execute_batch(&mut cores, &cfg)
                    };
                    assert_eq!(scalar, batch, "{label}: engine outcomes diverge");
                    for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                        assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
                    }
                }
            }
        }
    }
}

#[test]
fn paper_presets_match_across_engines_with_active_writebacks() {
    // The four DAC'18 setups at both depths, three cores, write-back
    // caches: the production path the campaign layers drive.
    let pid = ProcessId::new(1);
    for setup in SetupKind::ALL {
        for depth in HierarchyDepth::ALL {
            let label = format!("{setup}/{depth}");
            let cfg = SystemConfig::default();
            // A footprint well past the 16 KiB paper L1, so dirty
            // lines really get evicted.
            let traces: Vec<Vec<TraceOp>> = (0..3)
                .map(|c| TraceOp::mixed_trace(0xd5e ^ setup as u64 ^ (c as u64) << 9, 900, 1 << 17))
                .collect();
            let build = |c: u64| {
                let mut h = setup.build_depth(depth, 40 + c);
                h.set_process_seed(pid, Seed::new(0x77 + c));
                h.set_write_policy(WritePolicy::WriteBack);
                h
            };
            let mut scalar_h: Vec<Hierarchy> = (0..3).map(|c| build(c as u64)).collect();
            let mut batch_h: Vec<Hierarchy> = (0..3).map(|c| build(c as u64)).collect();
            let scalar = {
                let mut cores: Vec<CoreRun<'_>> = scalar_h
                    .iter_mut()
                    .zip(&traces)
                    .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                    .collect();
                execute_scalar(&mut cores, &cfg)
            };
            let batch = {
                let mut cores: Vec<CoreRun<'_>> = batch_h
                    .iter_mut()
                    .zip(&traces)
                    .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
                    .collect();
                execute_batch(&mut cores, &cfg)
            };
            assert_eq!(scalar, batch, "{label}");
            for (i, (a, b)) in scalar_h.iter().zip(&batch_h).enumerate() {
                assert_hierarchies_identical(a, b, &format!("{label}/core{i}"));
            }
            // The mixed write trace on write-back caches must really
            // exercise the writeback plumbing.
            let wbs: u64 = scalar_h
                .iter()
                .map(|h| {
                    h.l1d().stats().writebacks()
                        + h.unified_levels().map(|l| l.stats().writebacks()).sum::<u64>()
                })
                .sum();
            assert!(wbs > 0, "{label}: no writeback traffic generated");
        }
    }
}

#[test]
fn arbitration_policies_differ_and_order_sensibly() {
    // Same workload under the three policies: the contended core's
    // wait should be zero only when it never collides, and TDMA (a
    // bandwidth-partitioned bus) should generally cost the most.
    let pid = ProcessId::new(1);
    let mut waits = Vec::new();
    for arbitration in Arbitration::ALL {
        let cfg =
            SystemConfig { bus: BusConfig { arbitration, ..BusConfig::default() }, mshr: None };
        let traces: Vec<Vec<TraceOp>> =
            (0..2).map(|c| recorded_trace(0xaa ^ c as u64, 800)).collect();
        let mut hs: Vec<Hierarchy> = (0..2)
            .map(|c| {
                small_hierarchy(
                    PlacementKind::Modulo,
                    ReplacementKind::Lru,
                    HierarchyDepth::TwoLevel,
                    c as u64,
                )
            })
            .collect();
        let mut cores: Vec<CoreRun<'_>> = hs
            .iter_mut()
            .zip(&traces)
            .map(|(h, t)| CoreRun { hierarchy: h, pid, ops: t })
            .collect();
        let out = execute_batch(&mut cores, &cfg);
        let wait: u64 = out.cores.iter().map(|c| c.bus_wait).sum();
        assert!(wait > 0, "{arbitration}: two miss-heavy cores never collided");
        waits.push((arbitration, wait));
    }
    let tdma = waits.iter().find(|(a, _)| matches!(a, Arbitration::Tdma { .. })).unwrap().1;
    let rr = waits.iter().find(|(a, _)| matches!(a, Arbitration::RoundRobin)).unwrap().1;
    assert!(tdma > rr, "TDMA should pay more queuing than round-robin (tdma {tdma}, rr {rr})");
}
