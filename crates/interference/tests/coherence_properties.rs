//! Property-based coherence invariants of the MSI invalidation model
//! (the isolation side of the coherence story):
//!
//! * full per-core way partitions **plus disjoint data** mean no
//!   coherence action ever reaches a victim's private levels — the
//!   enemy can write and flush its own coherent segment all it wants,
//!   the victim's invalidation counters stay at zero;
//! * a partitioned victim's cache-decided outcomes (its hit/miss
//!   behaviour, off-chip reads, private-level stats) are invariant to
//!   arbitrary enemy *coherence* traffic, not just plain contention;
//! * a flush broadcast really drains: after a core flushes every line
//!   of its coherent segment, no copy survives anywhere — private
//!   levels, shared level, or directory.

use proptest::prelude::*;
use tscache_core::addr::{Addr, LineAddr};
use tscache_core::cache::Cache;
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{Hierarchy, SharedLlc, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_interference::{execute_batch_shared, execute_scalar_shared, CoreRun, SystemConfig};

/// The enemy's coherent segment: 16 lines at 16 MiB, far from any
/// victim data.
const COHERENT_BASE: u64 = 1 << 24;
const COHERENT_BYTES: u64 = 16 * 32;

fn build_core(pid: ProcessId, salt: u64, core: u64) -> Hierarchy {
    let l1 = CacheGeometry::new(8, 2, 32).unwrap();
    let mk = |label: &str, s: u64| {
        Cache::new(label, l1, PlacementKind::RandomModulo, ReplacementKind::Random, s)
    };
    let mut h = Hierarchy::from_private_parts(
        mk("L1I", salt ^ core ^ 0x11),
        mk("L1D", salt ^ core ^ 0x22),
        Vec::new(),
        1,
        80,
    );
    h.set_process_seed(pid, Seed::new(salt ^ core | 1));
    h.add_coherent_range(Addr::new(COHERENT_BASE), COHERENT_BYTES);
    h
}

fn build_llc(salt: u64, pids: &[ProcessId]) -> SharedLlc {
    let mut llc = SharedLlc::new(
        Cache::new(
            "SLLC",
            CacheGeometry::new(16, 4, 32).unwrap(),
            PlacementKind::RandomModulo,
            ReplacementKind::Random,
            salt ^ 0x55,
        ),
        10,
        80,
    );
    llc.add_coherent_range(Addr::new(COHERENT_BASE), COHERENT_BYTES);
    for (k, &pid) in pids.iter().enumerate() {
        llc.set_process_seed(pid, Seed::new(salt.wrapping_mul(31) ^ k as u64 | 1));
    }
    llc
}

/// An enemy trace saturated with coherence actions on its own
/// segment: reads, upgrade-triggering writes, and flush broadcasts.
fn enemy_coherence_trace(salt: u64, len: usize) -> Vec<TraceOp> {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let shared = Addr::new(COHERENT_BASE + ((state >> 18) % 16) * 32);
            match i % 5 {
                0 | 1 => TraceOp::read(shared),
                2 => TraceOp::write(shared),
                3 => TraceOp::flush(shared),
                _ => TraceOp::read(Addr::new((1 << 22) + (state >> 16) % (1 << 13))),
            }
        })
        .collect()
}

fn private_coh_invalidations(h: &Hierarchy) -> u64 {
    h.total_stats().coh_invalidations()
}

proptest! {
    /// Full per-core partitions + disjoint data: however hard the
    /// enemy hammers its own coherent segment (writes, flushes), not
    /// one invalidation reaches the victim's private levels, and the
    /// victim's cache-decided outcomes match the enemy-free run.
    #[test]
    fn partitioned_disjoint_victim_sees_zero_invalidations(salt in any::<u64>()) {
        let (victim, enemy) = (ProcessId::new(1), ProcessId::new(2));
        let victim_ops = TraceOp::mixed_trace(salt, 600, 1 << 14);
        let run = |enemy_salt: Option<u64>| {
            let pids = [victim, enemy];
            let mut llc = build_llc(salt, &pids);
            llc.set_way_partition(victim, 0, 2);
            llc.set_way_partition(enemy, 2, 4);
            let mut vh = build_core(victim, salt, 0);
            let mut eh = build_core(enemy, salt, 1);
            let enemy_ops: Vec<TraceOp> =
                enemy_salt.map(|s| enemy_coherence_trace(s, 900)).unwrap_or_default();
            let mut cores = vec![CoreRun { hierarchy: &mut vh, pid: victim, ops: &victim_ops }];
            if enemy_salt.is_some() {
                cores.push(CoreRun { hierarchy: &mut eh, pid: enemy, ops: &enemy_ops });
            }
            let out = execute_batch_shared(&mut cores, &mut llc, &SystemConfig::default());
            let v = out.cores[0];
            (
                (v.ops, v.base_cycles, v.mem_reads, v.mem_writebacks, v.coh_invalidations),
                vh.total_stats(),
                private_coh_invalidations(&vh),
                out.cores.last().map(|e| e.coh_invalidations).unwrap_or(0),
            )
        };
        let (solo, solo_stats, _, _) = run(None);
        for enemy_salt in [salt ^ 1, salt ^ 2] {
            let (contended, stats, victim_inv, enemy_inv) = run(Some(enemy_salt));
            prop_assert_eq!(contended, solo, "enemy coherence traffic leaked into the victim");
            prop_assert_eq!(&stats, &solo_stats, "victim private levels perturbed");
            prop_assert_eq!(victim_inv, 0, "an invalidation reached the partitioned victim");
            prop_assert_eq!(contended.4, 0, "victim report counts received invalidations");
            // Sanity: the enemy's own traffic really is coherent — its
            // flush broadcasts drain its own earlier fills.
            prop_assert!(enemy_inv > 0, "enemy coherence traffic never invalidated anything");
        }
    }

    /// A victim sharing *nothing* keeps its exact hit/miss sequence on
    /// the shared level under enemy coherence storms (full partition):
    /// checked at the cache level with adversarial interleavings, like
    /// the PR-4 isolation proptests, but with the enemy's accesses
    /// replaced by directory-visible coherent traffic.
    #[test]
    fn victim_llc_sequence_invariant_under_enemy_coherence_traffic(
        salt in any::<u64>(),
        burst in 1u64..4,
    ) {
        let (victim, enemy) = (ProcessId::new(1), ProcessId::new(2));
        let pids = [victim, enemy];
        let victim_lines: Vec<LineAddr> = {
            let mut state = salt | 1;
            (0..500).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                LineAddr::new((state >> 17) % 509)
            }).collect()
        };
        let solo: Vec<bool> = {
            let mut llc = build_llc(salt, &pids);
            llc.set_way_partition(victim, 0, 2);
            llc.set_way_partition(enemy, 2, 4);
            victim_lines.iter().map(|&l| llc.access(victim, l).hit).collect()
        };
        let mut llc = build_llc(salt, &pids);
        llc.set_way_partition(victim, 0, 2);
        llc.set_way_partition(enemy, 2, 4);
        let coh_line = |k: u64| LineAddr::new((COHERENT_BASE >> 5) + k % 16);
        let mut k = 0u64;
        let contended: Vec<bool> = victim_lines
            .iter()
            .map(|&l| {
                for _ in 0..burst {
                    // Enemy fill + flush-style drain of its own copy:
                    // the directory churns, the victim must not see it.
                    llc.access(enemy, coh_line(k));
                    if k.is_multiple_of(3) {
                        llc.clear_sharers(coh_line(k));
                        llc.invalidate_copy(enemy, coh_line(k));
                    }
                    k += 1;
                }
                llc.access(victim, l).hit
            })
            .collect();
        prop_assert_eq!(&contended, &solo, "enemy coherence churn leaked into the victim");
        prop_assert_eq!(llc.cache().stats().cross_process_evictions(), 0);
    }

    /// Flush really drains: a core that ends its trace by flushing
    /// every line of its coherent segment leaves no copy anywhere —
    /// not in its private levels, not in the shared level, not in the
    /// directory.
    #[test]
    fn trailing_flushes_drain_every_coherent_copy(salt in any::<u64>(), scalar in any::<bool>()) {
        let pid = ProcessId::new(1);
        let mut h = build_core(pid, salt, 0);
        let mut llc = build_llc(salt, &[pid]);
        let mut ops: Vec<TraceOp> = enemy_coherence_trace(salt, 300)
            .into_iter()
            .filter(|op| op.kind != tscache_core::hierarchy::AccessKind::Flush)
            .collect();
        for l in 0..16u64 {
            ops.push(TraceOp::flush(Addr::new(COHERENT_BASE + l * 32)));
        }
        {
            let mut cores = vec![CoreRun { hierarchy: &mut h, pid, ops: &ops }];
            if scalar {
                execute_scalar_shared(&mut cores, &mut llc, &SystemConfig::default());
            } else {
                execute_batch_shared(&mut cores, &mut llc, &SystemConfig::default());
            }
        }
        let first = COHERENT_BASE >> 5;
        let in_segment = |line: u64| line >= first && line < first + 16;
        for (_, _, line, _) in h.l1d().contents().chain(h.l1i().contents()) {
            prop_assert!(!in_segment(line.as_u64()), "private copy survived the flush");
        }
        for (_, _, line, _) in llc.cache().contents() {
            prop_assert!(!in_segment(line.as_u64()), "shared-level copy survived the flush");
        }
        for l in 0..16u64 {
            prop_assert_eq!(llc.sharers(LineAddr::new(first + l)), 0, "directory entry survived");
        }
    }
}
