//! Property-based isolation guarantees of per-core way partitions on
//! the shared last-level cache (the provable form of the §7 ablation):
//!
//! * a **full** per-core partition means zero cross-core evictions and
//!   a victim shared-level hit/miss sequence that is invariant to any
//!   co-runner trace (co-runners touch disjoint address spaces —
//!   shared *data* is the Flush+Reload channel no partition closes);
//! * a **partial** overlap confines interference to the overlapping
//!   ways: victim lines resident in non-overlapping ways survive any
//!   enemy storm.
//!
//! Checked both at the cache level (driving the [`SharedLlc`]
//! directly under adversarial interleavings) and at the engine level
//! ([`execute_batch_shared`] with arbitrary enemy traces).

use proptest::prelude::*;
use tscache_core::addr::{Addr, LineAddr};
use tscache_core::cache::Cache;
use tscache_core::geometry::CacheGeometry;
use tscache_core::hierarchy::{Hierarchy, SharedLlc, TraceOp};
use tscache_core::placement::PlacementKind;
use tscache_core::replacement::ReplacementKind;
use tscache_core::seed::{ProcessId, Seed};
use tscache_interference::{execute_batch_shared, CoreRun, SystemConfig};

fn llc(placement: PlacementKind, replacement: ReplacementKind, salt: u64) -> SharedLlc {
    let mut llc = SharedLlc::new(
        Cache::new("SLLC", CacheGeometry::new(16, 4, 32).unwrap(), placement, replacement, salt),
        10,
        80,
    );
    llc.set_process_seed(ProcessId::new(1), Seed::new(salt ^ 0xa | 1));
    llc.set_process_seed(ProcessId::new(2), Seed::new(salt ^ 0xb | 1));
    llc
}

/// A deterministic line sequence with reuse, confined to `base +
/// 0..span` so victim and enemy spaces stay disjoint.
fn line_seq(salt: u64, len: usize, base: u64, span: u64) -> Vec<LineAddr> {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            LineAddr::new(base + (state >> 17) % span)
        })
        .collect()
}

proptest! {
    /// Full per-core partition at the cache level: whatever enemy
    /// accesses are interleaved (trace *and* interleaving pattern are
    /// adversarial), the victim's hit/miss sequence matches the
    /// enemy-free run exactly, and no cross-core eviction ever occurs.
    #[test]
    fn full_partition_makes_victim_llc_sequence_invariant(
        salt in any::<u64>(),
        placement_sel in 0usize..6,
        replacement_sel in 0usize..5,
        burst in 1u64..4,
    ) {
        let placement = PlacementKind::ALL[placement_sel];
        let replacement = ReplacementKind::ALL[replacement_sel];
        let (victim, enemy) = (ProcessId::new(1), ProcessId::new(2));
        let victim_lines = line_seq(salt, 600, 0, 509);
        let enemy_lines = line_seq(salt ^ 0xee, 2000, 1 << 20, 769);

        let solo: Vec<bool> = {
            let mut llc = llc(placement, replacement, salt);
            llc.set_way_partition(victim, 0, 2);
            llc.set_way_partition(enemy, 2, 4);
            victim_lines.iter().map(|&l| llc.access(victim, l).hit).collect()
        };

        let mut llc = llc(placement, replacement, salt);
        llc.set_way_partition(victim, 0, 2);
        llc.set_way_partition(enemy, 2, 4);
        let mut e = 0usize;
        let contended: Vec<bool> = victim_lines
            .iter()
            .map(|&l| {
                // Adversarial interleaving: `burst` enemy accesses
                // around every victim access.
                for _ in 0..burst {
                    llc.access(enemy, enemy_lines[e % enemy_lines.len()]);
                    e += 1;
                }
                llc.access(victim, l).hit
            })
            .collect();
        prop_assert_eq!(
            &contended, &solo,
            "{}/{}: enemy interleaving leaked into the victim's hit/miss sequence",
            placement, replacement
        );
        prop_assert_eq!(llc.cache().stats().cross_process_evictions(), 0);
    }

    /// Partial overlap confines interference to the overlapping ways:
    /// the victim fills ways 0..3, the enemy 2..4, so every victim
    /// line resident in ways 0..2 before the enemy storm must survive
    /// it untouched.
    #[test]
    fn partial_overlap_confines_interference_to_overlapping_ways(
        salt in any::<u64>(),
        placement_sel in 0usize..6,
    ) {
        let placement = PlacementKind::ALL[placement_sel];
        let (victim, enemy) = (ProcessId::new(1), ProcessId::new(2));
        let mut llc = llc(placement, ReplacementKind::Lru, salt);
        llc.set_way_partition(victim, 0, 3);
        llc.set_way_partition(enemy, 2, 4);
        for &l in &line_seq(salt, 400, 0, 251) {
            llc.access(victim, l);
        }
        let safe: Vec<(u32, u32, u64)> = llc
            .cache()
            .contents()
            .filter(|&(_, way, _, owner)| owner == victim && way < 2)
            .map(|(set, way, line, _)| (set, way, line.as_u64()))
            .collect();
        prop_assume!(!safe.is_empty());
        // Enemy storm: far more lines than the cache holds.
        for &l in &line_seq(salt ^ 0x5707, 3000, 1 << 20, 4099) {
            llc.access(enemy, l);
        }
        let after: std::collections::BTreeSet<(u32, u32, u64)> = llc
            .cache()
            .contents()
            .map(|(set, way, line, _)| (set, way, line.as_u64()))
            .collect();
        for slot in &safe {
            prop_assert!(
                after.contains(slot),
                "{}: victim line {:?} outside the overlap was evicted",
                placement,
                slot
            );
        }
    }

    /// Full per-core partition at the engine level: the victim core's
    /// cache-decided outcomes (base cycles, off-chip reads, writeback
    /// traffic) and its private levels are invariant to the co-runner
    /// trace — only queuing waits may differ.
    #[test]
    fn full_partition_isolates_victim_engine_outcomes(salt in any::<u64>()) {
        let (victim, enemy) = (ProcessId::new(1), ProcessId::new(2));
        let victim_ops = TraceOp::mixed_trace(salt, 700, 1 << 14);
        let build_core = |pid: ProcessId, core: u64| {
            let l1 = CacheGeometry::new(8, 2, 32).unwrap();
            let mk = |label: &str, s: u64| {
                Cache::new(label, l1, PlacementKind::RandomModulo, ReplacementKind::Random, s)
            };
            let mut h = Hierarchy::from_private_parts(
                mk("L1I", core ^ 0x11),
                mk("L1D", core ^ 0x22),
                Vec::new(),
                1,
                80,
            );
            h.set_process_seed(pid, Seed::new(salt ^ core | 1));
            h
        };
        let run = |enemy_salt: Option<u64>| {
            let mut llc = llc(PlacementKind::RandomModulo, ReplacementKind::Random, salt);
            llc.set_way_partition(victim, 0, 2);
            llc.set_way_partition(enemy, 2, 4);
            let mut vh = build_core(victim, 0);
            let mut cores = vec![CoreRun { hierarchy: &mut vh, pid: victim, ops: &victim_ops }];
            let enemy_ops: Vec<TraceOp> = enemy_salt
                .map(|s| {
                    TraceOp::mixed_trace(s, 900, 1 << 14)
                        .into_iter()
                        .map(|op| TraceOp {
                            kind: op.kind,
                            addr: Addr::new(op.addr.as_u64() + (1 << 24)),
                        })
                        .collect()
                })
                .unwrap_or_default();
            let mut eh = build_core(enemy, 1);
            if enemy_salt.is_some() {
                cores.push(CoreRun { hierarchy: &mut eh, pid: enemy, ops: &enemy_ops });
            }
            let out = execute_batch_shared(&mut cores, &mut llc, &SystemConfig::default());
            let v = out.cores[0];
            (
                (v.ops, v.base_cycles, v.mem_reads, v.mem_writebacks),
                vh.total_stats(),
                llc.cache().stats().cross_process_evictions(),
            )
        };
        let (solo, solo_stats, _) = run(None);
        for enemy_salt in [salt ^ 1, salt ^ 2] {
            let (contended, stats, cross) = run(Some(enemy_salt));
            prop_assert_eq!(contended, solo, "enemy trace leaked into victim outcomes");
            prop_assert_eq!(&stats, &solo_stats, "enemy trace leaked into victim private levels");
            prop_assert_eq!(cross, 0);
        }
    }
}
