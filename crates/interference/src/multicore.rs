//! Contended multi-core execution: N cores with private hierarchies
//! share one memory bus; last-level miss fills and memory-bound
//! writebacks arbitrate for it, MSHR files bound per-level miss
//! parallelism.
//!
//! # Execution model
//!
//! Cores are advanced by a deterministic discrete-event loop: at every
//! step the core with the smallest clock (ties: lowest core index)
//! executes its next op to completion. An op's cost is its solo
//! hierarchy cost ([`OpTiming::cycles`]) plus any MSHR structural
//! stall plus the queuing delay of its bus transactions. Contention is
//! *timing-only*: cache contents, hit/miss outcomes, statistics and
//! RNG draws per core are exactly those of the same trace run solo —
//! which is what makes the batched engine possible at all.
//!
//! Clock ties between cores resolve by core index (lowest first), so
//! permuting *distinct* cores may legitimately shift individual
//! queuing waits; everything the caches and MSHRs decide — per-core
//! base cycles, transaction, stall and coalesce counts — is invariant
//! under core reordering (for [`run_contended_segment`], whose loop
//! stops with the measured core, this holds for the measured core;
//! enemy *progress* is interleaving-dependent by construction), and
//! the unit/probe suites pin exactly that split.
//!
//! [`execute_scalar`] is the reference: it interleaves per-op scalar
//! hierarchy walks ([`Hierarchy::access_detailed`]) in event order.
//! [`execute_batch`] first replays each core's whole trace through the
//! hierarchy batch path ([`Hierarchy::access_batch_timed`]) — private
//! caches make the per-core cache work independent of the interleaving
//! — then runs the identical event loop over the recorded per-op
//! events. The differential suite pins the two bit-identical across
//! placement × replacement × depth × arbitration.
//!
//! # Shared last level
//!
//! [`execute_scalar_shared`]/[`execute_batch_shared`] run the same
//! event merge over cores whose *last* unified level is one
//! [`SharedLlc`] instance: each core's private levels stay per-core
//! (and per-core outcomes stay interleaving-independent, which is what
//! the batch engine pre-executes via
//! [`Hierarchy::access_batch_upper_timed`]), while every shared-level
//! fill and writeback is resolved against the one shared cache *at
//! merge time*, in exact global op order. Unlike the private-hierarchy
//! engines, contention here is **not** timing-only: cores evict each
//! other's shared-level lines (the cross-core Prime+Probe channel),
//! unless per-core way partitions on the shared level restore
//! isolation. The shared-level order is a deterministic function of
//! the clocks both engines compute identically, so batch remains
//! bit-identical to scalar — the shared axis of the differential suite
//! pins stats, contents and dirty lines of every private level *and*
//! the shared cache.
//!
//! Bus accounting at the shared level: a shared-LLC **hit costs no bus
//! transaction** — only LLC misses (off-chip reads) and writebacks
//! that pass the LLC unabsorbed (or dirty LLC victims) arbitrate for
//! the bus. MSHR files remain per core (a per-core view of miss
//! parallelism): misses of different cores on the same line never
//! coalesce with each other.

use crate::bus::{Bus, BusReport};
use crate::mshr::{MshrConfig, MshrFile, MshrOutcome};
use tscache_core::addr::LineAddr;
use tscache_core::cache::Writeback;
use tscache_core::hierarchy::{Hierarchy, LlcRequests, OpTiming, SharedLlc, TraceOp};
use tscache_core::seed::ProcessId;

pub use crate::bus::{Arbitration, BusConfig};

/// The contention model of a platform: one shared bus plus (optional)
/// MSHR files at every cache level of every core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Shared-bus model.
    pub bus: BusConfig,
    /// MSHR files (`None` = unbounded miss parallelism, no
    /// coalescing).
    pub mshr: Option<MshrConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig { bus: BusConfig::default(), mshr: Some(MshrConfig::default()) }
    }
}

/// One-knob description of a contended campaign, consumed by the
/// attack-sampling and measurement layers: how many co-runner cores,
/// which bus/MSHR model, and whether caches run write-back (so dirty
/// evictions join the bus traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionConfig {
    /// Enemy cores running alongside the measured core.
    pub co_runners: u32,
    /// Bus + MSHR model.
    pub system: SystemConfig,
    /// Run every core's caches write-back.
    pub write_back: bool,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig { co_runners: 1, system: SystemConfig::default(), write_back: true }
    }
}

/// One core's workload for a differential engine run.
#[derive(Debug)]
pub struct CoreRun<'a> {
    /// The core's private hierarchy.
    pub hierarchy: &'a mut Hierarchy,
    /// The process executing on this core.
    pub pid: ProcessId,
    /// The core's trace.
    pub ops: &'a [TraceOp],
}

/// Per-core accounting of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Ops executed.
    pub ops: u64,
    /// Total cycles including stalls and bus waits (the core's final
    /// clock).
    pub cycles: u64,
    /// Solo cycles (what the trace costs with no contention).
    pub base_cycles: u64,
    /// Queuing cycles spent waiting for the bus.
    pub bus_wait: u64,
    /// Cycles lost to MSHR structural stalls.
    pub mshr_stall_cycles: u64,
    /// Misses that coalesced into a pending MSHR entry.
    pub mshr_coalesced: u64,
    /// Bus read transactions (last-level misses that went off-chip).
    pub mem_reads: u64,
    /// Bus write transactions (writebacks that reached memory).
    pub mem_writebacks: u64,
}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceOutcome {
    /// Per-core accounting, in core order.
    pub cores: Vec<CoreReport>,
    /// Shared-bus accounting.
    pub bus: BusReport,
}

/// The deterministic event-merge state shared by both engines.
struct Merger {
    bus: Bus,
    /// MSHR files per core per level (empty when disabled).
    mshr: Vec<Vec<MshrFile>>,
    clocks: Vec<u64>,
    reports: Vec<CoreReport>,
    depths: Vec<usize>,
}

impl Merger {
    fn new(cfg: &SystemConfig, depths: Vec<usize>) -> Self {
        let n = depths.len();
        let mshr = match cfg.mshr {
            Some(m) => depths.iter().map(|&d| (0..d).map(|_| MshrFile::new(m)).collect()).collect(),
            None => vec![Vec::new(); n],
        };
        Merger {
            bus: Bus::new(cfg.bus, n),
            mshr,
            clocks: vec![0; n],
            reports: vec![CoreReport::default(); n],
            depths,
        }
    }

    /// Executes op `seq` of `core` (touching `line`) with solo timing
    /// `t`: MSHR checks, then bus arbitration for its transactions.
    fn step(&mut self, core: usize, seq: u64, line: u64, t: OpTiming) {
        let depth = self.depths[core];
        let report = &mut self.reports[core];
        let mut stall = 0u64;
        let mut mem_read = t.memory_read(depth);
        for (level, file) in self.mshr[core].iter_mut().enumerate() {
            if t.miss_mask >> level & 1 == 1 {
                match file.on_miss(line, seq) {
                    MshrOutcome::Coalesced => {
                        report.mshr_coalesced += 1;
                        if level == depth - 1 {
                            // Rides the pending fill: no second
                            // off-chip read.
                            mem_read = false;
                        }
                    }
                    MshrOutcome::Allocated => {}
                    MshrOutcome::Stalled => stall += file.stall_cycles() as u64,
                }
            }
        }
        let mut at = self.clocks[core] + stall + t.cycles as u64;
        let mut wait = 0u64;
        if mem_read {
            let g = self.bus.grant(core, at);
            wait += g - at;
            at = g;
            report.mem_reads += 1;
        }
        for _ in 0..t.mem_writebacks {
            let g = self.bus.grant(core, at);
            wait += g - at;
            at = g;
            report.mem_writebacks += 1;
        }
        report.ops += 1;
        report.cycles += stall + t.cycles as u64 + wait;
        report.base_cycles += t.cycles as u64;
        report.bus_wait += wait;
        report.mshr_stall_cycles += stall;
        self.clocks[core] = at;
    }

    fn finish(self) -> InterferenceOutcome {
        InterferenceOutcome { cores: self.reports, bus: self.bus.report() }
    }

    /// The core to advance next: smallest clock among cores with work
    /// remaining, lowest index on ties.
    fn next_core(&self, remaining: impl Fn(usize) -> bool) -> Option<usize> {
        let mut best = None;
        for c in 0..self.clocks.len() {
            if remaining(c) && best.is_none_or(|b: usize| self.clocks[c] < self.clocks[b]) {
                best = Some(c);
            }
        }
        best
    }
}

/// The reference engine: a scalar multi-core interleaving, walking one
/// op at a time on the event-ordered core through the scalar hierarchy
/// path.
pub fn execute_scalar(cores: &mut [CoreRun<'_>], cfg: &SystemConfig) -> InterferenceOutcome {
    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth()).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let mut merger = Merger::new(cfg, depths);
    let mut pos = vec![0usize; cores.len()];
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let op = cores[c].ops[pos[c]];
        let t = cores[c].hierarchy.access_detailed(cores[c].pid, op.kind, op.addr);
        merger.step(c, pos[c] as u64, op.addr.line(offsets[c]).as_u64(), t);
        pos[c] += 1;
    }
    merger.finish()
}

/// The production engine: each core's trace runs through the hierarchy
/// batch path first (private caches make per-core outcomes independent
/// of the interleaving), then the identical event merge replays the
/// recorded per-op timings against the bus and MSHRs. Bit-identical to
/// [`execute_scalar`] — stats, cycles, writeback counts and final
/// contents — as the differential suite pins.
pub fn execute_batch(cores: &mut [CoreRun<'_>], cfg: &SystemConfig) -> InterferenceOutcome {
    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth()).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let events: Vec<Vec<OpTiming>> = cores
        .iter_mut()
        .map(|core| {
            let mut ev = Vec::new();
            core.hierarchy.access_batch_timed(core.pid, core.ops, &mut ev);
            ev
        })
        .collect();
    let mut merger = Merger::new(cfg, depths);
    let mut pos = vec![0usize; cores.len()];
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let op = cores[c].ops[pos[c]];
        merger.step(c, pos[c] as u64, op.addr.line(offsets[c]).as_u64(), events[c][pos[c]]);
        pos[c] += 1;
    }
    merger.finish()
}

/// Composes one op's final timing on a shared-LLC platform: the op's
/// private-level writebacks are delivered to the shared cache first
/// (in victim-drain order; unabsorbed ones become memory-bound bus
/// writes), then the fill request is resolved — a hit costs only the
/// shared level's hit cycles (no bus transaction), a miss adds the
/// memory penalty, sets the shared level's miss bit (`shared_bit`) and
/// may push a dirty shared-level victim to memory.
fn resolve_llc_op(
    llc: &mut SharedLlc,
    pid: ProcessId,
    mut t: OpTiming,
    fill: Option<LineAddr>,
    writebacks: &[Writeback],
    shared_bit: u8,
) -> OpTiming {
    let r = llc.resolve(pid, fill, writebacks);
    t.cycles += r.cycles;
    if r.miss {
        t.miss_mask |= 1 << shared_bit;
    }
    t.mem_writebacks += r.mem_writebacks;
    t
}

/// The reference engine for shared-LLC platforms: a scalar multi-core
/// interleaving where the event-ordered core walks its op through its
/// *private* levels ([`Hierarchy::access_upper_detailed`]) and then
/// resolves the shared last level in place. Cores access the shared
/// cache under their own pid, so per-core way partitions and
/// cross-core eviction accounting apply directly.
pub fn execute_scalar_shared(
    cores: &mut [CoreRun<'_>],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
) -> InterferenceOutcome {
    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth() + 1).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let mut merger = Merger::new(cfg, depths.clone());
    let mut pos = vec![0usize; cores.len()];
    let mut wbs = Vec::new();
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let op = cores[c].ops[pos[c]];
        wbs.clear();
        let up = cores[c].hierarchy.access_upper_detailed(
            cores[c].pid,
            op.kind,
            op.addr,
            pos[c] as u32,
            &mut wbs,
        );
        let t = resolve_llc_op(
            llc,
            cores[c].pid,
            OpTiming { cycles: up.cycles, miss_mask: up.miss_mask, mem_writebacks: 0 },
            up.fill,
            &wbs,
            (depths[c] - 1) as u8,
        );
        merger.step(c, pos[c] as u64, op.addr.line(offsets[c]).as_u64(), t);
        pos[c] += 1;
    }
    merger.finish()
}

/// The production engine for shared-LLC platforms: every core's trace
/// is pre-executed through its private levels
/// ([`Hierarchy::access_batch_upper_timed`], valid because private
/// outcomes are interleaving-independent), exporting the per-core
/// shared-level request streams; the event merge then replays those
/// requests against the one shared cache in the exact clock order the
/// scalar engine produces. Bit-identical to [`execute_scalar_shared`]
/// — engine outcomes, every private level, and the shared cache — as
/// the differential suite pins.
pub fn execute_batch_shared(
    cores: &mut [CoreRun<'_>],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
) -> InterferenceOutcome {
    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth() + 1).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let mut events: Vec<Vec<OpTiming>> = Vec::with_capacity(cores.len());
    let mut streams: Vec<LlcRequests> = Vec::with_capacity(cores.len());
    for core in cores.iter_mut() {
        let mut ev = Vec::new();
        let mut requests = LlcRequests::default();
        core.hierarchy.access_batch_upper_timed(core.pid, core.ops, &mut ev, &mut requests);
        events.push(ev);
        streams.push(requests);
    }
    let mut merger = Merger::new(cfg, depths.clone());
    let mut pos = vec![0usize; cores.len()];
    let mut fi = vec![0usize; cores.len()];
    let mut wi = vec![0usize; cores.len()];
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let i = pos[c];
        let op = cores[c].ops[i];
        let (fill, wbs) = streams[c].take_for_op(i as u32, &mut fi[c], &mut wi[c]);
        let t = resolve_llc_op(llc, cores[c].pid, events[c][i], fill, wbs, (depths[c] - 1) as u8);
        merger.step(c, i as u64, op.addr.line(offsets[c]).as_u64(), t);
        pos[c] += 1;
    }
    merger.finish()
}

/// Ops a co-runner pre-executes per hierarchy batch call.
const CO_CHUNK: usize = 128;

/// A persistent enemy core: a private hierarchy cyclically replaying
/// an enemy trace alongside the measured core. Trace position and
/// cache state persist across segments, so a long campaign sees the
/// enemy's steady-state working set rather than a cold cache per job.
#[derive(Debug)]
pub struct CoRunner {
    hierarchy: Hierarchy,
    pid: ProcessId,
    ops: Vec<TraceOp>,
    offset_bits: u32,
    /// Next unexecuted op of the cyclic trace.
    pos: usize,
    /// Pre-executed events not yet consumed by the merge.
    events: Vec<OpTiming>,
    evt_pos: usize,
    /// Trace index of `events[0]`.
    chunk_start: usize,
    /// Total ops executed over the core's lifetime — the monotone
    /// sequence number the MSHR op-window expiry is measured against.
    seq: u64,
    /// Shared-LLC mode only: the current chunk's shared-level request
    /// stream (chunk-relative op indices) and its consumption cursors.
    llc_requests: LlcRequests,
    fill_pos: usize,
    wb_pos: usize,
    /// Which walk pre-executed the buffered chunk; a co-runner must be
    /// driven in one mode for its whole lifetime.
    chunk_shared: bool,
}

impl CoRunner {
    /// Creates an enemy core replaying `ops` (cyclically) as `pid` on
    /// its own `hierarchy`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(hierarchy: Hierarchy, pid: ProcessId, ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "co-runner needs a non-empty trace");
        let offset_bits = hierarchy.l1i().geometry().offset_bits();
        CoRunner {
            hierarchy,
            pid,
            ops,
            offset_bits,
            pos: 0,
            events: Vec::new(),
            evt_pos: 0,
            chunk_start: 0,
            seq: 0,
            llc_requests: LlcRequests::default(),
            fill_pos: 0,
            wb_pos: 0,
            chunk_shared: false,
        }
    }

    /// The enemy core's hierarchy (statistics inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Mutably borrows the hierarchy (seed management between epochs).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// The enemy process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Pre-executes the next trace chunk through the batch path.
    fn refill(&mut self) {
        if self.pos >= self.ops.len() {
            self.pos = 0;
        }
        let end = (self.pos + CO_CHUNK).min(self.ops.len());
        self.chunk_start = self.pos;
        self.hierarchy.access_batch_timed(self.pid, &self.ops[self.pos..end], &mut self.events);
        self.evt_pos = 0;
        self.chunk_shared = false;
        self.pos = end;
    }

    /// Pre-executes the next trace chunk through the *private* levels
    /// only (shared-LLC mode), exporting the chunk's shared-level
    /// request stream.
    fn refill_shared(&mut self) {
        if self.pos >= self.ops.len() {
            self.pos = 0;
        }
        let end = (self.pos + CO_CHUNK).min(self.ops.len());
        self.chunk_start = self.pos;
        self.hierarchy.access_batch_upper_timed(
            self.pid,
            &self.ops[self.pos..end],
            &mut self.events,
            &mut self.llc_requests,
        );
        self.evt_pos = 0;
        self.fill_pos = 0;
        self.wb_pos = 0;
        self.chunk_shared = true;
        self.pos = end;
    }

    /// The next op's `(line, timing)`, pre-executing a chunk when the
    /// buffer is drained.
    fn next_event(&mut self) -> (u64, u64, OpTiming) {
        if self.evt_pos >= self.events.len() {
            self.refill();
        }
        assert!(!self.chunk_shared, "co-runner switched from shared to private mode mid-chunk");
        let op = self.ops[self.chunk_start + self.evt_pos];
        let t = self.events[self.evt_pos];
        self.evt_pos += 1;
        let seq = self.seq;
        self.seq += 1;
        (seq, op.addr.line(self.offset_bits).as_u64(), t)
    }

    /// The next op's `(seq, line, timing)` on a shared-LLC platform:
    /// the op's buffered private timing composed with its shared-level
    /// requests, resolved against `llc` *now* — i.e. in merge order.
    fn next_event_llc(&mut self, llc: &mut SharedLlc) -> (u64, u64, OpTiming) {
        if self.evt_pos >= self.events.len() {
            self.refill_shared();
        }
        // A buffered private-mode chunk carries memory penalties in its
        // timings and no request streams — replaying it here would
        // silently skip the shared level, so a mode switch is a hard
        // error (a co-runner lives on one platform for its lifetime).
        assert!(self.chunk_shared, "co-runner switched from private to shared mode mid-chunk");
        let i = self.evt_pos;
        let op = self.ops[self.chunk_start + i];
        let (fill, wbs) =
            self.llc_requests.take_for_op(i as u32, &mut self.fill_pos, &mut self.wb_pos);
        let t =
            resolve_llc_op(llc, self.pid, self.events[i], fill, wbs, self.hierarchy.depth() as u8);
        self.evt_pos += 1;
        let seq = self.seq;
        self.seq += 1;
        (seq, op.addr.line(self.offset_bits).as_u64(), t)
    }
}

/// Outcome of one contended segment ([`run_contended_segment`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentOutcome {
    /// The measured core's accounting (its `cycles` is what the
    /// machine charges for the segment).
    pub primary: CoreReport,
    /// Per-co-runner accounting for the segment.
    pub co: Vec<CoreReport>,
    /// Shared-bus accounting for the segment.
    pub bus: BusReport,
}

/// Executes one trace segment of the measured core (core 0) against
/// the persistent co-runners. Bus and MSHR state start fresh per
/// segment (jobs re-align at release boundaries); co-runner trace
/// position and cache state carry over. The loop stops when the
/// primary trace is exhausted: a co-runner only advances while its
/// clock trails the primary's, so every transaction that could delay
/// the primary is arbitrated.
pub fn run_contended_segment(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    ops: &[TraceOp],
    co: &mut [CoRunner],
    cfg: &SystemConfig,
    events: &mut Vec<OpTiming>,
) -> SegmentOutcome {
    let mut depths = vec![hierarchy.depth()];
    depths.extend(co.iter().map(|c| c.hierarchy.depth()));
    let mut merger = Merger::new(cfg, depths);
    hierarchy.access_batch_timed(pid, ops, events);
    let offset_bits = hierarchy.l1i().geometry().offset_bits();
    let mut pos = 0usize;
    while pos < ops.len() {
        // Primary = core 0 wins ties, so a quiet system degenerates to
        // the solo walk.
        match merger.next_core(|_| true).expect("at least the primary runs") {
            0 => {
                let op = ops[pos];
                merger.step(0, pos as u64, op.addr.line(offset_bits).as_u64(), events[pos]);
                pos += 1;
            }
            c => {
                let (seq, line, t) = co[c - 1].next_event();
                merger.step(c, seq, line, t);
            }
        }
    }
    let out = merger.finish();
    let mut cores = out.cores.into_iter();
    SegmentOutcome {
        primary: cores.next().expect("core 0 present"),
        co: cores.collect(),
        bus: out.bus,
    }
}

/// [`run_contended_segment`] for a shared-LLC platform: the measured
/// core (core 0) and the persistent co-runners resolve every
/// shared-level fill and writeback against the one `llc` instance in
/// merge order, so the enemies *do* perturb the measured core's
/// shared-level hits — the contention channel per-core way partitions
/// on `llc` are there to close. `events` and `requests` are per-call
/// scratch for the primary's private pre-execution (cleared and
/// refilled).
#[allow(clippy::too_many_arguments)]
pub fn run_contended_segment_shared(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    ops: &[TraceOp],
    co: &mut [CoRunner],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
    events: &mut Vec<OpTiming>,
    requests: &mut LlcRequests,
) -> SegmentOutcome {
    let mut depths = vec![hierarchy.depth() + 1];
    depths.extend(co.iter().map(|c| c.hierarchy.depth() + 1));
    let mut merger = Merger::new(cfg, depths);
    hierarchy.access_batch_upper_timed(pid, ops, events, requests);
    let shared_bit = hierarchy.depth() as u8;
    let offset_bits = hierarchy.l1i().geometry().offset_bits();
    let (mut pos, mut fill_pos, mut wb_pos) = (0usize, 0usize, 0usize);
    while pos < ops.len() {
        // Primary = core 0 wins ties, so a quiet system degenerates to
        // the solo shared-platform walk.
        match merger.next_core(|_| true).expect("at least the primary runs") {
            0 => {
                let op = ops[pos];
                let (fill, wbs) = requests.take_for_op(pos as u32, &mut fill_pos, &mut wb_pos);
                let t = resolve_llc_op(llc, pid, events[pos], fill, wbs, shared_bit);
                merger.step(0, pos as u64, op.addr.line(offset_bits).as_u64(), t);
                pos += 1;
            }
            c => {
                let (seq, line, t) = co[c - 1].next_event_llc(llc);
                merger.step(c, seq, line, t);
            }
        }
    }
    let out = merger.finish();
    let mut cores = out.cores.into_iter();
    SegmentOutcome {
        primary: cores.next().expect("core 0 present"),
        co: cores.collect(),
        bus: out.bus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscache_core::addr::Addr;
    use tscache_core::seed::Seed;
    use tscache_core::setup::SetupKind;

    fn trace(salt: u64, len: usize) -> Vec<TraceOp> {
        TraceOp::mixed_trace(salt, len, 1 << 17)
    }

    fn pair() -> (Hierarchy, Hierarchy) {
        let mk = |salt| {
            let mut h = SetupKind::TsCache.build(salt);
            h.set_process_seed(ProcessId::new(1), Seed::new(salt ^ 5));
            h
        };
        (mk(1), mk(2))
    }

    #[test]
    fn batch_engine_matches_scalar_engine() {
        for arbitration in Arbitration::ALL {
            let cfg = SystemConfig {
                bus: BusConfig { arbitration, ..BusConfig::default() },
                ..SystemConfig::default()
            };
            let (t0, t1) = (trace(3, 900), trace(4, 700));
            let (mut a0, mut a1) = pair();
            let (mut b0, mut b1) = pair();
            for h in [&mut a0, &mut a1, &mut b0, &mut b1] {
                h.set_write_policy(tscache_core::cache::WritePolicy::WriteBack);
            }
            let pid = ProcessId::new(1);
            let scalar = execute_scalar(
                &mut [
                    CoreRun { hierarchy: &mut a0, pid, ops: &t0 },
                    CoreRun { hierarchy: &mut a1, pid, ops: &t1 },
                ],
                &cfg,
            );
            let batch = execute_batch(
                &mut [
                    CoreRun { hierarchy: &mut b0, pid, ops: &t0 },
                    CoreRun { hierarchy: &mut b1, pid, ops: &t1 },
                ],
                &cfg,
            );
            assert_eq!(scalar, batch, "{arbitration}");
            assert_eq!(a0.total_stats(), b0.total_stats(), "{arbitration}");
            assert_eq!(a1.total_stats(), b1.total_stats(), "{arbitration}");
        }
    }

    #[test]
    fn contention_only_adds_cycles() {
        let (mut solo, _) = pair();
        let (mut c0, mut c1) = pair();
        let pid = ProcessId::new(1);
        let t0 = trace(7, 800);
        let t1 = trace(8, 800);
        let solo_out = execute_batch(
            &mut [CoreRun { hierarchy: &mut solo, pid, ops: &t0 }],
            &SystemConfig::default(),
        );
        let contended = execute_batch(
            &mut [
                CoreRun { hierarchy: &mut c0, pid, ops: &t0 },
                CoreRun { hierarchy: &mut c1, pid, ops: &t1 },
            ],
            &SystemConfig::default(),
        );
        assert_eq!(solo_out.cores[0].base_cycles, contended.cores[0].base_cycles);
        assert!(contended.cores[0].cycles >= solo_out.cores[0].cycles);
        assert!(contended.cores[0].bus_wait > 0, "two miss-heavy cores never collided");
        // Private caches: contention must not change cache outcomes.
        assert_eq!(solo.total_stats(), c0.total_stats());
    }

    #[test]
    fn contended_segment_is_deterministic_and_no_cheaper_than_solo() {
        let run = || {
            let (mut h, enemy) = pair();
            let mut co = vec![CoRunner::new(enemy, ProcessId::new(9), trace(11, 300))];
            let mut events = Vec::new();
            let t = trace(12, 500);
            run_contended_segment(
                &mut h,
                ProcessId::new(1),
                &t,
                &mut co,
                &SystemConfig::default(),
                &mut events,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.primary.cycles >= a.primary.base_cycles);
        assert_eq!(
            a.primary.cycles,
            a.primary.base_cycles + a.primary.bus_wait + a.primary.mshr_stall_cycles
        );
    }

    #[test]
    fn core_order_only_moves_queuing_waits() {
        // Three *distinct* cores with fixed traces, permuted: clock
        // ties resolve by core index, so individual queuing waits may
        // shift — but everything the caches and MSHRs decide is
        // ordering-invariant per core (ops, base cycles, transaction
        // and stall/coalesce counts), and so is the bus's transaction
        // total. An engine bug that let the interleaving leak into
        // cache or MSHR outcomes would trip this (the CI determinism
        // probe pins the same property for the segment API's measured
        // core).
        let traces: Vec<Vec<TraceOp>> =
            (0..3u64).map(|c| trace(60 + c, 400 + 50 * c as usize)).collect();
        let build = |c: u64| {
            let mut h = SetupKind::TsCache.build(80 + c);
            h.set_process_seed(ProcessId::new(1), Seed::new(17 + c));
            h
        };
        let order_invariant = |r: &CoreReport| {
            (
                r.ops,
                r.base_cycles,
                r.mem_reads,
                r.mem_writebacks,
                r.mshr_stall_cycles,
                r.mshr_coalesced,
            )
        };
        let run = |perm: [usize; 3]| {
            let mut hs: Vec<Hierarchy> = perm.iter().map(|&c| build(c as u64)).collect();
            let mut cores: Vec<CoreRun<'_>> = hs
                .iter_mut()
                .zip(perm.iter())
                .map(|(h, &c)| CoreRun { hierarchy: h, pid: ProcessId::new(1), ops: &traces[c] })
                .collect();
            let out = execute_batch(&mut cores, &SystemConfig::default());
            // Report per original core id, independent of position.
            let mut by_core = [CoreReport::default(); 3];
            for (pos, &c) in perm.iter().enumerate() {
                by_core[c] = out.cores[pos];
            }
            (by_core, out.bus)
        };
        let (plain, plain_bus) = run([0, 1, 2]);
        let (permuted, permuted_bus) = run([2, 0, 1]);
        for c in 0..3 {
            assert_eq!(
                order_invariant(&plain[c]),
                order_invariant(&permuted[c]),
                "core {c}: ordering leaked into cache/MSHR outcomes"
            );
        }
        assert_eq!(plain_bus.transactions, permuted_bus.transactions);
        assert_eq!(plain_bus.busy_cycles, permuted_bus.busy_cycles);
        assert_ne!(
            order_invariant(&plain[0]),
            order_invariant(&plain[1]),
            "cores must be genuinely distinct"
        );
    }

    /// A small shared-LLC platform: `n` private L1-only cores (distinct
    /// pids 1..=n, distinct RNG streams) plus one shared 64×4 LLC.
    fn shared_platform(n: usize, salt: u64) -> (Vec<Hierarchy>, Vec<ProcessId>, SharedLlc) {
        use tscache_core::cache::Cache;
        use tscache_core::geometry::CacheGeometry;
        use tscache_core::placement::PlacementKind;
        use tscache_core::replacement::ReplacementKind;
        let l1 = CacheGeometry::new(8, 2, 32).unwrap();
        let mk = |label: &str, geom, s| {
            Cache::new(label, geom, PlacementKind::RandomModulo, ReplacementKind::Random, s)
        };
        let mut cores = Vec::new();
        let mut pids = Vec::new();
        for c in 0..n as u64 {
            let mut h = Hierarchy::from_private_parts(
                mk("L1I", l1, salt ^ c ^ 0x11),
                mk("L1D", l1, salt ^ c ^ 0x22),
                Vec::new(),
                1,
                80,
            );
            let pid = ProcessId::new(1 + c as u16);
            h.set_process_seed(pid, Seed::new(salt.wrapping_mul(31) ^ c | 1));
            cores.push(h);
            pids.push(pid);
        }
        let mut llc =
            SharedLlc::new(mk("SLLC", CacheGeometry::new(64, 4, 32).unwrap(), salt ^ 0x55), 10, 80);
        for (c, &pid) in pids.iter().enumerate() {
            llc.set_process_seed(pid, Seed::new(salt.wrapping_mul(77) ^ c as u64 | 1));
        }
        (cores, pids, llc)
    }

    #[test]
    fn shared_batch_engine_matches_shared_scalar_engine() {
        for arbitration in Arbitration::ALL {
            let cfg = SystemConfig {
                bus: BusConfig { arbitration, ..BusConfig::default() },
                ..SystemConfig::default()
            };
            let traces = [trace(51, 700), trace(52, 600)];
            let run = |scalar: bool| {
                let (mut hs, pids, mut llc) = shared_platform(2, 5);
                for h in &mut hs {
                    h.set_write_policy(tscache_core::cache::WritePolicy::WriteBack);
                }
                llc.set_write_policy(tscache_core::cache::WritePolicy::WriteBack);
                let mut cores: Vec<CoreRun<'_>> = hs
                    .iter_mut()
                    .zip(&pids)
                    .zip(&traces)
                    .map(|((h, &pid), t)| CoreRun { hierarchy: h, pid, ops: t })
                    .collect();
                let out = if scalar {
                    execute_scalar_shared(&mut cores, &mut llc, &cfg)
                } else {
                    execute_batch_shared(&mut cores, &mut llc, &cfg)
                };
                let stats: Vec<_> = hs.iter().map(|h| h.total_stats()).collect();
                let contents: Vec<_> = llc.cache().contents().collect();
                (out, stats, *llc.cache().stats(), contents)
            };
            assert_eq!(run(true), run(false), "{arbitration}");
        }
    }

    #[test]
    fn shared_llc_hit_pays_no_bus_transaction() {
        // One core cycling 32 lines: they thrash the tiny L1 but fit
        // the 256-line LLC, so steady state is all LLC hits — and the
        // bus must see exactly the LLC misses, not the L1 misses.
        let ops: Vec<TraceOp> =
            (0..2000u64).map(|i| TraceOp::read(Addr::new((i % 32) * 4096))).collect();
        let (mut hs, pids, mut llc) = shared_platform(1, 9);
        let out = execute_batch_shared(
            &mut [CoreRun { hierarchy: &mut hs[0], pid: pids[0], ops: &ops }],
            &mut llc,
            &SystemConfig::default(),
        );
        let llc_stats = llc.cache().stats();
        assert!(llc_stats.hits() > 0, "no steady-state LLC hits");
        assert_eq!(out.cores[0].mem_reads, llc_stats.misses(), "bus reads ≠ LLC misses");
        assert_eq!(out.bus.transactions, out.cores[0].mem_reads + out.cores[0].mem_writebacks);
        assert!(
            hs[0].l1d().stats().misses() > llc_stats.misses(),
            "L1 misses should exceed LLC misses (hits must bypass the bus)"
        );
    }

    #[test]
    fn shared_llc_makes_contention_state_visible_and_partitions_hide_it() {
        // The victim cycles a working set that is LLC-resident when
        // alone. An enemy streaming through the same shared LLC evicts
        // victim lines — unless per-core way partitions isolate them.
        // The footprints are disjoint: cores sharing *data* would hit
        // on each other's lines (the Flush+Reload channel), which no
        // partition closes.
        let victim_ops: Vec<TraceOp> =
            (0..3000u64).map(|i| TraceOp::read(Addr::new((i % 48) * 4096))).collect();
        let enemy_ops: Vec<TraceOp> = trace(83, 3000)
            .into_iter()
            .map(|op| TraceOp { kind: op.kind, addr: Addr::new(op.addr.as_u64() + (1 << 24)) })
            .collect();
        let run = |with_enemy: bool, partitioned: bool| {
            let (mut hs, pids, mut llc) = shared_platform(2, 13);
            if partitioned {
                llc.set_way_partition(pids[0], 0, 2);
                llc.set_way_partition(pids[1], 2, 4);
            }
            let mut cores = Vec::new();
            let mut iter = hs.iter_mut();
            let h0 = iter.next().unwrap();
            cores.push(CoreRun { hierarchy: h0, pid: pids[0], ops: &victim_ops });
            if with_enemy {
                cores.push(CoreRun {
                    hierarchy: iter.next().unwrap(),
                    pid: pids[1],
                    ops: &enemy_ops,
                });
            }
            let out = execute_batch_shared(&mut cores, &mut llc, &SystemConfig::default());
            (out.cores[0], llc.cache().stats().cross_process_evictions())
        };
        let (solo, _) = run(false, false);
        let (contended, cross) = run(true, false);
        assert!(cross > 0, "enemy never evicted a victim LLC line");
        assert!(
            contended.mem_reads > solo.mem_reads,
            "shared-LLC contention must cost the victim extra off-chip reads \
             (solo {}, contended {})",
            solo.mem_reads,
            contended.mem_reads
        );
        let (partitioned, cross_part) = run(true, true);
        assert_eq!(cross_part, 0, "partitioned LLC still saw cross-core evictions");
        // Partitioned victim behaves as if partitioned-solo: the enemy
        // changes nothing it can observe in its own cache outcomes.
        let (part_solo, _) = run(false, true);
        assert_eq!(partitioned.mem_reads, part_solo.mem_reads);
        assert_eq!(partitioned.base_cycles, part_solo.base_cycles);
    }

    #[test]
    fn contended_shared_segment_is_deterministic_and_accounts_cycles() {
        let run = || {
            let (mut hs, pids, mut llc) = shared_platform(2, 21);
            let mut hs = hs.drain(..);
            let mut h = hs.next().unwrap();
            let enemy = hs.next().unwrap();
            let mut co = vec![CoRunner::new(enemy, pids[1], trace(31, 300))];
            let mut events = Vec::new();
            let mut requests = LlcRequests::default();
            let t = trace(32, 500);
            let seg = run_contended_segment_shared(
                &mut h,
                pids[0],
                &t,
                &mut co,
                &mut llc,
                &SystemConfig::default(),
                &mut events,
                &mut requests,
            );
            (seg, *llc.cache().stats())
        };
        let (a, llc_a) = run();
        let (b, llc_b) = run();
        assert_eq!(a, b);
        assert_eq!(llc_a, llc_b);
        assert!(a.co[0].ops > 0, "enemy never ran");
        assert_eq!(
            a.primary.cycles,
            a.primary.base_cycles + a.primary.bus_wait + a.primary.mshr_stall_cycles
        );
    }

    #[test]
    fn tdma_bounds_per_transaction_wait() {
        let slot_cycles = 16u32;
        let cfg = SystemConfig {
            bus: BusConfig { arbitration: Arbitration::Tdma { slot_cycles }, service_cycles: 8 },
            mshr: None,
        };
        let (mut c0, mut c1) = pair();
        let pid = ProcessId::new(1);
        let (t0, t1) = (trace(31, 600), trace(32, 600));
        let out = execute_batch(
            &mut [
                CoreRun { hierarchy: &mut c0, pid, ops: &t0 },
                CoreRun { hierarchy: &mut c1, pid, ops: &t1 },
            ],
            &cfg,
        );
        // Every transaction waits at most one full TDMA round.
        let round = (slot_cycles as u64) * 2;
        for (i, core) in out.cores.iter().enumerate() {
            let txns = core.mem_reads + core.mem_writebacks;
            assert!(core.bus_wait <= txns * round, "core {i} waited beyond the TDMA bound");
        }
    }

    #[test]
    fn mshr_disabled_never_stalls_or_coalesces() {
        let cfg = SystemConfig { mshr: None, ..SystemConfig::default() };
        let (mut c0, mut c1) = pair();
        let pid = ProcessId::new(1);
        let (t0, t1) = (trace(41, 400), trace(42, 400));
        let out = execute_batch(
            &mut [
                CoreRun { hierarchy: &mut c0, pid, ops: &t0 },
                CoreRun { hierarchy: &mut c1, pid, ops: &t1 },
            ],
            &cfg,
        );
        for core in &out.cores {
            assert_eq!(core.mshr_stall_cycles, 0);
            assert_eq!(core.mshr_coalesced, 0);
        }
    }

    #[test]
    fn co_runner_mshr_windows_expire_with_its_op_sequence() {
        // A cyclic enemy trace of 16 lines all aliasing one L1 set:
        // every access misses L1, and the revisit distance (16 ops)
        // exceeds the MSHR op window (8), so entries must have expired
        // by the time a line comes around again — zero coalescing. A
        // frozen sequence number would instead pin the first 8 lines
        // in the file forever and falsely coalesce every revisit.
        let enemy_ops: Vec<TraceOp> =
            (0..16u64).map(|i| TraceOp::read(Addr::new(i * 128 * 32))).collect();
        let mut enemy = SetupKind::Deterministic.build(3);
        enemy.access_batch(ProcessId::new(9), &enemy_ops); // warm L2
        let mut co = vec![CoRunner::new(enemy, ProcessId::new(9), enemy_ops)];
        let mut h = SetupKind::Deterministic.build(1);
        let t = trace(5, 2000);
        let mut events = Vec::new();
        let seg = run_contended_segment(
            &mut h,
            ProcessId::new(1),
            &t,
            &mut co,
            &SystemConfig::default(),
            &mut events,
        );
        assert!(seg.co[0].ops > 32, "enemy barely ran; test needs several trace cycles");
        assert_eq!(
            seg.co[0].mshr_coalesced, 0,
            "revisit distance exceeds the MSHR window — nothing may coalesce"
        );
    }

    #[test]
    fn tiny_mshr_file_stalls_a_miss_streak() {
        let cfg = SystemConfig {
            mshr: Some(MshrConfig { entries: 1, window_ops: 16, stall_cycles: 6 }),
            ..SystemConfig::default()
        };
        let mut h = SetupKind::Deterministic.build(1);
        // A pure miss streak: distinct lines, no reuse.
        let t: Vec<TraceOp> = (0..400u64).map(|i| TraceOp::read(Addr::new(i * 4096))).collect();
        let pid = ProcessId::new(1);
        let out = execute_batch(&mut [CoreRun { hierarchy: &mut h, pid, ops: &t }], &cfg);
        assert!(out.cores[0].mshr_stall_cycles > 0, "1-entry MSHR never stalled a miss streak");
    }
}
