//! Contended multi-core execution: N cores with private hierarchies
//! share one memory bus; last-level miss fills and memory-bound
//! writebacks arbitrate for it, MSHR files bound per-level miss
//! parallelism.
//!
//! # Execution model
//!
//! Cores are advanced by a deterministic discrete-event loop: at every
//! step the core with the smallest clock (ties: lowest core index)
//! executes its next op to completion. An op's cost is its solo
//! hierarchy cost ([`OpTiming::cycles`]) plus any MSHR structural
//! stall plus the queuing delay of its bus transactions. Contention is
//! *timing-only*: cache contents, hit/miss outcomes, statistics and
//! RNG draws per core are exactly those of the same trace run solo —
//! which is what makes the batched engine possible at all.
//!
//! Clock ties between cores resolve by core index (lowest first), so
//! permuting *distinct* cores may legitimately shift individual
//! queuing waits; everything the caches and MSHRs decide — per-core
//! base cycles, transaction, stall and coalesce counts — is invariant
//! under core reordering (for [`run_contended_segment`], whose loop
//! stops with the measured core, this holds for the measured core;
//! enemy *progress* is interleaving-dependent by construction), and
//! the unit/probe suites pin exactly that split.
//!
//! [`execute_scalar`] is the reference: it interleaves per-op scalar
//! hierarchy walks ([`Hierarchy::access_detailed`]) in event order.
//! [`execute_batch`] first replays each core's whole trace through the
//! hierarchy batch path ([`Hierarchy::access_batch_timed`]) — private
//! caches make the per-core cache work independent of the interleaving
//! — then runs the identical event loop over the recorded per-op
//! events. The differential suite pins the two bit-identical across
//! placement × replacement × depth × arbitration.
//!
//! # Shared last level
//!
//! [`execute_scalar_shared`]/[`execute_batch_shared`] run the same
//! event merge over cores whose *last* unified level is one
//! [`SharedLlc`] instance: each core's private levels stay per-core
//! (and per-core outcomes stay interleaving-independent, which is what
//! the batch engine pre-executes via
//! [`Hierarchy::access_batch_upper_timed`]), while every shared-level
//! fill and writeback is resolved against the one shared cache *at
//! merge time*, in exact global op order. Unlike the private-hierarchy
//! engines, contention here is **not** timing-only: cores evict each
//! other's shared-level lines (the cross-core Prime+Probe channel),
//! unless per-core way partitions on the shared level restore
//! isolation. The shared-level order is a deterministic function of
//! the clocks both engines compute identically, so batch remains
//! bit-identical to scalar — the shared axis of the differential suite
//! pins stats, contents and dirty lines of every private level *and*
//! the shared cache.
//!
//! Bus accounting at the shared level: a shared-LLC **hit costs no bus
//! transaction** — only LLC misses (off-chip reads) and writebacks
//! that pass the LLC unabsorbed (or dirty LLC victims) arbitrate for
//! the bus. MSHR files remain per core (a per-core view of miss
//! parallelism): misses of different cores on the same line never
//! coalesce with each other.

use crate::bus::{Bus, BusReport};
use crate::mshr::{MshrConfig, MshrFile, MshrOutcome};
use tscache_core::addr::LineAddr;
use tscache_core::cache::Writeback;
use tscache_core::hierarchy::{
    AccessKind, Hierarchy, LlcRequests, OpTiming, SharedLlc, TraceOp, UpperOutcome,
};
use tscache_core::seed::ProcessId;
use tscache_telemetry::{Event, RecorderHandle};

pub use crate::bus::{Arbitration, BusConfig};

/// The contention model of a platform: one shared bus plus (optional)
/// MSHR files at every cache level of every core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Shared-bus model.
    pub bus: BusConfig,
    /// MSHR files (`None` = unbounded miss parallelism, no
    /// coalescing).
    pub mshr: Option<MshrConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig { bus: BusConfig::default(), mshr: Some(MshrConfig::default()) }
    }
}

/// One-knob description of a contended campaign, consumed by the
/// attack-sampling and measurement layers: how many co-runner cores,
/// which bus/MSHR model, and whether caches run write-back (so dirty
/// evictions join the bus traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionConfig {
    /// Enemy cores running alongside the measured core.
    pub co_runners: u32,
    /// Bus + MSHR model.
    pub system: SystemConfig,
    /// Run every core's caches write-back.
    pub write_back: bool,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig { co_runners: 1, system: SystemConfig::default(), write_back: true }
    }
}

/// One core's workload for a differential engine run.
#[derive(Debug)]
pub struct CoreRun<'a> {
    /// The core's private hierarchy.
    pub hierarchy: &'a mut Hierarchy,
    /// The process executing on this core.
    pub pid: ProcessId,
    /// The core's trace.
    pub ops: &'a [TraceOp],
}

/// Per-core accounting of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Ops executed.
    pub ops: u64,
    /// Total cycles including stalls and bus waits (the core's final
    /// clock).
    pub cycles: u64,
    /// Solo cycles (what the trace costs with no contention).
    pub base_cycles: u64,
    /// Queuing cycles spent waiting for the bus.
    pub bus_wait: u64,
    /// Cycles lost to MSHR structural stalls.
    pub mshr_stall_cycles: u64,
    /// Misses that coalesced into a pending MSHR entry.
    pub mshr_coalesced: u64,
    /// Bus read transactions (last-level misses that went off-chip).
    pub mem_reads: u64,
    /// Bus write transactions (writebacks that reached memory).
    pub mem_writebacks: u64,
    /// Coherence transactions this core's ops issued on the bus
    /// (upgrade invalidations, flush broadcasts, inclusive
    /// back-invalidations).
    pub coh_txns: u64,
    /// Line copies coherence actions drained from this core's private
    /// levels (the *receiving* side: remote upgrades, flush
    /// broadcasts, shared-level back-invalidations).
    pub coh_invalidations: u64,
}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceOutcome {
    /// Per-core accounting, in core order.
    pub cores: Vec<CoreReport>,
    /// Shared-bus accounting.
    pub bus: BusReport,
}

/// The deterministic event-merge state shared by both engines.
struct Merger {
    bus: Bus,
    /// MSHR files per core per level (empty when disabled).
    mshr: Vec<Vec<MshrFile>>,
    clocks: Vec<u64>,
    reports: Vec<CoreReport>,
    depths: Vec<usize>,
    /// Bus service cycles, mirrored for trace emission.
    bus_service: u32,
    /// Observer-only trace sink. Timing, outcomes and statistics are
    /// computed identically whether this is attached or not — the
    /// recorder never feeds back.
    recorder: Option<RecorderHandle>,
}

impl Merger {
    fn new(cfg: &SystemConfig, depths: Vec<usize>) -> Self {
        let n = depths.len();
        let mshr = match cfg.mshr {
            Some(m) => depths.iter().map(|&d| (0..d).map(|_| MshrFile::new(m)).collect()).collect(),
            None => vec![Vec::new(); n],
        };
        Merger {
            bus: Bus::new(cfg.bus, n),
            mshr,
            clocks: vec![0; n],
            reports: vec![CoreReport::default(); n],
            depths,
            bus_service: cfg.bus.service_cycles,
            recorder: None,
        }
    }

    /// Executes op `seq` of `core` (touching `line`) with solo timing
    /// `t`: MSHR checks, then bus arbitration for its transactions.
    fn step(&mut self, core: usize, seq: u64, line: u64, t: OpTiming) {
        self.step_coh(core, seq, line, t, 0);
    }

    /// [`step`](Self::step) with `coh_txns` additional coherence
    /// transactions (upgrade invalidations, flush broadcasts,
    /// back-invalidations) arbitrating on the bus after the op's read
    /// and writeback transactions.
    fn step_coh(&mut self, core: usize, seq: u64, line: u64, t: OpTiming, coh_txns: u8) {
        let depth = self.depths[core];
        let ts0 = self.clocks[core];
        if let Some(rec) = &self.recorder {
            // The per-level walk view: level l was consulted iff every
            // lower level missed; the walk stops at the first hit.
            let mut r = rec.borrow_mut();
            for level in 0..depth {
                let miss = t.miss_mask >> level & 1 == 1;
                r.record(
                    ts0,
                    Event::LevelAccess { core: core as u8, level: level as u8, hit: !miss },
                );
                if !miss {
                    break;
                }
            }
            if t.mem_writebacks > 0 {
                r.record(ts0, Event::Writeback { core: core as u8, count: t.mem_writebacks });
            }
        }
        let report = &mut self.reports[core];
        let mut stall = 0u64;
        let mut mem_read = t.memory_read(depth);
        for (level, file) in self.mshr[core].iter_mut().enumerate() {
            if t.miss_mask >> level & 1 == 1 {
                match file.on_miss(line, seq) {
                    MshrOutcome::Coalesced => {
                        report.mshr_coalesced += 1;
                        if level == depth - 1 {
                            // Rides the pending fill: no second
                            // off-chip read.
                            mem_read = false;
                        }
                        if let Some(rec) = &self.recorder {
                            rec.borrow_mut().record(
                                ts0,
                                Event::MshrCoalesce { core: core as u8, level: level as u8 },
                            );
                        }
                    }
                    MshrOutcome::Allocated => {}
                    MshrOutcome::Stalled => {
                        stall += file.stall_cycles() as u64;
                        if let Some(rec) = &self.recorder {
                            rec.borrow_mut().record(
                                ts0,
                                Event::MshrStall {
                                    core: core as u8,
                                    level: level as u8,
                                    cycles: file.stall_cycles(),
                                },
                            );
                        }
                    }
                }
            }
        }
        let mut at = self.clocks[core] + stall + t.cycles as u64;
        let mut wait = 0u64;
        let bus_txn = |bus: &mut Bus, at: &mut u64, wait: &mut u64| {
            let g = bus.grant(core, *at);
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().record(
                    g,
                    Event::BusGrant {
                        core: core as u8,
                        wait: (g - *at).min(u32::MAX as u64) as u32,
                        service: self.bus_service,
                    },
                );
            }
            *wait += g - *at;
            *at = g;
        };
        if mem_read {
            bus_txn(&mut self.bus, &mut at, &mut wait);
            report.mem_reads += 1;
        }
        for _ in 0..t.mem_writebacks {
            bus_txn(&mut self.bus, &mut at, &mut wait);
            report.mem_writebacks += 1;
        }
        for _ in 0..coh_txns {
            bus_txn(&mut self.bus, &mut at, &mut wait);
            report.coh_txns += 1;
        }
        report.ops += 1;
        report.cycles += stall + t.cycles as u64 + wait;
        report.base_cycles += t.cycles as u64;
        report.bus_wait += wait;
        report.mshr_stall_cycles += stall;
        self.clocks[core] = at;
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().record(
                ts0,
                Event::Op {
                    core: core as u8,
                    cycles: (stall + t.cycles as u64 + wait).min(u32::MAX as u64) as u32,
                    miss_mask: t.miss_mask,
                },
            );
        }
    }

    fn finish(self) -> InterferenceOutcome {
        InterferenceOutcome { cores: self.reports, bus: self.bus.report() }
    }

    /// The core to advance next: smallest clock among cores with work
    /// remaining, lowest index on ties.
    fn next_core(&self, remaining: impl Fn(usize) -> bool) -> Option<usize> {
        let mut best = None;
        for c in 0..self.clocks.len() {
            if remaining(c) && best.is_none_or(|b: usize| self.clocks[c] < self.clocks[b]) {
                best = Some(c);
            }
        }
        best
    }
}

/// The reference engine: a scalar multi-core interleaving, walking one
/// op at a time on the event-ordered core through the scalar hierarchy
/// path.
pub fn execute_scalar(cores: &mut [CoreRun<'_>], cfg: &SystemConfig) -> InterferenceOutcome {
    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth()).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let mut merger = Merger::new(cfg, depths);
    let mut pos = vec![0usize; cores.len()];
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let op = cores[c].ops[pos[c]];
        let t = cores[c].hierarchy.access_detailed(cores[c].pid, op.kind, op.addr);
        merger.step(c, pos[c] as u64, op.addr.line(offsets[c]).as_u64(), t);
        pos[c] += 1;
    }
    merger.finish()
}

/// The production engine: each core's trace runs through the hierarchy
/// batch path first (private caches make per-core outcomes independent
/// of the interleaving), then the identical event merge replays the
/// recorded per-op timings against the bus and MSHRs. Bit-identical to
/// [`execute_scalar`] — stats, cycles, writeback counts and final
/// contents — as the differential suite pins.
pub fn execute_batch(cores: &mut [CoreRun<'_>], cfg: &SystemConfig) -> InterferenceOutcome {
    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth()).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let events: Vec<Vec<OpTiming>> = cores
        .iter_mut()
        .map(|core| {
            let mut ev = Vec::new();
            core.hierarchy.access_batch_timed(core.pid, core.ops, &mut ev);
            ev
        })
        .collect();
    let mut merger = Merger::new(cfg, depths);
    let mut pos = vec![0usize; cores.len()];
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let op = cores[c].ops[pos[c]];
        merger.step(c, pos[c] as u64, op.addr.line(offsets[c]).as_u64(), events[c][pos[c]]);
        pos[c] += 1;
    }
    merger.finish()
}

/// Composes one op's private-level timing with its shared-level
/// resolution: a hit costs only the shared level's hit cycles (no bus
/// transaction), a miss adds the memory penalty and sets the shared
/// level's miss bit (`shared_bit`), and unabsorbed writebacks plus a
/// dirty shared-level victim become memory-bound bus writes.
fn compose_llc(
    mut t: OpTiming,
    r: tscache_core::hierarchy::LlcResolution,
    shared_bit: u8,
) -> OpTiming {
    t.cycles += r.cycles;
    if r.miss {
        t.miss_mask |= 1 << shared_bit;
    }
    t.mem_writebacks += r.mem_writebacks;
    t
}

/// Lifts a private-levels-only [`UpperOutcome`] into an [`OpTiming`]
/// awaiting its shared-level composition.
fn upper_timing(up: &UpperOutcome) -> OpTiming {
    OpTiming { cycles: up.cycles, miss_mask: up.miss_mask, mem_writebacks: up.mem_writebacks }
}

/// Whether a core's trace may be pre-executed through its private
/// levels on a shared platform: it must contain no
/// [`AccessKind::Flush`] ops (their shared-level and coherence side
/// runs at merge time) and — once coherence is armed — touch no
/// coherence-tracked line (other cores' invalidations may then reach
/// into this core's private levels mid-trace, so its private outcomes
/// are no longer a pure function of its own trace). A core that fails
/// the test walks op by op at merge time instead; a core that passes
/// can never hold a tracked line, so no invalidation ever reaches it —
/// which is exactly what keeps its pre-execution sound.
fn prebatchable(ops: &[TraceOp], llc: &SharedLlc, offset_bits: u32) -> bool {
    let coherent = llc.has_coherence();
    ops.iter().all(|op| {
        op.kind != AccessKind::Flush
            && !(coherent && llc.is_coherent_line(op.addr.line(offset_bits)))
    })
}

/// Drains the private copies of `line` from every core whose bit is
/// set in `targets` (a directory bitmap), crediting each drained
/// core's report with the copies it lost. Returns the number of dirty
/// copies drained — memory-bound bus writes charged to the issuing op.
fn invalidate_cores(
    cores: &mut [CoreRun<'_>],
    pids: &[ProcessId],
    reports: &mut [CoreReport],
    targets: u32,
    line: LineAddr,
) -> u8 {
    let mut dirty = 0u32;
    let mut bits = targets;
    while bits != 0 {
        let j = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if j >= cores.len() {
            continue;
        }
        let inv = cores[j].hierarchy.invalidate_line(pids[j], line);
        reports[j].coh_invalidations += inv.copies as u64;
        dirty += inv.dirty;
    }
    dirty.min(u8::MAX as u32) as u8
}

/// The unified shared-LLC engine behind [`execute_scalar_shared`] and
/// [`execute_batch_shared`]: per-core private walks (pre-executed for
/// cores [`prebatchable`] allows, per-op at merge time otherwise),
/// shared-level resolution in exact global clock order, and — when the
/// LLC has coherence armed — the MSI actions in a canonical per-op
/// sequence: (1) private walk, (2) the op's writebacks then fill
/// against the LLC, (3) inclusive back-invalidation when the fill
/// evicted a tracked line, (4) sharer recording for a tracked fill,
/// (5) upgrade invalidations for a write to a tracked line, (6) the
/// flush broadcast. Both engines run this identical sequence, so they
/// are structurally incapable of diverging on coherence order.
fn run_shared_engine(
    cores: &mut [CoreRun<'_>],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
    batch: bool,
) -> InterferenceOutcome {
    /// Per-core execution mode.
    enum CoreMode {
        /// Pre-executed private walk + exported request stream.
        Batched { events: Vec<OpTiming>, stream: LlcRequests, fill_pos: usize, wb_pos: usize },
        /// Per-op private walk at merge time.
        PerOp,
    }

    let depths: Vec<usize> = cores.iter().map(|c| c.hierarchy.depth() + 1).collect();
    let offsets: Vec<u32> =
        cores.iter().map(|c| c.hierarchy.l1i().geometry().offset_bits()).collect();
    let pids: Vec<ProcessId> = cores.iter().map(|c| c.pid).collect();
    let mut modes: Vec<CoreMode> = Vec::with_capacity(cores.len());
    for (c, core) in cores.iter_mut().enumerate() {
        if batch && prebatchable(core.ops, llc, offsets[c]) {
            let mut events = Vec::new();
            let mut stream = LlcRequests::default();
            core.hierarchy.access_batch_upper_timed(core.pid, core.ops, &mut events, &mut stream);
            modes.push(CoreMode::Batched { events, stream, fill_pos: 0, wb_pos: 0 });
        } else {
            modes.push(CoreMode::PerOp);
        }
    }
    let coherent = llc.has_coherence();
    let mut merger = Merger::new(cfg, depths.clone());
    let mut pos = vec![0usize; cores.len()];
    let mut wb_scratch: Vec<Writeback> = Vec::new();
    while let Some(c) = merger.next_core(|c| pos[c] < cores[c].ops.len()) {
        let i = pos[c];
        let op = cores[c].ops[i];
        let line = op.addr.line(offsets[c]);
        let shared_bit = (depths[c] - 1) as u8;
        // (1)+(2): private levels, then writebacks and fill against
        // the shared cache.
        let (mut t, fill, evicted) = match &mut modes[c] {
            CoreMode::Batched { events, stream, fill_pos, wb_pos } => {
                let (fill, wbs) = stream.take_for_op(i as u32, fill_pos, wb_pos);
                let (r, ev) = llc.resolve_evict(pids[c], fill, wbs);
                (compose_llc(events[i], r, shared_bit), fill, ev)
            }
            CoreMode::PerOp => {
                wb_scratch.clear();
                let up = cores[c].hierarchy.access_upper_detailed(
                    pids[c],
                    op.kind,
                    op.addr,
                    i as u32,
                    &mut wb_scratch,
                );
                let (r, ev) = llc.resolve_evict(pids[c], up.fill, &wb_scratch);
                (compose_llc(upper_timing(&up), r, shared_bit), up.fill, ev)
            }
        };
        let mut coh_txns = 0u8;
        if coherent {
            // (3) Inclusive back-invalidation: the fill displaced a
            // tracked line from the shared level, so no private copy
            // may survive it.
            if let Some(victim) = evicted.filter(|&v| llc.is_coherent_line(v)) {
                let sharers = llc.clear_sharers(victim);
                if sharers != 0 {
                    coh_txns += 1;
                    t.mem_writebacks +=
                        invalidate_cores(cores, &pids, &mut merger.reports, sharers, victim);
                }
            }
            // (4) A tracked fill records this core as a holder.
            if fill.is_some_and(|l| llc.is_coherent_line(l)) {
                llc.note_sharer(line, c);
            }
            // (5) Upgrade: a write to a tracked line drains every
            // other holder's copies.
            if op.kind == AccessKind::Write && llc.is_coherent_line(line) {
                let others = llc.retain_sharer(line, c);
                if others != 0 {
                    coh_txns += 1;
                    t.mem_writebacks +=
                        invalidate_cores(cores, &pids, &mut merger.reports, others, line);
                }
            }
            // (6) Flush broadcast: drain every tracked copy — the
            // other cores' private copies (the issuer already drained
            // its own in the private walk) and the shared-level copies
            // under every core's placement view.
            if op.kind == AccessKind::Flush && llc.is_coherent_line(line) {
                coh_txns += 1;
                let sharers = llc.clear_sharers(line) & !(1u32 << c);
                t.mem_writebacks +=
                    invalidate_cores(cores, &pids, &mut merger.reports, sharers, line);
                for &pid in &pids {
                    if llc.invalidate_copy(pid, line).dirty {
                        t.mem_writebacks += 1;
                    }
                }
            }
        }
        merger.step_coh(c, i as u64, line.as_u64(), t, coh_txns);
        pos[c] += 1;
    }
    merger.finish()
}

/// The reference engine for shared-LLC platforms: a scalar multi-core
/// interleaving where the event-ordered core walks its op through its
/// *private* levels ([`Hierarchy::access_upper_detailed`]) and then
/// resolves the shared last level — and any coherence actions — in
/// place. Cores access the shared cache under their own pid, so
/// per-core way partitions and cross-core eviction accounting apply
/// directly.
pub fn execute_scalar_shared(
    cores: &mut [CoreRun<'_>],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
) -> InterferenceOutcome {
    run_shared_engine(cores, llc, cfg, false)
}

/// The production engine for shared-LLC platforms: every core whose
/// trace is coherence-free is pre-executed through its private levels
/// ([`Hierarchy::access_batch_upper_timed`], valid because such a
/// core's private outcomes are interleaving-independent — it can never
/// hold a coherence-tracked line, so no invalidation reaches it),
/// exporting the per-core shared-level request streams; cores that
/// flush or touch tracked lines walk op by op at merge time. The event
/// merge then replays everything against the one shared cache in the
/// exact clock order the scalar engine produces. Bit-identical to
/// [`execute_scalar_shared`] — engine outcomes (including coherence
/// counters), every private level, and the shared cache — as the
/// differential suite pins.
pub fn execute_batch_shared(
    cores: &mut [CoreRun<'_>],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
) -> InterferenceOutcome {
    run_shared_engine(cores, llc, cfg, true)
}

/// Ops a co-runner pre-executes per hierarchy batch call.
const CO_CHUNK: usize = 128;

/// A persistent enemy core: a private hierarchy cyclically replaying
/// an enemy trace alongside the measured core. Trace position and
/// cache state persist across segments, so a long campaign sees the
/// enemy's steady-state working set rather than a cold cache per job.
#[derive(Debug)]
pub struct CoRunner {
    hierarchy: Hierarchy,
    pid: ProcessId,
    ops: Vec<TraceOp>,
    offset_bits: u32,
    /// Next unexecuted op of the cyclic trace.
    pos: usize,
    /// Pre-executed events not yet consumed by the merge.
    events: Vec<OpTiming>,
    evt_pos: usize,
    /// Trace index of `events[0]`.
    chunk_start: usize,
    /// Total ops executed over the core's lifetime — the monotone
    /// sequence number the MSHR op-window expiry is measured against.
    seq: u64,
    /// Shared-LLC mode only: the current chunk's shared-level request
    /// stream (chunk-relative op indices) and its consumption cursors.
    llc_requests: LlcRequests,
    fill_pos: usize,
    wb_pos: usize,
    /// Which walk pre-executed the buffered chunk; a co-runner must be
    /// driven in one mode for its whole lifetime.
    chunk_shared: bool,
    /// Memoized [`prebatchable`] verdict for this co-runner's (fixed)
    /// trace on the platform's LLC, computed on first shared-mode use.
    prebatch: Option<bool>,
}

impl CoRunner {
    /// Creates an enemy core replaying `ops` (cyclically) as `pid` on
    /// its own `hierarchy`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(hierarchy: Hierarchy, pid: ProcessId, ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "co-runner needs a non-empty trace");
        let offset_bits = hierarchy.l1i().geometry().offset_bits();
        CoRunner {
            hierarchy,
            pid,
            ops,
            offset_bits,
            pos: 0,
            events: Vec::new(),
            evt_pos: 0,
            chunk_start: 0,
            seq: 0,
            llc_requests: LlcRequests::default(),
            fill_pos: 0,
            wb_pos: 0,
            chunk_shared: false,
            prebatch: None,
        }
    }

    /// The enemy core's hierarchy (statistics inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Mutably borrows the hierarchy (seed management between epochs).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// The enemy process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Discards the pre-executed lookahead, rewinding the trace
    /// cursor to the first position the merge has not yet consumed
    /// (a per-op-mode co-runner has no lookahead and keeps its cursor),
    /// and forgets the memoized pre-batchability verdict. Required
    /// whenever the platform's coherence configuration changes after
    /// this co-runner already ran: the buffered chunk was pre-executed
    /// under the old classification.
    pub fn reclassify(&mut self) {
        if self.evt_pos < self.events.len() {
            // Chunked mode with unconsumed lookahead: rewind to the
            // first unmerged op. In per-op mode (or with the buffer
            // fully drained) `pos` is already the next op.
            self.pos = self.chunk_start + self.evt_pos;
        }
        self.chunk_start = self.pos;
        self.events.clear();
        self.evt_pos = 0;
        self.llc_requests.clear();
        self.fill_pos = 0;
        self.wb_pos = 0;
        self.prebatch = None;
    }

    /// Flushes the enemy core's caches and discards its pre-executed
    /// lookahead: the next merged op re-executes from the cold cache
    /// at the first position the merge has not yet consumed. A
    /// hyperperiod flush lands between segments, where the buffered
    /// lookahead is model speculation (pre-executed against the
    /// pre-flush state), not architected history — so it is dropped
    /// rather than replayed; the trace *position* survives. Dirty
    /// lines drain to memory, counted by the caches they leave.
    pub fn flush(&mut self) {
        self.reclassify();
        self.hierarchy.flush_all();
    }

    /// Drains this enemy core's private copies of `line` — the
    /// receiving side of a coherence action issued elsewhere on the
    /// platform (the machine's scalar flush primitive uses this; the
    /// engines reach the hierarchy directly).
    pub fn invalidate_line(
        &mut self,
        line: LineAddr,
    ) -> tscache_core::hierarchy::HierarchyInvalidation {
        self.hierarchy.invalidate_line(self.pid, line)
    }

    /// Pre-executes the next trace chunk through the batch path.
    fn refill(&mut self) {
        if self.pos >= self.ops.len() {
            self.pos = 0;
        }
        let end = (self.pos + CO_CHUNK).min(self.ops.len());
        self.chunk_start = self.pos;
        self.hierarchy.access_batch_timed(self.pid, &self.ops[self.pos..end], &mut self.events);
        self.evt_pos = 0;
        self.chunk_shared = false;
        self.pos = end;
    }

    /// Pre-executes the next trace chunk through the *private* levels
    /// only (shared-LLC mode), exporting the chunk's shared-level
    /// request stream.
    fn refill_shared(&mut self) {
        if self.pos >= self.ops.len() {
            self.pos = 0;
        }
        let end = (self.pos + CO_CHUNK).min(self.ops.len());
        self.chunk_start = self.pos;
        self.hierarchy.access_batch_upper_timed(
            self.pid,
            &self.ops[self.pos..end],
            &mut self.events,
            &mut self.llc_requests,
        );
        self.evt_pos = 0;
        self.fill_pos = 0;
        self.wb_pos = 0;
        self.chunk_shared = true;
        self.pos = end;
    }

    /// The next op's `(line, timing)`, pre-executing a chunk when the
    /// buffer is drained.
    fn next_event(&mut self) -> (u64, u64, OpTiming) {
        if self.evt_pos >= self.events.len() {
            self.refill();
        }
        assert!(!self.chunk_shared, "co-runner switched from shared to private mode mid-chunk");
        let op = self.ops[self.chunk_start + self.evt_pos];
        let t = self.events[self.evt_pos];
        self.evt_pos += 1;
        let seq = self.seq;
        self.seq += 1;
        (seq, op.addr.line(self.offset_bits).as_u64(), t)
    }

    /// Whether this co-runner's trace may be pre-executed in chunks on
    /// `llc` (memoized — the trace and the LLC's coherent ranges are
    /// fixed for the co-runner's lifetime).
    fn prebatchable_on(&mut self, llc: &SharedLlc) -> bool {
        *self.prebatch.get_or_insert_with(|| prebatchable(&self.ops, llc, self.offset_bits))
    }

    /// The next op's private-level outcome in *per-op* shared mode
    /// (coherence-affected co-runners): the scalar upper walk, run at
    /// merge time so invalidations from other cores are visible.
    /// Returns the op's sequence number, the op itself, its private
    /// outcome, and fills `wbs` with the escaped writebacks. The
    /// caller resolves the shared level and the coherence actions.
    fn next_op_per_op(&mut self, wbs: &mut Vec<Writeback>) -> (u64, TraceOp, UpperOutcome) {
        assert!(self.evt_pos >= self.events.len(), "co-runner switched to per-op mode mid-chunk");
        if self.pos >= self.ops.len() {
            self.pos = 0;
        }
        let op = self.ops[self.pos];
        wbs.clear();
        let up = self.hierarchy.access_upper_detailed(self.pid, op.kind, op.addr, 0, wbs);
        self.pos += 1;
        let seq = self.seq;
        self.seq += 1;
        (seq, op, up)
    }

    /// The next op's `(seq, line, timing, evicted shared-level line)`
    /// on a shared-LLC platform: the op's buffered private timing
    /// composed with its shared-level requests, resolved against `llc`
    /// *now* — i.e. in merge order. The evicted line lets the caller
    /// back-invalidate a coherence-tracked shared-level victim.
    fn next_event_llc(&mut self, llc: &mut SharedLlc) -> (u64, u64, OpTiming, Option<LineAddr>) {
        if self.evt_pos >= self.events.len() {
            self.refill_shared();
        }
        // A buffered private-mode chunk carries memory penalties in its
        // timings and no request streams — replaying it here would
        // silently skip the shared level, so a mode switch is a hard
        // error (a co-runner lives on one platform for its lifetime).
        assert!(self.chunk_shared, "co-runner switched from private to shared mode mid-chunk");
        let i = self.evt_pos;
        let op = self.ops[self.chunk_start + i];
        let (fill, wbs) =
            self.llc_requests.take_for_op(i as u32, &mut self.fill_pos, &mut self.wb_pos);
        let (r, evicted) = llc.resolve_evict(self.pid, fill, wbs);
        let t = compose_llc(self.events[i], r, self.hierarchy.depth() as u8);
        self.evt_pos += 1;
        let seq = self.seq;
        self.seq += 1;
        (seq, op.addr.line(self.offset_bits).as_u64(), t, evicted)
    }
}

/// Outcome of one contended segment ([`run_contended_segment`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentOutcome {
    /// The measured core's accounting (its `cycles` is what the
    /// machine charges for the segment).
    pub primary: CoreReport,
    /// Per-co-runner accounting for the segment.
    pub co: Vec<CoreReport>,
    /// Shared-bus accounting for the segment.
    pub bus: BusReport,
}

/// Executes one trace segment of the measured core (core 0) against
/// the persistent co-runners. Bus and MSHR state start fresh per
/// segment (jobs re-align at release boundaries); co-runner trace
/// position and cache state carry over. The loop stops when the
/// primary trace is exhausted: a co-runner only advances while its
/// clock trails the primary's, so every transaction that could delay
/// the primary is arbitrated.
pub fn run_contended_segment(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    ops: &[TraceOp],
    co: &mut [CoRunner],
    cfg: &SystemConfig,
    events: &mut Vec<OpTiming>,
) -> SegmentOutcome {
    run_contended_segment_with(hierarchy, pid, ops, co, cfg, events, None)
}

/// [`run_contended_segment`] with an optional trace recorder attached
/// to the merge. The recorder is observer-only: outcomes are
/// bit-identical with and without it.
#[allow(clippy::too_many_arguments)]
pub fn run_contended_segment_with(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    ops: &[TraceOp],
    co: &mut [CoRunner],
    cfg: &SystemConfig,
    events: &mut Vec<OpTiming>,
    recorder: Option<&RecorderHandle>,
) -> SegmentOutcome {
    let mut depths = vec![hierarchy.depth()];
    depths.extend(co.iter().map(|c| c.hierarchy.depth()));
    let mut merger = Merger::new(cfg, depths);
    merger.recorder = recorder.cloned();
    hierarchy.access_batch_timed(pid, ops, events);
    let offset_bits = hierarchy.l1i().geometry().offset_bits();
    let mut pos = 0usize;
    while pos < ops.len() {
        // Primary = core 0 wins ties, so a quiet system degenerates to
        // the solo walk.
        match merger.next_core(|_| true).expect("at least the primary runs") {
            0 => {
                let op = ops[pos];
                merger.step(0, pos as u64, op.addr.line(offset_bits).as_u64(), events[pos]);
                pos += 1;
            }
            c => {
                let (seq, line, t) = co[c - 1].next_event();
                merger.step(c, seq, line, t);
            }
        }
    }
    let out = merger.finish();
    let mut cores = out.cores.into_iter();
    SegmentOutcome {
        primary: cores.next().expect("core 0 present"),
        co: cores.collect(),
        bus: out.bus,
    }
}

/// [`invalidate_cores`] for the segment engine's core layout: core 0
/// is the measured hierarchy, core `j` is co-runner `j-1`.
fn invalidate_segment_cores(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    co: &mut [CoRunner],
    reports: &mut [CoreReport],
    targets: u32,
    line: LineAddr,
) -> u8 {
    let mut dirty = 0u32;
    let mut bits = targets;
    while bits != 0 {
        let j = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if j > co.len() {
            continue;
        }
        let inv = if j == 0 {
            hierarchy.invalidate_line(pid, line)
        } else {
            let runner = &mut co[j - 1];
            runner.hierarchy.invalidate_line(runner.pid, line)
        };
        reports[j].coh_invalidations += inv.copies as u64;
        dirty += inv.dirty;
    }
    dirty.min(u8::MAX as u32) as u8
}

/// The canonical post-resolution coherence sequence of one segment op
/// (mirrors steps (3)–(6) of the engine documentation on
/// [`run_shared_engine`]): inclusive back-invalidation of a tracked
/// shared-level victim, sharer recording for a tracked fill, upgrade
/// invalidations for a write, and the flush broadcast. Returns the
/// coherence bus transactions the op issued; drained dirty copies are
/// added to `t.mem_writebacks`.
#[allow(clippy::too_many_arguments)]
fn segment_coherence_post(
    llc: &mut SharedLlc,
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    co: &mut [CoRunner],
    reports: &mut [CoreReport],
    pids: &[ProcessId],
    c: usize,
    kind: AccessKind,
    line: LineAddr,
    fill: Option<LineAddr>,
    evicted: Option<LineAddr>,
    t: &mut OpTiming,
    recorder: Option<&RecorderHandle>,
    ts: u64,
) -> u8 {
    let mut coh_txns = 0u8;
    if let Some(victim) = evicted.filter(|&v| llc.is_coherent_line(v)) {
        let sharers = llc.clear_sharers(victim);
        if sharers != 0 {
            coh_txns += 1;
            t.mem_writebacks +=
                invalidate_segment_cores(hierarchy, pid, co, reports, sharers, victim);
            if let Some(rec) = recorder {
                rec.borrow_mut().record(ts, Event::CohBackInvalidate { core: c as u8 });
            }
        }
    }
    if fill.is_some_and(|l| llc.is_coherent_line(l)) {
        llc.note_sharer(line, c);
    }
    if kind == AccessKind::Write && llc.is_coherent_line(line) {
        let others = llc.retain_sharer(line, c);
        if others != 0 {
            coh_txns += 1;
            t.mem_writebacks += invalidate_segment_cores(hierarchy, pid, co, reports, others, line);
            if let Some(rec) = recorder {
                rec.borrow_mut().record(
                    ts,
                    Event::CohUpgrade {
                        core: c as u8,
                        invalidated: others.count_ones().min(u8::MAX as u32) as u8,
                    },
                );
            }
        }
    }
    if kind == AccessKind::Flush && llc.is_coherent_line(line) {
        coh_txns += 1;
        let sharers = llc.clear_sharers(line) & !(1u32 << c);
        t.mem_writebacks += invalidate_segment_cores(hierarchy, pid, co, reports, sharers, line);
        for &p in pids {
            if llc.invalidate_copy(p, line).dirty {
                t.mem_writebacks += 1;
            }
        }
        if let Some(rec) = recorder {
            rec.borrow_mut().record(
                ts,
                Event::CohFlush {
                    core: c as u8,
                    invalidated: sharers.count_ones().min(u8::MAX as u32) as u8,
                },
            );
        }
    }
    coh_txns
}

/// [`run_contended_segment`] for a shared-LLC platform: the measured
/// core (core 0) and the persistent co-runners resolve every
/// shared-level fill and writeback against the one `llc` instance in
/// merge order, so the enemies *do* perturb the measured core's
/// shared-level hits — the contention channel per-core way partitions
/// on `llc` are there to close. When the LLC has coherence armed, the
/// segment additionally runs the MSI actions in global op order:
/// coherence-affected participants (traces with flush ops or accesses
/// to tracked lines) walk their private levels per op at merge time,
/// everyone else keeps the pre-executed batch path. `events` and
/// `requests` are per-call scratch for the primary's private
/// pre-execution (cleared and refilled).
#[allow(clippy::too_many_arguments)]
pub fn run_contended_segment_shared(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    ops: &[TraceOp],
    co: &mut [CoRunner],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
    events: &mut Vec<OpTiming>,
    requests: &mut LlcRequests,
) -> SegmentOutcome {
    run_contended_segment_shared_with(hierarchy, pid, ops, co, llc, cfg, events, requests, None)
}

/// [`run_contended_segment_shared`] with an optional trace recorder
/// attached to the merge. The recorder is observer-only: outcomes are
/// bit-identical with and without it.
#[allow(clippy::too_many_arguments)]
pub fn run_contended_segment_shared_with(
    hierarchy: &mut Hierarchy,
    pid: ProcessId,
    ops: &[TraceOp],
    co: &mut [CoRunner],
    llc: &mut SharedLlc,
    cfg: &SystemConfig,
    events: &mut Vec<OpTiming>,
    requests: &mut LlcRequests,
    recorder: Option<&RecorderHandle>,
) -> SegmentOutcome {
    let mut depths = vec![hierarchy.depth() + 1];
    depths.extend(co.iter().map(|c| c.hierarchy.depth() + 1));
    let co_bits: Vec<u8> = co.iter().map(|c| c.hierarchy.depth() as u8).collect();
    let co_offsets: Vec<u32> = co.iter().map(|c| c.offset_bits).collect();
    let mut merger = Merger::new(cfg, depths);
    merger.recorder = recorder.cloned();
    let shared_bit = hierarchy.depth() as u8;
    let offset_bits = hierarchy.l1i().geometry().offset_bits();
    let coherent = llc.has_coherence();
    let primary_batched = prebatchable(ops, llc, offset_bits);
    if primary_batched {
        hierarchy.access_batch_upper_timed(pid, ops, events, requests);
    } else {
        events.clear();
        requests.clear();
    }
    let pids: Vec<ProcessId> = core::iter::once(pid).chain(co.iter().map(|c| c.pid)).collect();
    let (mut pos, mut fill_pos, mut wb_pos) = (0usize, 0usize, 0usize);
    let mut wb_scratch: Vec<Writeback> = Vec::new();
    while pos < ops.len() {
        // Primary = core 0 wins ties, so a quiet system degenerates to
        // the solo shared-platform walk.
        match merger.next_core(|_| true).expect("at least the primary runs") {
            0 => {
                let op = ops[pos];
                let line = op.addr.line(offset_bits);
                let (mut t, fill, evicted) = if primary_batched {
                    let (fill, wbs) = requests.take_for_op(pos as u32, &mut fill_pos, &mut wb_pos);
                    let (r, ev) = llc.resolve_evict(pid, fill, wbs);
                    (compose_llc(events[pos], r, shared_bit), fill, ev)
                } else {
                    wb_scratch.clear();
                    let up = hierarchy.access_upper_detailed(
                        pid,
                        op.kind,
                        op.addr,
                        pos as u32,
                        &mut wb_scratch,
                    );
                    let (r, ev) = llc.resolve_evict(pid, up.fill, &wb_scratch);
                    (compose_llc(upper_timing(&up), r, shared_bit), up.fill, ev)
                };
                let coh = if coherent {
                    let ts = merger.clocks[0];
                    segment_coherence_post(
                        llc,
                        hierarchy,
                        pid,
                        co,
                        &mut merger.reports,
                        &pids,
                        0,
                        op.kind,
                        line,
                        fill,
                        evicted,
                        &mut t,
                        recorder,
                        ts,
                    )
                } else {
                    0
                };
                merger.step_coh(0, pos as u64, line.as_u64(), t, coh);
                pos += 1;
            }
            c => {
                if co[c - 1].prebatchable_on(llc) {
                    let (seq, line, mut t, evicted) = co[c - 1].next_event_llc(llc);
                    let coh = if coherent {
                        // A batched co-runner can still displace a
                        // tracked line from the shared level; its
                        // coherence-free trace makes every other
                        // action a no-op (its fills are never tracked
                        // and it never writes or flushes tracked
                        // lines), so the canonical sequence runs with
                        // a synthetic read and no fill.
                        let ts = merger.clocks[c];
                        segment_coherence_post(
                            llc,
                            hierarchy,
                            pid,
                            co,
                            &mut merger.reports,
                            &pids,
                            c,
                            AccessKind::Read,
                            LineAddr::new(line),
                            None,
                            evicted,
                            &mut t,
                            recorder,
                            ts,
                        )
                    } else {
                        0
                    };
                    merger.step_coh(c, seq, line, t, coh);
                } else {
                    let (seq, op, up) = co[c - 1].next_op_per_op(&mut wb_scratch);
                    let line = op.addr.line(co_offsets[c - 1]);
                    let (r, ev) = llc.resolve_evict(pids[c], up.fill, &wb_scratch);
                    let mut t = compose_llc(upper_timing(&up), r, co_bits[c - 1]);
                    let coh = if coherent {
                        let ts = merger.clocks[c];
                        segment_coherence_post(
                            llc,
                            hierarchy,
                            pid,
                            co,
                            &mut merger.reports,
                            &pids,
                            c,
                            op.kind,
                            line,
                            up.fill,
                            ev,
                            &mut t,
                            recorder,
                            ts,
                        )
                    } else {
                        0
                    };
                    merger.step_coh(c, seq, line.as_u64(), t, coh);
                }
            }
        }
    }
    let out = merger.finish();
    let mut cores = out.cores.into_iter();
    SegmentOutcome {
        primary: cores.next().expect("core 0 present"),
        co: cores.collect(),
        bus: out.bus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscache_core::addr::Addr;
    use tscache_core::seed::Seed;
    use tscache_core::setup::SetupKind;

    fn trace(salt: u64, len: usize) -> Vec<TraceOp> {
        TraceOp::mixed_trace(salt, len, 1 << 17)
    }

    fn pair() -> (Hierarchy, Hierarchy) {
        let mk = |salt| {
            let mut h = SetupKind::TsCache.build(salt);
            h.set_process_seed(ProcessId::new(1), Seed::new(salt ^ 5));
            h
        };
        (mk(1), mk(2))
    }

    #[test]
    fn batch_engine_matches_scalar_engine() {
        for arbitration in Arbitration::ALL {
            let cfg = SystemConfig {
                bus: BusConfig { arbitration, ..BusConfig::default() },
                ..SystemConfig::default()
            };
            let (t0, t1) = (trace(3, 900), trace(4, 700));
            let (mut a0, mut a1) = pair();
            let (mut b0, mut b1) = pair();
            for h in [&mut a0, &mut a1, &mut b0, &mut b1] {
                h.set_write_policy(tscache_core::cache::WritePolicy::WriteBack);
            }
            let pid = ProcessId::new(1);
            let scalar = execute_scalar(
                &mut [
                    CoreRun { hierarchy: &mut a0, pid, ops: &t0 },
                    CoreRun { hierarchy: &mut a1, pid, ops: &t1 },
                ],
                &cfg,
            );
            let batch = execute_batch(
                &mut [
                    CoreRun { hierarchy: &mut b0, pid, ops: &t0 },
                    CoreRun { hierarchy: &mut b1, pid, ops: &t1 },
                ],
                &cfg,
            );
            assert_eq!(scalar, batch, "{arbitration}");
            assert_eq!(a0.total_stats(), b0.total_stats(), "{arbitration}");
            assert_eq!(a1.total_stats(), b1.total_stats(), "{arbitration}");
        }
    }

    #[test]
    fn contention_only_adds_cycles() {
        let (mut solo, _) = pair();
        let (mut c0, mut c1) = pair();
        let pid = ProcessId::new(1);
        let t0 = trace(7, 800);
        let t1 = trace(8, 800);
        let solo_out = execute_batch(
            &mut [CoreRun { hierarchy: &mut solo, pid, ops: &t0 }],
            &SystemConfig::default(),
        );
        let contended = execute_batch(
            &mut [
                CoreRun { hierarchy: &mut c0, pid, ops: &t0 },
                CoreRun { hierarchy: &mut c1, pid, ops: &t1 },
            ],
            &SystemConfig::default(),
        );
        assert_eq!(solo_out.cores[0].base_cycles, contended.cores[0].base_cycles);
        assert!(contended.cores[0].cycles >= solo_out.cores[0].cycles);
        assert!(contended.cores[0].bus_wait > 0, "two miss-heavy cores never collided");
        // Private caches: contention must not change cache outcomes.
        assert_eq!(solo.total_stats(), c0.total_stats());
    }

    #[test]
    fn contended_segment_is_deterministic_and_no_cheaper_than_solo() {
        let run = || {
            let (mut h, enemy) = pair();
            let mut co = vec![CoRunner::new(enemy, ProcessId::new(9), trace(11, 300))];
            let mut events = Vec::new();
            let t = trace(12, 500);
            run_contended_segment(
                &mut h,
                ProcessId::new(1),
                &t,
                &mut co,
                &SystemConfig::default(),
                &mut events,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.primary.cycles >= a.primary.base_cycles);
        assert_eq!(
            a.primary.cycles,
            a.primary.base_cycles + a.primary.bus_wait + a.primary.mshr_stall_cycles
        );
    }

    #[test]
    fn core_order_only_moves_queuing_waits() {
        // Three *distinct* cores with fixed traces, permuted: clock
        // ties resolve by core index, so individual queuing waits may
        // shift — but everything the caches and MSHRs decide is
        // ordering-invariant per core (ops, base cycles, transaction
        // and stall/coalesce counts), and so is the bus's transaction
        // total. An engine bug that let the interleaving leak into
        // cache or MSHR outcomes would trip this (the CI determinism
        // probe pins the same property for the segment API's measured
        // core).
        let traces: Vec<Vec<TraceOp>> =
            (0..3u64).map(|c| trace(60 + c, 400 + 50 * c as usize)).collect();
        let build = |c: u64| {
            let mut h = SetupKind::TsCache.build(80 + c);
            h.set_process_seed(ProcessId::new(1), Seed::new(17 + c));
            h
        };
        let order_invariant = |r: &CoreReport| {
            (
                r.ops,
                r.base_cycles,
                r.mem_reads,
                r.mem_writebacks,
                r.mshr_stall_cycles,
                r.mshr_coalesced,
            )
        };
        let run = |perm: [usize; 3]| {
            let mut hs: Vec<Hierarchy> = perm.iter().map(|&c| build(c as u64)).collect();
            let mut cores: Vec<CoreRun<'_>> = hs
                .iter_mut()
                .zip(perm.iter())
                .map(|(h, &c)| CoreRun { hierarchy: h, pid: ProcessId::new(1), ops: &traces[c] })
                .collect();
            let out = execute_batch(&mut cores, &SystemConfig::default());
            // Report per original core id, independent of position.
            let mut by_core = [CoreReport::default(); 3];
            for (pos, &c) in perm.iter().enumerate() {
                by_core[c] = out.cores[pos];
            }
            (by_core, out.bus)
        };
        let (plain, plain_bus) = run([0, 1, 2]);
        let (permuted, permuted_bus) = run([2, 0, 1]);
        for c in 0..3 {
            assert_eq!(
                order_invariant(&plain[c]),
                order_invariant(&permuted[c]),
                "core {c}: ordering leaked into cache/MSHR outcomes"
            );
        }
        assert_eq!(plain_bus.transactions, permuted_bus.transactions);
        assert_eq!(plain_bus.busy_cycles, permuted_bus.busy_cycles);
        assert_ne!(
            order_invariant(&plain[0]),
            order_invariant(&plain[1]),
            "cores must be genuinely distinct"
        );
    }

    /// A small shared-LLC platform: `n` private L1-only cores (distinct
    /// pids 1..=n, distinct RNG streams) plus one shared 64×4 LLC.
    fn shared_platform(n: usize, salt: u64) -> (Vec<Hierarchy>, Vec<ProcessId>, SharedLlc) {
        use tscache_core::cache::Cache;
        use tscache_core::geometry::CacheGeometry;
        use tscache_core::placement::PlacementKind;
        use tscache_core::replacement::ReplacementKind;
        let l1 = CacheGeometry::new(8, 2, 32).unwrap();
        let mk = |label: &str, geom, s| {
            Cache::new(label, geom, PlacementKind::RandomModulo, ReplacementKind::Random, s)
        };
        let mut cores = Vec::new();
        let mut pids = Vec::new();
        for c in 0..n as u64 {
            let mut h = Hierarchy::from_private_parts(
                mk("L1I", l1, salt ^ c ^ 0x11),
                mk("L1D", l1, salt ^ c ^ 0x22),
                Vec::new(),
                1,
                80,
            );
            let pid = ProcessId::new(1 + c as u16);
            h.set_process_seed(pid, Seed::new(salt.wrapping_mul(31) ^ c | 1));
            cores.push(h);
            pids.push(pid);
        }
        let mut llc =
            SharedLlc::new(mk("SLLC", CacheGeometry::new(64, 4, 32).unwrap(), salt ^ 0x55), 10, 80);
        for (c, &pid) in pids.iter().enumerate() {
            llc.set_process_seed(pid, Seed::new(salt.wrapping_mul(77) ^ c as u64 | 1));
        }
        (cores, pids, llc)
    }

    #[test]
    fn shared_batch_engine_matches_shared_scalar_engine() {
        for arbitration in Arbitration::ALL {
            let cfg = SystemConfig {
                bus: BusConfig { arbitration, ..BusConfig::default() },
                ..SystemConfig::default()
            };
            let traces = [trace(51, 700), trace(52, 600)];
            let run = |scalar: bool| {
                let (mut hs, pids, mut llc) = shared_platform(2, 5);
                for h in &mut hs {
                    h.set_write_policy(tscache_core::cache::WritePolicy::WriteBack);
                }
                llc.set_write_policy(tscache_core::cache::WritePolicy::WriteBack);
                let mut cores: Vec<CoreRun<'_>> = hs
                    .iter_mut()
                    .zip(&pids)
                    .zip(&traces)
                    .map(|((h, &pid), t)| CoreRun { hierarchy: h, pid, ops: t })
                    .collect();
                let out = if scalar {
                    execute_scalar_shared(&mut cores, &mut llc, &cfg)
                } else {
                    execute_batch_shared(&mut cores, &mut llc, &cfg)
                };
                let stats: Vec<_> = hs.iter().map(|h| h.total_stats()).collect();
                let contents: Vec<_> = llc.cache().contents().collect();
                (out, stats, *llc.cache().stats(), contents)
            };
            assert_eq!(run(true), run(false), "{arbitration}");
        }
    }

    #[test]
    fn shared_llc_hit_pays_no_bus_transaction() {
        // One core cycling 32 lines: they thrash the tiny L1 but fit
        // the 256-line LLC, so steady state is all LLC hits — and the
        // bus must see exactly the LLC misses, not the L1 misses.
        let ops: Vec<TraceOp> =
            (0..2000u64).map(|i| TraceOp::read(Addr::new((i % 32) * 4096))).collect();
        let (mut hs, pids, mut llc) = shared_platform(1, 9);
        let out = execute_batch_shared(
            &mut [CoreRun { hierarchy: &mut hs[0], pid: pids[0], ops: &ops }],
            &mut llc,
            &SystemConfig::default(),
        );
        let llc_stats = llc.cache().stats();
        assert!(llc_stats.hits() > 0, "no steady-state LLC hits");
        assert_eq!(out.cores[0].mem_reads, llc_stats.misses(), "bus reads ≠ LLC misses");
        assert_eq!(out.bus.transactions, out.cores[0].mem_reads + out.cores[0].mem_writebacks);
        assert!(
            hs[0].l1d().stats().misses() > llc_stats.misses(),
            "L1 misses should exceed LLC misses (hits must bypass the bus)"
        );
    }

    #[test]
    fn shared_llc_makes_contention_state_visible_and_partitions_hide_it() {
        // The victim cycles a working set that is LLC-resident when
        // alone. An enemy streaming through the same shared LLC evicts
        // victim lines — unless per-core way partitions isolate them.
        // The footprints are disjoint: cores sharing *data* would hit
        // on each other's lines (the Flush+Reload channel), which no
        // partition closes.
        let victim_ops: Vec<TraceOp> =
            (0..3000u64).map(|i| TraceOp::read(Addr::new((i % 48) * 4096))).collect();
        let enemy_ops: Vec<TraceOp> = trace(83, 3000)
            .into_iter()
            .map(|op| TraceOp { kind: op.kind, addr: Addr::new(op.addr.as_u64() + (1 << 24)) })
            .collect();
        let run = |with_enemy: bool, partitioned: bool| {
            let (mut hs, pids, mut llc) = shared_platform(2, 13);
            if partitioned {
                llc.set_way_partition(pids[0], 0, 2);
                llc.set_way_partition(pids[1], 2, 4);
            }
            let mut cores = Vec::new();
            let mut iter = hs.iter_mut();
            let h0 = iter.next().unwrap();
            cores.push(CoreRun { hierarchy: h0, pid: pids[0], ops: &victim_ops });
            if with_enemy {
                cores.push(CoreRun {
                    hierarchy: iter.next().unwrap(),
                    pid: pids[1],
                    ops: &enemy_ops,
                });
            }
            let out = execute_batch_shared(&mut cores, &mut llc, &SystemConfig::default());
            (out.cores[0], llc.cache().stats().cross_process_evictions())
        };
        let (solo, _) = run(false, false);
        let (contended, cross) = run(true, false);
        assert!(cross > 0, "enemy never evicted a victim LLC line");
        assert!(
            contended.mem_reads > solo.mem_reads,
            "shared-LLC contention must cost the victim extra off-chip reads \
             (solo {}, contended {})",
            solo.mem_reads,
            contended.mem_reads
        );
        let (partitioned, cross_part) = run(true, true);
        assert_eq!(cross_part, 0, "partitioned LLC still saw cross-core evictions");
        // Partitioned victim behaves as if partitioned-solo: the enemy
        // changes nothing it can observe in its own cache outcomes.
        let (part_solo, _) = run(false, true);
        assert_eq!(partitioned.mem_reads, part_solo.mem_reads);
        assert_eq!(partitioned.base_cycles, part_solo.base_cycles);
    }

    #[test]
    fn contended_shared_segment_is_deterministic_and_accounts_cycles() {
        let run = || {
            let (mut hs, pids, mut llc) = shared_platform(2, 21);
            let mut hs = hs.drain(..);
            let mut h = hs.next().unwrap();
            let enemy = hs.next().unwrap();
            let mut co = vec![CoRunner::new(enemy, pids[1], trace(31, 300))];
            let mut events = Vec::new();
            let mut requests = LlcRequests::default();
            let t = trace(32, 500);
            let seg = run_contended_segment_shared(
                &mut h,
                pids[0],
                &t,
                &mut co,
                &mut llc,
                &SystemConfig::default(),
                &mut events,
                &mut requests,
            );
            (seg, *llc.cache().stats())
        };
        let (a, llc_a) = run();
        let (b, llc_b) = run();
        assert_eq!(a, b);
        assert_eq!(llc_a, llc_b);
        assert!(a.co[0].ops > 0, "enemy never ran");
        assert_eq!(
            a.primary.cycles,
            a.primary.base_cycles + a.primary.bus_wait + a.primary.mshr_stall_cycles
        );
    }

    #[test]
    fn co_runner_flush_keeps_per_op_position_and_rewinds_lookahead() {
        let ops: Vec<TraceOp> = (0..10u64).map(|i| TraceOp::read(Addr::new(i * 4096))).collect();
        // Per-op mode: the cursor IS the next op — a flush must not
        // move it (chunk_start/evt_pos stay 0 in this mode, so the
        // naive rewind would restart the trace from op 0).
        let (mut hs, pids, _) = shared_platform(1, 3);
        let mut co = CoRunner::new(hs.remove(0), pids[0], ops.clone());
        let mut wbs = Vec::new();
        for _ in 0..5 {
            co.next_op_per_op(&mut wbs);
        }
        co.flush();
        let (_, op, _) = co.next_op_per_op(&mut wbs);
        assert_eq!(op, ops[5], "flush rewound a per-op co-runner's trace position");
        // Chunked mode: unconsumed lookahead is discarded, resuming at
        // the first unmerged op (which re-executes on the cold cache).
        let (mut hs, pids, mut llc) = shared_platform(1, 4);
        let mut co = CoRunner::new(hs.remove(0), pids[0], ops.clone());
        for _ in 0..3 {
            co.next_event_llc(&mut llc);
        }
        co.flush();
        let offset_bits = co.offset_bits;
        let (_, line, _, _) = co.next_event_llc(&mut llc);
        assert_eq!(
            line,
            ops[3].addr.line(offset_bits).as_u64(),
            "flush did not resume at the first unconsumed op"
        );
    }

    #[test]
    fn reclassify_reacts_to_late_coherent_ranges() {
        use tscache_core::addr::Addr;
        let ops: Vec<TraceOp> = (0..12u64).map(|i| TraceOp::read(Addr::new(i * 4096))).collect();
        let (mut hs, pids, mut llc) = shared_platform(1, 5);
        let mut co = CoRunner::new(hs.remove(0), pids[0], ops.clone());
        assert!(co.prebatchable_on(&llc), "coherence-free trace must be batchable");
        for _ in 0..4 {
            co.next_event_llc(&mut llc);
        }
        // The platform declares a coherent range covering the trace
        // *after* the co-runner already ran: the memoized verdict and
        // the buffered lookahead are both stale.
        llc.add_coherent_range(Addr::new(0), 12 * 4096);
        co.reclassify();
        assert!(!co.prebatchable_on(&llc), "stale pre-batchability verdict survived");
        let mut wbs = Vec::new();
        let (_, op, _) = co.next_op_per_op(&mut wbs);
        assert_eq!(op, ops[4], "reclassify lost the first unconsumed op");
    }

    #[test]
    fn tdma_bounds_per_transaction_wait() {
        let slot_cycles = 16u32;
        let cfg = SystemConfig {
            bus: BusConfig { arbitration: Arbitration::Tdma { slot_cycles }, service_cycles: 8 },
            mshr: None,
        };
        let (mut c0, mut c1) = pair();
        let pid = ProcessId::new(1);
        let (t0, t1) = (trace(31, 600), trace(32, 600));
        let out = execute_batch(
            &mut [
                CoreRun { hierarchy: &mut c0, pid, ops: &t0 },
                CoreRun { hierarchy: &mut c1, pid, ops: &t1 },
            ],
            &cfg,
        );
        // Every transaction waits at most one full TDMA round.
        let round = (slot_cycles as u64) * 2;
        for (i, core) in out.cores.iter().enumerate() {
            let txns = core.mem_reads + core.mem_writebacks;
            assert!(core.bus_wait <= txns * round, "core {i} waited beyond the TDMA bound");
        }
    }

    #[test]
    fn mshr_disabled_never_stalls_or_coalesces() {
        let cfg = SystemConfig { mshr: None, ..SystemConfig::default() };
        let (mut c0, mut c1) = pair();
        let pid = ProcessId::new(1);
        let (t0, t1) = (trace(41, 400), trace(42, 400));
        let out = execute_batch(
            &mut [
                CoreRun { hierarchy: &mut c0, pid, ops: &t0 },
                CoreRun { hierarchy: &mut c1, pid, ops: &t1 },
            ],
            &cfg,
        );
        for core in &out.cores {
            assert_eq!(core.mshr_stall_cycles, 0);
            assert_eq!(core.mshr_coalesced, 0);
        }
    }

    #[test]
    fn co_runner_mshr_windows_expire_with_its_op_sequence() {
        // A cyclic enemy trace of 16 lines all aliasing one L1 set:
        // every access misses L1, and the revisit distance (16 ops)
        // exceeds the MSHR op window (8), so entries must have expired
        // by the time a line comes around again — zero coalescing. A
        // frozen sequence number would instead pin the first 8 lines
        // in the file forever and falsely coalesce every revisit.
        let enemy_ops: Vec<TraceOp> =
            (0..16u64).map(|i| TraceOp::read(Addr::new(i * 128 * 32))).collect();
        let mut enemy = SetupKind::Deterministic.build(3);
        enemy.access_batch(ProcessId::new(9), &enemy_ops); // warm L2
        let mut co = vec![CoRunner::new(enemy, ProcessId::new(9), enemy_ops)];
        let mut h = SetupKind::Deterministic.build(1);
        let t = trace(5, 2000);
        let mut events = Vec::new();
        let seg = run_contended_segment(
            &mut h,
            ProcessId::new(1),
            &t,
            &mut co,
            &SystemConfig::default(),
            &mut events,
        );
        assert!(seg.co[0].ops > 32, "enemy barely ran; test needs several trace cycles");
        assert_eq!(
            seg.co[0].mshr_coalesced, 0,
            "revisit distance exceeds the MSHR window — nothing may coalesce"
        );
    }

    #[test]
    fn tiny_mshr_file_stalls_a_miss_streak() {
        let cfg = SystemConfig {
            mshr: Some(MshrConfig { entries: 1, window_ops: 16, stall_cycles: 6 }),
            ..SystemConfig::default()
        };
        let mut h = SetupKind::Deterministic.build(1);
        // A pure miss streak: distinct lines, no reuse.
        let t: Vec<TraceOp> = (0..400u64).map(|i| TraceOp::read(Addr::new(i * 4096))).collect();
        let pid = ProcessId::new(1);
        let out = execute_batch(&mut [CoreRun { hierarchy: &mut h, pid, ops: &t }], &cfg);
        assert!(out.cores[0].mshr_stall_cycles > 0, "1-entry MSHR never stalled a miss streak");
    }
}
