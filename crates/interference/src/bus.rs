//! The shared memory bus: a single port serializing every off-chip
//! transaction (last-level miss fills and dirty writebacks) of all
//! cores, under a configurable arbitration policy.
//!
//! The bus works on *transaction request times*: a core that needs the
//! bus at cycle `t` is granted it at some cycle `g ≥ t`, and `g − t`
//! is the queuing delay charged on top of the core's solo cycle count.
//! Grants are computed from the bus's own history only (no lookahead),
//! so the model is deterministic in the order transactions are
//! presented — which the multi-core engine fixes by always advancing
//! the core with the smallest clock.

use core::fmt;

/// How the shared bus arbitrates between cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arbitration {
    /// First-come first-served with rotating tie-breaks: a transaction
    /// waits only for the bus to drain (the average-case policy).
    RoundRobin,
    /// Lower core index = higher priority. On a collision (the bus is
    /// busy at request time) a low-priority core additionally waits
    /// out one service slot per higher-priority core with recent bus
    /// traffic — the deterministic stand-in for losing arbitration
    /// rounds to them.
    FixedPriority,
    /// Time-division multiple access: core `c` may only *start* a
    /// transaction inside its own slot of `slot_cycles` cycles in a
    /// rotating schedule of `n_cores` slots — the composable policy
    /// real-time multicores use, trading bandwidth for a contention
    /// bound that is independent of co-runner behaviour.
    Tdma {
        /// Length of each core's slot in cycles.
        slot_cycles: u32,
    },
}

impl Arbitration {
    /// The three policies, in presentation order (TDMA with the
    /// default 4-service-slot length).
    pub const ALL: [Arbitration; 3] = [
        Arbitration::RoundRobin,
        Arbitration::FixedPriority,
        Arbitration::Tdma { slot_cycles: 32 },
    ];

    /// Short label used in figures and bench names.
    pub fn label(self) -> &'static str {
        match self {
            Arbitration::RoundRobin => "round-robin",
            Arbitration::FixedPriority => "fixed-priority",
            Arbitration::Tdma { .. } => "tdma",
        }
    }
}

impl fmt::Display for Arbitration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared-bus configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Arbitration policy.
    pub arbitration: Arbitration,
    /// Cycles one transaction occupies the bus (the transfer slot; the
    /// end-to-end memory latency itself stays in the hierarchy's
    /// memory penalty).
    pub service_cycles: u32,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig { arbitration: Arbitration::RoundRobin, service_cycles: 8 }
    }
}

/// Aggregate bus accounting of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusReport {
    /// Transactions granted.
    pub transactions: u64,
    /// Total queuing cycles across all cores.
    pub total_wait: u64,
    /// Cycles the bus spent occupied.
    pub busy_cycles: u64,
}

/// The shared bus state during one engine run.
#[derive(Debug)]
pub struct Bus {
    cfg: BusConfig,
    n_cores: usize,
    /// First cycle the bus is free again.
    free_at: u64,
    /// Per-core time of the most recent grant (`u64::MAX` = never).
    last_grant: Vec<u64>,
    report: BusReport,
}

impl Bus {
    /// Creates an idle bus for `n_cores` cores.
    pub fn new(cfg: BusConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "bus needs at least one core");
        Bus {
            cfg,
            n_cores,
            free_at: 0,
            last_grant: vec![u64::MAX; n_cores],
            report: BusReport::default(),
        }
    }

    /// The configuration the bus was built with.
    pub fn config(&self) -> BusConfig {
        self.cfg
    }

    /// Accounting so far.
    pub fn report(&self) -> BusReport {
        self.report
    }

    /// Grants `core` a transaction requested at cycle `request`;
    /// returns the grant cycle (`≥ request`). The transaction occupies
    /// the bus for `service_cycles` from the grant.
    pub fn grant(&mut self, core: usize, request: u64) -> u64 {
        let service = self.cfg.service_cycles as u64;
        let mut grant = request.max(self.free_at);
        match self.cfg.arbitration {
            Arbitration::RoundRobin => {}
            Arbitration::FixedPriority => {
                if grant > request {
                    // Collided while the bus was draining: lose one
                    // arbitration round per higher-priority core that
                    // used the bus within the last rotation.
                    let window = service * self.n_cores as u64;
                    let recent = self.last_grant[..core]
                        .iter()
                        .filter(|&&g| g != u64::MAX && g + window > request)
                        .count() as u64;
                    grant += recent * service;
                }
            }
            Arbitration::Tdma { slot_cycles } => {
                let slot = slot_cycles as u64;
                let period = slot * self.n_cores as u64;
                let my_start = core as u64 * slot;
                let pos = grant % period;
                grant += if pos < my_start {
                    my_start - pos
                } else if pos < my_start + slot {
                    0
                } else {
                    period - pos + my_start
                };
            }
        }
        self.report.transactions += 1;
        self.report.total_wait += grant - request;
        self.report.busy_cycles += service;
        self.free_at = grant + service;
        self.last_grant[core] = grant;
        grant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_round_robin_grants_immediately() {
        let mut bus = Bus::new(BusConfig::default(), 2);
        assert_eq!(bus.grant(0, 100), 100);
        // Next request after the service slot: no wait.
        assert_eq!(bus.grant(1, 108), 108);
        assert_eq!(bus.report().total_wait, 0);
        assert_eq!(bus.report().transactions, 2);
    }

    #[test]
    fn busy_bus_queues_the_second_request() {
        let mut bus = Bus::new(BusConfig::default(), 2);
        bus.grant(0, 100);
        // Requested mid-service: waits until 108.
        assert_eq!(bus.grant(1, 103), 108);
        assert_eq!(bus.report().total_wait, 5);
    }

    #[test]
    fn fixed_priority_penalizes_low_priority_collisions() {
        let cfg = BusConfig { arbitration: Arbitration::FixedPriority, service_cycles: 8 };
        let mut rr = Bus::new(BusConfig::default(), 2);
        let mut fp = Bus::new(cfg, 2);
        for bus in [&mut rr, &mut fp] {
            bus.grant(0, 100);
        }
        // Core 1 collides; under fixed priority it additionally waits
        // out core 0's recent traffic.
        let g_rr = rr.grant(1, 103);
        let g_fp = fp.grant(1, 103);
        assert!(g_fp > g_rr, "fixed priority must delay the low-priority core more");
        // The high-priority core itself never pays the penalty.
        assert_eq!(fp.grant(0, 200), 200);
    }

    #[test]
    fn tdma_waits_for_the_owned_slot() {
        let cfg =
            BusConfig { arbitration: Arbitration::Tdma { slot_cycles: 16 }, service_cycles: 8 };
        let mut bus = Bus::new(cfg, 2);
        // Period 32: core 0 owns [0, 16), core 1 owns [16, 32).
        assert_eq!(bus.grant(0, 5), 5);
        assert_eq!(bus.grant(1, 33), 48, "core 1 waits for its slot");
        assert_eq!(bus.grant(0, 70), 70, "in-slot request starts at once");
        // Wait never exceeds one full period.
        for t in 0..200u64 {
            let mut b = Bus::new(cfg, 2);
            assert!(b.grant(1, t) - t <= 32, "t={t}");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Arbitration::RoundRobin.to_string(), "round-robin");
        assert_eq!(Arbitration::Tdma { slot_cycles: 4 }.to_string(), "tdma");
        assert_eq!(Arbitration::ALL.len(), 3);
    }
}
