//! Miss-status holding registers: the per-level structure bounding
//! miss-level parallelism and coalescing overlapping misses to the
//! same line.
//!
//! The simulator executes ops sequentially, so "outstanding" is
//! modelled on an *op window*: an MSHR entry allocated by the miss of
//! op `i` stays live until op `i + window_ops` of the same core. Within
//! that window
//!
//! * a second miss to the same line **coalesces** — it rides the
//!   pending fill, and at the last level its bus transaction is
//!   suppressed (no second off-chip fetch);
//! * a miss arriving with every entry live is a **structural stall** —
//!   the core waits `stall_cycles` for an entry to free before the
//!   miss can issue.
//!
//! Both effects are pure timing/traffic: cache contents, hit/miss
//! outcomes and RNG draws are untouched, which is what lets the
//! contended batch path stay bit-identical to the scalar interleaving.

/// MSHR configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrConfig {
    /// Entries in the file (in-flight misses tracked per level).
    pub entries: usize,
    /// Ops an entry stays live after its allocating miss.
    pub window_ops: u32,
    /// Cycles a structural stall costs.
    pub stall_cycles: u32,
}

impl Default for MshrConfig {
    fn default() -> Self {
        MshrConfig { entries: 8, window_ops: 8, stall_cycles: 6 }
    }
}

/// Outcome of presenting a miss to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// The line already has a live entry: the miss rides that fill.
    Coalesced,
    /// A free (or expired) entry was allocated.
    Allocated,
    /// Every entry was live: the oldest was recycled after a
    /// structural stall.
    Stalled,
}

/// One level's MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    cfg: MshrConfig,
    /// `(line, expire_seq)` per entry; `expire_seq <= seq` = free.
    slots: Vec<(u64, u64)>,
}

impl MshrFile {
    /// Creates an empty file.
    pub fn new(cfg: MshrConfig) -> Self {
        assert!(cfg.entries > 0, "MSHR file needs at least one entry");
        MshrFile { cfg, slots: vec![(u64::MAX, 0); cfg.entries] }
    }

    /// Presents the miss of op `seq` (the core's op index) to `line`.
    pub fn on_miss(&mut self, line: u64, seq: u64) -> MshrOutcome {
        let expire = seq + self.cfg.window_ops as u64;
        let mut free = None;
        let mut oldest = 0usize;
        for (i, &(l, e)) in self.slots.iter().enumerate() {
            if e > seq && l == line {
                return MshrOutcome::Coalesced;
            }
            if e <= seq {
                free.get_or_insert(i);
            }
            if self.slots[i].1 < self.slots[oldest].1 {
                oldest = i;
            }
        }
        match free {
            Some(i) => {
                self.slots[i] = (line, expire);
                MshrOutcome::Allocated
            }
            None => {
                self.slots[oldest] = (line, expire);
                MshrOutcome::Stalled
            }
        }
    }

    /// The configured stall penalty.
    pub fn stall_cycles(&self) -> u32 {
        self.cfg.stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_in_window_coalesces() {
        let mut f = MshrFile::new(MshrConfig::default());
        assert_eq!(f.on_miss(7, 0), MshrOutcome::Allocated);
        assert_eq!(f.on_miss(7, 3), MshrOutcome::Coalesced);
        // Past the window: a fresh allocation.
        assert_eq!(f.on_miss(7, 9), MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_stalls() {
        let cfg = MshrConfig { entries: 2, window_ops: 100, stall_cycles: 6 };
        let mut f = MshrFile::new(cfg);
        assert_eq!(f.on_miss(1, 0), MshrOutcome::Allocated);
        assert_eq!(f.on_miss(2, 1), MshrOutcome::Allocated);
        assert_eq!(f.on_miss(3, 2), MshrOutcome::Stalled);
        // The stall recycled the oldest entry (line 1).
        assert_eq!(f.on_miss(3, 3), MshrOutcome::Coalesced);
        assert_eq!(f.on_miss(1, 4), MshrOutcome::Stalled);
    }

    #[test]
    fn entries_expire_with_the_op_window() {
        let cfg = MshrConfig { entries: 1, window_ops: 4, stall_cycles: 6 };
        let mut f = MshrFile::new(cfg);
        assert_eq!(f.on_miss(1, 0), MshrOutcome::Allocated);
        assert_eq!(f.on_miss(2, 2), MshrOutcome::Stalled, "entry still live");
        assert_eq!(f.on_miss(3, 10), MshrOutcome::Allocated, "entry expired");
    }
}
