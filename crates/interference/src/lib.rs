//! # tscache-interference — multi-core contention modelling
//!
//! The shared-resource interference layer of the reproduction: in a
//! high-performance multicore, time-predictability is threatened by
//! *contention* on shared hardware as much as by cache layout. This
//! crate models the three mechanisms the paper's setting cares about:
//!
//! * a **shared memory bus** ([`bus`]) serializing every off-chip
//!   transaction under round-robin, fixed-priority or TDMA
//!   arbitration;
//! * **MSHR files** ([`mshr`]) bounding miss-level parallelism per
//!   cache level and coalescing overlapping misses to one fill;
//! * **multi-core execution** ([`multicore`]): N cores with private
//!   [`Hierarchy`](tscache_core::hierarchy::Hierarchy) instances whose
//!   last-level misses and memory-bound writebacks contend for the
//!   bus, with a batched engine pinned bit-identical to the scalar
//!   multi-core interleaving.
//!
//! With private hierarchies, contention is timing-only by
//! construction: per-core cache contents, statistics and RNG streams
//! are exactly those of a solo run, so every existing
//! differential/property suite keeps its meaning and a contended pWCET
//! curve can never undercut the solo curve of the same workload.
//!
//! With a **shared last level**
//! ([`SharedLlc`](tscache_core::hierarchy::SharedLlc), the
//! `*_shared` engines), contention additionally reaches cache *state*:
//! cores evict each other's shared-level lines — the cross-core
//! Prime+Probe channel of the §7 partitioning ablation — unless
//! per-core way partitions on the shared level restore isolation.
//! Either way both engines stay deterministic and bit-identical to the
//! scalar interleaving.

pub mod bus;
pub mod mshr;
pub mod multicore;

pub use bus::{Arbitration, Bus, BusConfig, BusReport};
pub use mshr::{MshrConfig, MshrFile, MshrOutcome};
pub use multicore::{
    execute_batch, execute_batch_shared, execute_scalar, execute_scalar_shared,
    run_contended_segment, run_contended_segment_shared, run_contended_segment_shared_with,
    run_contended_segment_with, CoRunner, ContentionConfig, CoreReport, CoreRun,
    InterferenceOutcome, SegmentOutcome, SystemConfig,
};
